//! # po-spec — a timing-free executable specification of VM+overlay semantics
//!
//! This crate is the *abstract machine* the concrete simulator must refine
//! (DESIGN.md §13). It models exactly the functional state the paper's
//! framework manages — per-process page tables, copy-on-write sharing, the
//! overlay mapping table with OBitVectors as plain sets, and the Overlay
//! Memory Store as a capacity-checked multiset of segments — and nothing
//! else: no caches, no TLBs, no cycles, no segment addresses.
//!
//! Three APIs matter:
//!
//! * [`SpecState::step`] — apply one [`SpecOp`], returning a
//!   [`SpecOutcome`]. Deterministic and total: an illegal op returns
//!   [`SpecOutcome::Illegal`] and leaves the state untouched.
//! * [`SpecState::legal_interior_states`] — for each multi-step transition
//!   (commit, discard, promotion, fork materialisation), the exact list of
//!   states a crash inside the transition may legally expose.
//! * [`SpecState::admits_interior`] — the membership test the DST harness
//!   uses after an interior crash: the observed (abstracted) machine state
//!   must be a legal interior state *modulo* concurrent memory-pressure
//!   collapses, which may independently commit any overlay page.
//!
//! The simulator side (α, the abstraction function, and the lockstep
//! driver) lives in `po-sim::spec_mirror`; this crate depends only on
//! `po-types` so any future backend can be checked against the same spec.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use po_types::geometry::LINES_PER_PAGE;
use std::collections::BTreeMap;

/// The OMS segment-size ladder of §4.4.2: (capacity in overlay lines,
/// segment bytes). Sub-4 KB segments spend one line on metadata, so a
/// 256 B segment holds 3 overlay lines, and so on.
pub const SEGMENT_LADDER: [(usize, u64); 5] =
    [(3, 256), (7, 512), (15, 1024), (31, 2048), (64, 4096)];

/// Largest segment size in [`SEGMENT_LADDER`]; the slack allowed for one
/// orphaned segment when judging a crash inside the OMT-write→OMS-free
/// window.
pub const MAX_SEGMENT_BYTES: u64 = 4096;

/// Parameters the spec shares with the concrete configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecParams {
    /// `true` = stores to shared pages use overlay-on-write;
    /// `false` = classic copy-on-write.
    pub overlay_mode: bool,
    /// Promote an overlay to a full page once this many lines are in it
    /// (§4.3.4).
    pub promote_threshold: usize,
    /// Smallest segment the OMS allocator will hand out, in bytes
    /// (`min_segment_class` of the concrete store).
    pub min_seg_bytes: u64,
}

impl Default for SpecParams {
    fn default() -> Self {
        Self { overlay_mode: true, promote_threshold: LINES_PER_PAGE, min_seg_bytes: 256 }
    }
}

/// One page of spec state: the frame it maps to (an abstract id — only
/// the *sharing partition* is meaningful, not the number), the PTE flags
/// the framework manages, and the overlay line set as a 64-bit mask
/// (0 = no overlay; the concrete machine never keeps an empty overlay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpecPage {
    /// Abstract frame id; pages with equal ids share a frame.
    pub frame: u64,
    /// Write permission.
    pub writable: bool,
    /// Copy-on-write: shared until the first write privatises it.
    pub cow: bool,
    /// Overlays enabled on this mapping (§4.1).
    pub enabled: bool,
    /// OBitVector as a plain set: bit `l` = line `l` is in the overlay.
    pub overlay: u64,
}

/// One operation of the abstract machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecOp {
    /// Create a new empty process.
    Spawn,
    /// Map a fresh anonymous page (writable, not shared, overlays off).
    Map {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
    },
    /// Fork `parent`: commit its overlays (ascending VPN), share every
    /// page copy-on-write, and (in overlay mode) enable overlays on all
    /// pages of both processes.
    Fork {
        /// Parent process index.
        parent: usize,
    },
    /// Write one byte somewhere in line `line` of `vpn`. `timed` writes
    /// go through the hardware path and may promote (§4.3.4); untimed
    /// debug pokes never promote.
    Write {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
        /// Line index within the page (0..64).
        line: usize,
        /// Whether the write goes through the timed path (can promote).
        timed: bool,
    },
    /// Force line `line` into the overlay without changing PTE flags
    /// (the harness's `seed_overlay_line`).
    SeedLine {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
        /// Line index within the page (0..64).
        line: usize,
    },
    /// Commit the overlay of `vpn`: privatise the page, merge the lines,
    /// destroy the overlay.
    Commit {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
    },
    /// Discard the overlay of `vpn` without merging. Flags unchanged.
    Discard {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
    },
    /// Observation-guided commit: the concrete machine collapsed this
    /// overlay under memory pressure (or promoted it); the spec follows.
    /// Semantically identical to [`SpecOp::Commit`].
    ForceCommit {
        /// Process index.
        pid: usize,
        /// Virtual page number (raw).
        vpn: u64,
    },
}

/// Result of [`SpecState::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecOutcome {
    /// The op applied and changed state.
    Applied,
    /// A process was created (by `Spawn` or `Fork`).
    Spawned {
        /// Index of the new process.
        pid: usize,
    },
    /// A write landed; reports the route the spec predicts.
    Wrote {
        /// `true` = the write went to the overlay; `false` = base page.
        overlay_route: bool,
        /// The write pushed the overlay over the promotion threshold.
        promoted: bool,
    },
    /// The op was legal but changed nothing.
    NoOp,
    /// The op is not allowed in this state; the state is unchanged.
    Illegal(&'static str),
}

/// The full abstract state: a map-of-maps page table (keyed
/// `(pid, vpn)`), with overlays and sharing folded into [`SpecPage`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecState {
    params: SpecParams,
    procs: usize,
    pages: BTreeMap<(usize, u64), SpecPage>,
    next_frame: u64,
}

/// Bytes of the smallest §4.4.2 segment that holds `lines` overlay
/// lines, respecting the allocator's minimum class.
pub fn segment_bytes_for(lines: usize, min_seg_bytes: u64) -> u64 {
    let b = SEGMENT_LADDER
        .iter()
        .find(|&&(cap, _)| cap >= lines)
        .map(|&(_, bytes)| bytes)
        .unwrap_or(MAX_SEGMENT_BYTES);
    b.max(min_seg_bytes)
}

impl SpecState {
    /// Fresh state with no processes.
    pub fn new(params: SpecParams) -> Self {
        Self { params, procs: 0, pages: BTreeMap::new(), next_frame: 0 }
    }

    /// Builds an *observed* state from an abstraction function over a
    /// concrete machine (frame ids are the machine's physical page
    /// numbers — only the sharing partition is compared against spec
    /// states, never the raw ids). Such a state is for judging, not for
    /// stepping.
    pub fn observed(
        params: SpecParams,
        procs: usize,
        pages: impl IntoIterator<Item = ((usize, u64), SpecPage)>,
    ) -> Self {
        Self { params, procs, pages: pages.into_iter().collect(), next_frame: 0 }
    }

    /// The parameters this state was built with.
    pub fn params(&self) -> SpecParams {
        self.params
    }

    /// Number of processes spawned so far.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The page table entry for `(pid, vpn)`, if mapped.
    pub fn page(&self, pid: usize, vpn: u64) -> Option<&SpecPage> {
        self.pages.get(&(pid, vpn))
    }

    /// All pages, in deterministic `(pid, vpn)` order.
    pub fn pages(&self) -> impl Iterator<Item = (&(usize, u64), &SpecPage)> {
        self.pages.iter()
    }

    /// The overlay line mask of `(pid, vpn)` (0 if unmapped or none).
    pub fn overlay_raw(&self, pid: usize, vpn: u64) -> u64 {
        self.pages.get(&(pid, vpn)).map_or(0, |p| p.overlay)
    }

    /// Upper bound on the concrete Overlay Memory Store's
    /// `bytes_in_use`: one smallest-fitting segment per live overlay.
    /// Sound because the concrete allocator never migrates beyond the
    /// smallest class that fits the OBitVector, and tight after a full
    /// flush (every line evicted ⇒ every segment exactly this size).
    pub fn oms_bound_bytes(&self) -> u64 {
        self.pages
            .values()
            .filter(|p| p.overlay != 0)
            .map(|p| segment_bytes_for(p.overlay.count_ones() as usize, self.params.min_seg_bytes))
            .sum()
    }

    /// Deterministic textual encoding of the full state (BTreeMap order),
    /// used by the determinism property test.
    pub fn encode(&self) -> String {
        format!("{self:?}")
    }

    fn fresh_frame(&mut self) -> u64 {
        let f = self.next_frame;
        self.next_frame += 1;
        f
    }

    fn frame_refs(&self, frame: u64) -> usize {
        self.pages.values().filter(|p| p.frame == frame).count()
    }

    /// Resolve copy-on-write for a pending write to `(pid, vpn)`: flip
    /// in place if this is the frame's sole reference, else move the
    /// page to a private copy. No-op if already writable.
    fn resolve_cow(&mut self, pid: usize, vpn: u64) {
        let Some(pg) = self.pages.get(&(pid, vpn)).copied() else { return };
        if pg.writable {
            return;
        }
        let fresh = if self.frame_refs(pg.frame) > 1 { Some(self.fresh_frame()) } else { None };
        if let Some(pg) = self.pages.get_mut(&(pid, vpn)) {
            if let Some(f) = fresh {
                pg.frame = f;
            }
            pg.writable = true;
            pg.cow = false;
        }
    }

    /// Commit `(pid, vpn)`'s overlay: privatise, then drop the line set.
    fn commit_page(&mut self, pid: usize, vpn: u64) -> SpecOutcome {
        if self.overlay_raw(pid, vpn) == 0 {
            return SpecOutcome::NoOp;
        }
        self.resolve_cow(pid, vpn);
        if let Some(pg) = self.pages.get_mut(&(pid, vpn)) {
            pg.overlay = 0;
        }
        SpecOutcome::Applied
    }

    /// Whether a write to `line` of `(pid, vpn)` routes to the overlay
    /// (§4.1: overlay if the line is already there, or overlay-on-write
    /// applies to a shared page with overlays enabled).
    pub fn write_routes_to_overlay(&self, pid: usize, vpn: u64, line: usize) -> Option<bool> {
        let pg = self.pages.get(&(pid, vpn))?;
        let in_overlay = pg.overlay & (1u64 << line) != 0;
        Some(pg.enabled && (in_overlay || (self.params.overlay_mode && pg.cow && !pg.writable)))
    }

    /// Apply one operation. Total and deterministic; `Illegal` leaves
    /// the state untouched.
    pub fn step(&mut self, op: SpecOp) -> SpecOutcome {
        match op {
            SpecOp::Spawn => {
                let pid = self.procs;
                self.procs += 1;
                SpecOutcome::Spawned { pid }
            }
            SpecOp::Map { pid, vpn } => {
                if pid >= self.procs {
                    return SpecOutcome::Illegal("map: no such process");
                }
                if self.pages.contains_key(&(pid, vpn)) {
                    return SpecOutcome::NoOp;
                }
                let frame = self.fresh_frame();
                self.pages.insert(
                    (pid, vpn),
                    SpecPage { frame, writable: true, cow: false, enabled: false, overlay: 0 },
                );
                SpecOutcome::Applied
            }
            SpecOp::Fork { parent } => {
                if parent >= self.procs {
                    return SpecOutcome::Illegal("fork: no such process");
                }
                // 1. Materialise (commit) every parent overlay, ascending VPN.
                let overlaid: Vec<u64> = self
                    .pages
                    .range((parent, 0)..=(parent, u64::MAX))
                    .filter(|(_, p)| p.overlay != 0)
                    .map(|(&(_, vpn), _)| vpn)
                    .collect();
                for vpn in overlaid {
                    self.commit_page(parent, vpn);
                }
                // 2. Share every page copy-on-write with the child.
                let child = self.procs;
                self.procs += 1;
                let parent_pages: Vec<(u64, SpecPage)> = self
                    .pages
                    .range((parent, 0)..=(parent, u64::MAX))
                    .map(|(&(_, vpn), &p)| (vpn, p))
                    .collect();
                for (vpn, mut pg) in parent_pages {
                    pg.cow = true;
                    pg.writable = false;
                    pg.overlay = 0;
                    if let Some(parent_pg) = self.pages.get_mut(&(parent, vpn)) {
                        parent_pg.cow = true;
                        parent_pg.writable = false;
                    }
                    self.pages.insert((child, vpn), pg);
                }
                // 3. In overlay mode the OS enables overlays on both.
                if self.params.overlay_mode {
                    for (&(p, _), pg) in self.pages.range_mut((parent, 0)..=(parent, u64::MAX)) {
                        debug_assert_eq!(p, parent);
                        pg.enabled = true;
                    }
                    for (_, pg) in self.pages.range_mut((child, 0)..=(child, u64::MAX)) {
                        pg.enabled = true;
                    }
                }
                SpecOutcome::Spawned { pid: child }
            }
            SpecOp::Write { pid, vpn, line, timed } => {
                if line >= LINES_PER_PAGE {
                    return SpecOutcome::Illegal("write: line out of range");
                }
                let Some(overlay_route) = self.write_routes_to_overlay(pid, vpn, line) else {
                    return SpecOutcome::Illegal("write: page not mapped");
                };
                // Verified against the state; safe to unwrap-like access.
                let Some(pg) = self.pages.get(&(pid, vpn)).copied() else {
                    return SpecOutcome::Illegal("write: page not mapped");
                };
                if overlay_route {
                    let bit = 1u64 << line;
                    let mut promoted = false;
                    if pg.overlay & bit == 0 {
                        if let Some(pg) = self.pages.get_mut(&(pid, vpn)) {
                            pg.overlay |= bit;
                        }
                        let len = self.overlay_raw(pid, vpn).count_ones() as usize;
                        if timed && len >= self.params.promote_threshold {
                            self.commit_page(pid, vpn);
                            promoted = true;
                        }
                    }
                    SpecOutcome::Wrote { overlay_route: true, promoted }
                } else {
                    if !pg.writable {
                        if !pg.cow {
                            return SpecOutcome::Illegal("write: protection violation");
                        }
                        self.resolve_cow(pid, vpn);
                    }
                    SpecOutcome::Wrote { overlay_route: false, promoted: false }
                }
            }
            SpecOp::SeedLine { pid, vpn, line } => {
                if line >= LINES_PER_PAGE {
                    return SpecOutcome::Illegal("seed: line out of range");
                }
                let Some(pg) = self.pages.get_mut(&(pid, vpn)) else {
                    return SpecOutcome::NoOp;
                };
                let bit = 1u64 << line;
                if !pg.enabled || pg.overlay & bit != 0 {
                    return SpecOutcome::NoOp;
                }
                pg.overlay |= bit;
                SpecOutcome::Applied
            }
            SpecOp::Commit { pid, vpn } | SpecOp::ForceCommit { pid, vpn } => {
                self.commit_page(pid, vpn)
            }
            SpecOp::Discard { pid, vpn } => {
                let Some(pg) = self.pages.get_mut(&(pid, vpn)) else {
                    return SpecOutcome::NoOp;
                };
                if pg.overlay == 0 {
                    return SpecOutcome::NoOp;
                }
                pg.overlay = 0;
                SpecOutcome::Applied
            }
        }
    }

    /// Clone of this state with `(pid, vpn)` privatised (CoW resolved)
    /// but its overlay kept — the state between the page-table update
    /// and the overlay merge of a commit/promotion.
    fn with_privatized(&self, pid: usize, vpn: u64) -> SpecState {
        let mut s = self.clone();
        s.resolve_cow(pid, vpn);
        s
    }

    /// All states a crash *inside* `op` may legally expose, in
    /// transition order, starting with the pre-state and ending with the
    /// post-state. Assumes no concurrent memory-pressure collapse; use
    /// [`SpecState::admits_interior`] for the full membership test.
    pub fn legal_interior_states(&self, op: &SpecOp) -> Vec<SpecState> {
        let mut states = vec![self.clone()];
        let push_post = |states: &mut Vec<SpecState>| {
            let mut post = self.clone();
            post.step(*op);
            states.push(post);
        };
        match *op {
            SpecOp::Commit { pid, vpn } | SpecOp::ForceCommit { pid, vpn } => {
                if self.overlay_raw(pid, vpn) != 0 {
                    // prepare_write done, merge/destroy not yet.
                    states.push(self.with_privatized(pid, vpn));
                    push_post(&mut states);
                }
            }
            SpecOp::Discard { pid, vpn } => {
                if self.overlay_raw(pid, vpn) != 0 {
                    push_post(&mut states);
                }
            }
            SpecOp::Write { pid, vpn, line, timed } => {
                if self.write_routes_to_overlay(pid, vpn, line) == Some(true)
                    && self.overlay_raw(pid, vpn) & (1u64 << line) == 0
                {
                    let mut with_line = self.clone();
                    if let Some(pg) = with_line.pages.get_mut(&(pid, vpn)) {
                        pg.overlay |= 1u64 << line;
                    }
                    let promotes = timed
                        && with_line.overlay_raw(pid, vpn).count_ones() as usize
                            >= self.params.promote_threshold;
                    states.push(with_line.clone());
                    if promotes {
                        states.push(with_line.with_privatized(pid, vpn));
                    }
                }
                push_post(&mut states);
            }
            SpecOp::Fork { parent } => {
                // Materialisation commits parent overlays one page at a
                // time (ascending VPN); each commit has its own interior
                // privatised point. The fork proper (table clone) is
                // atomic from the crash machinery's point of view.
                let overlaid: Vec<u64> = self
                    .pages
                    .range((parent, 0)..=(parent, u64::MAX))
                    .filter(|(_, p)| p.overlay != 0)
                    .map(|(&(_, vpn), _)| vpn)
                    .collect();
                let mut s = self.clone();
                for vpn in overlaid {
                    states.push(s.with_privatized(parent, vpn));
                    s.commit_page(parent, vpn);
                    states.push(s.clone());
                }
                push_post(&mut states);
            }
            SpecOp::Spawn | SpecOp::Map { .. } | SpecOp::SeedLine { .. } => {
                push_post(&mut states);
            }
        }
        states
    }

    /// Judge an observed (abstracted) machine state captured by a crash
    /// *inside* `op`, with `self` as the pre-op state.
    ///
    /// Page-wise: every page must be its pre-state, the pre-state plus
    /// the op's target line (write/seed landed, nothing else yet), a
    /// privatised variant (CoW resolved, overlay kept or merged — the
    /// window inside commit/promotion, and what a concurrent
    /// memory-pressure collapse leaves behind on *any* page), or — for
    /// the op's target page only — cleared with flags untouched (the
    /// discard / OMT-write→OMS-free window). Sharing may only be split
    /// by a crash, never merged, and `enabled` never changes
    /// mid-transition.
    pub fn admits_interior(&self, observed: &SpecState, op: &SpecOp) -> Result<(), String> {
        if observed.procs != self.procs {
            return Err(format!(
                "interior state has {} processes, pre-state has {}",
                observed.procs, self.procs
            ));
        }
        if !observed.pages.keys().eq(self.pages.keys()) {
            return Err("interior state maps a different page set".into());
        }
        let target = match *op {
            SpecOp::Write { pid, vpn, line, .. } | SpecOp::SeedLine { pid, vpn, line } => {
                Some((pid, vpn, Some(line)))
            }
            SpecOp::Commit { pid, vpn }
            | SpecOp::ForceCommit { pid, vpn }
            | SpecOp::Discard { pid, vpn } => Some((pid, vpn, None)),
            _ => None,
        };
        for (key, pre) in &self.pages {
            let Some(o) = observed.pages.get(key) else { continue };
            let (is_target, tline) = match target {
                Some((pid, vpn, l)) if (pid, vpn) == *key => (true, l),
                _ => (false, None),
            };
            if o.enabled != pre.enabled {
                return Err(format!("page {key:?}: `enabled` changed mid-transition"));
            }
            let with_line = tline.map(|l| pre.overlay | (1u64 << l));
            let flags_same = o.writable == pre.writable && o.cow == pre.cow;
            let privatized = o.writable && !o.cow;
            let ok = (flags_same && o.overlay == pre.overlay)
                || (is_target && flags_same && Some(o.overlay) == with_line)
                || (privatized
                    && (o.overlay == pre.overlay
                        || o.overlay == 0
                        || Some(o.overlay) == with_line))
                || (is_target && flags_same && o.overlay == 0);
            if !ok {
                return Err(format!(
                    "page {key:?}: observed {o:?} is not a legal interior variant of {pre:?}"
                ));
            }
        }
        self.admits_partition_split(observed)
    }

    /// [`SpecState::admits_interior`] for transitions with no single
    /// target page (flush, reclaim, timed reads whose writebacks evict):
    /// only pressure variants — privatised, possibly with the overlay
    /// merged away — are legal, on any page.
    pub fn admits_interior_untargeted(&self, observed: &SpecState) -> Result<(), String> {
        self.admits_interior(observed, &SpecOp::Spawn)
    }

    fn admits_partition_split(&self, observed: &SpecState) -> Result<(), String> {
        // Sharing partition: a crash may split groups (CoW resolution)
        // but can never merge two frames.
        let mut rep: BTreeMap<u64, u64> = BTreeMap::new();
        for (key, o) in &observed.pages {
            let Some(pre) = self.pages.get(key) else { continue };
            if let Some(&prev) = rep.get(&o.frame) {
                if prev != pre.frame {
                    return Err(format!(
                        "pages sharing observed frame {} were not shared pre-op",
                        o.frame
                    ));
                }
            } else {
                rep.insert(o.frame, pre.frame);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay_params(threshold: usize) -> SpecParams {
        SpecParams { overlay_mode: true, promote_threshold: threshold, min_seg_bytes: 256 }
    }

    fn forked_pair() -> (SpecState, usize, usize) {
        let mut s = SpecState::new(overlay_params(64));
        let SpecOutcome::Spawned { pid } = s.step(SpecOp::Spawn) else { panic!() };
        assert_eq!(s.step(SpecOp::Map { pid, vpn: 0x100 }), SpecOutcome::Applied);
        let SpecOutcome::Spawned { pid: child } = s.step(SpecOp::Fork { parent: pid }) else {
            panic!()
        };
        (s, pid, child)
    }

    #[test]
    fn map_then_write_is_base_route() {
        let mut s = SpecState::new(overlay_params(64));
        s.step(SpecOp::Spawn);
        s.step(SpecOp::Map { pid: 0, vpn: 1 });
        let out = s.step(SpecOp::Write { pid: 0, vpn: 1, line: 0, timed: false });
        assert_eq!(out, SpecOutcome::Wrote { overlay_route: false, promoted: false });
        assert_eq!(s.overlay_raw(0, 1), 0);
    }

    #[test]
    fn fork_shares_cow_and_enables_overlays() {
        let (s, parent, child) = forked_pair();
        for pid in [parent, child] {
            let pg = s.page(pid, 0x100).expect("mapped");
            assert!(pg.cow && !pg.writable && pg.enabled);
        }
        assert_eq!(s.page(parent, 0x100).map(|p| p.frame), s.page(child, 0x100).map(|p| p.frame));
    }

    #[test]
    fn overlay_write_after_fork_routes_to_overlay_and_promotes_at_threshold() {
        let mut s = SpecState::new(overlay_params(3));
        s.step(SpecOp::Spawn);
        s.step(SpecOp::Map { pid: 0, vpn: 7 });
        s.step(SpecOp::Fork { parent: 0 });
        for line in 0..2 {
            let out = s.step(SpecOp::Write { pid: 0, vpn: 7, line, timed: true });
            assert_eq!(out, SpecOutcome::Wrote { overlay_route: true, promoted: false });
        }
        assert_eq!(s.overlay_raw(0, 7).count_ones(), 2);
        let out = s.step(SpecOp::Write { pid: 0, vpn: 7, line: 2, timed: true });
        assert_eq!(out, SpecOutcome::Wrote { overlay_route: true, promoted: true });
        let pg = s.page(0, 7).expect("mapped");
        assert_eq!(pg.overlay, 0);
        assert!(pg.writable && !pg.cow, "promotion privatises the page");
        // The child still points at the original frame.
        assert_ne!(pg.frame, s.page(1, 7).expect("child page").frame);
    }

    #[test]
    fn untimed_pokes_never_promote() {
        let mut s = SpecState::new(overlay_params(2));
        s.step(SpecOp::Spawn);
        s.step(SpecOp::Map { pid: 0, vpn: 7 });
        s.step(SpecOp::Fork { parent: 0 });
        for line in 0..8 {
            let out = s.step(SpecOp::Write { pid: 0, vpn: 7, line, timed: false });
            assert_eq!(out, SpecOutcome::Wrote { overlay_route: true, promoted: false });
        }
        assert_eq!(s.overlay_raw(0, 7).count_ones(), 8);
    }

    #[test]
    fn commit_privatises_and_clears_discard_only_clears() {
        let (mut s, parent, child) = forked_pair();
        s.step(SpecOp::Write { pid: parent, vpn: 0x100, line: 5, timed: false });
        let mut t = s.clone();
        assert_eq!(s.step(SpecOp::Commit { pid: parent, vpn: 0x100 }), SpecOutcome::Applied);
        let pg = s.page(parent, 0x100).expect("mapped");
        assert!(pg.writable && !pg.cow && pg.overlay == 0);
        assert_ne!(pg.frame, s.page(child, 0x100).expect("child").frame);
        assert_eq!(t.step(SpecOp::Discard { pid: parent, vpn: 0x100 }), SpecOutcome::Applied);
        let pg = t.page(parent, 0x100).expect("mapped");
        assert!(!pg.writable && pg.cow && pg.overlay == 0, "discard leaves flags alone");
        assert_eq!(pg.frame, t.page(child, 0x100).expect("child").frame);
    }

    #[test]
    fn sole_owner_commit_flips_in_place() {
        let (mut s, parent, _child) = forked_pair();
        s.step(SpecOp::SeedLine { pid: parent, vpn: 0x100, line: 1 });
        // Commit the child's view first so the parent becomes sole owner.
        let f_before = s.page(parent, 0x100).expect("pg").frame;
        s.step(SpecOp::Write { pid: 1, vpn: 0x100, line: 0, timed: false });
        s.step(SpecOp::Commit { pid: 1, vpn: 0x100 });
        s.step(SpecOp::Commit { pid: parent, vpn: 0x100 });
        let pg = s.page(parent, 0x100).expect("pg");
        assert!(pg.writable && !pg.cow);
        assert_eq!(pg.frame, f_before, "sole owner keeps its frame");
    }

    #[test]
    fn fork_commits_parent_overlays_first() {
        let (mut s, parent, _child) = forked_pair();
        s.step(SpecOp::Write { pid: parent, vpn: 0x100, line: 3, timed: false });
        let SpecOutcome::Spawned { pid: c2 } = s.step(SpecOp::Fork { parent }) else { panic!() };
        assert_eq!(s.overlay_raw(parent, 0x100), 0, "fork materialises parent overlays");
        let pg = s.page(parent, 0x100).expect("pg");
        assert!(pg.cow && !pg.writable, "then re-shares with the child");
        assert_eq!(pg.frame, s.page(c2, 0x100).expect("pg").frame);
    }

    #[test]
    fn oms_bound_follows_segment_ladder() {
        assert_eq!(segment_bytes_for(1, 256), 256);
        assert_eq!(segment_bytes_for(3, 256), 256);
        assert_eq!(segment_bytes_for(4, 256), 512);
        assert_eq!(segment_bytes_for(16, 256), 2048);
        assert_eq!(segment_bytes_for(64, 256), 4096);
        assert_eq!(segment_bytes_for(1, 1024), 1024, "respects the allocator minimum");
        let (mut s, parent, child) = forked_pair();
        for line in 0..5 {
            s.step(SpecOp::Write { pid: parent, vpn: 0x100, line, timed: false });
        }
        s.step(SpecOp::Write { pid: child, vpn: 0x100, line: 0, timed: false });
        assert_eq!(s.oms_bound_bytes(), 512 + 256);
    }

    #[test]
    fn illegal_ops_leave_state_untouched() {
        let (s, parent, _) = forked_pair();
        let mut t = s.clone();
        assert!(matches!(
            t.step(SpecOp::Write { pid: parent, vpn: 0xDEAD, line: 0, timed: false }),
            SpecOutcome::Illegal(_)
        ));
        assert!(matches!(t.step(SpecOp::Map { pid: 99, vpn: 1 }), SpecOutcome::Illegal(_)));
        assert_eq!(s, t);
    }

    #[test]
    fn legal_interior_states_for_commit() {
        let (mut s, parent, _) = forked_pair();
        s.step(SpecOp::Write { pid: parent, vpn: 0x100, line: 9, timed: false });
        let op = SpecOp::Commit { pid: parent, vpn: 0x100 };
        let states = s.legal_interior_states(&op);
        assert_eq!(states.len(), 3, "pre, privatised, post");
        assert_eq!(states[0], s);
        let mid = &states[1];
        let pg = mid.page(parent, 0x100).expect("pg");
        assert!(pg.writable && !pg.cow && pg.overlay != 0);
        let mut post = s.clone();
        post.step(op);
        assert_eq!(states[2], post);
        // Every enumerated state passes the membership test.
        for st in &states {
            s.admits_interior(st, &op).expect("enumerated state must be admitted");
        }
    }

    #[test]
    fn admits_interior_accepts_pressure_collapse_and_rejects_merges() {
        let (mut s, parent, child) = forked_pair();
        s.step(SpecOp::Map { pid: parent, vpn: 0x200 });
        s.step(SpecOp::SeedLine { pid: parent, vpn: 0x100, line: 2 });
        let op = SpecOp::SeedLine { pid: parent, vpn: 0x100, line: 7 };

        // A concurrent reclaim may commit a *different* overlay page.
        let mut pressure = s.clone();
        pressure.step(SpecOp::Write { pid: child, vpn: 0x100, line: 1, timed: false });
        pressure.step(SpecOp::ForceCommit { pid: child, vpn: 0x100 });
        s.step(SpecOp::Write { pid: child, vpn: 0x100, line: 1, timed: false });
        s.admits_interior(&pressure, &op).expect("pressure collapse is legal");

        // Adding a line the op did not target is not legal.
        let mut rogue = s.clone();
        if let Some(pg) = rogue.pages.get_mut(&(parent, 0x100)) {
            pg.overlay |= 1 << 40;
        }
        assert!(s.admits_interior(&rogue, &op).is_err(), "spurious line must be rejected");

        // Merging two unshared frames is not legal.
        let mut merged = s.clone();
        let f = merged.pages[&(parent, 0x100)].frame;
        if let Some(pg) = merged.pages.get_mut(&(parent, 0x200)) {
            pg.frame = f;
        }
        assert!(s.admits_interior(&merged, &op).is_err(), "frame merge must be rejected");

        // Flipping `enabled` mid-transition is not legal.
        let mut toggled = s.clone();
        if let Some(pg) = toggled.pages.get_mut(&(parent, 0x200)) {
            pg.enabled = true;
        }
        assert!(s.admits_interior(&toggled, &op).is_err(), "enabled flip must be rejected");
    }

    #[test]
    fn interior_states_of_promotion_include_line_and_privatised_variants() {
        let mut s = SpecState::new(overlay_params(2));
        s.step(SpecOp::Spawn);
        s.step(SpecOp::Map { pid: 0, vpn: 4 });
        s.step(SpecOp::Fork { parent: 0 });
        s.step(SpecOp::Write { pid: 0, vpn: 4, line: 0, timed: false });
        let op = SpecOp::Write { pid: 0, vpn: 4, line: 1, timed: true };
        let states = s.legal_interior_states(&op);
        // pre, line-added, line-added+privatised, post.
        assert_eq!(states.len(), 4);
        assert_eq!(states[1].overlay_raw(0, 4).count_ones(), 2);
        let pg = states[2].page(0, 4).expect("pg");
        assert!(pg.writable && !pg.cow && pg.overlay.count_ones() == 2);
        assert_eq!(states[3].overlay_raw(0, 4), 0, "post-promotion overlay is gone");
        for st in &states {
            s.admits_interior(st, &op).expect("enumerated state must be admitted");
        }
    }

    #[test]
    fn encode_is_deterministic() {
        let build = || {
            let (mut s, parent, child) = forked_pair();
            s.step(SpecOp::Write { pid: parent, vpn: 0x100, line: 3, timed: false });
            s.step(SpecOp::Write { pid: child, vpn: 0x100, line: 9, timed: false });
            s.step(SpecOp::Commit { pid: child, vpn: 0x100 });
            s.encode()
        };
        assert_eq!(build(), build());
    }
}
