//! Trace synthesis for the fork experiment.

use crate::spec::WorkloadSpec;
use po_sim::TraceOp;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::VirtAddr;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

fn line_va(vpn: u64, line: u64) -> VirtAddr {
    VirtAddr::new(vpn * PAGE_SIZE as u64 + line * LINE_SIZE as u64)
}

/// A background read with SPEC-like locality: most accesses hit a hot
/// working set (cache/TLB-resident), the rest sweep the cold footprint
/// sequentially (prefetcher-friendly), with rare pointer-chase jumps.
struct ReadStream {
    base_vpn: u64,
    pages: u64,
    hot_pages: u64,
    hot_cursor: u64,
    cold_cursor: u64,
}

impl ReadStream {
    fn new(base_vpn: u64, pages: u64) -> Self {
        Self { base_vpn, pages, hot_pages: pages.clamp(1, 64), hot_cursor: 0, cold_cursor: 0 }
    }

    fn next(&mut self, rng: &mut StdRng) -> TraceOp {
        let total_lines = self.pages * LINES_PER_PAGE as u64;
        let hot_lines = self.hot_pages * LINES_PER_PAGE as u64;
        let line = if rng.gen_bool(0.01) {
            // Pointer chase anywhere in the footprint.
            rng.gen_range(0..total_lines)
        } else if rng.gen_bool(0.75) {
            // Hot set: fits the L2 cache and the TLB.
            let l = self.hot_cursor % hot_lines;
            self.hot_cursor += 1;
            l
        } else {
            // Cold sequential sweep over the full footprint.
            let l = self.cold_cursor % total_lines;
            self.cold_cursor += 1;
            l
        };
        TraceOp::Load(line_va(
            self.base_vpn + line / LINES_PER_PAGE as u64,
            line % LINES_PER_PAGE as u64,
        ))
    }
}

/// Builds the warmup (pre-fork) trace: sweeps the read footprint and
/// dirties the soon-to-diverge region so every frame is materialized
/// and the hierarchy is warm, as the paper's 200 M-instruction warmup
/// does.
pub fn warmup_trace(spec: &WorkloadSpec, instructions: u64, seed: u64) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57A2_4D00);
    let base = spec.base_vpn().raw();
    let mut ops = Vec::new();
    let mut stream = ReadStream::new(base, spec.read_pages);
    let unit = 1 + spec.compute_per_mem as u64;
    let mut budget = instructions;
    // Touch each write-region page once so its frame exists pre-fork.
    let write_base = base + spec.read_pages;
    // Pre-touch only pages a window of this size can dirty, so every
    // access stays inside `spec.mapped_pages(window)` for any window at
    // least as large as the warmup.
    let prewrite_cap = spec.dirty_pages(instructions);
    let mut wp = 0u64;
    while budget > unit {
        if wp < prewrite_cap && rng.gen_bool(0.05) {
            ops.push(TraceOp::Store(line_va(write_base + wp, 0)));
            wp += 1;
        } else {
            ops.push(stream.next(&mut rng));
        }
        ops.push(TraceOp::Compute(spec.compute_per_mem));
        budget -= unit;
    }
    ops
}

/// Builds the post-fork trace: `spec.dirty_pages(instructions)` pages
/// diverge, each receiving `lines_per_dirty_page` line writes; a
/// `temporal_clustering` fraction of those pages are written in a tight
/// burst, the rest have their writes spread across the window;
/// background reads and compute fill the remaining instruction budget.
pub fn post_fork_trace(spec: &WorkloadSpec, instructions: u64, seed: u64) -> Vec<TraceOp> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF0F0);
    let base = spec.base_vpn().raw();
    let write_base = base + spec.read_pages;
    let dirty = spec.dirty_pages(instructions);

    // Per-page write groups.
    let mut groups: Vec<Vec<TraceOp>> = Vec::new();
    for p in 0..dirty {
        let mut lines: Vec<u64> = (0..LINES_PER_PAGE as u64).collect();
        lines.shuffle(&mut rng);
        lines.truncate(spec.lines_per_dirty_page as usize);
        let burst = rng.gen_bool(spec.temporal_clustering);
        if burst {
            // All writes to this page happen back-to-back.
            let mut g = Vec::with_capacity(lines.len() * 2);
            for l in lines {
                g.push(TraceOp::Store(line_va(write_base + p, l)));
                g.push(TraceOp::Compute(spec.compute_per_mem));
            }
            groups.push(g);
        } else {
            // Each line write is its own group, scattered in time.
            for l in lines {
                groups.push(vec![
                    TraceOp::Store(line_va(write_base + p, l)),
                    TraceOp::Compute(spec.compute_per_mem),
                ]);
            }
        }
    }
    groups.shuffle(&mut rng);

    // Fill with reads so the total hits the instruction budget.
    let unit = 1 + spec.compute_per_mem as u64;
    let write_instr: u64 = groups.iter().map(|g| g.len() as u64 / 2 * unit).sum();
    let read_ops = instructions.saturating_sub(write_instr) / unit;
    let reads_between =
        if groups.is_empty() { read_ops } else { read_ops / (groups.len() as u64 + 1) };

    let mut stream = ReadStream::new(base, spec.read_pages);
    let mut ops = Vec::new();
    let mut emit_reads = |ops: &mut Vec<TraceOp>, rng: &mut StdRng, n: u64| {
        for _ in 0..n {
            ops.push(stream.next(rng));
            ops.push(TraceOp::Compute(spec.compute_per_mem));
        }
    };
    emit_reads(&mut ops, &mut rng, reads_between);
    for g in groups {
        ops.extend(g);
        emit_reads(&mut ops, &mut rng, reads_between);
    }
    ops
}

/// Convenience wrapper producing `(warmup, post)` traces for one
/// benchmark, sized like a scaled-down version of the paper's
/// 200 M + 300 M instruction windows.
pub fn fork_traces(
    spec: &WorkloadSpec,
    warmup_instructions: u64,
    post_instructions: u64,
    seed: u64,
) -> (Vec<TraceOp>, Vec<TraceOp>) {
    (warmup_trace(spec, warmup_instructions, seed), post_fork_trace(spec, post_instructions, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::spec_suite;

    fn instr_count(ops: &[TraceOp]) -> u64 {
        ops.iter().map(|o| o.instructions()).sum()
    }

    fn store_pages(ops: &[TraceOp]) -> std::collections::BTreeSet<u64> {
        ops.iter()
            .filter_map(|o| match o {
                TraceOp::Store(va) => Some(va.vpn().raw()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn post_trace_hits_instruction_budget() {
        for spec in spec_suite() {
            let ops = spec.generate_post_fork(500_000, 1);
            let n = instr_count(&ops);
            assert!(
                (n as f64) > 0.8 * 500_000.0 && (n as f64) < 1.2 * 500_000.0,
                "{}: {n} instructions for a 500k budget",
                spec.name
            );
        }
    }

    #[test]
    fn dirty_page_count_matches_spec() {
        for spec in spec_suite() {
            let window = 400_000;
            let ops = spec.generate_post_fork(window, 2);
            let pages = store_pages(&ops);
            assert_eq!(
                pages.len() as u64,
                spec.dirty_pages(window),
                "{} dirty-page mismatch",
                spec.name
            );
        }
    }

    #[test]
    fn lines_per_page_matches_spec() {
        let spec = spec_suite().into_iter().find(|s| s.name == "mcf").unwrap();
        let ops = spec.generate_post_fork(400_000, 3);
        let mut per_page: std::collections::HashMap<u64, std::collections::BTreeSet<u64>> =
            std::collections::HashMap::new();
        for op in &ops {
            if let TraceOp::Store(va) = op {
                per_page.entry(va.vpn().raw()).or_default().insert(va.line_in_page() as u64);
            }
        }
        for (page, lines) in per_page {
            assert_eq!(lines.len() as u64, spec.lines_per_dirty_page, "page {page}");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let spec = &spec_suite()[0];
        assert_eq!(spec.generate_post_fork(100_000, 9), spec.generate_post_fork(100_000, 9));
        assert_ne!(spec.generate_post_fork(100_000, 9), spec.generate_post_fork(100_000, 10));
    }

    #[test]
    fn all_accesses_stay_inside_mapped_range() {
        for spec in spec_suite() {
            let window = 300_000;
            let mapped = spec.mapped_pages(window);
            let base = spec.base_vpn().raw();
            for ops in [spec.generate_warmup(window, 4), spec.generate_post_fork(window, 4)] {
                for op in &ops {
                    let va = match op {
                        TraceOp::Load(v) | TraceOp::Store(v) => *v,
                        _ => continue,
                    };
                    let vpn = va.vpn().raw();
                    assert!(
                        vpn >= base && vpn < base + mapped,
                        "{}: access to {vpn:#x} outside [{base:#x}, {:#x})",
                        spec.name,
                        base + mapped
                    );
                }
            }
        }
    }

    #[test]
    fn cactus_writes_arrive_in_bursts() {
        let suite = spec_suite();
        let cactus = suite.iter().find(|s| s.name == "cactus").unwrap();
        let ops = cactus.generate_post_fork(300_000, 5);
        // Measure the maximum gap (in ops) between consecutive writes to
        // the same page: bursts mean tiny gaps.
        let mut last_seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut max_gap = 0usize;
        for (i, op) in ops.iter().enumerate() {
            if let TraceOp::Store(va) = op {
                let p = va.vpn().raw();
                if let Some(prev) = last_seen.insert(p, i) {
                    max_gap = max_gap.max(i - prev);
                }
            }
        }
        assert!(max_gap < 1000, "cactus same-page write gap should be tiny, got {max_gap}");
    }
}
