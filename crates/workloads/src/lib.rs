//! # po-workloads — SPEC-CPU2006-like write-working-set generators
//!
//! The paper's fork experiment (§5.1) runs 15 SPEC CPU2006 benchmarks
//! grouped by the *shape of their write working set*:
//!
//! * **Type 1** — low write working-set size: `bwaves, hmmer, libq,
//!   sphinx3, tonto`;
//! * **Type 2** — almost all cache lines within each modified page are
//!   updated: `bzip2, cactus, lbm, leslie3d, soplex`;
//! * **Type 3** — only a few cache lines in each modified page are
//!   updated: `astar, Gems, mcf, milc, omnet`.
//!
//! SPEC binaries and SimPoint traces are not available offline, so this
//! crate generates synthetic traces parameterized by exactly the
//! features that drive Figures 8 and 9 (see DESIGN.md §3): dirty-page
//! rate, lines written per dirty page, *temporal clustering* of the
//! writes within a page (the paper's explanation for `cactus`, the one
//! benchmark where copy-on-write wins: "when writes to different cache
//! lines within a page are close in time, copy-on-write performs
//! better"), and the background read/compute mix that keeps the cache
//! hierarchy under realistic pressure.
//!
//! # Example
//!
//! ```
//! use po_workloads::{spec_suite, WorkloadType};
//!
//! let suite = spec_suite();
//! assert_eq!(suite.len(), 15);
//! assert_eq!(suite.iter().filter(|s| s.wtype == WorkloadType::DensePages).count(), 5);
//! let mcf = suite.iter().find(|s| s.name == "mcf").unwrap();
//! let trace = mcf.generate_post_fork(100_000, 7);
//! assert!(!trace.is_empty());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod spec;
pub mod tracegen;

pub use spec::{spec_suite, WorkloadSpec, WorkloadType};
pub use tracegen::fork_traces;
