//! The 15 benchmark specifications.

use crate::tracegen;
use po_sim::TraceOp;
use po_types::Vpn;

/// The paper's three write-working-set classes (§5.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadType {
    /// Type 1: low write working-set size.
    LowWriteSet,
    /// Type 2: almost all lines within each modified page are updated.
    DensePages,
    /// Type 3: only a few lines within each modified page are updated.
    SparsePages,
}

/// Parameters of one synthetic benchmark.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Benchmark name (as in Figures 8/9).
    pub name: &'static str,
    /// Write-working-set class.
    pub wtype: WorkloadType,
    /// Pages dirtied per million post-fork instructions.
    pub dirty_pages_per_minstr: f64,
    /// Cache lines written per dirty page (1..=64).
    pub lines_per_dirty_page: u64,
    /// Fraction of dirty pages whose line writes happen back-to-back
    /// (1.0 = cactus-like bursts, where CoW's high-MLP page copy wins;
    /// 0.0 = writes to a page spread across the whole window).
    pub temporal_clustering: f64,
    /// Read accesses interleaved per write.
    pub reads_per_write: u32,
    /// Compute instructions per memory access.
    pub compute_per_mem: u32,
    /// Read-footprint pages (cache pressure).
    pub read_pages: u64,
}

impl WorkloadSpec {
    /// Virtual page where the workload's heap starts.
    pub fn base_vpn(&self) -> Vpn {
        Vpn::new(0x4_0000)
    }

    /// Total pages the experiment must map: the read footprint plus the
    /// largest write set a window of `max_window_instructions` can dirty
    /// (pass the larger of the warmup and post-fork windows).
    pub fn mapped_pages(&self, max_window_instructions: u64) -> u64 {
        self.read_pages + self.dirty_pages(max_window_instructions) + 1
    }

    /// Pages dirtied in a window of `post_instructions`.
    pub fn dirty_pages(&self, post_instructions: u64) -> u64 {
        ((post_instructions as f64 / 1e6) * self.dirty_pages_per_minstr).ceil() as u64
    }

    /// Generates the warmup (pre-fork) trace: touches the read footprint
    /// and pre-writes the pages that will later diverge, so frames are
    /// materialized and caches warm.
    pub fn generate_warmup(&self, instructions: u64, seed: u64) -> Vec<TraceOp> {
        tracegen::warmup_trace(self, instructions, seed)
    }

    /// Generates the post-fork trace of roughly `instructions`
    /// instructions.
    pub fn generate_post_fork(&self, instructions: u64, seed: u64) -> Vec<TraceOp> {
        tracegen::post_fork_trace(self, instructions, seed)
    }
}

/// The 15-benchmark suite of §5.1, five per type. The parameters are
/// synthetic but chosen to reproduce each type's qualitative behaviour
/// (and the relative ordering visible in Figures 8/9): Type 1 dirties
/// almost nothing; Type 2 dirties full pages (with `cactus` writing its
/// pages in tight bursts); Type 3 dirties many pages a few lines each.
pub fn spec_suite() -> Vec<WorkloadSpec> {
    use WorkloadType::*;
    vec![
        // ---- Type 1: low write working set --------------------------
        WorkloadSpec {
            name: "bwaves",
            wtype: LowWriteSet,
            dirty_pages_per_minstr: 0.6,
            lines_per_dirty_page: 24,
            temporal_clustering: 0.2,
            reads_per_write: 12,
            compute_per_mem: 3,
            read_pages: 800,
        },
        WorkloadSpec {
            name: "hmmer",
            wtype: LowWriteSet,
            dirty_pages_per_minstr: 0.3,
            lines_per_dirty_page: 16,
            temporal_clustering: 0.3,
            reads_per_write: 14,
            compute_per_mem: 4,
            read_pages: 600,
        },
        WorkloadSpec {
            name: "libq",
            wtype: LowWriteSet,
            dirty_pages_per_minstr: 0.8,
            lines_per_dirty_page: 32,
            temporal_clustering: 0.1,
            reads_per_write: 10,
            compute_per_mem: 3,
            read_pages: 900,
        },
        WorkloadSpec {
            name: "sphinx3",
            wtype: LowWriteSet,
            dirty_pages_per_minstr: 0.5,
            lines_per_dirty_page: 12,
            temporal_clustering: 0.2,
            reads_per_write: 16,
            compute_per_mem: 3,
            read_pages: 700,
        },
        WorkloadSpec {
            name: "tonto",
            wtype: LowWriteSet,
            dirty_pages_per_minstr: 0.4,
            lines_per_dirty_page: 20,
            temporal_clustering: 0.2,
            reads_per_write: 12,
            compute_per_mem: 4,
            read_pages: 500,
        },
        // ---- Type 2: full-page writers ------------------------------
        WorkloadSpec {
            name: "bzip2",
            wtype: DensePages,
            dirty_pages_per_minstr: 26.0,
            lines_per_dirty_page: 60,
            temporal_clustering: 0.15,
            reads_per_write: 3,
            compute_per_mem: 3,
            read_pages: 900,
        },
        WorkloadSpec {
            name: "cactus",
            wtype: DensePages,
            dirty_pages_per_minstr: 22.0,
            lines_per_dirty_page: 62,
            temporal_clustering: 0.98,
            reads_per_write: 2,
            compute_per_mem: 2,
            read_pages: 900,
        },
        WorkloadSpec {
            name: "lbm",
            wtype: DensePages,
            dirty_pages_per_minstr: 34.0,
            lines_per_dirty_page: 64,
            temporal_clustering: 0.1,
            reads_per_write: 2,
            compute_per_mem: 2,
            read_pages: 1100,
        },
        WorkloadSpec {
            name: "leslie3d",
            wtype: DensePages,
            dirty_pages_per_minstr: 24.0,
            lines_per_dirty_page: 56,
            temporal_clustering: 0.2,
            reads_per_write: 3,
            compute_per_mem: 3,
            read_pages: 1000,
        },
        WorkloadSpec {
            name: "soplex",
            wtype: DensePages,
            dirty_pages_per_minstr: 18.0,
            lines_per_dirty_page: 52,
            temporal_clustering: 0.25,
            reads_per_write: 4,
            compute_per_mem: 3,
            read_pages: 800,
        },
        // ---- Type 3: sparse-page writers ----------------------------
        WorkloadSpec {
            name: "astar",
            wtype: SparsePages,
            dirty_pages_per_minstr: 40.0,
            lines_per_dirty_page: 6,
            temporal_clustering: 0.1,
            reads_per_write: 5,
            compute_per_mem: 3,
            read_pages: 1000,
        },
        WorkloadSpec {
            name: "Gems",
            wtype: SparsePages,
            dirty_pages_per_minstr: 55.0,
            lines_per_dirty_page: 8,
            temporal_clustering: 0.1,
            reads_per_write: 4,
            compute_per_mem: 3,
            read_pages: 1200,
        },
        WorkloadSpec {
            name: "mcf",
            wtype: SparsePages,
            dirty_pages_per_minstr: 80.0,
            lines_per_dirty_page: 4,
            temporal_clustering: 0.05,
            reads_per_write: 4,
            compute_per_mem: 2,
            read_pages: 1400,
        },
        WorkloadSpec {
            name: "milc",
            wtype: SparsePages,
            dirty_pages_per_minstr: 48.0,
            lines_per_dirty_page: 5,
            temporal_clustering: 0.1,
            reads_per_write: 5,
            compute_per_mem: 3,
            read_pages: 1100,
        },
        WorkloadSpec {
            name: "omnet",
            wtype: SparsePages,
            dirty_pages_per_minstr: 60.0,
            lines_per_dirty_page: 3,
            temporal_clustering: 0.1,
            reads_per_write: 5,
            compute_per_mem: 2,
            read_pages: 1100,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_five_of_each_type() {
        let suite = spec_suite();
        assert_eq!(suite.len(), 15);
        for wtype in
            [WorkloadType::LowWriteSet, WorkloadType::DensePages, WorkloadType::SparsePages]
        {
            assert_eq!(suite.iter().filter(|s| s.wtype == wtype).count(), 5);
        }
    }

    #[test]
    fn names_are_unique_and_match_figure8() {
        let suite = spec_suite();
        let mut names: Vec<_> = suite.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
        for expected in ["bwaves", "cactus", "mcf", "omnet", "Gems"] {
            assert!(suite.iter().any(|s| s.name == expected), "{expected} missing");
        }
    }

    #[test]
    fn type_parameters_are_coherent() {
        for s in spec_suite() {
            match s.wtype {
                WorkloadType::LowWriteSet => assert!(s.dirty_pages_per_minstr < 2.0),
                WorkloadType::DensePages => {
                    assert!(s.lines_per_dirty_page >= 48, "{}", s.name)
                }
                WorkloadType::SparsePages => {
                    assert!(s.lines_per_dirty_page <= 10, "{}", s.name);
                    assert!(s.dirty_pages_per_minstr >= 30.0, "{}", s.name);
                }
            }
            assert!(s.lines_per_dirty_page <= 64);
            assert!((0.0..=1.0).contains(&s.temporal_clustering));
        }
    }

    #[test]
    fn dirty_pages_scale_with_window() {
        let mcf = spec_suite().into_iter().find(|s| s.name == "mcf").unwrap();
        assert_eq!(mcf.dirty_pages(1_000_000) * 2, mcf.dirty_pages(2_000_000));
    }

    #[test]
    fn cactus_is_the_clustered_one() {
        let suite = spec_suite();
        let cactus = suite.iter().find(|s| s.name == "cactus").unwrap();
        for s in &suite {
            if s.name != "cactus" {
                assert!(s.temporal_clustering < cactus.temporal_clustering);
            }
        }
    }
}
