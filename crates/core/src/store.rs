//! The Overlay Memory Store (OMS): free-space management (§4.4.3).
//!
//! The memory controller manages a region of main memory holding every
//! overlay, split into segments of the five fixed sizes. Free segments
//! are kept on per-class free lists (the paper uses a grouped linked
//! list threaded through the free segments themselves; the management
//! structure here is equivalent, and the accounting — what is free,
//! what is allocated, what splits happened — matches). When a class
//! runs dry, a segment of the next larger class is split in two; when
//! the 4 KB class runs dry, the OS is asked for another chunk of pages.

use crate::segment::SegmentClass;
use po_telemetry::{Event as TelemetryEvent, TelemetrySink};
use po_types::geometry::PAGE_SIZE;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{Counter, FaultInjector, FaultSite, MainMemAddr, PoError, PoResult};
use std::collections::BTreeSet;

/// OMS statistics.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Segment allocations served.
    pub allocations: Counter,
    /// Segments returned.
    pub frees: Counter,
    /// Splits of a larger segment into two smaller ones.
    pub splits: Counter,
    /// Chunks requested from the OS.
    pub os_grants: Counter,
}

/// The Overlay Memory Store allocator.
///
/// # Example
///
/// ```
/// use po_overlay::{OverlayMemoryStore, SegmentClass};
/// use po_types::MainMemAddr;
///
/// let mut oms = OverlayMemoryStore::new();
/// oms.add_chunk(MainMemAddr::new(0x10_0000), 1); // one 4 KB page
/// let seg = oms.allocate(SegmentClass::B256)?;
/// assert_eq!(oms.bytes_in_use(), 256);
/// oms.free(seg, SegmentClass::B256)?;
/// assert_eq!(oms.bytes_in_use(), 0);
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct OverlayMemoryStore {
    /// Per-class free lists (sorted for determinism; the paper threads a
    /// grouped linked list through the segments themselves).
    free: [BTreeSet<u64>; 5],
    /// Total bytes under OMS management.
    managed_bytes: u64,
    /// Bytes currently allocated to overlays.
    used_bytes: u64,
    /// Chunks granted by the OS, as `(base, bytes)` spans; used by
    /// [`OverlayMemoryStore::verify_layout`] to bound the free lists.
    chunks: Vec<(u64, u64)>,
    stats: StoreStats,
    faults: FaultInjector,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl OverlayMemoryStore {
    /// Creates an empty store (no memory yet; add with
    /// [`OverlayMemoryStore::add_chunk`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Installs a fault injector; [`FaultSite::OmsAllocFailed`] is
    /// honored here.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    fn class_idx(class: SegmentClass) -> usize {
        // Statically infallible: ALL enumerates every SegmentClass variant.
        SegmentClass::ALL.iter().position(|&c| c == class).expect("ALL covers every class")
    }

    /// Adds `frames` 4 KB pages starting at page-aligned `base` to the
    /// store (the OS grant of §4.4.3).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn add_chunk(&mut self, base: MainMemAddr, frames: u64) {
        assert_eq!(base.page_offset(), 0, "OMS chunks must be page-aligned");
        self.stats.os_grants.inc();
        for i in 0..frames {
            let addr = base.raw() + i * PAGE_SIZE as u64;
            self.free[Self::class_idx(SegmentClass::K4)].insert(addr);
        }
        self.chunks.push((base.raw(), frames * PAGE_SIZE as u64));
        self.managed_bytes += frames * PAGE_SIZE as u64;
    }

    /// Allocates a segment of `class`, splitting larger segments as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::OverlayStoreExhausted`] when no segment of this
    /// or any larger class is free — the caller should obtain an OS grant
    /// ([`OverlayMemoryStore::add_chunk`]) and retry.
    pub fn allocate(&mut self, class: SegmentClass) -> PoResult<MainMemAddr> {
        if self.faults.fire(FaultSite::OmsAllocFailed) {
            // Transient allocator glitch: report exhaustion without
            // consuming anything; the caller's grow/reclaim path retries.
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "OmsAllocFailed" });
            return Err(PoError::OverlayStoreExhausted);
        }
        let idx = Self::class_idx(class);
        if let Some(&addr) = self.free[idx].iter().next() {
            self.free[idx].remove(&addr);
            self.used_bytes += class.bytes() as u64;
            self.stats.allocations.inc();
            self.sink.count("oms.allocations", 1);
            return Ok(MainMemAddr::new(addr));
        }
        // Split a larger segment (recursively).
        let larger = class.next_larger().ok_or(PoError::OverlayStoreExhausted)?;
        let big = self.allocate_for_split(larger)?;
        self.stats.splits.inc();
        let half = class.bytes() as u64;
        debug_assert_eq!(larger.bytes() as u64, 2 * half);
        self.free[idx].insert(big.raw() + half);
        self.used_bytes += half;
        self.stats.allocations.inc();
        self.sink.count("oms.allocations", 1);
        Ok(big)
    }

    /// Allocation used internally while splitting: does not count the
    /// larger segment as "in use" (its halves are accounted separately).
    fn allocate_for_split(&mut self, class: SegmentClass) -> PoResult<MainMemAddr> {
        let idx = Self::class_idx(class);
        if let Some(&addr) = self.free[idx].iter().next() {
            self.free[idx].remove(&addr);
            return Ok(MainMemAddr::new(addr));
        }
        let larger = class.next_larger().ok_or(PoError::OverlayStoreExhausted)?;
        let big = self.allocate_for_split(larger)?;
        self.stats.splits.inc();
        let half = class.bytes() as u64;
        self.free[idx].insert(big.raw() + half);
        Ok(big)
    }

    /// Returns a segment to its class's free list.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on a double free or when the
    /// accounting would underflow; the store is left unchanged so the
    /// caller can report the corruption instead of compounding it.
    pub fn free(&mut self, base: MainMemAddr, class: SegmentClass) -> PoResult<()> {
        let idx = Self::class_idx(class);
        let bytes = class.bytes() as u64;
        let remaining = self
            .used_bytes
            .checked_sub(bytes)
            .ok_or(PoError::Corrupted("OMS free would underflow byte accounting"))?;
        if !self.free[idx].insert(base.raw()) {
            return Err(PoError::Corrupted("double free of OMS segment"));
        }
        self.used_bytes = remaining;
        self.stats.frees.inc();
        Ok(())
    }

    /// Bytes currently allocated to overlay segments — the memory-
    /// consumption metric for overlay-on-write (Figure 8).
    pub fn bytes_in_use(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes handed to the store by the OS.
    pub fn bytes_managed(&self) -> u64 {
        self.managed_bytes
    }

    /// Bytes sitting on free lists.
    pub fn bytes_free(&self) -> u64 {
        SegmentClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| self.free[i].len() as u64 * c.bytes() as u64)
            .sum()
    }

    /// Free segments of one class (diagnostics).
    pub fn free_count(&self, class: SegmentClass) -> usize {
        self.free[Self::class_idx(class)].len()
    }

    /// Invariant: every managed byte is either free or in use, exactly
    /// once. Checked by tests and property tests (DESIGN.md invariant 2).
    pub fn check_conservation(&self) -> PoResult<()> {
        if self.bytes_free() + self.bytes_in_use() == self.managed_bytes {
            Ok(())
        } else {
            Err(PoError::Corrupted("OMS byte conservation violated"))
        }
    }

    /// Structural self-check of the free lists:
    ///
    /// 1. byte conservation ([`OverlayMemoryStore::check_conservation`]);
    /// 2. free segments of all classes are pairwise disjoint spans;
    /// 3. every free span lies inside an OS-granted chunk.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] naming the violated invariant.
    pub fn verify_layout(&self) -> PoResult<()> {
        self.check_conservation()?;
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, class) in SegmentClass::ALL.iter().enumerate() {
            for &base in &self.free[i] {
                spans.push((base, class.bytes() as u64));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(PoError::Corrupted("OMS free lists overlap"));
            }
        }
        for &(base, len) in &spans {
            let inside = self.chunks.iter().any(|&(cb, cl)| base >= cb && base + len <= cb + cl);
            if !inside {
                return Err(PoError::Corrupted("OMS free segment outside granted chunks"));
            }
        }
        Ok(())
    }

    /// Serializes free lists (BTreeSets iterate sorted — byte-stable),
    /// byte accounting, chunk spans and stats. The fault injector is
    /// deliberately not serialized; the machine-level snapshot owns it.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        for set in &self.free {
            w.put_len(set.len());
            for &addr in set {
                w.put_u64(addr);
            }
        }
        w.put_u64(self.managed_bytes);
        w.put_u64(self.used_bytes);
        w.put_len(self.chunks.len());
        for &(base, bytes) in &self.chunks {
            w.put_u64(base);
            w.put_u64(bytes);
        }
        for c in
            [&self.stats.allocations, &self.stats.frees, &self.stats.splits, &self.stats.os_grants]
        {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a store from [`OverlayMemoryStore::encode_snapshot`]
    /// bytes, with an inert fault injector (reinstall via
    /// [`OverlayMemoryStore::set_fault_injector`]).
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on truncation or when the decoded free
    /// lists violate the store's structural invariants
    /// ([`OverlayMemoryStore::verify_layout`]).
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let mut store = Self::new();
        for set in &mut store.free {
            let n = r.get_len()?;
            for _ in 0..n {
                set.insert(r.get_u64()?);
            }
        }
        store.managed_bytes = r.get_u64()?;
        store.used_bytes = r.get_u64()?;
        let n = r.get_len()?;
        for _ in 0..n {
            let base = r.get_u64()?;
            let bytes = r.get_u64()?;
            store.chunks.push((base, bytes));
        }
        for c in [
            &mut store.stats.allocations,
            &mut store.stats.frees,
            &mut store.stats.splits,
            &mut store.stats.os_grants,
        ] {
            c.add(r.get_u64()?);
        }
        store.verify_layout()?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(frames: u64) -> OverlayMemoryStore {
        let mut s = OverlayMemoryStore::new();
        s.add_chunk(MainMemAddr::new(0x100000), frames);
        s
    }

    #[test]
    fn empty_store_is_exhausted() {
        let mut s = OverlayMemoryStore::new();
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
    }

    #[test]
    fn allocate_splits_a_page_down_to_256b() {
        let mut s = store_with(1);
        let seg = s.allocate(SegmentClass::B256).unwrap();
        assert_eq!(seg.raw(), 0x100000);
        // Splits: 4K→2K→1K→512→256 = 4 splits.
        assert_eq!(s.stats().splits.get(), 4);
        // Buddies of every size are now free.
        assert_eq!(s.free_count(SegmentClass::B256), 1);
        assert_eq!(s.free_count(SegmentClass::B512), 1);
        assert_eq!(s.free_count(SegmentClass::K1), 1);
        assert_eq!(s.free_count(SegmentClass::K2), 1);
        assert_eq!(s.free_count(SegmentClass::K4), 0);
        s.check_conservation().unwrap();
        assert_eq!(s.bytes_in_use(), 256);
    }

    #[test]
    fn free_then_reallocate_reuses() {
        let mut s = store_with(1);
        let a = s.allocate(SegmentClass::B512).unwrap();
        s.free(a, SegmentClass::B512).unwrap();
        let b = s.allocate(SegmentClass::B512).unwrap();
        assert_eq!(a, b);
        s.check_conservation().unwrap();
    }

    #[test]
    fn exhaustion_reports_cleanly() {
        let mut s = store_with(1);
        let _a = s.allocate(SegmentClass::K4).unwrap();
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
        s.check_conservation().unwrap();
    }

    #[test]
    fn many_small_allocations_fill_the_page() {
        let mut s = store_with(1);
        let mut segs = Vec::new();
        for _ in 0..16 {
            segs.push(s.allocate(SegmentClass::B256).unwrap());
        }
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
        // All 16 segments are distinct and 256-byte aligned.
        let mut raws: Vec<u64> = segs.iter().map(|a| a.raw()).collect();
        raws.sort_unstable();
        raws.dedup();
        assert_eq!(raws.len(), 16);
        assert!(raws.iter().all(|r| r % 256 == 0));
        s.check_conservation().unwrap();
        // Free everything; the page is reusable as four 1K segments.
        for seg in segs {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        assert_eq!(s.bytes_in_use(), 0);
        s.check_conservation().unwrap();
    }

    #[test]
    fn growth_after_exhaustion() {
        let mut s = store_with(1);
        s.allocate(SegmentClass::K4).unwrap();
        assert!(s.allocate(SegmentClass::K4).is_err());
        s.add_chunk(MainMemAddr::new(0x200000), 2);
        assert!(s.allocate(SegmentClass::K4).is_ok());
        assert!(s.allocate(SegmentClass::K2).is_ok());
        s.check_conservation().unwrap();
        assert_eq!(s.stats().os_grants.get(), 2);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn chunk_must_be_aligned() {
        let mut s = OverlayMemoryStore::new();
        s.add_chunk(MainMemAddr::new(0x100), 1);
    }

    #[test]
    fn mixed_sizes_conserve_bytes() {
        let mut s = store_with(4);
        let a = s.allocate(SegmentClass::K1).unwrap();
        let b = s.allocate(SegmentClass::B256).unwrap();
        let c = s.allocate(SegmentClass::K2).unwrap();
        s.check_conservation().unwrap();
        assert_eq!(s.bytes_in_use(), 1024 + 256 + 2048);
        s.free(b, SegmentClass::B256).unwrap();
        s.free(a, SegmentClass::K1).unwrap();
        s.free(c, SegmentClass::K2).unwrap();
        assert_eq!(s.bytes_in_use(), 0);
        s.check_conservation().unwrap();
    }
}
