//! The Overlay Memory Store (OMS): free-space management (§4.4.3).
//!
//! The memory controller manages a region of main memory holding every
//! overlay, split into segments of the five fixed sizes. Free segments
//! are kept on per-class free lists (the paper uses a grouped linked
//! list threaded through the free segments themselves; the management
//! structure here is equivalent, and the accounting — what is free,
//! what is allocated, what splits happened — matches). When a class
//! runs dry, a segment of the next larger class is split in two; when
//! the 4 KB class runs dry, the OS is asked for another chunk of pages.

use crate::segment::SegmentClass;
use po_telemetry::{Event as TelemetryEvent, TelemetrySink};
use po_types::geometry::PAGE_SIZE;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{Counter, CrashStage, FaultInjector, FaultSite, MainMemAddr, PoError, PoResult};
use std::collections::BTreeSet;

/// OMS statistics.
#[derive(Clone, Debug, Default)]
pub struct StoreStats {
    /// Segment allocations served.
    pub allocations: Counter,
    /// Segments returned.
    pub frees: Counter,
    /// Splits of a larger segment into two smaller ones.
    pub splits: Counter,
    /// Chunks requested from the OS.
    pub os_grants: Counter,
    /// Compaction passes run (§4.4.2 memory compaction).
    pub compaction_passes: Counter,
    /// Total bytes moved by compaction relocations.
    pub relocated_bytes: Counter,
}

/// What one [`OverlayMemoryStore::compact`] pass accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// Bytes moved to lower addresses.
    pub relocated_bytes: u64,
    /// Live segments relocated.
    pub moves: u64,
    /// Buddy merges performed on the free lists.
    pub merges: u64,
    /// `true` when a relocation copy failed mid-pass and the pass
    /// aborted gracefully (the destination segment was released and the
    /// store is consistent; the caller may retry).
    pub aborted: bool,
}

/// The Overlay Memory Store allocator.
///
/// # Example
///
/// ```
/// use po_overlay::{OverlayMemoryStore, SegmentClass};
/// use po_types::MainMemAddr;
///
/// let mut oms = OverlayMemoryStore::new();
/// oms.add_chunk(MainMemAddr::new(0x10_0000), 1); // one 4 KB page
/// let seg = oms.allocate(SegmentClass::B256)?;
/// assert_eq!(oms.bytes_in_use(), 256);
/// oms.free(seg, SegmentClass::B256)?;
/// assert_eq!(oms.bytes_in_use(), 0);
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct OverlayMemoryStore {
    /// Per-class free lists (sorted for determinism; the paper threads a
    /// grouped linked list through the segments themselves).
    free: [BTreeSet<u64>; 5],
    /// Total bytes under OMS management.
    managed_bytes: u64,
    /// Bytes currently allocated to overlays.
    used_bytes: u64,
    /// Chunks granted by the OS, as `(base, bytes)` spans; used by
    /// [`OverlayMemoryStore::verify_layout`] to bound the free lists.
    chunks: Vec<(u64, u64)>,
    stats: StoreStats,
    faults: FaultInjector,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl OverlayMemoryStore {
    /// Creates an empty store (no memory yet; add with
    /// [`OverlayMemoryStore::add_chunk`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns statistics.
    pub fn stats(&self) -> &StoreStats {
        &self.stats
    }

    /// Installs a fault injector; [`FaultSite::OmsAllocFailed`] is
    /// honored here.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    fn class_idx(class: SegmentClass) -> usize {
        // Statically infallible: ALL enumerates every SegmentClass variant.
        SegmentClass::ALL.iter().position(|&c| c == class).expect("ALL covers every class")
    }

    /// Adds `frames` 4 KB pages starting at page-aligned `base` to the
    /// store (the OS grant of §4.4.3).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn add_chunk(&mut self, base: MainMemAddr, frames: u64) {
        assert_eq!(base.page_offset(), 0, "OMS chunks must be page-aligned");
        self.stats.os_grants.inc();
        for i in 0..frames {
            let addr = base.raw() + i * PAGE_SIZE as u64;
            self.free[Self::class_idx(SegmentClass::K4)].insert(addr);
        }
        self.chunks.push((base.raw(), frames * PAGE_SIZE as u64));
        self.managed_bytes += frames * PAGE_SIZE as u64;
    }

    /// Allocates a segment of `class`, splitting larger segments as
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::OverlayStoreExhausted`] when no segment of this
    /// or any larger class is free — the caller should obtain an OS grant
    /// ([`OverlayMemoryStore::add_chunk`]) and retry.
    pub fn allocate(&mut self, class: SegmentClass) -> PoResult<MainMemAddr> {
        if self.faults.fire(FaultSite::OmsAllocFailed) {
            // Transient allocator glitch: report exhaustion without
            // consuming anything; the caller's grow/reclaim path retries.
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "OmsAllocFailed" });
            return Err(PoError::OverlayStoreExhausted);
        }
        let idx = Self::class_idx(class);
        if let Some(&addr) = self.free[idx].iter().next() {
            self.free[idx].remove(&addr);
            self.used_bytes += class.bytes() as u64;
            self.stats.allocations.inc();
            self.sink.count("oms.allocations", 1);
            return Ok(MainMemAddr::new(addr));
        }
        // Split a larger segment (recursively).
        let larger = class.next_larger().ok_or(PoError::OverlayStoreExhausted)?;
        let big = self.allocate_for_split(larger)?;
        self.stats.splits.inc();
        let half = class.bytes() as u64;
        debug_assert_eq!(larger.bytes() as u64, 2 * half);
        self.free[idx].insert(big.raw() + half);
        self.used_bytes += half;
        self.stats.allocations.inc();
        self.sink.count("oms.allocations", 1);
        Ok(big)
    }

    /// Allocation used internally while splitting: does not count the
    /// larger segment as "in use" (its halves are accounted separately).
    fn allocate_for_split(&mut self, class: SegmentClass) -> PoResult<MainMemAddr> {
        let idx = Self::class_idx(class);
        if let Some(&addr) = self.free[idx].iter().next() {
            self.free[idx].remove(&addr);
            return Ok(MainMemAddr::new(addr));
        }
        let larger = class.next_larger().ok_or(PoError::OverlayStoreExhausted)?;
        let big = self.allocate_for_split(larger)?;
        self.stats.splits.inc();
        let half = class.bytes() as u64;
        self.free[idx].insert(big.raw() + half);
        Ok(big)
    }

    /// Returns a segment to its class's free list.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on a double free or when the
    /// accounting would underflow; the store is left unchanged so the
    /// caller can report the corruption instead of compounding it.
    pub fn free(&mut self, base: MainMemAddr, class: SegmentClass) -> PoResult<()> {
        let idx = Self::class_idx(class);
        let bytes = class.bytes() as u64;
        let remaining = self
            .used_bytes
            .checked_sub(bytes)
            .ok_or(PoError::Corrupted("OMS free would underflow byte accounting"))?;
        if !self.free[idx].insert(base.raw()) {
            return Err(PoError::Corrupted("double free of OMS segment"));
        }
        self.used_bytes = remaining;
        self.stats.frees.inc();
        Ok(())
    }

    /// Bytes currently allocated to overlay segments — the memory-
    /// consumption metric for overlay-on-write (Figure 8).
    pub fn bytes_in_use(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes handed to the store by the OS.
    pub fn bytes_managed(&self) -> u64 {
        self.managed_bytes
    }

    /// Bytes sitting on free lists.
    pub fn bytes_free(&self) -> u64 {
        SegmentClass::ALL
            .iter()
            .enumerate()
            .map(|(i, c)| self.free[i].len() as u64 * c.bytes() as u64)
            .sum()
    }

    /// Free segments of one class (diagnostics).
    pub fn free_count(&self, class: SegmentClass) -> usize {
        self.free[Self::class_idx(class)].len()
    }

    /// How badly the free space is shattered across the small segment
    /// classes: `1 − (4 KB-class free bytes / total free bytes)`.
    ///
    /// `0.0` means every free byte sits on the 4 KB list (any request
    /// can be served by splitting); `1.0` means no whole page is free —
    /// a 4 KB allocation fails even though `bytes_free()` may exceed
    /// 4 KB many times over. Returns `0.0` when nothing is free (an
    /// empty free list is not fragmented, just exhausted).
    pub fn fragmentation_ratio(&self) -> f64 {
        let free = self.bytes_free();
        if free == 0 {
            return 0.0;
        }
        let k4 = self.free[Self::class_idx(SegmentClass::K4)].len() as u64
            * SegmentClass::K4.bytes() as u64;
        1.0 - k4 as f64 / free as f64
    }

    /// Merges free buddy pairs upward through the class ladder
    /// (`buddy = base XOR size`; chunks are 4 KB-aligned so the XOR rule
    /// is exact for every class below 4 KB). Returns the merge count.
    ///
    /// The paper's allocator never coalesces (§4.4.3 keeps the free
    /// lists flat); this runs only as part of a compaction pass
    /// (§4.4.2), which is why long churn without compaction strands
    /// bytes in the small classes.
    fn coalesce(&mut self) -> u64 {
        let mut merges = 0;
        for idx in 0..SegmentClass::ALL.len() - 1 {
            let size = SegmentClass::ALL[idx].bytes() as u64;
            // One ascending pass per class suffices: buddies are adjacent
            // in the sorted set, and a merge feeds the *next* class.
            let bases: Vec<u64> = self.free[idx].iter().copied().collect();
            let mut i = 0;
            while i + 1 < bases.len() {
                let lo = bases[i];
                if lo.is_multiple_of(2 * size) && bases[i + 1] == lo + size {
                    self.free[idx].remove(&lo);
                    self.free[idx].remove(&(lo + size));
                    self.free[idx + 1].insert(lo);
                    merges += 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        }
        merges
    }

    /// One live compaction pass (§4.4.2): coalesce free buddies, then
    /// relocate live segments — highest addresses first — into the
    /// lowest free slot of the same class, and coalesce again.
    ///
    /// `live` lists every allocated segment (base, class); the store
    /// has no segment-to-owner map, so the overlay manager supplies it.
    /// For each improving move the `relocate` hook must copy the
    /// segment bytes and atomically repoint the owner's OMT entry
    /// (shooting down cached copies); only after the hook returns `Ok`
    /// does the store free the old segment. A move that would not lower
    /// the segment's address is skipped (destination released), so the
    /// pass never ping-pongs.
    ///
    /// Crash semantics (DST): between the hook's `Ok` and the old
    /// segment's free lies the second [`CrashStage::MidCompaction`]
    /// window — if the armed crash fires there, the pass freezes with
    /// exactly one orphaned segment (old copy still allocated, OMT
    /// already repointed), which the refinement oracle admits. A
    /// [`PoError::Crashed`] from the hook itself (the first window:
    /// bytes copied, OMT not yet repointed) propagates the same way —
    /// nothing is rolled back, the orphan is the *new* segment.
    ///
    /// # Errors
    ///
    /// [`PoError::Crashed`] when an armed mid-compaction crash fires
    /// (state frozen, snapshot-restorable); [`PoError::Corrupted`] only
    /// if the store's own accounting is broken. A failed relocation
    /// copy is *not* an error: the pass aborts gracefully with
    /// [`CompactionOutcome::aborted`] set.
    pub fn compact(
        &mut self,
        live: &[(MainMemAddr, SegmentClass)],
        mut relocate: impl FnMut(MainMemAddr, MainMemAddr, SegmentClass) -> PoResult<()>,
    ) -> PoResult<CompactionOutcome> {
        self.stats.compaction_passes.inc();
        let mut outcome = CompactionOutcome { merges: self.coalesce(), ..Default::default() };
        let mut order: Vec<(u64, SegmentClass)> = live.iter().map(|&(a, c)| (a.raw(), c)).collect();
        order.sort_unstable_by_key(|&(base, _)| std::cmp::Reverse(base));
        for (old, class) in order {
            let new = match self.allocate(class) {
                Ok(n) => n,
                // Nothing free in this class or above — not a failure,
                // there is simply no slot to move into.
                Err(PoError::OverlayStoreExhausted) => continue,
                Err(e) => return Err(e),
            };
            if new.raw() >= old {
                self.free(new, class)?;
                continue;
            }
            match relocate(MainMemAddr::new(old), new, class) {
                Ok(()) => {
                    // OMT now points at `new`; `old` is the orphan until
                    // the free below lands. The second MidCompaction
                    // window (repoint done, old segment still allocated).
                    if self.faults.fire_crash(CrashStage::MidCompaction) {
                        self.stats.relocated_bytes.add(outcome.relocated_bytes);
                        return Err(PoError::Crashed(CrashStage::MidCompaction));
                    }
                    self.free(MainMemAddr::new(old), class)?;
                    outcome.moves += 1;
                    outcome.relocated_bytes += class.bytes() as u64;
                }
                // The hook froze inside its own window (bytes copied,
                // OMT untouched): propagate with nothing rolled back —
                // `new` stays allocated as the spec-legal orphan.
                Err(e @ PoError::Crashed(_)) => {
                    self.stats.relocated_bytes.add(outcome.relocated_bytes);
                    return Err(e);
                }
                // Copy failed (e.g. injected CompactionRelocationFailed):
                // release the destination and abort the pass cleanly.
                Err(_) => {
                    self.free(new, class)?;
                    outcome.aborted = true;
                    break;
                }
            }
        }
        outcome.merges += self.coalesce();
        self.stats.relocated_bytes.add(outcome.relocated_bytes);
        self.sink.count("oms.compaction_passes", 1);
        self.sink.count("oms.relocated_bytes", outcome.relocated_bytes);
        let (relocated_bytes, moves, aborted) =
            (outcome.relocated_bytes, outcome.moves, outcome.aborted);
        self.sink.emit(|| TelemetryEvent::Compaction { relocated_bytes, moves, aborted });
        Ok(outcome)
    }

    /// Invariant: every managed byte is either free or in use, exactly
    /// once. Checked by tests and property tests (DESIGN.md invariant 2).
    pub fn check_conservation(&self) -> PoResult<()> {
        if self.bytes_free() + self.bytes_in_use() == self.managed_bytes {
            Ok(())
        } else {
            Err(PoError::Corrupted("OMS byte conservation violated"))
        }
    }

    /// Structural self-check of the free lists:
    ///
    /// 1. byte conservation ([`OverlayMemoryStore::check_conservation`]);
    /// 2. free segments of all classes are pairwise disjoint spans;
    /// 3. every free span lies inside an OS-granted chunk.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] naming the violated invariant.
    pub fn verify_layout(&self) -> PoResult<()> {
        self.check_conservation()?;
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for (i, class) in SegmentClass::ALL.iter().enumerate() {
            for &base in &self.free[i] {
                spans.push((base, class.bytes() as u64));
            }
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].0 + w[0].1 > w[1].0 {
                return Err(PoError::Corrupted("OMS free lists overlap"));
            }
        }
        for &(base, len) in &spans {
            let inside = self.chunks.iter().any(|&(cb, cl)| base >= cb && base + len <= cb + cl);
            if !inside {
                return Err(PoError::Corrupted("OMS free segment outside granted chunks"));
            }
        }
        Ok(())
    }

    /// Serializes free lists (BTreeSets iterate sorted — byte-stable),
    /// byte accounting, chunk spans and stats. The fault injector is
    /// deliberately not serialized; the machine-level snapshot owns it.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        for set in &self.free {
            w.put_len(set.len());
            for &addr in set {
                w.put_u64(addr);
            }
        }
        w.put_u64(self.managed_bytes);
        w.put_u64(self.used_bytes);
        w.put_len(self.chunks.len());
        for &(base, bytes) in &self.chunks {
            w.put_u64(base);
            w.put_u64(bytes);
        }
        for c in [
            &self.stats.allocations,
            &self.stats.frees,
            &self.stats.splits,
            &self.stats.os_grants,
            &self.stats.compaction_passes,
            &self.stats.relocated_bytes,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a store from [`OverlayMemoryStore::encode_snapshot`]
    /// bytes, with an inert fault injector (reinstall via
    /// [`OverlayMemoryStore::set_fault_injector`]).
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on truncation or when the decoded free
    /// lists violate the store's structural invariants
    /// ([`OverlayMemoryStore::verify_layout`]).
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let mut store = Self::new();
        for set in &mut store.free {
            let n = r.get_len()?;
            for _ in 0..n {
                set.insert(r.get_u64()?);
            }
        }
        store.managed_bytes = r.get_u64()?;
        store.used_bytes = r.get_u64()?;
        let n = r.get_len()?;
        for _ in 0..n {
            let base = r.get_u64()?;
            let bytes = r.get_u64()?;
            store.chunks.push((base, bytes));
        }
        for c in [
            &mut store.stats.allocations,
            &mut store.stats.frees,
            &mut store.stats.splits,
            &mut store.stats.os_grants,
            &mut store.stats.compaction_passes,
            &mut store.stats.relocated_bytes,
        ] {
            c.add(r.get_u64()?);
        }
        store.verify_layout()?;
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(frames: u64) -> OverlayMemoryStore {
        let mut s = OverlayMemoryStore::new();
        s.add_chunk(MainMemAddr::new(0x100000), frames);
        s
    }

    #[test]
    fn empty_store_is_exhausted() {
        let mut s = OverlayMemoryStore::new();
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
    }

    #[test]
    fn allocate_splits_a_page_down_to_256b() {
        let mut s = store_with(1);
        let seg = s.allocate(SegmentClass::B256).unwrap();
        assert_eq!(seg.raw(), 0x100000);
        // Splits: 4K→2K→1K→512→256 = 4 splits.
        assert_eq!(s.stats().splits.get(), 4);
        // Buddies of every size are now free.
        assert_eq!(s.free_count(SegmentClass::B256), 1);
        assert_eq!(s.free_count(SegmentClass::B512), 1);
        assert_eq!(s.free_count(SegmentClass::K1), 1);
        assert_eq!(s.free_count(SegmentClass::K2), 1);
        assert_eq!(s.free_count(SegmentClass::K4), 0);
        s.check_conservation().unwrap();
        assert_eq!(s.bytes_in_use(), 256);
    }

    #[test]
    fn free_then_reallocate_reuses() {
        let mut s = store_with(1);
        let a = s.allocate(SegmentClass::B512).unwrap();
        s.free(a, SegmentClass::B512).unwrap();
        let b = s.allocate(SegmentClass::B512).unwrap();
        assert_eq!(a, b);
        s.check_conservation().unwrap();
    }

    #[test]
    fn exhaustion_reports_cleanly() {
        let mut s = store_with(1);
        let _a = s.allocate(SegmentClass::K4).unwrap();
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
        s.check_conservation().unwrap();
    }

    #[test]
    fn many_small_allocations_fill_the_page() {
        let mut s = store_with(1);
        let mut segs = Vec::new();
        for _ in 0..16 {
            segs.push(s.allocate(SegmentClass::B256).unwrap());
        }
        assert_eq!(s.allocate(SegmentClass::B256), Err(PoError::OverlayStoreExhausted));
        // All 16 segments are distinct and 256-byte aligned.
        let mut raws: Vec<u64> = segs.iter().map(|a| a.raw()).collect();
        raws.sort_unstable();
        raws.dedup();
        assert_eq!(raws.len(), 16);
        assert!(raws.iter().all(|r| r % 256 == 0));
        s.check_conservation().unwrap();
        // Free everything; the page is reusable as four 1K segments.
        for seg in segs {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        assert_eq!(s.bytes_in_use(), 0);
        s.check_conservation().unwrap();
    }

    #[test]
    fn growth_after_exhaustion() {
        let mut s = store_with(1);
        s.allocate(SegmentClass::K4).unwrap();
        assert!(s.allocate(SegmentClass::K4).is_err());
        s.add_chunk(MainMemAddr::new(0x200000), 2);
        assert!(s.allocate(SegmentClass::K4).is_ok());
        assert!(s.allocate(SegmentClass::K2).is_ok());
        s.check_conservation().unwrap();
        assert_eq!(s.stats().os_grants.get(), 2);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn chunk_must_be_aligned() {
        let mut s = OverlayMemoryStore::new();
        s.add_chunk(MainMemAddr::new(0x100), 1);
    }

    #[test]
    fn coalesce_restores_whole_pages() {
        let mut s = store_with(1);
        // Shatter the page into sixteen 256 B segments, free them all,
        // then compact with no live segments: the free lists must fold
        // back into one whole 4 KB page.
        let segs: Vec<_> = (0..16).map(|_| s.allocate(SegmentClass::B256).unwrap()).collect();
        for seg in segs {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        assert_eq!(s.free_count(SegmentClass::K4), 0);
        assert!(s.fragmentation_ratio() > 0.99);
        let out = s.compact(&[], |_, _, _| Ok(())).unwrap();
        assert_eq!(out.moves, 0);
        assert_eq!(out.merges, 8 + 4 + 2 + 1);
        assert_eq!(s.free_count(SegmentClass::K4), 1);
        assert_eq!(s.fragmentation_ratio(), 0.0);
        s.verify_layout().unwrap();
    }

    #[test]
    fn compact_relocates_straggler_downward() {
        let mut s = store_with(2);
        // Fill both pages with 256 B segments, then free all but the
        // very last one: a classic straggler pinning the second page.
        let segs: Vec<_> = (0..32).map(|_| s.allocate(SegmentClass::B256).unwrap()).collect();
        let last = *segs.last().unwrap();
        for &seg in &segs[..31] {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        assert_eq!(s.allocate(SegmentClass::K4), Err(PoError::OverlayStoreExhausted));
        let mut moved = Vec::new();
        let out = s
            .compact(&[(last, SegmentClass::B256)], |old, new, class| {
                moved.push((old, new, class));
                Ok(())
            })
            .unwrap();
        assert_eq!(out.moves, 1);
        assert_eq!(out.relocated_bytes, 256);
        assert!(!out.aborted);
        assert_eq!(moved.len(), 1);
        assert!(moved[0].1.raw() < moved[0].0.raw(), "relocation must lower the address");
        // The straggler now lives in the first page; a whole page frees up.
        assert!(s.allocate(SegmentClass::K4).is_ok());
        s.verify_layout().unwrap();
        assert_eq!(s.bytes_in_use(), 256 + 4096);
    }

    #[test]
    fn compact_skips_non_improving_moves() {
        let mut s = store_with(1);
        let a = s.allocate(SegmentClass::B256).unwrap();
        // `a` is already the lowest address; compaction must not move it.
        let out = s.compact(&[(a, SegmentClass::B256)], |_, _, _| panic!("no move")).unwrap();
        assert_eq!(out.moves, 0);
        s.verify_layout().unwrap();
    }

    #[test]
    fn failed_relocation_aborts_cleanly() {
        let mut s = store_with(2);
        let segs: Vec<_> = (0..32).map(|_| s.allocate(SegmentClass::B256).unwrap()).collect();
        let last = *segs.last().unwrap();
        for &seg in &segs[..31] {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        let before_used = s.bytes_in_use();
        let out = s
            .compact(&[(last, SegmentClass::B256)], |_, _, _| {
                Err(PoError::Corrupted("injected copy failure"))
            })
            .unwrap();
        assert!(out.aborted);
        assert_eq!(out.moves, 0);
        // Destination released, straggler untouched, store consistent.
        assert_eq!(s.bytes_in_use(), before_used);
        s.verify_layout().unwrap();
        // A retry with a working copy succeeds.
        let out = s.compact(&[(last, SegmentClass::B256)], |_, _, _| Ok(())).unwrap();
        assert_eq!(out.moves, 1);
        s.verify_layout().unwrap();
    }

    #[test]
    fn mid_compaction_crash_freezes_one_orphan() {
        use po_types::{FaultPlan, FaultSite};
        let mut s = store_with(2);
        let segs: Vec<_> = (0..32).map(|_| s.allocate(SegmentClass::B256).unwrap()).collect();
        let last = *segs.last().unwrap();
        for &seg in &segs[..31] {
            s.free(seg, SegmentClass::B256).unwrap();
        }
        s.set_fault_injector(FaultInjector::from_plan(
            FaultPlan::new(7)
                .at_queries(FaultSite::CrashPoint, [0])
                .with_crash_stage(CrashStage::MidCompaction),
        ));
        let before_used = s.bytes_in_use();
        let err = s.compact(&[(last, SegmentClass::B256)], |_, _, _| Ok(())).unwrap_err();
        assert_eq!(err, PoError::Crashed(CrashStage::MidCompaction));
        // Window 2: OMT repointed (hook ran), old segment not yet freed —
        // exactly one extra live segment, conservation still holds.
        assert_eq!(s.bytes_in_use(), before_used + 256);
        s.verify_layout().unwrap();
    }

    #[test]
    fn mixed_sizes_conserve_bytes() {
        let mut s = store_with(4);
        let a = s.allocate(SegmentClass::K1).unwrap();
        let b = s.allocate(SegmentClass::B256).unwrap();
        let c = s.allocate(SegmentClass::K2).unwrap();
        s.check_conservation().unwrap();
        assert_eq!(s.bytes_in_use(), 1024 + 256 + 2048);
        s.free(b, SegmentClass::B256).unwrap();
        s.free(a, SegmentClass::K1).unwrap();
        s.free(c, SegmentClass::K2).unwrap();
        assert_eq!(s.bytes_in_use(), 0);
        s.check_conservation().unwrap();
    }
}
