//! The Overlay Mapping Table (OMT, §4.2 / §4.4.4).
//!
//! Maps each overlay page (OPN) to: the page's **OBitVector** and the
//! location of its overlay in the Overlay Memory Store (segment base,
//! class, and the segment's metadata line). The paper stores the OMT
//! hierarchically in main memory, walked by the memory controller on an
//! OMT-cache miss; the walk cost is charged by the timing layer
//! ([`crate::OverlayConfig::omt_walk_latency`]).

use crate::segment::{SegmentClass, SegmentMeta};
use po_types::geometry::LINE_SIZE;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{MainMemAddr, OBitVector, Opn, PoError, PoResult};
use std::collections::HashMap;

/// Where an overlay lives in the OMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentRef {
    /// Base address of the segment in main memory (`OMSaddr`).
    pub base: MainMemAddr,
    /// Segment size class.
    pub class: SegmentClass,
    /// The segment's metadata line (slot pointers + free vector).
    pub meta: SegmentMeta,
}

/// One OMT entry (Figure 6: `OBitVector` + `OMSaddr` + segment metadata).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmtEntry {
    /// Which lines of the page are in the overlay.
    pub obitvec: OBitVector,
    /// The overlay's OMS segment; `None` until the first dirty overlay
    /// line is evicted (allocation is lazy, §4.3.3).
    pub segment: Option<SegmentRef>,
}

impl OmtEntry {
    /// A fresh entry for a newly created overlay: empty vector, no
    /// segment.
    pub fn empty() -> Self {
        Self { obitvec: OBitVector::EMPTY, segment: None }
    }
}

/// The table itself. Functionally a map OPN → entry; the hierarchical
/// radix layout of the in-memory table only affects the (constant) walk
/// cost, which the timing layer charges.
#[derive(Clone, Debug, Default)]
pub struct Omt {
    entries: HashMap<Opn, OmtEntry>,
}

impl Omt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an entry.
    pub fn get(&self, opn: Opn) -> Option<&OmtEntry> {
        self.entries.get(&opn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, opn: Opn) -> Option<&mut OmtEntry> {
        self.entries.get_mut(&opn)
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, opn: Opn, entry: OmtEntry) {
        self.entries.insert(opn, entry);
    }

    /// Removes an entry (overlay destroyed).
    pub fn remove(&mut self, opn: Opn) -> Option<OmtEntry> {
        self.entries.remove(&opn)
    }

    /// Number of pages that currently have overlays.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no page has an overlay.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(opn, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Opn, &OmtEntry)> {
        self.entries.iter()
    }

    /// Serializes every entry in ascending OPN order (byte-stable
    /// regardless of hash-map iteration order). Segment metadata reuses
    /// the in-memory line encoding of [`SegmentMeta::encode`].
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        let mut opns: Vec<Opn> = self.entries.keys().copied().collect();
        opns.sort_unstable_by_key(|o| o.raw());
        w.put_len(opns.len());
        for opn in opns {
            let e = &self.entries[&opn];
            w.put_u64(opn.raw());
            w.put_u64(e.obitvec.raw());
            match e.segment {
                None => w.put_bool(false),
                Some(seg) => {
                    w.put_bool(true);
                    // Statically infallible: ALL enumerates every class.
                    let tag = SegmentClass::ALL
                        .iter()
                        .position(|&c| c == seg.class)
                        .expect("member of ALL");
                    w.put_u8(tag as u8);
                    w.put_u64(seg.base.raw());
                    w.put_bytes(&seg.meta.encode());
                }
            }
        }
    }

    /// Rebuilds a table from [`Omt::encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on truncation or an unknown segment class.
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let n = r.get_len()?;
        let mut entries = HashMap::with_capacity(n);
        for _ in 0..n {
            let opn = Opn::from_raw(r.get_u64()?);
            let obitvec = OBitVector::from_raw(r.get_u64()?);
            let segment = if r.get_bool()? {
                let tag = r.get_u8()? as usize;
                let class = *SegmentClass::ALL
                    .get(tag)
                    .ok_or(PoError::Corrupted("snapshot segment class tag unknown"))?;
                let base = MainMemAddr::new(r.get_u64()?);
                let mut line = [0u8; LINE_SIZE];
                line.copy_from_slice(r.get_bytes(LINE_SIZE)?);
                Some(SegmentRef { base, class, meta: SegmentMeta::decode(class, &line) })
            } else {
                None
            };
            entries.insert(opn, OmtEntry { obitvec, segment });
        }
        Ok(Self { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::{Asid, Vpn};

    fn opn(v: u64) -> Opn {
        Opn::encode(Asid::new(1), Vpn::new(v))
    }

    #[test]
    fn insert_get_remove() {
        let mut omt = Omt::new();
        assert!(omt.is_empty());
        omt.insert(opn(1), OmtEntry::empty());
        assert_eq!(omt.len(), 1);
        assert!(omt.get(opn(1)).unwrap().obitvec.is_empty());
        assert!(omt.get(opn(2)).is_none());
        assert!(omt.remove(opn(1)).is_some());
        assert!(omt.is_empty());
    }

    #[test]
    fn entry_mutation_sticks() {
        let mut omt = Omt::new();
        omt.insert(opn(3), OmtEntry::empty());
        omt.get_mut(opn(3)).unwrap().obitvec.set(7);
        assert!(omt.get(opn(3)).unwrap().obitvec.contains(7));
    }

    #[test]
    fn fresh_entry_has_no_segment() {
        let e = OmtEntry::empty();
        assert!(e.segment.is_none());
        assert!(e.obitvec.is_empty());
    }
}
