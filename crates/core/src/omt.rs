//! The Overlay Mapping Table (OMT, §4.2 / §4.4.4).
//!
//! Maps each overlay page (OPN) to: the page's **OBitVector** and the
//! location of its overlay in the Overlay Memory Store (segment base,
//! class, and the segment's metadata line). The paper stores the OMT
//! hierarchically in main memory, walked by the memory controller on an
//! OMT-cache miss; the walk cost is charged by the timing layer
//! ([`crate::OverlayConfig::omt_walk_latency`]).

use crate::segment::{SegmentClass, SegmentMeta};
use po_types::{MainMemAddr, OBitVector, Opn};
use std::collections::HashMap;

/// Where an overlay lives in the OMS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentRef {
    /// Base address of the segment in main memory (`OMSaddr`).
    pub base: MainMemAddr,
    /// Segment size class.
    pub class: SegmentClass,
    /// The segment's metadata line (slot pointers + free vector).
    pub meta: SegmentMeta,
}

/// One OMT entry (Figure 6: `OBitVector` + `OMSaddr` + segment metadata).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OmtEntry {
    /// Which lines of the page are in the overlay.
    pub obitvec: OBitVector,
    /// The overlay's OMS segment; `None` until the first dirty overlay
    /// line is evicted (allocation is lazy, §4.3.3).
    pub segment: Option<SegmentRef>,
}

impl OmtEntry {
    /// A fresh entry for a newly created overlay: empty vector, no
    /// segment.
    pub fn empty() -> Self {
        Self { obitvec: OBitVector::EMPTY, segment: None }
    }
}

/// The table itself. Functionally a map OPN → entry; the hierarchical
/// radix layout of the in-memory table only affects the (constant) walk
/// cost, which the timing layer charges.
#[derive(Clone, Debug, Default)]
pub struct Omt {
    entries: HashMap<Opn, OmtEntry>,
}

impl Omt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an entry.
    pub fn get(&self, opn: Opn) -> Option<&OmtEntry> {
        self.entries.get(&opn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, opn: Opn) -> Option<&mut OmtEntry> {
        self.entries.get_mut(&opn)
    }

    /// Inserts or replaces an entry.
    pub fn insert(&mut self, opn: Opn, entry: OmtEntry) {
        self.entries.insert(opn, entry);
    }

    /// Removes an entry (overlay destroyed).
    pub fn remove(&mut self, opn: Opn) -> Option<OmtEntry> {
        self.entries.remove(&opn)
    }

    /// Number of pages that currently have overlays.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no page has an overlay.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all `(opn, entry)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Opn, &OmtEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::{Asid, Vpn};

    fn opn(v: u64) -> Opn {
        Opn::encode(Asid::new(1), Vpn::new(v))
    }

    #[test]
    fn insert_get_remove() {
        let mut omt = Omt::new();
        assert!(omt.is_empty());
        omt.insert(opn(1), OmtEntry::empty());
        assert_eq!(omt.len(), 1);
        assert!(omt.get(opn(1)).unwrap().obitvec.is_empty());
        assert!(omt.get(opn(2)).is_none());
        assert!(omt.remove(opn(1)).is_some());
        assert!(omt.is_empty());
    }

    #[test]
    fn entry_mutation_sticks() {
        let mut omt = Omt::new();
        omt.insert(opn(3), OmtEntry::empty());
        omt.get_mut(opn(3)).unwrap().obitvec.set(7);
        assert!(omt.get(opn(3)).unwrap().obitvec.contains(7));
    }

    #[test]
    fn fresh_entry_has_no_segment() {
        let e = OmtEntry::empty();
        assert!(e.segment.is_none());
        assert!(e.obitvec.is_empty());
    }
}
