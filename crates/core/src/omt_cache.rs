//! The OMT cache at the memory controller (§4.4.4, Figure 6 Ë).
//!
//! Caches recently used OMT entries (OBitVector, OMSaddr, segment
//! metadata). Accessed only when an overlay-space request misses the
//! entire cache hierarchy, so a small (64-entry, Table 2) fully
//! associative structure suffices. The authoritative entry data lives in
//! [`crate::Omt`]; this model tracks which OPNs are cached, LRU
//! recency, dirtiness (entries modified by the controller are written
//! back on eviction) and hit/miss statistics — everything the timing and
//! cost models need.

use po_telemetry::TelemetrySink;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{Counter, Opn, PoError, PoResult};

/// OMT-cache statistics.
#[derive(Clone, Debug, Default)]
pub struct OmtCacheStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses (each costs an OMT walk).
    pub misses: Counter,
    /// Dirty entries written back to the in-memory OMT on eviction.
    pub writebacks: Counter,
}

impl OmtCacheStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        po_types::stats::ratio(self.hits.get(), self.hits.get() + self.misses.get())
    }
}

#[derive(Clone, Copy, Debug)]
struct Slot {
    opn: Opn,
    dirty: bool,
    last_used: u64,
}

/// The 64-entry OMT cache.
///
/// # Example
///
/// ```
/// use po_overlay::OmtCache;
/// use po_types::{Asid, Opn, Vpn};
///
/// let mut cache = OmtCache::new(64);
/// let opn = Opn::encode(Asid::new(1), Vpn::new(7));
/// assert!(!cache.access(opn, false)); // cold miss
/// assert!(cache.access(opn, false));  // now cached
/// ```
#[derive(Clone, Debug)]
pub struct OmtCache {
    capacity: usize,
    slots: Vec<Slot>,
    tick: u64,
    stats: OmtCacheStats,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl OmtCache {
    /// Creates an empty cache of `capacity` entries (Table 2: 64).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "OMT cache needs at least one entry");
        Self {
            capacity,
            slots: Vec::new(),
            tick: 0,
            stats: OmtCacheStats::default(),
            sink: TelemetrySink::noop(),
        }
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Returns statistics.
    pub fn stats(&self) -> &OmtCacheStats {
        &self.stats
    }

    /// Looks up `opn`, inserting it on a miss (the controller always
    /// walks and fills). `modify` marks the cached entry dirty (the
    /// controller updated the OBitVector or segment metadata). Returns
    /// `true` on a hit.
    pub fn access(&mut self, opn: Opn, modify: bool) -> bool {
        self.tick += 1;
        if let Some(slot) = self.slots.iter_mut().find(|s| s.opn == opn) {
            slot.last_used = self.tick;
            slot.dirty |= modify;
            self.stats.hits.inc();
            self.sink.count("omt_cache.hits", 1);
            return true;
        }
        self.stats.misses.inc();
        self.sink.count("omt_cache.misses", 1);
        let new = Slot { opn, dirty: modify, last_used: self.tick };
        if self.slots.len() < self.capacity {
            self.slots.push(new);
        } else {
            // Statically infallible: this branch means slots.len() >=
            // capacity, and new() asserts capacity > 0.
            let victim = self.slots.iter_mut().min_by_key(|s| s.last_used).expect("capacity > 0");
            if victim.dirty {
                self.stats.writebacks.inc();
            }
            *victim = new;
        }
        false
    }

    /// Drops `opn` from the cache (overlay destroyed); counts a
    /// writeback if the entry was dirty.
    pub fn invalidate(&mut self, opn: Opn) {
        if let Some(pos) = self.slots.iter().position(|s| s.opn == opn) {
            if self.slots[pos].dirty {
                self.stats.writebacks.inc();
            }
            self.slots.swap_remove(pos);
        }
    }

    /// Whether `opn` is currently cached (no state change).
    pub fn contains(&self, opn: Opn) -> bool {
        self.slots.iter().any(|s| s.opn == opn)
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Serializes the slot table (in table order), the LRU tick and
    /// stats. The capacity is configuration, not state, and is not
    /// re-encoded.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.tick);
        w.put_len(self.slots.len());
        for s in &self.slots {
            w.put_u64(s.opn.raw());
            w.put_bool(s.dirty);
            w.put_u64(s.last_used);
        }
        for c in [&self.stats.hits, &self.stats.misses, &self.stats.writebacks] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a cache of `capacity` entries from
    /// [`OmtCache::encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on truncation or an oversized slot table.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (as [`OmtCache::new`] does).
    pub fn decode_snapshot(capacity: usize, r: &mut SnapshotReader) -> PoResult<Self> {
        let mut cache = Self::new(capacity);
        cache.tick = r.get_u64()?;
        let n = r.get_len()?;
        if n > capacity {
            return Err(PoError::Corrupted("snapshot OMT-cache slots exceed capacity"));
        }
        for _ in 0..n {
            let opn = Opn::from_raw(r.get_u64()?);
            let dirty = r.get_bool()?;
            let last_used = r.get_u64()?;
            cache.slots.push(Slot { opn, dirty, last_used });
        }
        for c in [&mut cache.stats.hits, &mut cache.stats.misses, &mut cache.stats.writebacks] {
            c.add(r.get_u64()?);
        }
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::{Asid, Vpn};

    fn opn(v: u64) -> Opn {
        Opn::encode(Asid::new(1), Vpn::new(v))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = OmtCache::new(4);
        assert!(!c.access(opn(1), false));
        assert!(c.access(opn(1), false));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn lru_eviction() {
        let mut c = OmtCache::new(2);
        c.access(opn(1), false);
        c.access(opn(2), false);
        c.access(opn(1), false); // 2 is now LRU
        c.access(opn(3), false); // evicts 2
        assert!(c.contains(opn(1)));
        assert!(!c.contains(opn(2)));
        assert!(c.contains(opn(3)));
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = OmtCache::new(1);
        c.access(opn(1), true);
        c.access(opn(2), false); // evicts dirty 1
        assert_eq!(c.stats().writebacks.get(), 1);
        c.access(opn(3), false); // evicts clean 2
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn invalidate_removes_and_writes_back() {
        let mut c = OmtCache::new(4);
        c.access(opn(1), true);
        c.invalidate(opn(1));
        assert!(!c.contains(opn(1)));
        assert_eq!(c.stats().writebacks.get(), 1);
        c.invalidate(opn(9)); // absent: no-op
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn hit_rate_reflects_locality() {
        let mut c = OmtCache::new(64);
        for _ in 0..10 {
            for v in 0..8 {
                c.access(opn(v), false);
            }
        }
        assert!(c.stats().hit_rate() > 0.85);
    }
}
