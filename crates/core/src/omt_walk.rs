//! The hierarchical, memory-resident Overlay Mapping Table (§4.4.4).
//!
//! "To reduce the storage cost of the OMT, we store it hierarchically,
//! similar to the virtual-to-physical mapping tables. The memory
//! controller maintains the root address of the hierarchical table in a
//! register." On an OMT-cache miss the controller performs an *OMT
//! walk* — a pointer chase through table nodes in main memory — exactly
//! like a page-table walk.
//!
//! [`HierarchicalOmt`] realizes that structure against the functional
//! [`DataStore`]: 4 radix levels of 13 bits each cover the 52-bit
//! overlay-page-number space; interior nodes are 4 KB frames of 8-byte
//! child pointers (512 per frame × 8 frames... one level-13 node spans
//! two frames, so nodes are allocated as 16 KB node groups — see
//! [`HierarchicalOmt::LEVEL_BITS`]); leaves hold the packed 512-bit OMT
//! entries (OBitVector, OMS address, segment class, metadata line).
//!
//! The flat [`crate::Omt`] map remains the manager's operational
//! structure (it is what the OMT cache fronts); this module provides the
//! in-memory realization, a walk that counts its true memory accesses,
//! and equivalence tests — demonstrating that the 1000-cycle walk charge
//! of Table 2 corresponds to a 4-level pointer chase plus the entry
//! read.

use crate::omt::{OmtEntry, SegmentRef};
use crate::segment::{SegmentClass, SegmentMeta};
use po_dram::DataStore;
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{Counter, MainMemAddr, OBitVector, Opn, PoResult};

/// Walk statistics.
#[derive(Clone, Debug, Default)]
pub struct OmtWalkStats {
    /// Walks performed.
    pub walks: Counter,
    /// Memory line accesses during walks (pointer chases + entry reads).
    pub line_accesses: Counter,
    /// Table nodes allocated.
    pub nodes_allocated: Counter,
}

/// A packed OMT entry occupies two cache lines in the leaf node:
/// line 0: OBitVector (8 B) + OMSaddr (8 B) + class (8 B) + free vector
/// (8 B) + 32 B of slot pointers; line 1: the remaining slot pointers.
const ENTRY_BYTES: usize = 2 * LINE_SIZE;

/// The memory-resident hierarchical OMT.
#[derive(Debug)]
pub struct HierarchicalOmt {
    /// Register holding the root node's frame address.
    root: MainMemAddr,
    /// Next free frame for table nodes (the OS grants the controller
    /// frames for the OMT just as it does for the OMS).
    next_frame: u64,
    stats: OmtWalkStats,
}

impl HierarchicalOmt {
    /// Radix bits consumed per level. Leaves store 32 entries of 128 B
    /// per 4 KB frame (5 bits); interior nodes store 512 pointers
    /// (9 bits): levels are 9/9/9/5 over the low 32 bits of the OPN's
    /// VPN portion, with the upper bits folded into the root index.
    pub const LEVEL_BITS: [u32; 4] = [9, 9, 9, 5];

    /// Creates an empty table whose nodes are carved from frames starting
    /// at `frame_base`.
    pub fn new(frame_base: u64) -> Self {
        Self {
            root: MainMemAddr::new(frame_base * PAGE_SIZE as u64),
            next_frame: frame_base + 1,
            stats: OmtWalkStats::default(),
        }
    }

    /// Returns walk statistics.
    pub fn stats(&self) -> &OmtWalkStats {
        &self.stats
    }

    fn indices(opn: Opn) -> [usize; 4] {
        // The model folds the 52-bit OPN space into a 32-bit radix key
        // (mixing the upper bits in). A production table would simply use
        // more levels; at simulation-scale populations (thousands of
        // overlays) the fold is collision-free with overwhelming
        // probability and keeps the walk at the 4 levels the paper's
        // 1000-cycle charge implies.
        let key = opn.raw() ^ (opn.raw() >> 32).wrapping_mul(0x9E37_79B9);
        let mut out = [0usize; 4];
        let mut shift = 32;
        for (i, bits) in Self::LEVEL_BITS.iter().enumerate() {
            shift -= bits;
            out[i] = ((key >> shift) & ((1 << bits) - 1)) as usize;
        }
        out
    }

    fn read_u64(&mut self, mem: &DataStore, addr: MainMemAddr) -> u64 {
        self.stats.line_accesses.inc();
        let line = mem.read_line(addr.line_base());
        let off = addr.line_offset() & !7;
        let mut b = [0u8; 8];
        b.copy_from_slice(&line.as_bytes()[off..off + 8]);
        u64::from_le_bytes(b)
    }

    fn write_u64(&mut self, mem: &mut DataStore, addr: MainMemAddr, v: u64) {
        self.stats.line_accesses.inc();
        let mut line = mem.read_line(addr.line_base());
        let off = addr.line_offset() & !7;
        line.as_mut_bytes()[off..off + 8].copy_from_slice(&v.to_le_bytes());
        mem.write_line(addr.line_base(), line);
    }

    fn alloc_node(&mut self) -> MainMemAddr {
        let addr = MainMemAddr::new(self.next_frame * PAGE_SIZE as u64);
        self.next_frame += 1;
        self.stats.nodes_allocated.inc();
        addr
    }

    /// Descends to the leaf slot for `opn`, allocating interior nodes on
    /// the way when `create` is set. Returns the byte address of the
    /// entry, or `None` when the path does not exist.
    fn slot_addr(&mut self, mem: &mut DataStore, opn: Opn, create: bool) -> Option<MainMemAddr> {
        let idx = Self::indices(opn);
        let mut node = self.root;
        for &i in idx.iter().take(3) {
            let ptr_addr = node.add((i * 8) as u64);
            let mut child = self.read_u64(mem, ptr_addr);
            if child == 0 {
                if !create {
                    return None;
                }
                let fresh = self.alloc_node();
                self.write_u64(mem, ptr_addr, fresh.raw());
                child = fresh.raw();
            }
            node = MainMemAddr::new(child);
        }
        Some(node.add((idx[3] * ENTRY_BYTES) as u64))
    }

    fn encode_entry(entry: &OmtEntry) -> [u8; ENTRY_BYTES] {
        let mut out = [0u8; ENTRY_BYTES];
        out[0..8].copy_from_slice(&entry.obitvec.raw().to_le_bytes());
        match entry.segment {
            Some(seg) => {
                out[8..16].copy_from_slice(&seg.base.raw().to_le_bytes());
                // Statically infallible: ALL enumerates every SegmentClass.
                let class_code = SegmentClass::ALL
                    .iter()
                    .position(|&c| c == seg.class)
                    .expect("class is a member") as u64
                    + 1; // 0 = "no segment"
                out[16..24].copy_from_slice(&class_code.to_le_bytes());
                let meta = seg.meta.encode();
                out[64..128].copy_from_slice(&meta);
            }
            None => {
                // class code 0 marks "no segment"; bytes already zero.
            }
        }
        // Presence marker so an all-zero leaf slot reads as "absent".
        out[24] = 1;
        out
    }

    fn decode_entry(bytes: &[u8; ENTRY_BYTES]) -> Option<OmtEntry> {
        if bytes[24] != 1 {
            return None;
        }
        let mut b8 = [0u8; 8];
        b8.copy_from_slice(&bytes[0..8]);
        let obitvec = OBitVector::from_raw(u64::from_le_bytes(b8));
        b8.copy_from_slice(&bytes[16..24]);
        let class_code = u64::from_le_bytes(b8);
        let segment = if class_code == 0 {
            None
        } else {
            let class = SegmentClass::ALL[(class_code - 1) as usize];
            b8.copy_from_slice(&bytes[8..16]);
            let base = MainMemAddr::new(u64::from_le_bytes(b8));
            let mut meta_line = [0u8; LINE_SIZE];
            meta_line.copy_from_slice(&bytes[64..128]);
            Some(SegmentRef { base, class, meta: SegmentMeta::decode(class, &meta_line) })
        };
        Some(OmtEntry { obitvec, segment })
    }

    /// Writes `entry` for `opn` (the controller's writeback of a dirty
    /// OMT-cache entry).
    ///
    /// # Errors
    ///
    /// Currently infallible (node allocation is unbounded in the model);
    /// kept fallible for configurations with table quotas.
    pub fn insert(&mut self, mem: &mut DataStore, opn: Opn, entry: &OmtEntry) -> PoResult<()> {
        // Statically infallible: slot_addr with create=true allocates
        // intermediate nodes on demand and always returns a slot.
        let slot = self.slot_addr(mem, opn, true).expect("create mode always yields a slot");
        let bytes = Self::encode_entry(entry);
        for (i, chunk) in bytes.chunks(LINE_SIZE).enumerate() {
            let mut line = [0u8; LINE_SIZE];
            line.copy_from_slice(chunk);
            mem.write_line(slot.add((i * LINE_SIZE) as u64), po_types::LineData::from_bytes(line));
            self.stats.line_accesses.inc();
        }
        Ok(())
    }

    /// Performs an OMT walk for `opn`, returning the entry if present and
    /// the number of memory line accesses the walk needed.
    pub fn walk(&mut self, mem: &mut DataStore, opn: Opn) -> (Option<OmtEntry>, u64) {
        self.stats.walks.inc();
        let before = self.stats.line_accesses.get();
        let result = match self.slot_addr(mem, opn, false) {
            None => None,
            Some(slot) => {
                let mut bytes = [0u8; ENTRY_BYTES];
                for i in 0..2 {
                    let line = mem.read_line(slot.add((i * LINE_SIZE) as u64));
                    bytes[i * LINE_SIZE..(i + 1) * LINE_SIZE].copy_from_slice(line.as_bytes());
                    self.stats.line_accesses.inc();
                }
                Self::decode_entry(&bytes)
            }
        };
        (result, self.stats.line_accesses.get() - before)
    }

    /// Removes the entry for `opn` (overlay destroyed). Interior nodes
    /// are not reclaimed (as with real page tables, teardown is lazy).
    pub fn remove(&mut self, mem: &mut DataStore, opn: Opn) {
        if let Some(slot) = self.slot_addr(mem, opn, false) {
            for i in 0..2 {
                mem.write_line(slot.add((i * LINE_SIZE) as u64), po_types::LineData::zeroed());
                self.stats.line_accesses.inc();
            }
        }
    }

    /// Frames consumed by table nodes (storage-cost accounting).
    pub fn table_bytes(&self) -> u64 {
        (self.next_frame * PAGE_SIZE as u64) - self.root.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omt::Omt;
    use po_types::{Asid, Vpn};

    fn opn(asid: u16, vpn: u64) -> Opn {
        Opn::encode(Asid::new(asid), Vpn::new(vpn))
    }

    fn sample_entry(bits: u64, with_seg: bool) -> OmtEntry {
        let mut e = OmtEntry::empty();
        e.obitvec = OBitVector::from_raw(bits);
        if with_seg {
            let mut meta = SegmentMeta::new(SegmentClass::K1);
            for l in OBitVector::from_raw(bits).iter().take(15) {
                meta.alloc_slot(l);
            }
            e.segment = Some(SegmentRef {
                base: MainMemAddr::new(0xAB00_0000),
                class: SegmentClass::K1,
                meta,
            });
        }
        e
    }

    #[test]
    fn insert_walk_roundtrip() {
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x10_0000);
        let o = opn(3, 0x1234);
        let entry = sample_entry(0b1011_0001, true);
        omt.insert(&mut mem, o, &entry).unwrap();
        let (got, accesses) = omt.walk(&mut mem, o);
        assert_eq!(got, Some(entry));
        // 3 pointer reads + 2 entry-line reads.
        assert_eq!(accesses, 5);
    }

    #[test]
    fn absent_paths_walk_short() {
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x10_0000);
        let (got, accesses) = omt.walk(&mut mem, opn(1, 99));
        assert_eq!(got, None);
        assert!(accesses <= 3, "absent walks stop at the first null pointer");
    }

    #[test]
    fn entry_without_segment_roundtrips() {
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x20_0000);
        let o = opn(1, 7);
        let entry = sample_entry(0xFF, false);
        omt.insert(&mut mem, o, &entry).unwrap();
        assert_eq!(omt.walk(&mut mem, o).0, Some(entry));
    }

    #[test]
    fn remove_makes_entry_absent() {
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x30_0000);
        let o = opn(2, 42);
        omt.insert(&mut mem, o, &sample_entry(1, true)).unwrap();
        omt.remove(&mut mem, o);
        assert_eq!(omt.walk(&mut mem, o).0, None);
    }

    #[test]
    fn matches_flat_omt_over_many_pages() {
        // Equivalence with the operational flat map across ASIDs and a
        // wide VPN spread (all radix levels exercised).
        let mut mem = DataStore::new();
        let mut hier = HierarchicalOmt::new(0x40_0000);
        let mut flat = Omt::new();
        let mut keys = Vec::new();
        for asid in [1u16, 9, 300] {
            for vpn in [0u64, 1, 511, 512, 4096, 1 << 20, (1 << 36) - 1] {
                let o = opn(asid, vpn);
                let e = sample_entry(vpn.wrapping_mul(0x5DEECE66D) | 1, vpn % 2 == 0);
                hier.insert(&mut mem, o, &e).unwrap();
                flat.insert(o, e);
                keys.push(o);
            }
        }
        for &o in &keys {
            assert_eq!(hier.walk(&mut mem, o).0.as_ref(), flat.get(o), "opn {o}");
        }
        // Distinct pages landed in distinct slots: removing one leaves
        // the rest intact.
        hier.remove(&mut mem, keys[0]);
        assert_eq!(hier.walk(&mut mem, keys[0]).0, None);
        for &o in &keys[1..] {
            assert_eq!(hier.walk(&mut mem, o).0.as_ref(), flat.get(o));
        }
    }

    #[test]
    fn walk_cost_justifies_table2_charge() {
        // A full walk is 3 pointer chases + 2 entry lines = 5 dependent
        // memory accesses; at ~100-200 cycles per dependent DRAM access
        // that is the order of Table 2's 1000-cycle OMT-walk charge.
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x50_0000);
        let o = opn(5, 123);
        omt.insert(&mut mem, o, &sample_entry(7, true)).unwrap();
        let (_, accesses) = omt.walk(&mut mem, o);
        assert_eq!(accesses, 5);
        let assumed_dram_latency = 200;
        assert!(accesses * assumed_dram_latency <= 1200);
    }

    #[test]
    fn table_storage_grows_with_population() {
        let mut mem = DataStore::new();
        let mut omt = HierarchicalOmt::new(0x60_0000);
        let before = omt.table_bytes();
        for vpn in 0..64u64 {
            omt.insert(&mut mem, opn(1, vpn * 1_000_000), &sample_entry(1, false)).unwrap();
        }
        assert!(omt.table_bytes() > before);
        assert_eq!(
            omt.stats().nodes_allocated.get() * PAGE_SIZE as u64 + PAGE_SIZE as u64,
            omt.table_bytes()
        );
    }
}
