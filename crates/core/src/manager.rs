//! The overlay manager: create / overlaying-write / read / evict /
//! promote (§4.3–§4.4).
//!
//! This is the functional state machine of the framework. The memory
//! controller and OS talk to it; `po-sim` layers Table 2 timing on top.
//!
//! Lazy allocation: an overlaying write only flips the OBitVector bit
//! and leaves the written line dirty *in the cache hierarchy* (modeled
//! by the `resident` map). Overlay Memory Store space is allocated when
//! the dirty line is evicted — "unlike copy-on-write, which must
//! allocate memory before the write operation, our mechanism allocates
//! memory space lazily upon the eviction of the dirty overlay cache
//! line" (§4.3.3).

use crate::omt::{Omt, OmtEntry, SegmentRef};
use crate::omt_cache::OmtCache;
use crate::segment::{SegmentClass, SegmentMeta};
use crate::store::OverlayMemoryStore;
use po_dram::DataStore;
use po_telemetry::{Event as TelemetryEvent, TelemetrySink};
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{
    Counter, CrashStage, FaultInjector, FaultSite, LineData, MainMemAddr, OBitVector, Opn, PoError,
    PoResult,
};
use std::collections::HashMap;

/// Framework configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OverlayConfig {
    /// OMT-cache entries at the memory controller (Table 2: 64).
    pub omt_cache_entries: usize,
    /// Latency of an OMT walk on an OMT-cache miss, in cycles (Table 2:
    /// 1000).
    pub omt_walk_latency: u64,
    /// 4 KB frames requested from the OS per OMS grow (§4.4.3).
    pub oms_chunk_frames: u64,
    /// Smallest segment class the store may use. The default (256 B)
    /// enables the full fine-grained set of §4.4.2; setting
    /// [`SegmentClass::K4`] models the simpler controller of §4.4 that
    /// "uses a full physical page to store each overlay", forgoing the
    /// memory-capacity benefit (ablation knob).
    pub min_segment_class: SegmentClass,
}

impl Default for OverlayConfig {
    fn default() -> Self {
        Self {
            omt_cache_entries: 64,
            omt_walk_latency: 1000,
            oms_chunk_frames: 64,
            min_segment_class: SegmentClass::B256,
        }
    }
}

/// Framework statistics.
#[derive(Clone, Debug, Default)]
pub struct OverlayStats {
    /// Overlays created.
    pub overlays_created: Counter,
    /// Overlaying writes (line remapped into the overlay).
    pub overlaying_writes: Counter,
    /// Simple writes to lines already in an overlay.
    pub simple_writes: Counter,
    /// Dirty overlay lines evicted into the OMS.
    pub evictions: Counter,
    /// Segments allocated (lazily).
    pub segment_allocs: Counter,
    /// Overlays migrated to a larger segment.
    pub migrations: Counter,
    /// Commit promotions.
    pub commits: Counter,
    /// Copy-and-commit promotions.
    pub copy_commits: Counter,
    /// Discard promotions.
    pub discards: Counter,
    /// Overlays collapsed back into physical pages under memory
    /// pressure ([`OverlayManager::collapse_overlay`]).
    pub reclaims: Counter,
    /// OMS bytes recovered by those collapses.
    pub reclaim_freed_bytes: Counter,
    /// Allocation attempts retried after reclaim or a transient fault.
    pub alloc_retries: Counter,
    /// Faults injected across all sites (synced from the
    /// [`FaultInjector`] by [`OverlayManager::sync_injected_faults`]).
    pub injected_faults: Counter,
}

/// What an eviction had to do (timing hooks for `po-sim`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictOutcome {
    /// A segment was allocated for this overlay.
    pub allocated_segment: bool,
    /// The overlay migrated to a larger segment (its lines were moved).
    pub migrated: bool,
    /// Lines rewritten by the migration (read-modify-write volume).
    pub lines_moved: usize,
    /// The OS was asked to grow the OMS.
    pub grew_store: bool,
}

/// Closure type used to obtain OMS chunks from the OS: called with a
/// frame count, returns the page-aligned base of a fresh chunk.
pub type GrantFn<'a> = dyn FnMut(u64) -> PoResult<MainMemAddr> + 'a;

/// The overlay manager. See the [crate docs](crate) for an example.
#[derive(Debug, Default)]
pub struct OverlayManager {
    config: OverlayConfig,
    omt: Omt,
    omt_cache: OmtCache,
    store: OverlayMemoryStore,
    /// Dirty overlay lines still in the cache hierarchy (written, not yet
    /// evicted): the lazy-allocation window.
    resident: HashMap<(Opn, usize), LineData>,
    stats: OverlayStats,
    faults: FaultInjector,
    /// Deliberately-injected bug for the refinement-oracle canary
    /// (DESIGN.md §13): when armed, the next overlay destroy skips its
    /// OMS free, orphaning the segment. Never serialized.
    inject_oms_leak: bool,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl Default for OmtCache {
    fn default() -> Self {
        OmtCache::new(OverlayConfig::default().omt_cache_entries)
    }
}

impl OverlayManager {
    /// Creates a manager with an empty OMS (grow it before evictions, or
    /// let [`OverlayManager::evict_line`] grow on demand).
    pub fn new(config: OverlayConfig) -> Self {
        let omt_cache = OmtCache::new(config.omt_cache_entries);
        Self {
            config,
            omt: Omt::new(),
            omt_cache,
            store: OverlayMemoryStore::new(),
            resident: HashMap::new(),
            stats: OverlayStats::default(),
            faults: FaultInjector::none(),
            inject_oms_leak: false,
            sink: TelemetrySink::noop(),
        }
    }

    /// Arms the canary bug: the next destroy with a live segment skips
    /// its OMS free (one-shot). Exists so the refinement oracle can be
    /// shown to catch a real accounting bug; never set in production
    /// paths.
    pub fn set_inject_oms_leak(&mut self, armed: bool) {
        self.inject_oms_leak = armed;
    }

    /// Installs a fault injector, shared with the OMS.
    /// [`FaultSite::OmtCacheCorruption`] is honored here;
    /// [`FaultSite::OmsAllocFailed`] in the store.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.store.set_fault_injector(faults.clone());
        self.faults = faults;
    }

    /// Installs the telemetry sink, shared with the OMS and the OMT
    /// cache (a clone of the machine's sink).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.store.set_telemetry(sink.clone());
        self.omt_cache.set_telemetry(sink.clone());
        self.sink = sink;
    }

    /// Copies the injector-wide total of injected faults into
    /// [`OverlayStats::injected_faults`]. All layers share one injector,
    /// so this snapshot covers OS, DRAM, store and manager sites.
    pub fn sync_injected_faults(&mut self) {
        self.stats.injected_faults.reset();
        self.stats.injected_faults.add(self.faults.total_injected());
    }

    /// Records one allocation retry (called by the reclaim orchestration
    /// in `po-sim` when it re-attempts after freeing memory).
    pub fn note_alloc_retry(&mut self) {
        self.stats.alloc_retries.inc();
    }

    /// Returns the configuration.
    pub fn config(&self) -> &OverlayConfig {
        &self.config
    }

    /// Returns statistics.
    pub fn stats(&self) -> &OverlayStats {
        &self.stats
    }

    /// Returns the OMS (memory accounting, invariants).
    pub fn store(&self) -> &OverlayMemoryStore {
        &self.store
    }

    /// Returns the OMT cache (timing/statistics).
    pub fn omt_cache(&self) -> &OmtCache {
        &self.omt_cache
    }

    /// Returns the OMT (inspection in tests).
    pub fn omt(&self) -> &Omt {
        &self.omt
    }

    /// Asks the OS for one chunk of OMS pages.
    ///
    /// # Errors
    ///
    /// Propagates the grant failure.
    pub fn grow_store(&mut self, grant: &mut GrantFn<'_>) -> PoResult<()> {
        let frames = self.config.oms_chunk_frames;
        let base = grant(frames)?;
        self.store.add_chunk(base, frames);
        Ok(())
    }

    /// Creates an (empty) overlay for `opn`. Idempotent.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `PoResult` for forward compatibility
    /// with quota-limited configurations.
    pub fn create_overlay(&mut self, opn: Opn) -> PoResult<()> {
        if self.omt.get(opn).is_none() {
            self.omt.insert(opn, OmtEntry::empty());
            self.stats.overlays_created.inc();
        }
        Ok(())
    }

    /// Whether `opn` has an overlay.
    pub fn has_overlay(&self, opn: Opn) -> bool {
        self.omt.get(opn).is_some()
    }

    /// The page's OBitVector.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay.
    pub fn obitvec(&self, opn: Opn) -> PoResult<OBitVector> {
        Ok(self.omt.get(opn).ok_or(PoError::NoOverlay(opn))?.obitvec)
    }

    /// Performs an **overlaying write** (§4.3.3): remaps `line` into the
    /// overlay with `data` as its new contents. Creates the overlay if
    /// needed. The data stays cache-resident (dirty) until evicted.
    ///
    /// # Errors
    ///
    /// Propagates overlay-creation failures.
    pub fn overlaying_write(&mut self, opn: Opn, line: usize, data: LineData) -> PoResult<()> {
        self.create_overlay(opn)?;
        // Statically infallible: create_overlay inserted the entry above.
        let entry = self.omt.get_mut(opn).expect("entry inserted by create_overlay");
        if entry.obitvec.contains(line) {
            // Already remapped: this is just a simple write.
            self.stats.simple_writes.inc();
            self.sink.count("overlay.simple_writes", 1);
        } else {
            entry.obitvec.set(line);
            self.stats.overlaying_writes.inc();
            self.sink.count("overlay.overlaying_writes", 1);
            self.sink.emit(|| TelemetryEvent::OverlayingWrite { opn: opn.raw(), line: line as u8 });
        }
        self.resident.insert((opn, line), data);
        Ok(())
    }

    /// Performs a **simple write** (§4.3.2) to a line already present in
    /// the overlay.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] / [`PoError::LineNotInOverlay`] if the line
    /// is not mapped to the overlay (use
    /// [`OverlayManager::overlaying_write`] for that case).
    pub fn write_line(&mut self, opn: Opn, line: usize, data: LineData) -> PoResult<()> {
        let entry = self.omt.get(opn).ok_or(PoError::NoOverlay(opn))?;
        if !entry.obitvec.contains(line) {
            return Err(PoError::LineNotInOverlay { opn, line });
        }
        self.stats.simple_writes.inc();
        self.resident.insert((opn, line), data);
        Ok(())
    }

    /// Reads a line that the OBitVector maps to the overlay.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] / [`PoError::LineNotInOverlay`] if the line
    /// is not in the overlay.
    pub fn read_line(&self, opn: Opn, line: usize, mem: &DataStore) -> PoResult<LineData> {
        let entry = self.omt.get(opn).ok_or(PoError::NoOverlay(opn))?;
        if !entry.obitvec.contains(line) {
            return Err(PoError::LineNotInOverlay { opn, line });
        }
        if let Some(data) = self.resident.get(&(opn, line)) {
            return Ok(*data);
        }
        let seg = entry
            .segment
            .ok_or(PoError::Corrupted("overlay line neither cache-resident nor in the OMS"))?;
        let addr = seg
            .meta
            .line_addr(seg.base, line)
            .ok_or(PoError::Corrupted("OBitVector set but no slot allocated"))?;
        Ok(mem.read_line(addr))
    }

    /// The paper's access semantics (§2.1): read `line` from the overlay
    /// if present there, otherwise from the physical page at
    /// `phys_line_addr`.
    ///
    /// # Errors
    ///
    /// Propagates overlay read failures.
    pub fn resolve_read(
        &self,
        opn: Opn,
        line: usize,
        phys_line_addr: MainMemAddr,
        mem: &DataStore,
    ) -> PoResult<LineData> {
        match self.omt.get(opn) {
            Some(e) if e.obitvec.contains(line) => self.read_line(opn, line, mem),
            _ => Ok(mem.read_line(phys_line_addr)),
        }
    }

    fn allocate_segment(
        &mut self,
        class: SegmentClass,
        grant: &mut GrantFn<'_>,
        outcome: &mut EvictOutcome,
    ) -> PoResult<MainMemAddr> {
        match self.store.allocate(class) {
            Ok(base) => Ok(base),
            Err(PoError::OverlayStoreExhausted) => {
                // §4.4.3: ask the OS for more pages, then retry once.
                let frames = self.config.oms_chunk_frames;
                let chunk = grant(frames)?;
                self.store.add_chunk(chunk, frames);
                outcome.grew_store = true;
                self.store.allocate(class)
            }
            Err(e) => Err(e),
        }
    }

    /// Evicts a dirty overlay line from the cache into the OMS,
    /// allocating or migrating the overlay's segment as needed (§4.4.2).
    /// No-op if the line is not cache-resident.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay; allocation
    /// errors if the OMS cannot grow.
    pub fn evict_line(
        &mut self,
        opn: Opn,
        line: usize,
        mem: &mut DataStore,
        grant: &mut GrantFn<'_>,
    ) -> PoResult<EvictOutcome> {
        let mut outcome = EvictOutcome::default();
        if !self.omt.get(opn).map(|e| e.obitvec.contains(line)).unwrap_or(false) {
            return Err(self
                .omt
                .get(opn)
                .map(|_| PoError::LineNotInOverlay { opn, line })
                .unwrap_or(PoError::NoOverlay(opn)));
        }
        // Read (do not yet remove) the cache-resident copy: if segment
        // allocation fails below, the line must remain resident so no
        // data is lost (the grant can be retried later).
        let data = match self.resident.get(&(opn, line)) {
            Some(d) => *d,
            None => return Ok(outcome), // clean in OMS already
        };

        // The entry was checked present at function entry; a vanished
        // entry mid-eviction is state corruption, reported rather than
        // panicked on.
        const GONE: PoError = PoError::Corrupted("OMT entry vanished during eviction");

        // Ensure a segment exists with a slot for this line.
        let needed = self.omt.get(opn).ok_or(GONE)?.obitvec.len();
        if self.omt.get(opn).ok_or(GONE)?.segment.is_none() {
            let class = SegmentClass::for_lines(needed.max(1)).max(self.config.min_segment_class);
            let base = self.allocate_segment(class, grant, &mut outcome)?;
            let seg = SegmentRef { base, class, meta: SegmentMeta::new(class) };
            self.omt.get_mut(opn).ok_or(GONE)?.segment = Some(seg);
            self.stats.segment_allocs.inc();
            outcome.allocated_segment = true;
        }

        // Try to place the line; migrate to a larger segment if full.
        let mut seg = self.omt.get(opn).ok_or(GONE)?.segment.ok_or(GONE)?;
        if seg.meta.alloc_slot(line).is_none() {
            let target = {
                let by_count = SegmentClass::for_lines(needed.max(1));
                let by_growth = seg.class.next_larger().unwrap_or(SegmentClass::K4);
                by_count.max(by_growth).max(self.config.min_segment_class)
            };
            let new_base = self.allocate_segment(target, grant, &mut outcome)?;
            let mut new_meta = SegmentMeta::new(target);
            // Move every stored line to the new segment.
            for l in self.omt.get(opn).ok_or(GONE)?.obitvec.iter() {
                if let Some(old_addr) = seg.meta.line_addr(seg.base, l) {
                    if seg.meta.slot_of(l).is_some() && !self.resident.contains_key(&(opn, l)) {
                        let slot = new_meta
                            .alloc_slot(l)
                            .ok_or(PoError::Corrupted("migration target segment too small"))?;
                        let new_addr = new_base.add((slot * po_types::geometry::LINE_SIZE) as u64);
                        let d = mem.read_line(old_addr);
                        mem.write_line(new_addr, d);
                        outcome.lines_moved += 1;
                    }
                }
            }
            self.store.free(seg.base, seg.class)?;
            seg = SegmentRef { base: new_base, class: target, meta: new_meta };
            seg.meta
                .alloc_slot(line)
                .ok_or(PoError::Corrupted("fresh migration segment rejected a slot"))?;
            self.stats.migrations.inc();
            outcome.migrated = true;
        }

        let addr = seg
            .meta
            .line_addr(seg.base, line)
            .ok_or(PoError::Corrupted("evicted line lost its segment slot"))?;
        mem.write_line(addr, data);
        self.resident.remove(&(opn, line));
        self.omt.get_mut(opn).ok_or(GONE)?.segment = Some(seg);
        self.omt_cache.access(opn, true);
        self.stats.evictions.inc();
        Ok(outcome)
    }

    /// Evicts every cache-resident line of `opn` (checkpoint flush,
    /// promotion preparation).
    ///
    /// # Errors
    ///
    /// Propagates eviction failures.
    pub fn evict_all(
        &mut self,
        opn: Opn,
        mem: &mut DataStore,
        grant: &mut GrantFn<'_>,
    ) -> PoResult<usize> {
        let mut lines: Vec<usize> =
            self.resident.keys().filter(|(o, _)| *o == opn).map(|(_, l)| *l).collect();
        // Hash-ordered map: evict in line order so segment allocation and
        // migration (and any seeded fault plan) are reproducible.
        lines.sort_unstable();
        let n = lines.len();
        for line in lines {
            self.evict_line(opn, line, mem, grant)?;
        }
        Ok(n)
    }

    /// Memory-controller resolution (§4.3.1): on a full cache miss to an
    /// overlay address, consult the OMT cache and return the line's OMS
    /// address plus whether the OMT cache hit (a miss costs
    /// [`OverlayConfig::omt_walk_latency`]).
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] / [`PoError::LineNotInOverlay`] /
    /// [`PoError::Corrupted`] if the line has no OMS backing (e.g. it is
    /// still dirty in the cache — such a request would not reach the
    /// controller in hardware).
    pub fn controller_resolve(
        &mut self,
        opn: Opn,
        line: usize,
        modify: bool,
    ) -> PoResult<(MainMemAddr, bool)> {
        let entry = self.omt.get(opn).ok_or(PoError::NoOverlay(opn))?;
        if !entry.obitvec.contains(line) {
            return Err(PoError::LineNotInOverlay { opn, line });
        }
        let seg = entry
            .segment
            .ok_or(PoError::Corrupted("controller asked for a line with no OMS segment"))?;
        let addr = seg
            .meta
            .line_addr(seg.base, line)
            .ok_or(PoError::Corrupted("controller asked for a line with no slot"))?;
        if self.faults.fire(FaultSite::OmtCacheCorruption) {
            // Detected-and-discarded ECC model: the corrupted entry is
            // dropped, forcing a miss and an OMT re-walk — extra latency,
            // never silent data corruption.
            self.omt_cache.invalidate(opn);
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "OmtCacheCorruption" });
        }
        let hit = self.omt_cache.access(opn, modify);
        self.sink.emit(|| TelemetryEvent::OmsResolve {
            opn: opn.raw(),
            line: line as u8,
            cache_hit: hit,
        });
        Ok((addr, hit))
    }

    /// Warms the OMT cache with `opn`'s entry, as the TLB-fill path does
    /// when it fetches the OBitVector from the OMT (Figure 6: one walk
    /// serves both the TLB and the controller cache). Returns whether the
    /// entry was already cached. No-op for pages without overlays.
    pub fn warm_omt_cache(&mut self, opn: Opn) -> bool {
        if self.omt.get(opn).is_some() {
            self.omt_cache.access(opn, false)
        } else {
            false
        }
    }

    fn destroy(&mut self, opn: Opn) -> PoResult<()> {
        if let Some(entry) = self.omt.remove(opn) {
            if let Some(seg) = entry.segment {
                // The OMT entry is gone but the segment is still
                // allocated: the OMT-write→OMS-free window the DST
                // harness crashes inside (the segment is orphaned until
                // recovery replays the op).
                if self.faults.fire_crash(CrashStage::OmtFreeWindow) {
                    return Err(PoError::Crashed(CrashStage::OmtFreeWindow));
                }
                if self.inject_oms_leak {
                    self.inject_oms_leak = false;
                } else {
                    self.store.free(seg.base, seg.class)?;
                }
            }
        }
        self.resident.retain(|(o, _), _| *o != opn);
        self.omt_cache.invalidate(opn);
        Ok(())
    }

    /// Promotion: **commit** (§4.3.4) — writes every overlay line into
    /// the physical page at `dst_frame`, then destroys the overlay.
    /// Returns the number of lines merged.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay.
    pub fn commit(
        &mut self,
        opn: Opn,
        dst_frame: MainMemAddr,
        mem: &mut DataStore,
    ) -> PoResult<usize> {
        let entry = *self.omt.get(opn).ok_or(PoError::NoOverlay(opn))?;
        let mut merged = 0;
        for line in entry.obitvec.iter() {
            let data = self.read_line(opn, line, mem)?;
            mem.write_line(dst_frame.add((line * po_types::geometry::LINE_SIZE) as u64), data);
            merged += 1;
        }
        self.destroy(opn)?;
        self.stats.commits.inc();
        Ok(merged)
    }

    /// Promotion: **copy-and-commit** (§4.3.4) — copies the page at
    /// `src_frame` to `dst_frame`, applies the overlay lines on top, then
    /// destroys the overlay (the overlay-on-write promotion path).
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay.
    ///
    /// # Panics
    ///
    /// Panics if the frames are not page-aligned.
    pub fn copy_and_commit(
        &mut self,
        opn: Opn,
        src_frame: MainMemAddr,
        dst_frame: MainMemAddr,
        mem: &mut DataStore,
    ) -> PoResult<usize> {
        if !self.has_overlay(opn) {
            return Err(PoError::NoOverlay(opn));
        }
        mem.copy_frame(src_frame, dst_frame);
        let merged = self.commit(opn, dst_frame, mem)?;
        self.stats.copy_commits.inc();
        // `commit` counted itself too; keep the split visible by undoing
        // nothing — both counters are documented as overlapping for this
        // path.
        Ok(merged)
    }

    /// Promotion: **discard** (§4.3.4) — throws the overlay away; the
    /// page reverts to the physical page (speculation abort).
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay.
    pub fn discard(&mut self, opn: Opn) -> PoResult<()> {
        if !self.has_overlay(opn) {
            return Err(PoError::NoOverlay(opn));
        }
        self.destroy(opn)?;
        self.stats.discards.inc();
        Ok(())
    }

    /// Number of dirty overlay lines currently cache-resident.
    pub fn resident_lines(&self) -> usize {
        self.resident.len()
    }

    /// Cache-resident dirty lines belonging to `opn`.
    pub fn resident_lines_of(&self, opn: Opn) -> usize {
        self.resident.keys().filter(|(o, _)| *o == opn).count()
    }

    /// `true` if `line` of `opn` has a cache-resident functional copy
    /// but no slot in the OMS yet — lazy allocation (§4.3.3) has not
    /// run, so the memory controller cannot resolve the line until it
    /// is materialized by an eviction.
    pub fn line_needs_materialization(&self, opn: Opn, line: usize) -> bool {
        self.resident.contains_key(&(opn, line))
            && self
                .omt
                .get(opn)
                .and_then(|e| e.segment)
                .and_then(|s| s.meta.line_addr(s.base, line))
                .is_none()
    }

    /// Total overlay memory footprint in bytes: OMS segments in use plus
    /// segment-metadata overhead is already inside the segment, so this
    /// is simply bytes in use (Figure 8's metric for overlay-on-write).
    pub fn overlay_memory_bytes(&self) -> u64 {
        self.store.bytes_in_use()
    }

    /// Pages that currently have overlays.
    pub fn overlay_count(&self) -> usize {
        self.omt.len()
    }

    /// Overlays worth collapsing under memory pressure, coldest first:
    /// pages whose OMS segment is allocated, preferring ones absent from
    /// the OMT cache (not recently touched by the controller), then in
    /// deterministic OPN order. `exempt` (the page whose access is being
    /// served) is never offered.
    pub fn reclaim_candidates(&self, exempt: Option<Opn>) -> Vec<Opn> {
        let mut v: Vec<Opn> = self
            .omt
            .iter()
            .filter(|(o, e)| Some(**o) != exempt && e.segment.is_some())
            .map(|(o, _)| *o)
            .collect();
        v.sort_by_key(|o| (self.omt_cache.contains(*o), o.raw()));
        v
    }

    /// Collapses `opn`'s overlay into the physical page at `dst_frame`
    /// (the §4.3.4 commit promotion, used here as the memory-pressure
    /// release valve) and returns the OMS bytes freed.
    ///
    /// # Errors
    ///
    /// Propagates commit failures.
    pub fn collapse_overlay(
        &mut self,
        opn: Opn,
        dst_frame: MainMemAddr,
        mem: &mut DataStore,
    ) -> PoResult<u64> {
        let before = self.store.bytes_in_use();
        self.commit(opn, dst_frame, mem)?;
        let freed = before.saturating_sub(self.store.bytes_in_use());
        self.stats.reclaims.inc();
        self.stats.reclaim_freed_bytes.add(freed);
        self.sink.count("overlay.reclaims", 1);
        self.sink.emit(|| TelemetryEvent::Reclaim { opn: opn.raw(), freed_bytes: freed });
        Ok(freed)
    }

    /// Live OMS compaction (§4.4.2): collects every OMT-referenced
    /// segment and runs one [`OverlayMemoryStore::compact`] pass. For
    /// each improving move the relocation hook copies the segment's
    /// bytes line-by-line, polls the first [`CrashStage::MidCompaction`]
    /// window (bytes copied, OMT still pointing at the old segment),
    /// then atomically repoints the owner's OMT entry and invalidates
    /// its OMT-cache copy — the caller (po-sim) layers the TLB
    /// shootdown on top. Returns the pass outcome plus the pages whose
    /// segments moved (the shootdown set); relocation is invisible to
    /// overlay semantics (every line readable before is readable after,
    /// with identical bytes).
    ///
    /// A fired [`FaultSite::CompactionRelocationFailed`] makes the copy
    /// fail, which aborts the pass gracefully
    /// ([`crate::CompactionOutcome::aborted`]); the caller may retry.
    ///
    /// # Errors
    ///
    /// [`PoError::Crashed`] when an armed mid-compaction crash fires
    /// (state frozen for DST recovery); [`PoError::Corrupted`] if a live
    /// segment has no OMT owner (accounting bug).
    pub fn compact_store(
        &mut self,
        mem: &mut DataStore,
    ) -> PoResult<(crate::CompactionOutcome, Vec<Opn>)> {
        let mut owner: HashMap<u64, Opn> = HashMap::new();
        let mut live: Vec<(MainMemAddr, SegmentClass)> = Vec::new();
        for (opn, entry) in self.omt.iter() {
            if let Some(seg) = entry.segment {
                owner.insert(seg.base.raw(), *opn);
                live.push((seg.base, seg.class));
            }
        }
        // Split borrows: the store drives the pass while the hook
        // mutates the OMT and OMT cache.
        let mut moved: Vec<Opn> = Vec::new();
        let Self { store, omt, omt_cache, faults, sink, .. } = self;
        let outcome = store.compact(&live, |old, new, class| {
            if faults.fire(FaultSite::CompactionRelocationFailed) {
                sink.emit(|| TelemetryEvent::FaultInjected { site: "CompactionRelocationFailed" });
                return Err(PoError::Corrupted("compaction relocation copy failed"));
            }
            let lines = class.bytes() / po_types::geometry::LINE_SIZE;
            for i in 0..lines as u64 {
                let off = i * po_types::geometry::LINE_SIZE as u64;
                let data = mem.read_line(old.add(off));
                mem.write_line(new.add(off), data);
            }
            // First MidCompaction window: destination holds a full copy,
            // the OMT entry still points at the old segment.
            if faults.fire_crash(CrashStage::MidCompaction) {
                return Err(PoError::Crashed(CrashStage::MidCompaction));
            }
            let opn = *owner
                .get(&old.raw())
                .ok_or(PoError::Corrupted("compaction moved a segment with no OMT owner"))?;
            let entry = omt
                .get_mut(opn)
                .ok_or(PoError::Corrupted("OMT entry vanished during compaction"))?;
            let seg = entry
                .segment
                .as_mut()
                .ok_or(PoError::Corrupted("OMT segment vanished during compaction"))?;
            seg.base = new;
            omt_cache.invalidate(opn);
            moved.push(opn);
            Ok(())
        })?;
        let frag = (self.store.fragmentation_ratio() * 1000.0).round() as i64;
        self.sink.gauge("oms.fragmentation_pmille", frag);
        Ok((outcome, moved))
    }

    /// Structural self-check of the manager + store (DESIGN.md "Fault
    /// model & degradation"):
    ///
    /// 1. the OMS's bytes-in-use equals the summed size of all live
    ///    segments referenced by OMT entries;
    /// 2. every OBitVector bit is backed by a cache-resident line or an
    ///    allocated segment slot (no unreadable overlay lines);
    /// 3. the store's free lists are disjoint, chunk-bounded, and byte
    ///    conservation holds ([`OverlayMemoryStore::verify_layout`]).
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] naming the violated invariant.
    pub fn verify_invariants(&self) -> PoResult<()> {
        let mut live_bytes = 0u64;
        for (opn, entry) in self.omt.iter() {
            if let Some(seg) = entry.segment {
                live_bytes += seg.class.bytes() as u64;
            }
            for line in entry.obitvec.iter() {
                let resident = self.resident.contains_key(&(*opn, line));
                let stored =
                    entry.segment.map(|seg| seg.meta.slot_of(line).is_some()).unwrap_or(false);
                if !resident && !stored {
                    return Err(PoError::Corrupted(
                        "OBitVector bit has neither a resident nor a stored line",
                    ));
                }
            }
        }
        if live_bytes != self.store.bytes_in_use() {
            return Err(PoError::Corrupted("live segment bytes disagree with OMS bytes-in-use"));
        }
        self.store.verify_layout()
    }

    /// Serializes OMT, OMT cache, OMS and the cache-resident dirty lines
    /// (sorted by `(opn, line)` — byte-stable), then statistics. The
    /// configuration and fault injector are not serialized: pass the
    /// config to [`OverlayManager::decode_snapshot`] and reinstall the
    /// injector via [`OverlayManager::set_fault_injector`].
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.omt.encode_snapshot(w);
        self.omt_cache.encode_snapshot(w);
        self.store.encode_snapshot(w);
        let mut keys: Vec<(Opn, usize)> = self.resident.keys().copied().collect();
        keys.sort_unstable_by_key(|&(o, l)| (o.raw(), l));
        w.put_len(keys.len());
        for key in keys {
            w.put_u64(key.0.raw());
            w.put_u8(key.1 as u8);
            w.put_bytes(self.resident[&key].as_bytes());
        }
        for c in [
            &self.stats.overlays_created,
            &self.stats.overlaying_writes,
            &self.stats.simple_writes,
            &self.stats.evictions,
            &self.stats.segment_allocs,
            &self.stats.migrations,
            &self.stats.commits,
            &self.stats.copy_commits,
            &self.stats.discards,
            &self.stats.reclaims,
            &self.stats.reclaim_freed_bytes,
            &self.stats.alloc_retries,
            &self.stats.injected_faults,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a manager with `config` from
    /// [`OverlayManager::encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on truncation or structurally invalid
    /// state (an out-of-range line index, or store invariants violated).
    pub fn decode_snapshot(config: OverlayConfig, r: &mut SnapshotReader) -> PoResult<Self> {
        let omt = Omt::decode_snapshot(r)?;
        let omt_cache = OmtCache::decode_snapshot(config.omt_cache_entries, r)?;
        let store = OverlayMemoryStore::decode_snapshot(r)?;
        let n = r.get_len()?;
        let mut resident = HashMap::with_capacity(n);
        for _ in 0..n {
            let opn = Opn::from_raw(r.get_u64()?);
            let line = r.get_u8()? as usize;
            if line >= po_types::geometry::LINES_PER_PAGE {
                return Err(PoError::Corrupted("snapshot resident line index out of range"));
            }
            let mut bytes = [0u8; po_types::geometry::LINE_SIZE];
            bytes.copy_from_slice(r.get_bytes(po_types::geometry::LINE_SIZE)?);
            resident.insert((opn, line), LineData::from_bytes(bytes));
        }
        let mut stats = OverlayStats::default();
        for c in [
            &mut stats.overlays_created,
            &mut stats.overlaying_writes,
            &mut stats.simple_writes,
            &mut stats.evictions,
            &mut stats.segment_allocs,
            &mut stats.migrations,
            &mut stats.commits,
            &mut stats.copy_commits,
            &mut stats.discards,
            &mut stats.reclaims,
            &mut stats.reclaim_freed_bytes,
            &mut stats.alloc_retries,
            &mut stats.injected_faults,
        ] {
            c.add(r.get_u64()?);
        }
        Ok(Self {
            config,
            omt,
            omt_cache,
            store,
            resident,
            stats,
            faults: FaultInjector::none(),
            inject_oms_leak: false,
            sink: TelemetrySink::noop(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::{Asid, Vpn};

    fn opn(v: u64) -> Opn {
        Opn::encode(Asid::new(1), Vpn::new(v))
    }

    /// An OS stand-in handing out sequential chunks.
    struct Granter {
        next: u64,
    }

    impl Granter {
        fn new() -> Self {
            Self { next: 0x1000_0000 }
        }

        fn grant(&mut self) -> impl FnMut(u64) -> PoResult<MainMemAddr> + '_ {
            move |frames| {
                let base = self.next;
                self.next += frames * 4096;
                Ok(MainMemAddr::new(base))
            }
        }
    }

    fn mgr() -> OverlayManager {
        OverlayManager::new(OverlayConfig::default())
    }

    #[test]
    fn create_is_idempotent() {
        let mut m = mgr();
        m.create_overlay(opn(1)).unwrap();
        m.create_overlay(opn(1)).unwrap();
        assert_eq!(m.stats().overlays_created.get(), 1);
        assert_eq!(m.overlay_count(), 1);
    }

    #[test]
    fn overlaying_write_sets_bit_and_is_readable() {
        let mut m = mgr();
        let mem = DataStore::new();
        m.overlaying_write(opn(1), 5, LineData::splat(0xAB)).unwrap();
        assert!(m.obitvec(opn(1)).unwrap().contains(5));
        assert_eq!(m.read_line(opn(1), 5, &mem).unwrap(), LineData::splat(0xAB));
        assert_eq!(m.stats().overlaying_writes.get(), 1);
    }

    #[test]
    fn lazy_allocation_only_on_eviction() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        m.overlaying_write(opn(1), 0, LineData::splat(1)).unwrap();
        assert_eq!(m.overlay_memory_bytes(), 0, "no OMS use before eviction");
        let out = m.evict_line(opn(1), 0, &mut mem, &mut g.grant()).unwrap();
        assert!(out.allocated_segment);
        assert!(out.grew_store, "empty store must grow on first eviction");
        assert_eq!(m.overlay_memory_bytes(), 256, "one line fits a 256 B segment");
        assert_eq!(m.read_line(opn(1), 0, &mem).unwrap(), LineData::splat(1));
        assert_eq!(m.resident_lines(), 0);
    }

    #[test]
    fn simple_write_requires_presence() {
        let mut m = mgr();
        m.create_overlay(opn(1)).unwrap();
        assert!(matches!(
            m.write_line(opn(1), 3, LineData::zeroed()),
            Err(PoError::LineNotInOverlay { .. })
        ));
        m.overlaying_write(opn(1), 3, LineData::splat(9)).unwrap();
        m.write_line(opn(1), 3, LineData::splat(10)).unwrap();
        let mem = DataStore::new();
        assert_eq!(m.read_line(opn(1), 3, &mem).unwrap(), LineData::splat(10));
    }

    #[test]
    fn resolve_read_merges_overlay_and_physical_page() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let phys = MainMemAddr::new(0x7000);
        mem.write_line(phys, LineData::splat(0x11)); // physical copy
        m.overlaying_write(opn(1), 0, LineData::splat(0x22)).unwrap();
        // Line 0 is in the overlay → overlay data wins.
        assert_eq!(m.resolve_read(opn(1), 0, phys, &mem).unwrap(), LineData::splat(0x22));
        // Line 1 is not → physical page data.
        let phys1 = MainMemAddr::new(0x7040);
        mem.write_line(phys1, LineData::splat(0x33));
        assert_eq!(m.resolve_read(opn(1), 1, phys1, &mem).unwrap(), LineData::splat(0x33));
    }

    #[test]
    fn growth_migrates_to_larger_segments() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        // Write and evict 4 lines: first eviction sizes for the current
        // OBitVector, so evicting one-by-one with increasing vectors
        // exercises migration.
        for l in 0..4usize {
            m.overlaying_write(opn(1), l, LineData::splat(l as u8)).unwrap();
            m.evict_line(opn(1), l, &mut mem, &mut g.grant()).unwrap();
        }
        // 4 lines no longer fit a 256 B segment (capacity 3): must have
        // migrated, and all data must survive.
        assert!(m.stats().migrations.get() >= 1);
        for l in 0..4usize {
            assert_eq!(m.read_line(opn(1), l, &mem).unwrap(), LineData::splat(l as u8));
        }
        m.store().check_conservation().unwrap();
    }

    #[test]
    fn eviction_sizes_segment_for_whole_obitvector() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        // 10 overlaying writes, then evict one line: segment must already
        // be sized for 10 lines (K1 = 15 capacity).
        for l in 0..10usize {
            m.overlaying_write(opn(1), l, LineData::splat(l as u8)).unwrap();
        }
        m.evict_line(opn(1), 0, &mut mem, &mut g.grant()).unwrap();
        assert_eq!(m.overlay_memory_bytes(), 1024);
        assert_eq!(m.stats().migrations.get(), 0);
    }

    #[test]
    fn evict_all_flushes_everything() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        for l in [3usize, 17, 42] {
            m.overlaying_write(opn(2), l, LineData::splat(l as u8)).unwrap();
        }
        assert_eq!(m.resident_lines_of(opn(2)), 3);
        let n = m.evict_all(opn(2), &mut mem, &mut g.grant()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(m.resident_lines_of(opn(2)), 0);
        for l in [3usize, 17, 42] {
            assert_eq!(m.read_line(opn(2), l, &mem).unwrap(), LineData::splat(l as u8));
        }
    }

    #[test]
    fn commit_merges_into_destination_frame() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        let dst = MainMemAddr::new(0x9000);
        mem.write_line(dst, LineData::splat(0x01)); // pre-existing line 0
        m.overlaying_write(opn(1), 1, LineData::splat(0xBB)).unwrap();
        m.overlaying_write(opn(1), 2, LineData::splat(0xCC)).unwrap();
        m.evict_line(opn(1), 1, &mut mem, &mut g.grant()).unwrap();
        // Line 2 stays cache-resident: commit must still see it.
        let merged = m.commit(opn(1), dst, &mut mem).unwrap();
        assert_eq!(merged, 2);
        assert_eq!(mem.read_line(dst), LineData::splat(0x01)); // untouched
        assert_eq!(mem.read_line(dst.add(64)), LineData::splat(0xBB));
        assert_eq!(mem.read_line(dst.add(128)), LineData::splat(0xCC));
        // Overlay is gone and its memory reclaimed.
        assert!(!m.has_overlay(opn(1)));
        assert_eq!(m.overlay_memory_bytes(), 0);
        m.store().check_conservation().unwrap();
    }

    #[test]
    fn copy_and_commit_builds_merged_page() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let src = MainMemAddr::new(0x4000);
        let dst = MainMemAddr::new(0x8000);
        for l in 0..64u64 {
            mem.write_line(src.add(l * 64), LineData::splat(7));
        }
        m.overlaying_write(opn(1), 5, LineData::splat(9)).unwrap();
        m.copy_and_commit(opn(1), src, dst, &mut mem).unwrap();
        for l in 0..64u64 {
            let expect = if l == 5 { 9 } else { 7 };
            assert_eq!(mem.read_line(dst.add(l * 64)), LineData::splat(expect), "line {l}");
        }
        assert!(!m.has_overlay(opn(1)));
    }

    #[test]
    fn discard_reverts_and_frees() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        m.overlaying_write(opn(1), 0, LineData::splat(5)).unwrap();
        m.evict_line(opn(1), 0, &mut mem, &mut g.grant()).unwrap();
        m.discard(opn(1)).unwrap();
        assert!(!m.has_overlay(opn(1)));
        assert_eq!(m.overlay_memory_bytes(), 0);
        assert!(matches!(m.read_line(opn(1), 0, &mem), Err(PoError::NoOverlay(_))));
        m.store().check_conservation().unwrap();
    }

    #[test]
    fn controller_resolve_reports_omt_cache_hits() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        m.overlaying_write(opn(1), 0, LineData::splat(5)).unwrap();
        m.evict_line(opn(1), 0, &mut mem, &mut g.grant()).unwrap();
        // evict_line already touched the OMT cache: resolve now hits.
        let (addr, hit) = m.controller_resolve(opn(1), 0, false).unwrap();
        assert!(hit);
        assert_eq!(mem.read_line(addr), LineData::splat(5));
        // A different overlay page cold-misses.
        m.overlaying_write(opn(2), 0, LineData::splat(6)).unwrap();
        m.evict_line(opn(2), 0, &mut mem, &mut g.grant()).unwrap();
        assert!(m.omt_cache().stats().misses.get() >= 1);
    }

    #[test]
    fn snapshot_round_trip_is_byte_identical() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        // Build rich state: stored lines, resident lines, a migration.
        for l in 0..5usize {
            m.overlaying_write(opn(1), l, LineData::splat(l as u8)).unwrap();
            m.evict_line(opn(1), l, &mut mem, &mut g.grant()).unwrap();
        }
        m.overlaying_write(opn(2), 7, LineData::splat(0x77)).unwrap();
        m.overlaying_write(opn(3), 63, LineData::splat(0x63)).unwrap();
        m.evict_line(opn(3), 63, &mut mem, &mut g.grant()).unwrap();
        m.verify_invariants().unwrap();

        let mut w = po_types::SnapshotWriter::new();
        m.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = po_types::SnapshotReader::new(&bytes);
        let restored = OverlayManager::decode_snapshot(m.config().clone(), &mut r).unwrap();
        r.expect_end().unwrap();
        restored.verify_invariants().unwrap();

        // Re-encoding the restored manager yields identical bytes.
        let mut w2 = po_types::SnapshotWriter::new();
        restored.encode_snapshot(&mut w2);
        assert_eq!(bytes, w2.finish());

        // And the restored manager reads the same data.
        for l in 0..5usize {
            assert_eq!(restored.read_line(opn(1), l, &mem).unwrap(), LineData::splat(l as u8));
        }
        assert_eq!(restored.read_line(opn(2), 7, &mem).unwrap(), LineData::splat(0x77));
        assert_eq!(restored.stats().overlaying_writes.get(), m.stats().overlaying_writes.get());
        assert_eq!(restored.omt_cache().len(), m.omt_cache().len());
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut m = mgr();
        m.overlaying_write(opn(1), 3, LineData::splat(1)).unwrap();
        let mut w = po_types::SnapshotWriter::new();
        m.encode_snapshot(&mut w);
        let mut bytes = w.finish();
        // Truncation is detected.
        let mut r = po_types::SnapshotReader::new(&bytes[..bytes.len() - 1]);
        assert!(OverlayManager::decode_snapshot(OverlayConfig::default(), &mut r).is_err());
        // A resident line index >= 64 is rejected. The index byte sits
        // right after the OMT/cache/store sections and the resident
        // count; find it by scanning for the known (opn, line) prefix.
        let opn_raw = opn(1).raw().to_le_bytes();
        let pos = bytes.windows(9).position(|win| win[..8] == opn_raw && win[8] == 3);
        if let Some(p) = pos {
            bytes[p + 8] = 64;
            let mut r = po_types::SnapshotReader::new(&bytes);
            assert!(OverlayManager::decode_snapshot(OverlayConfig::default(), &mut r).is_err());
        }
    }

    #[test]
    fn compaction_is_semantically_invisible() {
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        // Build fragmentation: many single-line overlays (256 B segments),
        // then destroy most of them so stragglers pin high pages.
        for v in 0..48u64 {
            m.overlaying_write(opn(v), 0, LineData::splat(v as u8)).unwrap();
            m.evict_line(opn(v), 0, &mut mem, &mut g.grant()).unwrap();
        }
        for v in 0..48u64 {
            if v % 7 != 0 {
                m.discard(opn(v)).unwrap();
            }
        }
        m.verify_invariants().unwrap();
        let before_bytes = m.overlay_memory_bytes();
        let (out, moved) = m.compact_store(&mut mem).unwrap();
        assert!(!out.aborted);
        assert!(out.moves > 0, "stragglers must relocate");
        assert_eq!(moved.len() as u64, out.moves);
        // Relocation is invisible: same footprint, same data.
        assert_eq!(m.overlay_memory_bytes(), before_bytes);
        m.verify_invariants().unwrap();
        for v in 0..48u64 {
            if v % 7 == 0 {
                assert_eq!(m.read_line(opn(v), 0, &mem).unwrap(), LineData::splat(v as u8));
            }
        }
        assert_eq!(m.store().stats().compaction_passes.get(), 1);
        assert!(m.store().stats().relocated_bytes.get() >= out.relocated_bytes);
    }

    #[test]
    fn compaction_relocation_fault_aborts_and_retries() {
        use po_types::FaultPlan;
        let mut m = mgr();
        let mut mem = DataStore::new();
        let mut g = Granter::new();
        for v in 0..32u64 {
            m.overlaying_write(opn(v), 0, LineData::splat(v as u8)).unwrap();
            m.evict_line(opn(v), 0, &mut mem, &mut g.grant()).unwrap();
        }
        for v in 0..31u64 {
            m.discard(opn(v)).unwrap();
        }
        m.set_fault_injector(FaultInjector::from_plan(
            FaultPlan::new(3).at_queries(FaultSite::CompactionRelocationFailed, [0]),
        ));
        let (out, _) = m.compact_store(&mut mem).unwrap();
        assert!(out.aborted, "fired fault must abort the pass");
        assert_eq!(out.moves, 0);
        m.verify_invariants().unwrap();
        // The schedule fired once; the retry goes through.
        let (out, _) = m.compact_store(&mut mem).unwrap();
        assert!(!out.aborted);
        assert!(out.moves > 0);
        m.verify_invariants().unwrap();
        assert_eq!(m.read_line(opn(31), 0, &mem).unwrap(), LineData::splat(31));
    }

    #[test]
    fn errors_are_specific() {
        let mut m = mgr();
        let mem = DataStore::new();
        assert!(matches!(m.obitvec(opn(9)), Err(PoError::NoOverlay(_))));
        assert!(matches!(m.read_line(opn(9), 0, &mem), Err(PoError::NoOverlay(_))));
        m.create_overlay(opn(9)).unwrap();
        assert!(matches!(m.read_line(opn(9), 0, &mem), Err(PoError::LineNotInOverlay { .. })));
        assert!(matches!(m.discard(opn(10)), Err(PoError::NoOverlay(_))));
    }
}
