//! In-memory free-segment lists (§4.4.3).
//!
//! The paper stores OMS free lists *in the free segments themselves*:
//! "For each segment size, the memory controller maintains a memory
//! location or register that points to a free segment of that size.
//! Each free segment in turn stores a pointer to another free segment
//! of the same size… To reduce the number of memory operations needed
//! to manage free segments, we use a grouped-linked-list mechanism,
//! similar to the one used by some file systems."
//!
//! This module implements both variants against the functional
//! [`DataStore`], counting the DRAM line accesses each needs:
//!
//! * [`NaiveFreeList`] — classic single-linked list: every pop reads the
//!   head segment's next-pointer line; every push writes one.
//! * [`GroupedFreeList`] — FFS-style grouping: a *leader* free segment
//!   holds up to G pointers to other free segments plus a link to the
//!   next leader. The controller keeps the current leader's pointer
//!   block in a register, so G consecutive pops/pushes cost one line
//!   access instead of G.
//!
//! [`crate::OverlayMemoryStore`] models the same structure at the
//! accounting level; `tests` below check that the two agree on
//! behavior, and the `oms_alloc` criterion bench quantifies the
//! memory-operation savings.

use crate::segment::SegmentClass;
use po_dram::DataStore;
use po_types::{Counter, MainMemAddr};

/// Memory-operation counts (the §4.4.3 optimization target).
#[derive(Clone, Debug, Default)]
pub struct FreeListStats {
    /// DRAM line reads performed by list maintenance.
    pub line_reads: Counter,
    /// DRAM line writes performed by list maintenance.
    pub line_writes: Counter,
}

impl FreeListStats {
    /// Total line accesses.
    pub fn total(&self) -> u64 {
        self.line_reads.get() + self.line_writes.get()
    }
}

fn read_u64(mem: &DataStore, addr: MainMemAddr) -> u64 {
    let line = mem.read_line(addr.line_base());
    let off = addr.line_offset() & !7;
    let mut b = [0u8; 8];
    b.copy_from_slice(&line.as_bytes()[off..off + 8]);
    u64::from_le_bytes(b)
}

fn write_u64(mem: &mut DataStore, addr: MainMemAddr, value: u64) {
    let mut line = mem.read_line(addr.line_base());
    let off = addr.line_offset() & !7;
    line.as_mut_bytes()[off..off + 8].copy_from_slice(&value.to_le_bytes());
    mem.write_line(addr.line_base(), line);
}

/// Sentinel for "no segment".
const NIL: u64 = u64::MAX;

/// The classic single-linked free list: each free segment's first word
/// points to the next free segment.
#[derive(Clone, Debug)]
pub struct NaiveFreeList {
    head: u64,
    len: usize,
    stats: FreeListStats,
}

impl NaiveFreeList {
    /// Creates an empty list.
    pub fn new() -> Self {
        Self { head: NIL, len: 0, stats: FreeListStats::default() }
    }

    /// Number of free segments.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segment is free.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory-operation statistics.
    pub fn stats(&self) -> &FreeListStats {
        &self.stats
    }

    /// Adds a free segment: writes its next-pointer (one line write).
    pub fn push(&mut self, mem: &mut DataStore, seg: MainMemAddr) {
        write_u64(mem, seg, self.head);
        self.stats.line_writes.inc();
        self.head = seg.raw();
        self.len += 1;
    }

    /// Takes a free segment: reads the head's next-pointer (one line
    /// read).
    pub fn pop(&mut self, mem: &DataStore) -> Option<MainMemAddr> {
        if self.head == NIL {
            return None;
        }
        let seg = MainMemAddr::new(self.head);
        self.head = read_u64(mem, seg);
        self.stats.line_reads.inc();
        self.len -= 1;
        Some(seg)
    }
}

impl Default for NaiveFreeList {
    fn default() -> Self {
        Self::new()
    }
}

/// The grouped free list of §4.4.3.
///
/// Leader layout (in the leader segment's first cache line):
/// `[count: u64][next_leader: u64][ptr[0..G]: u64…]` with
/// `G = min(6, class capacity)` pointers per 64 B line (two header
/// words + six pointers). The controller caches the active leader's
/// line in a register, so pushes and pops within a group cost **zero**
/// additional line accesses until the group fills/empties.
///
/// # Example
///
/// ```
/// use po_overlay::free_list::GroupedFreeList;
/// use po_overlay::SegmentClass;
/// use po_dram::DataStore;
/// use po_types::MainMemAddr;
///
/// let mut mem = DataStore::new();
/// let mut list = GroupedFreeList::new(SegmentClass::B256);
/// for i in 0..10u64 {
///     list.push(&mut mem, MainMemAddr::new(0x10_0000 + i * 256));
/// }
/// assert_eq!(list.len(), 10);
/// let seg = list.pop(&mut mem).unwrap();
/// assert_eq!(list.len(), 9);
/// assert_eq!(seg.raw() % 256, 0);
/// ```
#[derive(Clone, Debug)]
pub struct GroupedFreeList {
    class: SegmentClass,
    /// Address of the current leader segment (NIL when empty).
    leader: u64,
    /// Register-cached copy of the leader's header: (count, next_leader,
    /// pointers).
    cached: Option<(u64, u64, [u64; Self::GROUP])>,
    len: usize,
    stats: FreeListStats,
}

impl GroupedFreeList {
    /// Pointers per leader line: 64 B line minus two u64 header words.
    pub const GROUP: usize = 6;

    /// Creates an empty grouped list for `class` segments.
    pub fn new(class: SegmentClass) -> Self {
        Self { class, leader: NIL, cached: None, len: 0, stats: FreeListStats::default() }
    }

    /// The segment class managed.
    pub fn class(&self) -> SegmentClass {
        self.class
    }

    /// Number of free segments (leaders included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no segment is free.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory-operation statistics.
    pub fn stats(&self) -> &FreeListStats {
        &self.stats
    }

    fn load_leader(&mut self, mem: &DataStore) {
        if self.cached.is_some() || self.leader == NIL {
            return;
        }
        let base = MainMemAddr::new(self.leader);
        let count = read_u64(mem, base);
        let next = read_u64(mem, base.add(8));
        let mut ptrs = [NIL; Self::GROUP];
        for (i, p) in ptrs.iter_mut().enumerate() {
            *p = read_u64(mem, base.add(16 + 8 * i as u64));
        }
        // One line holds the whole header: a single line read.
        self.stats.line_reads.inc();
        self.cached = Some((count, next, ptrs));
    }

    fn store_leader(&mut self, mem: &mut DataStore) {
        if let (Some((count, next, ptrs)), leader) = (&self.cached, self.leader) {
            if leader != NIL {
                let base = MainMemAddr::new(leader);
                write_u64(mem, base, *count);
                write_u64(mem, base.add(8), *next);
                for (i, p) in ptrs.iter().enumerate() {
                    write_u64(mem, base.add(16 + 8 * i as u64), *p);
                }
                // One line write (all words share the leader's first line).
                self.stats.line_writes.inc();
            }
        }
    }

    /// Adds a free segment.
    pub fn push(&mut self, mem: &mut DataStore, seg: MainMemAddr) {
        debug_assert_eq!(seg.raw() % self.class.bytes() as u64, 0, "misaligned segment");
        self.load_leader(mem);
        match &mut self.cached {
            Some((count, _, ptrs)) if (*count as usize) < Self::GROUP => {
                ptrs[*count as usize] = seg.raw();
                *count += 1;
                // Register-cached update: no memory op until spill.
            }
            _ => {
                // Current leader full (or no leader): `seg` becomes the
                // new leader; the old leader is linked behind it.
                self.store_leader(mem);
                let old_leader = self.leader;
                self.leader = seg.raw();
                self.cached = Some((0, old_leader, [NIL; Self::GROUP]));
            }
        }
        self.len += 1;
    }

    /// Takes a free segment.
    pub fn pop(&mut self, mem: &mut DataStore) -> Option<MainMemAddr> {
        if self.leader == NIL {
            return None;
        }
        self.load_leader(mem);
        // Statically infallible: load_leader just populated `cached`.
        let (count, next, ptrs) = self.cached.as_mut().expect("leader loaded");
        if *count > 0 {
            *count -= 1;
            let seg = ptrs[*count as usize];
            self.len -= 1;
            return Some(MainMemAddr::new(seg));
        }
        // Group empty: hand out the leader itself and advance.
        let seg = self.leader;
        self.leader = *next;
        self.cached = None;
        self.len -= 1;
        Some(MainMemAddr::new(seg))
    }

    /// Flushes the register-cached leader header back to memory (e.g. on
    /// controller context save).
    pub fn flush(&mut self, mem: &mut DataStore) {
        self.store_leader(mem);
    }
}

/// A fully memory-backed Overlay Memory Store allocator: five
/// [`GroupedFreeList`]s (one per segment class) whose bookkeeping lives
/// in the free segments themselves, with larger segments split on
/// demand — the complete §4.4.3 realization. Behaviorally equivalent to
/// the accounting-level [`crate::OverlayMemoryStore`] (see the
/// equivalence test below); additionally reports the memory operations
/// its management costs.
#[derive(Debug)]
pub struct MemoryBackedOms {
    lists: [GroupedFreeList; 5],
    managed_bytes: u64,
    used_bytes: u64,
}

impl MemoryBackedOms {
    /// Creates an empty store.
    pub fn new() -> Self {
        let mut classes = SegmentClass::ALL.into_iter();
        Self {
            lists: std::array::from_fn(|_| {
                // Statically infallible: the array and ALL have equal length.
                GroupedFreeList::new(classes.next().expect("five classes"))
            }),
            managed_bytes: 0,
            used_bytes: 0,
        }
    }

    fn idx(class: SegmentClass) -> usize {
        // Statically infallible: ALL enumerates every SegmentClass.
        SegmentClass::ALL.iter().position(|&c| c == class).expect("member")
    }

    /// Adds `frames` 4 KB pages at `base` (page-aligned) to the store.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn add_chunk(&mut self, mem: &mut DataStore, base: MainMemAddr, frames: u64) {
        assert_eq!(base.page_offset(), 0, "OMS chunks must be page-aligned");
        for i in 0..frames {
            let addr = MainMemAddr::new(base.raw() + i * SegmentClass::K4.bytes() as u64);
            self.lists[Self::idx(SegmentClass::K4)].push(mem, addr);
        }
        self.managed_bytes += frames * SegmentClass::K4.bytes() as u64;
    }

    /// Allocates a segment of `class`, splitting larger segments when the
    /// class's list is dry.
    ///
    /// # Errors
    ///
    /// [`po_types::PoError::OverlayStoreExhausted`] when no segment of
    /// this or any larger class is free.
    pub fn allocate(
        &mut self,
        mem: &mut DataStore,
        class: SegmentClass,
    ) -> po_types::PoResult<MainMemAddr> {
        let i = Self::idx(class);
        if let Some(seg) = self.lists[i].pop(mem) {
            self.used_bytes += class.bytes() as u64;
            return Ok(seg);
        }
        let larger = class.next_larger().ok_or(po_types::PoError::OverlayStoreExhausted)?;
        // Split one larger segment into two of this class; keep one.
        let big = self.allocate_for_split(mem, larger)?;
        let half = class.bytes() as u64;
        self.lists[i].push(mem, MainMemAddr::new(big.raw() + half));
        self.used_bytes += half;
        Ok(big)
    }

    fn allocate_for_split(
        &mut self,
        mem: &mut DataStore,
        class: SegmentClass,
    ) -> po_types::PoResult<MainMemAddr> {
        let i = Self::idx(class);
        if let Some(seg) = self.lists[i].pop(mem) {
            return Ok(seg);
        }
        let larger = class.next_larger().ok_or(po_types::PoError::OverlayStoreExhausted)?;
        let big = self.allocate_for_split(mem, larger)?;
        let half = class.bytes() as u64;
        self.lists[i].push(mem, MainMemAddr::new(big.raw() + half));
        Ok(big)
    }

    /// Returns a segment to its class's free list.
    pub fn free(&mut self, mem: &mut DataStore, base: MainMemAddr, class: SegmentClass) {
        self.lists[Self::idx(class)].push(mem, base);
        self.used_bytes -= class.bytes() as u64;
    }

    /// Bytes currently allocated.
    pub fn bytes_in_use(&self) -> u64 {
        self.used_bytes
    }

    /// Bytes under management.
    pub fn bytes_managed(&self) -> u64 {
        self.managed_bytes
    }

    /// Total memory operations spent on free-list maintenance.
    pub fn management_memory_ops(&self) -> u64 {
        self.lists.iter().map(|l| l.stats().total()).sum()
    }
}

impl Default for MemoryBackedOms {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn seg(i: u64) -> MainMemAddr {
        MainMemAddr::new(0x100_0000 + i * 256)
    }

    #[test]
    fn naive_lifo_behavior() {
        let mut mem = DataStore::new();
        let mut list = NaiveFreeList::new();
        assert!(list.pop(&mem).is_none());
        for i in 0..5 {
            list.push(&mut mem, seg(i));
        }
        assert_eq!(list.len(), 5);
        for i in (0..5).rev() {
            assert_eq!(list.pop(&mem), Some(seg(i)));
        }
        assert!(list.is_empty());
    }

    #[test]
    fn grouped_returns_every_segment_exactly_once() {
        let mut mem = DataStore::new();
        let mut list = GroupedFreeList::new(SegmentClass::B256);
        let n = 100u64;
        for i in 0..n {
            list.push(&mut mem, seg(i));
        }
        assert_eq!(list.len(), n as usize);
        let mut got = BTreeSet::new();
        while let Some(s) = list.pop(&mut mem) {
            assert!(got.insert(s.raw()), "duplicate segment {s}");
        }
        assert_eq!(got.len(), n as usize);
        let expected: BTreeSet<u64> = (0..n).map(|i| seg(i).raw()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn grouped_survives_interleaved_push_pop() {
        let mut mem = DataStore::new();
        let mut list = GroupedFreeList::new(SegmentClass::B256);
        let mut live: BTreeSet<u64> = BTreeSet::new();
        let mut tick = 0u64;
        for round in 0..50u64 {
            for k in 0..(round % 9) {
                let s = seg(1000 + tick + k);
                list.push(&mut mem, s);
                live.insert(s.raw());
            }
            tick += 9;
            for _ in 0..(round % 7) {
                if let Some(s) = list.pop(&mut mem) {
                    assert!(live.remove(&s.raw()), "popped unknown segment {s}");
                }
            }
            assert_eq!(list.len(), live.len());
        }
        while let Some(s) = list.pop(&mut mem) {
            assert!(live.remove(&s.raw()));
        }
        assert!(live.is_empty());
    }

    #[test]
    fn grouping_reduces_memory_operations() {
        let n = 600u64;
        let mut mem1 = DataStore::new();
        let mut naive = NaiveFreeList::new();
        for i in 0..n {
            naive.push(&mut mem1, seg(i));
        }
        while naive.pop(&mem1).is_some() {}

        let mut mem2 = DataStore::new();
        let mut grouped = GroupedFreeList::new(SegmentClass::B256);
        for i in 0..n {
            grouped.push(&mut mem2, seg(i));
        }
        while grouped.pop(&mut mem2).is_some() {}

        let naive_ops = naive.stats().total();
        let grouped_ops = grouped.stats().total();
        assert!(
            grouped_ops * 3 < naive_ops,
            "grouped list ({grouped_ops} ops) must need far fewer memory ops \
             than the naive list ({naive_ops} ops)"
        );
    }

    #[test]
    fn leader_flush_persists_state_across_cache_loss() {
        let mut mem = DataStore::new();
        let mut list = GroupedFreeList::new(SegmentClass::B256);
        for i in 0..10 {
            list.push(&mut mem, seg(i));
        }
        list.flush(&mut mem);
        // Simulate a controller losing its register cache: rebuild from
        // the leader pointer alone.
        let mut reborn = GroupedFreeList::new(SegmentClass::B256);
        reborn.leader = list.leader;
        reborn.len = list.len;
        let mut got = BTreeSet::new();
        while let Some(s) = reborn.pop(&mut mem) {
            got.insert(s.raw());
        }
        assert_eq!(got.len(), 10);
    }

    #[test]
    fn empty_pop_is_none_and_free() {
        let mut mem = DataStore::new();
        let mut list = GroupedFreeList::new(SegmentClass::K4);
        assert!(list.pop(&mut mem).is_none());
        assert_eq!(list.stats().total(), 0);
    }

    #[test]
    fn memory_backed_oms_matches_accounting_store() {
        // Drive the memory-backed store and the accounting-level
        // `OverlayMemoryStore` with the same operation sequence: the
        // Ok/Err pattern and the byte accounting must agree step by step.
        use crate::store::OverlayMemoryStore;
        let mut mem = DataStore::new();
        let mut backed = MemoryBackedOms::new();
        let mut model = OverlayMemoryStore::new();
        backed.add_chunk(&mut mem, MainMemAddr::new(0x40_0000), 3);
        model.add_chunk(MainMemAddr::new(0x40_0000), 3);

        let classes = [
            SegmentClass::B256,
            SegmentClass::K1,
            SegmentClass::B256,
            SegmentClass::K4,
            SegmentClass::B512,
            SegmentClass::K2,
            SegmentClass::B256,
            SegmentClass::K4, // exhaustion expected here
            SegmentClass::B512,
        ];
        let mut live_backed = Vec::new();
        let mut live_model = Vec::new();
        for &class in &classes {
            let a = backed.allocate(&mut mem, class);
            let b = model.allocate(class);
            assert_eq!(a.is_ok(), b.is_ok(), "allocation outcome diverged for {class:?}");
            if let (Ok(x), Ok(y)) = (a, b) {
                live_backed.push((x, class));
                live_model.push((y, class));
            }
            assert_eq!(backed.bytes_in_use(), model.bytes_in_use());
        }
        // Free everything; both return to zero use.
        for ((x, cx), (y, cy)) in live_backed.into_iter().zip(live_model) {
            backed.free(&mut mem, x, cx);
            model.free(y, cy).unwrap();
            assert_eq!(backed.bytes_in_use(), model.bytes_in_use());
        }
        assert_eq!(backed.bytes_in_use(), 0);
        model.check_conservation().unwrap();
        // With so few live segments every list stayed within its
        // register-cached leader group: zero maintenance memory ops —
        // exactly the behaviour the grouped design buys (§4.4.3).
        assert_eq!(backed.management_memory_ops(), 0);
    }

    #[test]
    fn memory_backed_oms_segments_do_not_overlap() {
        let mut mem = DataStore::new();
        let mut s = MemoryBackedOms::new();
        s.add_chunk(&mut mem, MainMemAddr::new(0x80_0000), 2);
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for &class in &[
            SegmentClass::B256,
            SegmentClass::B512,
            SegmentClass::B256,
            SegmentClass::K1,
            SegmentClass::K2,
            SegmentClass::B256,
        ] {
            let seg = s.allocate(&mut mem, class).unwrap();
            let lo = seg.raw();
            let hi = lo + class.bytes() as u64;
            for &(olo, ohi) in &spans {
                assert!(hi <= olo || lo >= ohi, "[{lo:#x},{hi:#x}) overlaps [{olo:#x},{ohi:#x})");
            }
            assert_eq!(lo % class.bytes() as u64, 0, "alignment");
            spans.push((lo, hi));
        }
    }
}
