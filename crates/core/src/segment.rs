//! Overlay Memory Store segments and their metadata (§4.4.1–§4.4.2,
//! Figure 7).
//!
//! Each overlay lives in a *segment* of one of five fixed sizes. Sub-4 KB
//! segments dedicate their first cache line to metadata: an array of 64
//! five-bit slot pointers (one per cache line of the virtual page; 0 =
//! "not present", otherwise the slot index holding the line) and a 32-bit
//! free bit vector over the segment's slots — 352 bits total, fitting in
//! one 64 B line. A 4 KB segment stores no metadata: each overlay line
//! sits at the same offset it has within the virtual page.

use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{MainMemAddr, OBitVector};

/// The five segment sizes of §4.4.2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SegmentClass {
    /// 256 B — metadata line + up to 3 overlay lines (Figure 7).
    B256,
    /// 512 B — metadata line + up to 7 overlay lines.
    B512,
    /// 1 KB — metadata line + up to 15 overlay lines.
    K1,
    /// 2 KB — metadata line + up to 31 overlay lines.
    K2,
    /// 4 KB — no metadata; direct per-line offsets; holds all 64 lines.
    K4,
}

impl SegmentClass {
    /// All classes, smallest to largest.
    pub const ALL: [SegmentClass; 5] = [
        SegmentClass::B256,
        SegmentClass::B512,
        SegmentClass::K1,
        SegmentClass::K2,
        SegmentClass::K4,
    ];

    /// Segment size in bytes.
    pub const fn bytes(self) -> usize {
        match self {
            SegmentClass::B256 => 256,
            SegmentClass::B512 => 512,
            SegmentClass::K1 => 1024,
            SegmentClass::K2 => 2048,
            SegmentClass::K4 => PAGE_SIZE,
        }
    }

    /// Total slots (cache lines) in the segment, including the metadata
    /// line for sub-4 KB classes.
    pub const fn slots(self) -> usize {
        self.bytes() / LINE_SIZE
    }

    /// Overlay lines the segment can hold.
    pub const fn capacity(self) -> usize {
        match self {
            SegmentClass::K4 => LINES_PER_PAGE,
            _ => self.slots() - 1, // slot 0 is the metadata line
        }
    }

    /// Whether this class stores a metadata line.
    pub const fn has_metadata(self) -> bool {
        !matches!(self, SegmentClass::K4)
    }

    /// The smallest class able to hold `lines` overlay lines.
    ///
    /// # Panics
    ///
    /// Panics if `lines > 64` (a page has only 64 lines).
    pub fn for_lines(lines: usize) -> SegmentClass {
        assert!(lines <= LINES_PER_PAGE, "a page has at most 64 lines");
        // Statically infallible after the assert: K4 holds 64 lines.
        Self::ALL.into_iter().find(|c| c.capacity() >= lines).expect("K4 holds any page")
    }

    /// The next larger class, if any (used when an overlay outgrows its
    /// segment and must migrate, §4.4.2).
    pub fn next_larger(self) -> Option<SegmentClass> {
        // Statically infallible: ALL enumerates every SegmentClass.
        let idx = Self::ALL.iter().position(|&c| c == self).expect("member of ALL");
        Self::ALL.get(idx + 1).copied()
    }

    /// The next smaller class, if any (splitting a free segment,
    /// §4.4.3).
    pub fn next_smaller(self) -> Option<SegmentClass> {
        // Statically infallible: ALL enumerates every SegmentClass.
        let idx = Self::ALL.iter().position(|&c| c == self).expect("member of ALL");
        idx.checked_sub(1).map(|i| Self::ALL[i])
    }
}

/// The metadata line of a sub-4 KB segment (Figure 7): 64 slot pointers
/// (5 bits each) plus a 32-bit free bit vector — 352 bits.
///
/// Slot pointer semantics: `0` = line not present (slot 0 is the
/// metadata line itself, so it can double as "invalid"); otherwise the
/// pointer is the slot index holding the line's data.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    class: SegmentClass,
    slot_ptr: [u8; LINES_PER_PAGE],
    /// Bit `s` set ⇒ slot `s` free. Only bits `1..slots` are meaningful.
    free: u32,
}

impl SegmentMeta {
    /// Fresh metadata for an empty segment of `class`.
    ///
    /// For [`SegmentClass::K4`] the metadata is a pure identity mapping
    /// (the paper stores none in memory; we keep the struct so the API is
    /// uniform, but it encodes to nothing).
    pub fn new(class: SegmentClass) -> Self {
        let mut free = 0u32;
        if class.has_metadata() {
            for s in 1..class.slots() {
                free |= 1 << s;
            }
        }
        Self { class, slot_ptr: [0; LINES_PER_PAGE], free }
    }

    /// The segment class this metadata describes.
    pub fn class(&self) -> SegmentClass {
        self.class
    }

    /// Slot currently holding `line`, if present.
    pub fn slot_of(&self, line: usize) -> Option<usize> {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        if self.class == SegmentClass::K4 {
            // Direct layout: a K4 segment always "has" every line's slot;
            // presence is tracked by the OBitVector, not the metadata.
            return Some(line);
        }
        match self.slot_ptr[line] {
            0 => None,
            s => Some(s as usize),
        }
    }

    /// Allocates a slot for `line`, returning it, or `None` if the
    /// segment is full (the caller must migrate to a larger class).
    pub fn alloc_slot(&mut self, line: usize) -> Option<usize> {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        if self.class == SegmentClass::K4 {
            return Some(line);
        }
        if let Some(s) = self.slot_of(line) {
            return Some(s); // already allocated
        }
        if self.free == 0 {
            return None;
        }
        let slot = self.free.trailing_zeros() as usize;
        self.free &= !(1 << slot);
        self.slot_ptr[line] = slot as u8;
        Some(slot)
    }

    /// Releases the slot held by `line` (no-op if absent).
    pub fn free_slot(&mut self, line: usize) {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        if self.class == SegmentClass::K4 {
            return;
        }
        let slot = self.slot_ptr[line];
        if slot != 0 {
            self.free |= 1 << slot;
            self.slot_ptr[line] = 0;
        }
    }

    /// Number of slots in use by overlay lines.
    pub fn used_slots(&self) -> usize {
        if self.class == SegmentClass::K4 {
            // Not tracked here; the OBitVector is authoritative for K4.
            0
        } else {
            self.class.slots() - 1 - self.free.count_ones() as usize
        }
    }

    /// `true` if no free slot remains.
    pub fn is_full(&self) -> bool {
        self.class.has_metadata() && self.free == 0
    }

    /// Lines that currently own a slot (ascending).
    pub fn present_lines(&self) -> OBitVector {
        if self.class == SegmentClass::K4 {
            return OBitVector::EMPTY; // authoritative vector lives in the OMT
        }
        (0..LINES_PER_PAGE).filter(|&l| self.slot_ptr[l] != 0).collect()
    }

    /// Main-memory address of `line`'s data within a segment based at
    /// `seg_base`, or `None` if the line has no slot.
    pub fn line_addr(&self, seg_base: MainMemAddr, line: usize) -> Option<MainMemAddr> {
        let slot = self.slot_of(line)?;
        Some(seg_base.add((slot * LINE_SIZE) as u64))
    }

    /// Encodes the metadata into its in-memory representation: 64 packed
    /// 5-bit pointers followed by the 32-bit free vector (44 bytes of a
    /// 64 B line). K4 encodes to all-zero (it stores no metadata).
    pub fn encode(&self) -> [u8; LINE_SIZE] {
        let mut out = [0u8; LINE_SIZE];
        if self.class == SegmentClass::K4 {
            return out;
        }
        // Pack 64 x 5-bit pointers little-endian into bits 0..320.
        for (line, &ptr) in self.slot_ptr.iter().enumerate() {
            let bit = line * 5;
            let byte = bit / 8;
            let shift = bit % 8;
            let v = (ptr as u16) << shift;
            out[byte] |= (v & 0xff) as u8;
            if shift > 3 {
                out[byte + 1] |= (v >> 8) as u8;
            }
        }
        out[40..44].copy_from_slice(&self.free.to_le_bytes());
        out
    }

    /// Decodes metadata previously produced by [`SegmentMeta::encode`].
    pub fn decode(class: SegmentClass, bytes: &[u8; LINE_SIZE]) -> Self {
        if class == SegmentClass::K4 {
            return Self::new(class);
        }
        let mut slot_ptr = [0u8; LINES_PER_PAGE];
        for (line, ptr) in slot_ptr.iter_mut().enumerate() {
            let bit = line * 5;
            let byte = bit / 8;
            let shift = bit % 8;
            let mut v = (bytes[byte] as u16) >> shift;
            if shift > 3 {
                v |= (bytes[byte + 1] as u16) << (8 - shift);
            }
            *ptr = (v & 0x1f) as u8;
        }
        let mut free_bytes = [0u8; 4];
        free_bytes.copy_from_slice(&bytes[40..44]);
        Self { class, slot_ptr, free: u32::from_le_bytes(free_bytes) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_geometry_matches_figure7() {
        assert_eq!(SegmentClass::B256.capacity(), 3); // Figure 7 caption
        assert_eq!(SegmentClass::B512.capacity(), 7);
        assert_eq!(SegmentClass::K1.capacity(), 15);
        assert_eq!(SegmentClass::K2.capacity(), 31);
        assert_eq!(SegmentClass::K4.capacity(), 64);
        assert!(!SegmentClass::K4.has_metadata());
    }

    #[test]
    fn for_lines_picks_smallest_fit() {
        assert_eq!(SegmentClass::for_lines(0), SegmentClass::B256);
        assert_eq!(SegmentClass::for_lines(3), SegmentClass::B256);
        assert_eq!(SegmentClass::for_lines(4), SegmentClass::B512);
        assert_eq!(SegmentClass::for_lines(16), SegmentClass::K2);
        assert_eq!(SegmentClass::for_lines(32), SegmentClass::K4);
        assert_eq!(SegmentClass::for_lines(64), SegmentClass::K4);
    }

    #[test]
    fn neighbors() {
        assert_eq!(SegmentClass::B256.next_larger(), Some(SegmentClass::B512));
        assert_eq!(SegmentClass::K4.next_larger(), None);
        assert_eq!(SegmentClass::B256.next_smaller(), None);
        assert_eq!(SegmentClass::K4.next_smaller(), Some(SegmentClass::K2));
    }

    #[test]
    fn alloc_until_full_then_migrate_signal() {
        let mut m = SegmentMeta::new(SegmentClass::B256);
        let s1 = m.alloc_slot(0).unwrap();
        let s2 = m.alloc_slot(3).unwrap();
        let s3 = m.alloc_slot(63).unwrap();
        assert_eq!(m.used_slots(), 3);
        assert!(m.is_full());
        assert_eq!(m.alloc_slot(5), None, "full segment must refuse");
        // Slots are distinct and never 0 (metadata line).
        let mut slots = [s1, s2, s3];
        slots.sort_unstable();
        assert_eq!(slots, [1, 2, 3]);
    }

    #[test]
    fn realloc_same_line_is_idempotent() {
        let mut m = SegmentMeta::new(SegmentClass::B512);
        let s = m.alloc_slot(10).unwrap();
        assert_eq!(m.alloc_slot(10), Some(s));
        assert_eq!(m.used_slots(), 1);
    }

    #[test]
    fn free_slot_enables_reuse() {
        let mut m = SegmentMeta::new(SegmentClass::B256);
        for l in [1, 2, 3] {
            m.alloc_slot(l).unwrap();
        }
        m.free_slot(2);
        assert!(!m.is_full());
        assert!(m.alloc_slot(40).is_some());
        assert_eq!(m.slot_of(2), None);
    }

    #[test]
    fn k4_uses_direct_offsets() {
        let mut m = SegmentMeta::new(SegmentClass::K4);
        assert_eq!(m.alloc_slot(17), Some(17));
        assert_eq!(m.slot_of(17), Some(17));
        assert_eq!(m.slot_of(0), Some(0));
        assert!(!m.is_full());
        let base = MainMemAddr::new(0x10000);
        assert_eq!(m.line_addr(base, 5).unwrap().raw(), 0x10000 + 5 * 64);
    }

    #[test]
    fn line_addr_uses_slot_not_line() {
        let mut m = SegmentMeta::new(SegmentClass::B256);
        m.alloc_slot(63).unwrap(); // line 63 → slot 1
        let base = MainMemAddr::new(0x8000);
        assert_eq!(m.line_addr(base, 63).unwrap().raw(), 0x8000 + 64);
        assert_eq!(m.line_addr(base, 0), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        for class in [SegmentClass::B256, SegmentClass::B512, SegmentClass::K1, SegmentClass::K2] {
            let mut m = SegmentMeta::new(class);
            for l in [0usize, 1, 31, 62] {
                if m.alloc_slot(l).is_none() {
                    break;
                }
            }
            let encoded = m.encode();
            let decoded = SegmentMeta::decode(class, &encoded);
            assert_eq!(decoded, m, "roundtrip failed for {class:?}");
        }
    }

    #[test]
    fn metadata_fits_in_352_bits() {
        // 64 pointers x 5 bits + 32-bit free vector = 352 bits = 44 bytes.
        let mut m = SegmentMeta::new(SegmentClass::K2);
        for l in 0..31 {
            m.alloc_slot(l);
        }
        let enc = m.encode();
        assert!(enc[44..].iter().all(|&b| b == 0), "encoding must not spill past 44 bytes");
    }

    #[test]
    fn present_lines_tracks_allocations() {
        let mut m = SegmentMeta::new(SegmentClass::K1);
        m.alloc_slot(5);
        m.alloc_slot(60);
        assert_eq!(m.present_lines().iter().collect::<Vec<_>>(), vec![5, 60]);
    }
}
