//! # po-overlay — the page-overlay framework (the paper's contribution)
//!
//! Implements §3–§4 of *"Page Overlays: An Enhanced Virtual Memory
//! Framework to Enable Fine-grained Memory Management"* (ISCA 2015):
//!
//! * **Access semantics** (§2.1): a virtual page may map to both a
//!   physical page and an *overlay* holding a subset of its 64 cache
//!   lines; lines present in the overlay are accessed from the overlay.
//! * **Direct virtual-to-overlay mapping** (§4.1): the overlay page
//!   number is `1 ‖ ASID ‖ VPN` (see [`po_types::Opn`]) — no table.
//! * **Dual addressing** (§3.2): caches are addressed with full-page-sized
//!   overlay addresses; main memory uses the compact **Overlay Memory
//!   Store** ([`OverlayMemoryStore`]), resolved only on a full cache miss.
//! * **OMT + OMT cache** (§4.2, §4.4.4): the Overlay Mapping Table maps
//!   overlay pages to OMS segments; a 64-entry [`OmtCache`] at the memory
//!   controller hides most walks.
//! * **Segments** (§4.4.1–4.4.2): five sizes (256 B…4 KB); sub-4 KB
//!   segments carry a metadata line of 64×5-bit slot pointers plus a
//!   32-bit free bit vector ([`SegmentMeta`], Figure 7); grouped free
//!   lists with splitting ([`OverlayMemoryStore`]).
//! * **Overlaying writes** (§4.3.3) with lazy OMS allocation on dirty
//!   eviction, and **promotion** (§4.3.4): commit / copy-and-commit /
//!   discard ([`OverlayManager`]).
//!
//! The [`OverlayManager`] is the facade the OS/simulator uses; it owns
//! the OMT, the OMT cache, the OMS, and the set of overlay lines that are
//! still cache-resident (written but not yet evicted — the lazy-allocation
//! window the paper highlights at the end of §4.3.3).
//!
//! # Example: overlay-on-write at the framework level
//!
//! ```
//! use po_overlay::{OverlayConfig, OverlayManager};
//! use po_dram::DataStore;
//! use po_types::{Asid, LineData, Opn, Vpn};
//!
//! let mut mem = DataStore::new();
//! let mut mgr = OverlayManager::new(OverlayConfig::default());
//! mgr.grow_store(&mut |_frames| Ok(po_types::MainMemAddr::new(0x100_0000)))?;
//!
//! let opn = Opn::encode(Asid::new(1), Vpn::new(0x42));
//! mgr.create_overlay(opn)?;
//! // An overlaying write moves line 3 into the overlay…
//! mgr.overlaying_write(opn, 3, LineData::splat(0xAA))?;
//! assert!(mgr.obitvec(opn)?.contains(3));
//! // …and the line is readable through the overlay path.
//! assert_eq!(mgr.read_line(opn, 3, &mem)?, LineData::splat(0xAA));
//! // Memory is only consumed when the dirty line is evicted (lazy).
//! assert_eq!(mgr.store().bytes_in_use(), 0);
//! mgr.evict_line(opn, 3, &mut mem, &mut |_| Err(po_types::PoError::OutOfMemory))?;
//! assert!(mgr.store().bytes_in_use() > 0);
//! assert_eq!(mgr.read_line(opn, 3, &mem)?, LineData::splat(0xAA));
//! # Ok::<(), po_types::PoError>(())
//! ```

// Robustness gate: fallible paths in this crate return `PoResult`
// (`PoError::Corrupted` for broken internal invariants) instead of
// panicking. The few remaining `expect()` calls are statically
// infallible and individually justified at the call site.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
pub mod free_list;
pub mod manager;
pub mod omt;
pub mod omt_cache;
pub mod omt_walk;
pub mod segment;
pub mod store;

pub use free_list::{FreeListStats, GroupedFreeList, MemoryBackedOms, NaiveFreeList};
pub use manager::{EvictOutcome, GrantFn, OverlayConfig, OverlayManager, OverlayStats};
pub use omt::{Omt, OmtEntry, SegmentRef};
pub use omt_cache::{OmtCache, OmtCacheStats};
pub use omt_walk::{HierarchicalOmt, OmtWalkStats};
pub use segment::{SegmentClass, SegmentMeta};
pub use store::{CompactionOutcome, OverlayMemoryStore, StoreStats};
