//! Property tests for the 4-level radix page table and the OS model,
//! checked against flat-map oracles.

use po_dram::DataStore;
use po_types::{Ppn, VirtAddr, Vpn};
use po_vm::{OsModel, PageTable, Pte, PteFlags, VmConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Map { vpn: u64, ppn: u64 },
    Unmap { vpn: u64 },
    FlagFlip { vpn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // VPNs chosen from a mix of dense low values and sparse high ones so
    // every radix level gets exercised.
    let vpn = prop_oneof![0u64..32, (1u64 << 18)..(1 << 18) + 8, (1u64 << 35)..(1 << 35) + 8];
    prop_oneof![
        (vpn.clone(), 0u64..1024).prop_map(|(vpn, ppn)| Op::Map { vpn, ppn }),
        vpn.clone().prop_map(|vpn| Op::Unmap { vpn }),
        vpn.prop_map(|vpn| Op::FlagFlip { vpn }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn page_table_matches_btreemap_oracle(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut pt = PageTable::new();
        let mut oracle: BTreeMap<u64, Pte> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Map { vpn, ppn } => {
                    let pte = Pte {
                        ppn: Ppn::new(ppn),
                        flags: PteFlags { present: true, writable: true, ..Default::default() },
                    };
                    pt.map(Vpn::new(vpn), pte);
                    oracle.insert(vpn, pte);
                }
                Op::Unmap { vpn } => {
                    let got = pt.unmap(Vpn::new(vpn));
                    prop_assert_eq!(got, oracle.remove(&vpn));
                }
                Op::FlagFlip { vpn } => {
                    let got = pt.entry_mut(Vpn::new(vpn)).map(|e| {
                        e.flags.cow = !e.flags.cow;
                        *e
                    });
                    let expect = oracle.get_mut(&vpn).map(|e| {
                        e.flags.cow = !e.flags.cow;
                        *e
                    });
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(pt.mapped_pages(), oracle.len());
        }
        // Full enumeration agrees, in VPN order.
        let listed: Vec<(u64, Pte)> = pt.iter().into_iter().map(|(v, p)| (v.raw(), p)).collect();
        let expected: Vec<(u64, Pte)> = oracle.into_iter().collect();
        prop_assert_eq!(listed, expected);
    }

    /// The OS byte-level read/write path agrees with a flat oracle even
    /// through fork + CoW divergence.
    #[test]
    fn os_read_write_matches_oracle(
        writes in prop::collection::vec((0u64..4, 0u64..4096, any::<u8>()), 1..60),
    ) {
        let mut os = OsModel::new(VmConfig { total_frames: 512 });
        let mut mem = DataStore::new();
        let p = os.spawn().unwrap();
        os.map_range(p, Vpn::new(10), 4, true).unwrap();
        let mut oracle: BTreeMap<u64, u8> = BTreeMap::new();
        for &(page, off, val) in &writes {
            let va = VirtAddr::new((10 + page) * 4096 + off);
            os.write(p, va, val, &mut mem).unwrap();
            oracle.insert(va.raw(), val);
        }
        for (&addr, &val) in &oracle {
            prop_assert_eq!(os.read(p, VirtAddr::new(addr), &mem).unwrap(), val);
        }
        // Fork, diverge the parent, verify the child still sees `oracle`.
        let c = os.fork(p).unwrap();
        for &(page, off, _) in writes.iter().take(10) {
            let va = VirtAddr::new((10 + page) * 4096 + off);
            let cur = os.read(p, va, &mem).unwrap();
            os.write(p, va, cur.wrapping_add(1), &mut mem).unwrap();
        }
        for (&addr, &val) in &oracle {
            prop_assert_eq!(
                os.read(c, VirtAddr::new(addr), &mem).unwrap(),
                val,
                "child must keep the pre-fork bytes"
            );
        }
    }
}
