//! A 4-level radix page table.
//!
//! Mirrors the x86-64 structure the paper assumes (48-bit virtual
//! addresses, 9 bits per level, 4 KB leaves). The table is functional —
//! the TLB model charges the 1000-cycle walk cost of Table 2 — but the
//! radix structure is real so walks, sharing and teardown behave like
//! the real thing.

use po_types::geometry::PAGE_SHIFT;
use po_types::{Ppn, VirtAddr, Vpn};
use std::collections::HashMap;

/// Number of radix levels walked on a TLB miss.
pub const WALK_LEVELS: usize = 4;

const INDEX_BITS: u32 = 9;
const INDEX_MASK: u64 = (1 << INDEX_BITS) - 1;

/// Per-page mapping flags.
///
/// `cow` and `overlay_enabled` are the two bits the paper adds to the
/// conventional set: `cow` marks pages shared in copy-on-write mode
/// (§2.2: "the OS explicitly indicates to the hardware, through the page
/// tables, that the pages should be copied-on-write"), and
/// `overlay_enabled` turns the overlay semantics on for a mapping
/// (overlays are "an inexpensive feature that can be turned on or off",
/// §1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PteFlags {
    /// Mapping exists.
    pub present: bool,
    /// Writes permitted without a fault.
    pub writable: bool,
    /// Shared copy-on-write page: a write triggers the CoW (or
    /// overlay-on-write) handler.
    pub cow: bool,
    /// Overlay semantics enabled for this page.
    pub overlay_enabled: bool,
}

/// A leaf page-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pte {
    /// The mapped physical frame.
    pub ppn: Ppn,
    /// Flags.
    pub flags: PteFlags,
}

#[derive(Clone, Debug, Default)]
struct Node {
    children: HashMap<u16, Node>,
    leaf: Option<Pte>,
}

/// The per-process radix table.
///
/// # Example
///
/// ```
/// use po_vm::{PageTable, Pte, PteFlags};
/// use po_types::{Ppn, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.map(Vpn::new(0x42), Pte { ppn: Ppn::new(7), flags: PteFlags { present: true, writable: true, ..Default::default() } });
/// assert_eq!(pt.lookup(Vpn::new(0x42)).unwrap().ppn, Ppn::new(7));
/// ```
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    root: Node,
    mapped: usize,
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    fn indices(vpn: Vpn) -> [u16; WALK_LEVELS] {
        let mut out = [0u16; WALK_LEVELS];
        let raw = vpn.raw();
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = INDEX_BITS * (WALK_LEVELS - 1 - i) as u32;
            *slot = ((raw >> shift) & INDEX_MASK) as u16;
        }
        out
    }

    /// Installs (or replaces) the mapping for `vpn`.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) {
        let mut node = &mut self.root;
        for idx in Self::indices(vpn) {
            node = node.children.entry(idx).or_default();
        }
        if node.leaf.is_none() {
            self.mapped += 1;
        }
        node.leaf = Some(pte);
    }

    /// Removes the mapping for `vpn`, returning the old entry.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let mut node = &mut self.root;
        for idx in Self::indices(vpn) {
            node = node.children.get_mut(&idx)?;
        }
        let old = node.leaf.take();
        if old.is_some() {
            self.mapped -= 1;
        }
        old
    }

    /// Walks the table for `vpn`.
    pub fn lookup(&self, vpn: Vpn) -> Option<Pte> {
        let mut node = &self.root;
        for idx in Self::indices(vpn) {
            node = node.children.get(&idx)?;
        }
        node.leaf
    }

    /// Walks the table for the page containing `vaddr`.
    pub fn translate(&self, vaddr: VirtAddr) -> Option<Pte> {
        self.lookup(vaddr.vpn())
    }

    /// Mutable access to the entry for `vpn` (flag updates by fault
    /// handlers).
    pub fn entry_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        let mut node = &mut self.root;
        for idx in Self::indices(vpn) {
            node = node.children.get_mut(&idx)?;
        }
        node.leaf.as_mut()
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.mapped
    }

    /// Iterates over every `(vpn, pte)` pair (used by `fork` to clone an
    /// address space).
    pub fn iter(&self) -> Vec<(Vpn, Pte)> {
        let mut out = Vec::with_capacity(self.mapped);
        fn walk(node: &Node, prefix: u64, depth: usize, out: &mut Vec<(Vpn, Pte)>) {
            if depth == WALK_LEVELS {
                if let Some(pte) = node.leaf {
                    out.push((Vpn::new(prefix), pte));
                }
                return;
            }
            let mut keys: Vec<_> = node.children.keys().copied().collect();
            keys.sort_unstable();
            for k in keys {
                walk(&node.children[&k], (prefix << INDEX_BITS) | k as u64, depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out
    }

    /// Translates a full virtual address to a physical byte address.
    pub fn translate_addr(&self, vaddr: VirtAddr) -> Option<u64> {
        let pte = self.translate(vaddr)?;
        Some(pte.ppn.base().raw() | (vaddr.raw() & ((1 << PAGE_SHIFT) - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pte(ppn: u64) -> Pte {
        Pte {
            ppn: Ppn::new(ppn),
            flags: PteFlags { present: true, writable: true, ..Default::default() },
        }
    }

    #[test]
    fn map_lookup_unmap() {
        let mut pt = PageTable::new();
        assert!(pt.lookup(Vpn::new(5)).is_none());
        pt.map(Vpn::new(5), pte(9));
        assert_eq!(pt.lookup(Vpn::new(5)).unwrap().ppn, Ppn::new(9));
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.unmap(Vpn::new(5)).unwrap().ppn, Ppn::new(9));
        assert!(pt.lookup(Vpn::new(5)).is_none());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn distinct_vpns_do_not_collide() {
        let mut pt = PageTable::new();
        // VPNs that share low-level indices but differ at upper levels.
        let a = Vpn::new(0x1);
        let b = Vpn::new(0x1 | (1 << 27)); // differs at level-0 index
        pt.map(a, pte(1));
        pt.map(b, pte(2));
        assert_eq!(pt.lookup(a).unwrap().ppn, Ppn::new(1));
        assert_eq!(pt.lookup(b).unwrap().ppn, Ppn::new(2));
    }

    #[test]
    fn remap_replaces_without_count_growth() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(3), pte(1));
        pt.map(Vpn::new(3), pte(2));
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.lookup(Vpn::new(3)).unwrap().ppn, Ppn::new(2));
    }

    #[test]
    fn entry_mut_updates_flags() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(7), pte(1));
        pt.entry_mut(Vpn::new(7)).unwrap().flags.writable = false;
        assert!(!pt.lookup(Vpn::new(7)).unwrap().flags.writable);
    }

    #[test]
    fn iter_enumerates_in_vpn_order() {
        let mut pt = PageTable::new();
        for v in [9u64, 3, 7, 1_000_000] {
            pt.map(Vpn::new(v), pte(v));
        }
        let all = pt.iter();
        let vpns: Vec<u64> = all.iter().map(|(v, _)| v.raw()).collect();
        assert_eq!(vpns, vec![3, 7, 9, 1_000_000]);
    }

    #[test]
    fn translate_addr_combines_frame_and_offset() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(2), pte(5));
        let pa = pt.translate_addr(VirtAddr::new(2 * 4096 + 0x123)).unwrap();
        assert_eq!(pa, 5 * 4096 + 0x123);
    }
}
