//! # po-vm — the conventional virtual-memory substrate
//!
//! The page-overlay framework deliberately "retains the structure of the
//! existing virtual memory framework" (§1 of the paper): virtual pages
//! still map to physical pages through ordinary page tables, and the
//! overlay machinery is layered *on top*. This crate is that existing
//! framework, built from scratch:
//!
//! * a 4-level radix **page table** ([`PageTable`]) with per-entry flags
//!   (present / writable / copy-on-write / overlays-enabled),
//! * a physical **frame allocator** ([`FrameAllocator`]) over the
//!   main-memory address space,
//! * per-process **address spaces** and an **OS model** ([`OsModel`])
//!   implementing `fork` with classic copy-on-write — the baseline the
//!   paper's overlay-on-write is evaluated against (§2.2, §5.1),
//! * 2 MB **super-page** mappings used by the flexible-super-page
//!   technique (§5.3.5).
//!
//! # Example: fork + copy-on-write
//!
//! ```
//! use po_vm::{OsModel, VmConfig};
//! use po_dram::DataStore;
//! use po_types::{Asid, VirtAddr, Vpn};
//!
//! let mut mem = DataStore::new();
//! let mut os = OsModel::new(VmConfig::default());
//! let parent = os.spawn().unwrap();
//! os.map_anonymous(parent, Vpn::new(0x10), true).unwrap();
//!
//! let child = os.fork(parent).unwrap();
//! // Both processes share the frame read-only until a write faults.
//! let fault = os.write(parent, VirtAddr::new(0x10_000), 42, &mut mem).unwrap();
//! assert!(fault.copied_page, "CoW must copy the whole page on first write");
//! assert_eq!(os.read(child, VirtAddr::new(0x10_000), &mem).unwrap(), 0);
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod frame;
pub mod os;
pub mod page_table;
pub mod superpage;

pub use frame::FrameAllocator;
pub use os::{OsModel, OsStats, VmConfig, WriteOutcome};
pub use page_table::{PageTable, Pte, PteFlags, WALK_LEVELS};
pub use superpage::{SuperPageMapping, SUPERPAGE_PAGES};
