//! Physical frame allocation.
//!
//! Regular physical pages map directly into the main-memory address
//! space (Figure 4 of the paper: "Direct Mapping"), so a [`Ppn`]'s frame
//! address is just `ppn << 12`. The allocator hands out frames from a
//! fixed-size pool and tracks a free list; the OS also carves chunks out
//! of this pool for the memory controller's Overlay Memory Store
//! (§4.4.3).

use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{MainMemAddr, PoError, PoResult, Ppn};

/// A free-list frame allocator over `total_frames` 4 KB frames.
///
/// # Example
///
/// ```
/// use po_vm::FrameAllocator;
///
/// let mut alloc = FrameAllocator::new(128);
/// let f = alloc.alloc()?;
/// assert!(alloc.allocated() == 1);
/// alloc.free(f);
/// assert!(alloc.allocated() == 0);
/// # Ok::<(), po_types::PoError>(())
/// ```
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    total: u64,
    next_never_used: u64,
    free_list: Vec<Ppn>,
}

impl FrameAllocator {
    /// Creates an allocator over `total_frames` frames (frame 0 upward).
    pub fn new(total_frames: u64) -> Self {
        Self { total: total_frames, next_never_used: 0, free_list: Vec::new() }
    }

    /// Allocates one frame.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::OutOfMemory`] when the pool is exhausted.
    pub fn alloc(&mut self) -> PoResult<Ppn> {
        if let Some(ppn) = self.free_list.pop() {
            return Ok(ppn);
        }
        if self.next_never_used < self.total {
            let ppn = Ppn::new(self.next_never_used);
            self.next_never_used += 1;
            Ok(ppn)
        } else {
            Err(PoError::OutOfMemory)
        }
    }

    /// Allocates `n` physically contiguous frames (used to grant OMS
    /// chunks to the memory controller).
    ///
    /// # Errors
    ///
    /// Returns [`PoError::OutOfMemory`] if fewer than `n` never-used
    /// frames remain (contiguity is only guaranteed in the virgin
    /// region).
    pub fn alloc_contiguous(&mut self, n: u64) -> PoResult<Ppn> {
        if self.next_never_used + n <= self.total {
            let base = Ppn::new(self.next_never_used);
            self.next_never_used += n;
            Ok(base)
        } else {
            Err(PoError::OutOfMemory)
        }
    }

    /// Returns a frame to the pool.
    pub fn free(&mut self, ppn: Ppn) {
        debug_assert!(!self.free_list.contains(&ppn), "double free of frame {ppn:?}");
        self.free_list.push(ppn);
    }

    /// Number of frames currently allocated.
    pub fn allocated(&self) -> u64 {
        self.next_never_used - self.free_list.len() as u64
    }

    /// Total frames managed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Main-memory address of a frame (direct mapping).
    pub fn frame_addr(ppn: Ppn) -> MainMemAddr {
        MainMemAddr::new(ppn.base().raw())
    }

    /// Serializes the allocator. The free list is written verbatim (it
    /// is a LIFO stack, so its order determines which frame the next
    /// `alloc` returns — byte-stable restore must preserve it).
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.total);
        w.put_u64(self.next_never_used);
        w.put_len(self.free_list.len());
        for ppn in &self.free_list {
            w.put_u64(ppn.raw());
        }
    }

    /// Rebuilds an allocator from [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on truncation or an inconsistent
    /// free list.
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let total = r.get_u64()?;
        let next_never_used = r.get_u64()?;
        if next_never_used > total {
            return Err(PoError::Corrupted("snapshot allocator watermark exceeds pool"));
        }
        let n = r.get_len()?;
        let mut free_list = Vec::with_capacity(n);
        for _ in 0..n {
            let ppn = Ppn::new(r.get_u64()?);
            if ppn.raw() >= next_never_used {
                return Err(PoError::Corrupted("snapshot free list names never-used frame"));
            }
            free_list.push(ppn);
        }
        Ok(Self { total, next_never_used, free_list })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_recycles() {
        let mut a = FrameAllocator::new(2);
        let f1 = a.alloc().unwrap();
        let f2 = a.alloc().unwrap();
        assert_ne!(f1, f2);
        assert_eq!(a.alloc(), Err(PoError::OutOfMemory));
        a.free(f1);
        assert_eq!(a.alloc().unwrap(), f1);
    }

    #[test]
    fn contiguous_allocation_is_sequential() {
        let mut a = FrameAllocator::new(100);
        let base = a.alloc_contiguous(10).unwrap();
        let next = a.alloc().unwrap();
        assert_eq!(next.raw(), base.raw() + 10);
        assert_eq!(a.allocated(), 11);
    }

    #[test]
    fn frame_addr_is_direct() {
        assert_eq!(FrameAllocator::frame_addr(Ppn::new(3)).raw(), 3 * 4096);
    }

    #[test]
    fn exhaustion_of_contiguous() {
        let mut a = FrameAllocator::new(5);
        assert!(a.alloc_contiguous(6).is_err());
        assert!(a.alloc_contiguous(5).is_ok());
        assert!(a.alloc().is_err());
    }
}
