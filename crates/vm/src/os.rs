//! The OS model: processes, `fork`, and classic copy-on-write.
//!
//! This is the baseline mechanism of the paper's §2.2/Figure 3a: on
//! `fork`, parent and child share every frame read-only in CoW mode; the
//! first write to a shared page (1) allocates a new frame, (2) copies
//! the *entire* 4 KB page, and (3) remaps with a TLB shootdown — all on
//! the critical path of the write. `po-sim` charges the corresponding
//! latencies; `po-overlay` replaces this path with overlay-on-write.

use crate::frame::FrameAllocator;
use crate::page_table::{PageTable, Pte, PteFlags};
use po_dram::DataStore;
use po_telemetry::{Event as TelemetryEvent, TelemetrySink};
use po_types::geometry::PAGE_SIZE;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{
    Asid, Counter, FaultInjector, FaultSite, MainMemAddr, PoError, PoResult, Ppn, VirtAddr, Vpn,
};
use std::collections::HashMap;

/// Configuration of the VM substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VmConfig {
    /// Main-memory size in 4 KB frames (default: 1 GiB).
    pub total_frames: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        Self { total_frames: 1 << 18 } // 1 GiB
    }
}

/// What a write did (returned so the timing layer can charge it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct WriteOutcome {
    /// A copy-on-write fault copied a whole page.
    pub copied_page: bool,
    /// The frame newly allocated by the fault, if any.
    pub new_ppn: Option<Ppn>,
    /// The remap required a TLB shootdown.
    pub tlb_shootdown: bool,
}

/// OS statistics.
#[derive(Clone, Debug, Default)]
pub struct OsStats {
    /// `fork` calls.
    pub forks: Counter,
    /// Copy-on-write faults taken.
    pub cow_faults: Counter,
    /// Whole pages copied by CoW.
    pub pages_copied: Counter,
    /// Bytes copied by CoW.
    pub bytes_copied: Counter,
    /// TLB shootdowns issued by remaps.
    pub tlb_shootdowns: Counter,
    /// Frames handed out by [`OsModel::alloc_checked`]-guarded paths.
    pub frames_allocated: Counter,
    /// Contiguous chunks granted to the Overlay Memory Store (§4.4.3).
    pub oms_chunks_granted: Counter,
}

/// The OS model. See the [crate docs](crate) for a `fork` example.
#[derive(Clone, Debug)]
pub struct OsModel {
    allocator: FrameAllocator,
    processes: HashMap<Asid, PageTable>,
    refcounts: HashMap<Ppn, u32>,
    next_asid: u16,
    stats: OsStats,
    faults: FaultInjector,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl OsModel {
    /// Boots the OS model.
    pub fn new(config: VmConfig) -> Self {
        Self {
            allocator: FrameAllocator::new(config.total_frames),
            processes: HashMap::new(),
            refcounts: HashMap::new(),
            next_asid: 1,
            stats: OsStats::default(),
            faults: FaultInjector::none(),
            sink: TelemetrySink::noop(),
        }
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Installs a fault injector; [`FaultSite::OmsGrowRefused`] and
    /// [`FaultSite::FrameAllocExhausted`] are honored here.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = faults;
    }

    /// Returns OS statistics.
    pub fn stats(&self) -> &OsStats {
        &self.stats
    }

    /// Returns the frame allocator (memory-consumption accounting).
    pub fn allocator(&self) -> &FrameAllocator {
        &self.allocator
    }

    /// Creates a new, empty process.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::OutOfMemory`] if the 15-bit ASID space is
    /// exhausted.
    pub fn spawn(&mut self) -> PoResult<Asid> {
        if self.next_asid > Asid::MAX {
            return Err(PoError::OutOfMemory);
        }
        let asid = Asid::new(self.next_asid);
        self.next_asid += 1;
        self.processes.insert(asid, PageTable::new());
        Ok(asid)
    }

    /// Frame allocation with the [`FaultSite::FrameAllocExhausted`]
    /// guard: an injected fault makes the allocator report exhaustion
    /// without consuming capacity.
    fn alloc_checked(&mut self) -> PoResult<Ppn> {
        if self.faults.fire(FaultSite::FrameAllocExhausted) {
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "FrameAllocExhausted" });
            return Err(PoError::OutOfMemory);
        }
        self.stats.frames_allocated.inc();
        self.sink.count("os.frames_allocated", 1);
        self.allocator.alloc()
    }

    fn table(&self, asid: Asid) -> PoResult<&PageTable> {
        self.processes.get(&asid).ok_or(PoError::Corrupted("unknown process"))
    }

    fn table_mut(&mut self, asid: Asid) -> PoResult<&mut PageTable> {
        self.processes.get_mut(&asid).ok_or(PoError::Corrupted("unknown process"))
    }

    /// Maps a fresh anonymous (zero) page at `vpn`.
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn map_anonymous(&mut self, asid: Asid, vpn: Vpn, writable: bool) -> PoResult<Ppn> {
        let ppn = self.alloc_checked()?;
        self.refcounts.insert(ppn, 1);
        let pte = Pte {
            ppn,
            flags: PteFlags { present: true, writable, cow: false, overlay_enabled: false },
        };
        self.table_mut(asid)?.map(vpn, pte);
        Ok(ppn)
    }

    /// Maps a range of `count` anonymous pages starting at `start`.
    pub fn map_range(
        &mut self,
        asid: Asid,
        start: Vpn,
        count: u64,
        writable: bool,
    ) -> PoResult<()> {
        for i in 0..count {
            self.map_anonymous(asid, Vpn::new(start.raw() + i), writable)?;
        }
        Ok(())
    }

    /// Allocates a bare frame without mapping it (e.g. the shared zero
    /// page of the sparse-data technique). The frame starts with zero
    /// references; map it with [`OsModel::map_shared_frame`].
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn alloc_frame(&mut self) -> PoResult<Ppn> {
        let ppn = self.alloc_checked()?;
        self.refcounts.insert(ppn, 0);
        Ok(ppn)
    }

    /// Maps `vpn` to an existing frame, sharing it (read-only + CoW).
    /// Used by the sparse-data-structure technique (§5.2): "all virtual
    /// pages of the data structure map to a zero physical page".
    ///
    /// # Errors
    ///
    /// Returns an error if the process does not exist.
    pub fn map_shared_frame(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) -> PoResult<()> {
        *self.refcounts.entry(ppn).or_insert(0) += 1;
        let pte = Pte {
            ppn,
            flags: PteFlags { present: true, writable: false, cow: true, overlay_enabled: false },
        };
        self.table_mut(asid)?.map(vpn, pte);
        Ok(())
    }

    /// Enables overlay semantics on an existing mapping (the OS-visible
    /// switch of §1: overlays can be "turned on or off").
    pub fn enable_overlays(&mut self, asid: Asid, vpn: Vpn) -> PoResult<()> {
        let pte = self.table_mut(asid)?.entry_mut(vpn).ok_or(PoError::Unmapped(vpn.base()))?;
        pte.flags.overlay_enabled = true;
        Ok(())
    }

    /// `fork`: clones the parent's address space; every present page
    /// becomes shared copy-on-write in both parent and child (§2.2).
    ///
    /// # Errors
    ///
    /// Propagates ASID exhaustion.
    pub fn fork(&mut self, parent: Asid) -> PoResult<Asid> {
        let child = self.spawn()?;
        let entries = self.table(parent)?.iter();
        for (vpn, mut pte) in entries {
            if !pte.flags.present {
                continue;
            }
            *self.refcounts.entry(pte.ppn).or_insert(1) += 1;
            pte.flags.cow = true;
            pte.flags.writable = false;
            self.table_mut(parent)?.map(vpn, pte);
            self.table_mut(child)?.map(vpn, pte);
        }
        self.stats.forks.inc();
        Ok(child)
    }

    /// Translates `vaddr` in process `asid`.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Unmapped`] for an absent mapping.
    pub fn translate(&self, asid: Asid, vaddr: VirtAddr) -> PoResult<Pte> {
        self.table(asid)?
            .translate(vaddr)
            .filter(|p| p.flags.present)
            .ok_or(PoError::Unmapped(vaddr))
    }

    /// Physical byte address of `vaddr` in `asid`.
    pub fn phys_addr(&self, asid: Asid, vaddr: VirtAddr) -> PoResult<MainMemAddr> {
        let pte = self.translate(asid, vaddr)?;
        Ok(MainMemAddr::new(pte.ppn.base().raw() | vaddr.page_offset() as u64))
    }

    /// Reads one byte through the page tables.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Unmapped`] for an absent mapping.
    pub fn read(&self, asid: Asid, vaddr: VirtAddr, mem: &DataStore) -> PoResult<u8> {
        Ok(mem.read_byte(self.phys_addr(asid, vaddr)?))
    }

    /// Writes one byte through the page tables, taking a copy-on-write
    /// fault if needed. Returns what the fault did so the timing layer
    /// can charge it.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Unmapped`] for an absent mapping and
    /// [`PoError::ProtectionViolation`] for a write to a non-CoW
    /// read-only page.
    pub fn write(
        &mut self,
        asid: Asid,
        vaddr: VirtAddr,
        value: u8,
        mem: &mut DataStore,
    ) -> PoResult<WriteOutcome> {
        let outcome = self.prepare_write(asid, vaddr, mem)?;
        let pa = self.phys_addr(asid, vaddr)?;
        mem.write_byte(pa, value);
        Ok(outcome)
    }

    /// Resolves write permission for `vaddr`, performing the classic CoW
    /// copy if the page is shared. Does not write any data. This is the
    /// hook `po-sim` uses before timing the actual store.
    ///
    /// # Errors
    ///
    /// Same as [`OsModel::write`].
    pub fn prepare_write(
        &mut self,
        asid: Asid,
        vaddr: VirtAddr,
        mem: &mut DataStore,
    ) -> PoResult<WriteOutcome> {
        let vpn = vaddr.vpn();
        let pte = self.translate(asid, vaddr)?;
        if pte.flags.writable {
            return Ok(WriteOutcome::default());
        }
        if !pte.flags.cow {
            return Err(PoError::ProtectionViolation(vaddr));
        }
        self.stats.cow_faults.inc();
        let refs = self.refcounts.get(&pte.ppn).copied().unwrap_or(1);
        if refs == 1 {
            // Sole owner: just re-enable writes.
            let e = self
                .table_mut(asid)?
                .entry_mut(vpn)
                .ok_or(PoError::Corrupted("entry vanished between translate and update"))?;
            e.flags.cow = false;
            e.flags.writable = true;
            // Dropping CoW still requires the remap to be visible.
            self.stats.tlb_shootdowns.inc();
            return Ok(WriteOutcome { copied_page: false, new_ppn: None, tlb_shootdown: true });
        }
        // Shared: copy the whole page to a fresh frame (Figure 3a).
        let new_ppn = self.alloc_checked()?;
        mem.copy_frame(FrameAllocator::frame_addr(pte.ppn), FrameAllocator::frame_addr(new_ppn));
        *self
            .refcounts
            .get_mut(&pte.ppn)
            .ok_or(PoError::Corrupted("shared frame missing from refcounts"))? -= 1;
        self.refcounts.insert(new_ppn, 1);
        let e = self
            .table_mut(asid)?
            .entry_mut(vpn)
            .ok_or(PoError::Corrupted("entry vanished between translate and update"))?;
        e.ppn = new_ppn;
        e.flags.cow = false;
        e.flags.writable = true;
        self.stats.pages_copied.inc();
        self.stats.bytes_copied.add(PAGE_SIZE as u64);
        self.stats.tlb_shootdowns.inc();
        Ok(WriteOutcome { copied_page: true, new_ppn: Some(new_ppn), tlb_shootdown: true })
    }

    /// Unmaps a page, freeing its frame when the last reference drops.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Unmapped`] if the page was not mapped.
    pub fn unmap(&mut self, asid: Asid, vpn: Vpn, mem: &mut DataStore) -> PoResult<()> {
        let pte = self.table_mut(asid)?.unmap(vpn).ok_or(PoError::Unmapped(vpn.base()))?;
        let refs = self.refcounts.entry(pte.ppn).or_insert(1);
        *refs -= 1;
        if *refs == 0 {
            self.refcounts.remove(&pte.ppn);
            mem.free_frame(FrameAllocator::frame_addr(pte.ppn));
            self.allocator.free(pte.ppn);
        }
        Ok(())
    }

    /// Destroys a process, releasing all its frames.
    ///
    /// # Errors
    ///
    /// Returns an error if the process does not exist.
    pub fn kill(&mut self, asid: Asid, mem: &mut DataStore) -> PoResult<()> {
        let table = self.processes.remove(&asid).ok_or(PoError::Corrupted("unknown process"))?;
        for (_, pte) in table.iter() {
            let refs = self.refcounts.entry(pte.ppn).or_insert(1);
            *refs -= 1;
            if *refs == 0 {
                self.refcounts.remove(&pte.ppn);
                mem.free_frame(FrameAllocator::frame_addr(pte.ppn));
                self.allocator.free(pte.ppn);
            }
        }
        Ok(())
    }

    /// Grants the memory controller a contiguous chunk of `frames` frames
    /// for the Overlay Memory Store (§4.4.3: "the OS proactively
    /// allocates a chunk of free pages to the memory controller").
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn grant_oms_chunk(&mut self, frames: u64) -> PoResult<MainMemAddr> {
        if self.faults.fire(FaultSite::OmsGrowRefused) {
            // The OS is under memory pressure and declines to grow the
            // OMS (§4.4.3); the manager must reclaim or fail the access.
            self.sink.emit(|| TelemetryEvent::FaultInjected { site: "OmsGrowRefused" });
            return Err(PoError::OutOfMemory);
        }
        self.stats.oms_chunks_granted.inc();
        self.sink.count("os.oms_chunks_granted", 1);
        let base = self.allocator.alloc_contiguous(frames)?;
        Ok(FrameAllocator::frame_addr(base))
    }

    /// Number of frames currently allocated (memory-footprint metric for
    /// Figure 8).
    pub fn frames_allocated(&self) -> u64 {
        self.allocator.allocated()
    }

    /// Every mapped page of a process, in VPN order.
    ///
    /// # Errors
    ///
    /// Returns an error if the process does not exist.
    pub fn pages(&self, asid: Asid) -> PoResult<Vec<(Vpn, Pte)>> {
        Ok(self.table(asid)?.iter())
    }

    /// Serializes the OS model (allocator, page tables, refcounts,
    /// stats). Maps are emitted in sorted key order so the encoding is
    /// byte-stable. The fault injector is *not* serialized here — the
    /// machine snapshots it once and redistributes it on restore.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.allocator.encode_snapshot(w);
        w.put_u16(self.next_asid);
        let mut asids: Vec<Asid> = self.processes.keys().copied().collect();
        asids.sort_unstable_by_key(|a| a.raw());
        w.put_len(asids.len());
        for asid in asids {
            w.put_u16(asid.raw());
            let entries = self.processes[&asid].iter();
            w.put_len(entries.len());
            for (vpn, pte) in entries {
                w.put_u64(vpn.raw());
                w.put_u64(pte.ppn.raw());
                let f = pte.flags;
                w.put_u8(
                    f.present as u8
                        | (f.writable as u8) << 1
                        | (f.cow as u8) << 2
                        | (f.overlay_enabled as u8) << 3,
                );
            }
        }
        let mut refs: Vec<(u64, u32)> = self.refcounts.iter().map(|(p, c)| (p.raw(), *c)).collect();
        refs.sort_unstable();
        w.put_len(refs.len());
        for (ppn, count) in refs {
            w.put_u64(ppn);
            w.put_u32(count);
        }
        for c in [
            &self.stats.forks,
            &self.stats.cow_faults,
            &self.stats.pages_copied,
            &self.stats.bytes_copied,
            &self.stats.tlb_shootdowns,
            &self.stats.frames_allocated,
            &self.stats.oms_chunks_granted,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds an OS model from [`encode_snapshot`] bytes. The restored
    /// model carries an inert fault injector; install the machine's via
    /// [`OsModel::set_fault_injector`].
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on truncation or malformed data.
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        let allocator = FrameAllocator::decode_snapshot(r)?;
        let next_asid = r.get_u16()?;
        let nproc = r.get_len()?;
        let mut processes = HashMap::with_capacity(nproc);
        for _ in 0..nproc {
            let raw_asid = r.get_u16()?;
            if raw_asid > Asid::MAX {
                return Err(PoError::Corrupted("snapshot ASID exceeds 15 bits"));
            }
            let asid = Asid::new(raw_asid);
            let n = r.get_len()?;
            let mut table = PageTable::new();
            for _ in 0..n {
                let vpn = Vpn::new(r.get_u64()?);
                let ppn = Ppn::new(r.get_u64()?);
                let f = r.get_u8()?;
                if f & !0xF != 0 {
                    return Err(PoError::Corrupted("snapshot PTE flags have unknown bits"));
                }
                let flags = PteFlags {
                    present: f & 1 != 0,
                    writable: f & 2 != 0,
                    cow: f & 4 != 0,
                    overlay_enabled: f & 8 != 0,
                };
                table.map(vpn, Pte { ppn, flags });
            }
            processes.insert(asid, table);
        }
        let nrefs = r.get_len()?;
        let mut refcounts = HashMap::with_capacity(nrefs);
        for _ in 0..nrefs {
            let ppn = Ppn::new(r.get_u64()?);
            refcounts.insert(ppn, r.get_u32()?);
        }
        let mut stats = OsStats::default();
        for c in [
            &mut stats.forks,
            &mut stats.cow_faults,
            &mut stats.pages_copied,
            &mut stats.bytes_copied,
            &mut stats.tlb_shootdowns,
            &mut stats.frames_allocated,
            &mut stats.oms_chunks_granted,
        ] {
            c.add(r.get_u64()?);
        }
        Ok(Self {
            allocator,
            processes,
            refcounts,
            next_asid,
            stats,
            faults: FaultInjector::none(),
            sink: TelemetrySink::noop(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (OsModel, DataStore, Asid) {
        let mut os = OsModel::new(VmConfig { total_frames: 4096 });
        let mem = DataStore::new();
        let p = os.spawn().unwrap();
        (os, mem, p)
    }

    #[test]
    fn unmapped_access_faults() {
        let (mut os, mut mem, p) = setup();
        let va = VirtAddr::new(0x5000);
        assert!(matches!(os.read(p, va, &mem), Err(PoError::Unmapped(_))));
        assert!(matches!(os.write(p, va, 1, &mut mem), Err(PoError::Unmapped(_))));
    }

    #[test]
    fn write_read_roundtrip() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(4), true).unwrap();
        let va = VirtAddr::new(4 * 4096 + 17);
        os.write(p, va, 0xCD, &mut mem).unwrap();
        assert_eq!(os.read(p, va, &mem).unwrap(), 0xCD);
    }

    #[test]
    fn fork_shares_then_copies_on_write() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(1), true).unwrap();
        let va = VirtAddr::new(0x1000);
        os.write(p, va, 7, &mut mem).unwrap();

        let frames_before = os.frames_allocated();
        let c = os.fork(p).unwrap();
        assert_eq!(os.frames_allocated(), frames_before, "fork allocates nothing");

        // Both see the pre-fork data.
        assert_eq!(os.read(p, va, &mem).unwrap(), 7);
        assert_eq!(os.read(c, va, &mem).unwrap(), 7);

        // Parent write triggers a full-page copy.
        let out = os.write(p, va, 9, &mut mem).unwrap();
        assert!(out.copied_page);
        assert!(out.tlb_shootdown);
        assert_eq!(os.frames_allocated(), frames_before + 1);

        // Isolation: child still sees the old value.
        assert_eq!(os.read(p, va, &mem).unwrap(), 9);
        assert_eq!(os.read(c, va, &mem).unwrap(), 7);
    }

    #[test]
    fn sole_owner_cow_skips_the_copy() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(1), true).unwrap();
        os.write(p, VirtAddr::new(0x1000), 5, &mut mem).unwrap();
        let c = os.fork(p).unwrap();
        // Parent copies on its write...
        os.write(p, VirtAddr::new(0x1000), 6, &mut mem).unwrap();
        let frames = os.frames_allocated();
        // ...after which the child is sole owner: its write must not copy.
        let out = os.write(c, VirtAddr::new(0x1000), 8, &mut mem).unwrap();
        assert!(!out.copied_page);
        assert_eq!(os.frames_allocated(), frames);
        assert_eq!(os.read(c, VirtAddr::new(0x1000), &mem).unwrap(), 8);
    }

    #[test]
    fn second_write_to_same_page_is_fault_free() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(1), true).unwrap();
        let _c = os.fork(p).unwrap();
        os.write(p, VirtAddr::new(0x1000), 1, &mut mem).unwrap();
        let out = os.write(p, VirtAddr::new(0x1040), 2, &mut mem).unwrap();
        assert!(!out.copied_page, "page already private");
        assert_eq!(os.stats().pages_copied.get(), 1);
    }

    #[test]
    fn write_to_plain_readonly_page_is_a_violation() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(2), false).unwrap();
        assert!(matches!(
            os.write(p, VirtAddr::new(0x2000), 1, &mut mem),
            Err(PoError::ProtectionViolation(_))
        ));
    }

    #[test]
    fn unmap_frees_frames_when_last_ref_drops() {
        let (mut os, mut mem, p) = setup();
        os.map_anonymous(p, Vpn::new(1), true).unwrap();
        let c = os.fork(p).unwrap();
        let before = os.frames_allocated();
        os.unmap(p, Vpn::new(1), &mut mem).unwrap();
        assert_eq!(os.frames_allocated(), before, "child still references the frame");
        os.unmap(c, Vpn::new(1), &mut mem).unwrap();
        assert_eq!(os.frames_allocated(), before - 1);
    }

    #[test]
    fn kill_releases_everything() {
        let (mut os, mut mem, p) = setup();
        os.map_range(p, Vpn::new(0), 10, true).unwrap();
        assert_eq!(os.frames_allocated(), 10);
        os.kill(p, &mut mem).unwrap();
        assert_eq!(os.frames_allocated(), 0);
    }

    #[test]
    fn map_range_maps_each_page() {
        let (mut os, mut mem, p) = setup();
        os.map_range(p, Vpn::new(100), 4, true).unwrap();
        for i in 0..4u64 {
            os.write(p, VirtAddr::new((100 + i) * 4096), i as u8, &mut mem).unwrap();
        }
        for i in 0..4u64 {
            assert_eq!(os.read(p, VirtAddr::new((100 + i) * 4096), &mem).unwrap(), i as u8);
        }
    }

    #[test]
    fn grant_oms_chunk_consumes_frames() {
        let (mut os, _mem, _p) = setup();
        let before = os.frames_allocated();
        let addr = os.grant_oms_chunk(16).unwrap();
        assert_eq!(addr.page_offset(), 0);
        assert_eq!(os.frames_allocated(), before + 16);
    }

    #[test]
    fn enable_overlays_sets_flag() {
        let (mut os, _mem, p) = setup();
        os.map_anonymous(p, Vpn::new(3), true).unwrap();
        os.enable_overlays(p, Vpn::new(3)).unwrap();
        assert!(os.translate(p, VirtAddr::new(0x3000)).unwrap().flags.overlay_enabled);
    }
}
