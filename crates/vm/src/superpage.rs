//! 2 MB super-page mappings.
//!
//! Substrate for the paper's *flexible super-pages* technique (§5.3.5):
//! a super-page normally maps 512 consecutive 4 KB pages with a single
//! higher-level page-table entry; the overlay mechanism lets the OS remap
//! *segments* of a super-page individually (the technique itself lives in
//! `po-techniques::superpage`, built on this type).

use po_types::{Ppn, Vpn};

/// Number of 4 KB pages in a 2 MB super-page.
pub const SUPERPAGE_PAGES: usize = 512;

/// A 2 MB super-page mapping: `SUPERPAGE_PAGES` consecutive virtual pages
/// backed by consecutive physical frames.
///
/// # Example
///
/// ```
/// use po_vm::{SuperPageMapping, SUPERPAGE_PAGES};
/// use po_types::{Ppn, Vpn};
///
/// let sp = SuperPageMapping::new(Vpn::new(512), Ppn::new(0x1000)).unwrap();
/// assert_eq!(sp.translate(Vpn::new(512 + 5)), Some(Ppn::new(0x1005)));
/// assert_eq!(sp.translate(Vpn::new(511)), None);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuperPageMapping {
    base_vpn: Vpn,
    base_ppn: Ppn,
    /// Whether writes are permitted.
    pub writable: bool,
}

impl SuperPageMapping {
    /// Creates a super-page mapping. Both base page numbers must be
    /// 512-page (2 MB) aligned.
    ///
    /// Returns `None` if either base is misaligned.
    pub fn new(base_vpn: Vpn, base_ppn: Ppn) -> Option<Self> {
        if !base_vpn.raw().is_multiple_of(SUPERPAGE_PAGES as u64)
            || !base_ppn.raw().is_multiple_of(SUPERPAGE_PAGES as u64)
        {
            return None;
        }
        Some(Self { base_vpn, base_ppn, writable: true })
    }

    /// Base virtual page.
    pub fn base_vpn(&self) -> Vpn {
        self.base_vpn
    }

    /// Base physical frame.
    pub fn base_ppn(&self) -> Ppn {
        self.base_ppn
    }

    /// Returns `true` if `vpn` falls inside this super-page.
    pub fn covers(&self, vpn: Vpn) -> bool {
        let delta = vpn.raw().wrapping_sub(self.base_vpn.raw());
        delta < SUPERPAGE_PAGES as u64
    }

    /// Index of `vpn` within the super-page (0..512), if covered.
    pub fn index_of(&self, vpn: Vpn) -> Option<usize> {
        self.covers(vpn).then(|| (vpn.raw() - self.base_vpn.raw()) as usize)
    }

    /// Translates a covered `vpn` to its frame.
    pub fn translate(&self, vpn: Vpn) -> Option<Ppn> {
        self.index_of(vpn).map(|i| Ppn::new(self.base_ppn.raw() + i as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_enforced() {
        assert!(SuperPageMapping::new(Vpn::new(1), Ppn::new(0)).is_none());
        assert!(SuperPageMapping::new(Vpn::new(0), Ppn::new(5)).is_none());
        assert!(SuperPageMapping::new(Vpn::new(1024), Ppn::new(512)).is_some());
    }

    #[test]
    fn coverage_and_translation() {
        let sp = SuperPageMapping::new(Vpn::new(1024), Ppn::new(2048)).unwrap();
        assert!(sp.covers(Vpn::new(1024)));
        assert!(sp.covers(Vpn::new(1535)));
        assert!(!sp.covers(Vpn::new(1536)));
        assert!(!sp.covers(Vpn::new(1023)));
        assert_eq!(sp.translate(Vpn::new(1100)), Some(Ppn::new(2048 + 76)));
        assert_eq!(sp.index_of(Vpn::new(1535)), Some(511));
    }
}
