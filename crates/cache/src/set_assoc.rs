//! A generic set-associative, write-back / write-allocate cache.
//!
//! Tags are full 64-bit line addresses, so addresses from the overlay
//! address space (MSB set, §4.1 of the paper) are cached exactly like
//! regular physical addresses — the property that lets the paper's design
//! treat overlay cache accesses "very similarly to regular cache
//! accesses" (§3.3). The extra tag width is charged as hardware cost in
//! `po-sim::config::hardware_cost`.

use crate::config::CacheConfig;
use crate::replacement::Replacement;
use po_types::{Counter, PhysAddr};

/// A line evicted by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Line base address of the victim.
    pub addr: PhysAddr,
    /// Whether the victim was dirty (must be written back).
    pub dirty: bool,
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64, // full line address
    valid: bool,
    dirty: bool,
}

/// Per-cache statistics.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    /// Lookup hits.
    pub hits: Counter,
    /// Lookup misses.
    pub misses: Counter,
    /// Fills performed.
    pub fills: Counter,
    /// Dirty evictions (writebacks generated).
    pub writebacks: Counter,
}

impl CacheStats {
    /// Hit rate over all lookups.
    pub fn hit_rate(&self) -> f64 {
        po_types::stats::ratio(self.hits.get(), self.hits.get() + self.misses.get())
    }
}

/// The cache structure.
///
/// # Example
///
/// ```
/// use po_cache::{CacheConfig, SetAssocCache};
/// use po_types::PhysAddr;
///
/// let mut c = SetAssocCache::new(CacheConfig::table2_l1());
/// let a = PhysAddr::new(0x1040);
/// assert!(!c.access(a, false));
/// c.fill(a, false);
/// assert!(c.access(a, true)); // write hit marks the line dirty
/// assert_eq!(c.invalidate_line(a), Some(true));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: usize,
    ways: Vec<Way>, // sets * config.ways
    replacement: Replacement,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero sets or ways.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        assert!(sets > 0 && config.ways > 0, "degenerate cache geometry");
        let replacement = Replacement::new(config.policy, sets, config.ways);
        Self {
            sets,
            ways: vec![Way::default(); sets * config.ways],
            replacement,
            stats: CacheStats::default(),
            config,
        }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn line_tag(addr: PhysAddr) -> u64 {
        addr.line_base().raw()
    }

    #[inline]
    fn set_of(&self, addr: PhysAddr) -> usize {
        ((addr.raw() >> po_types::geometry::LINE_SHIFT) % self.sets as u64) as usize
    }

    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        let base = set * self.config.ways;
        (0..self.config.ways).find(|&w| {
            let way = &self.ways[base + w];
            way.valid && way.tag == tag
        })
    }

    /// Looks up `addr`; on a hit updates replacement state and, if
    /// `is_write`, marks the line dirty. Returns whether the line was
    /// present.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> bool {
        let set = self.set_of(addr);
        let tag = Self::line_tag(addr);
        match self.find(set, tag) {
            Some(w) => {
                self.stats.hits.inc();
                self.replacement.on_hit(set, w);
                if is_write {
                    self.ways[set * self.config.ways + w].dirty = true;
                }
                true
            }
            None => {
                self.stats.misses.inc();
                false
            }
        }
    }

    /// Checks for presence without perturbing replacement state or stats.
    pub fn probe(&self, addr: PhysAddr) -> bool {
        let set = self.set_of(addr);
        self.find(set, Self::line_tag(addr)).is_some()
    }

    /// Installs the line containing `addr`, evicting a victim if the set
    /// is full. Returns the victim if one was displaced.
    pub fn fill(&mut self, addr: PhysAddr, dirty: bool) -> Option<Evicted> {
        let set = self.set_of(addr);
        let tag = Self::line_tag(addr);
        self.stats.fills.inc();
        if let Some(w) = self.find(set, tag) {
            // Already present (e.g. racing prefetch): just update state.
            let way = &mut self.ways[set * self.config.ways + w];
            way.dirty |= dirty;
            self.replacement.on_hit(set, w);
            return None;
        }
        let base = set * self.config.ways;
        let valid: Vec<bool> = (0..self.config.ways).map(|w| self.ways[base + w].valid).collect();
        let victim_way = self.replacement.victim(set, &valid);
        let victim = {
            let way = &self.ways[base + victim_way];
            if way.valid {
                Some(Evicted { addr: PhysAddr::new(way.tag), dirty: way.dirty })
            } else {
                None
            }
        };
        if let Some(v) = victim {
            if v.dirty {
                self.stats.writebacks.inc();
            }
        }
        self.ways[base + victim_way] = Way { tag, valid: true, dirty };
        self.replacement.on_fill(set, victim_way);
        victim
    }

    /// Re-tags a resident line from `old` to `new` without moving data —
    /// the hardware operation the paper uses for an overlaying write
    /// (§4.3.3: "simply updating the cache tag to correspond to the
    /// overlay page number"). The dirty bit is preserved and the line is
    /// re-indexed into `new`'s set. Returns the victim displaced from the
    /// destination set, if any, or `None` if `old` was not resident.
    pub fn retag(&mut self, old: PhysAddr, new: PhysAddr) -> Option<Evicted> {
        let dirty = self.invalidate_line(old)?;
        self.fill(new, dirty)
    }

    /// Removes the line containing `addr`, returning `Some(dirty)` if it
    /// was present. (Primary invalidation entry point.)
    pub fn invalidate_line(&mut self, addr: PhysAddr) -> Option<bool> {
        let set = self.set_of(addr);
        let tag = Self::line_tag(addr);
        let w = self.find(set, tag)?;
        let way = &mut self.ways[set * self.config.ways + w];
        let dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        Some(dirty)
    }

    /// Iterates over all resident line addresses (diagnostics and
    /// invariants).
    pub fn resident_lines(&self) -> impl Iterator<Item = PhysAddr> + '_ {
        self.ways.iter().filter(|w| w.valid).map(|w| PhysAddr::new(w.tag))
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Serializes tags, valid/dirty bits, replacement state and stats.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        for way in &self.ways {
            w.put_u64(way.tag);
            w.put_bool(way.valid);
            w.put_bool(way.dirty);
        }
        self.replacement.encode_snapshot(w);
        for c in [&self.stats.hits, &self.stats.misses, &self.stats.fills, &self.stats.writebacks] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a cache with `config` geometry from [`encode_snapshot`]
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation or
    /// malformed data; pass the same config the snapshot was taken with.
    pub fn decode_snapshot(
        config: CacheConfig,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut cache = Self::new(config);
        for way in cache.ways.iter_mut() {
            way.tag = r.get_u64()?;
            way.valid = r.get_bool()?;
            way.dirty = r.get_bool()?;
        }
        cache.replacement =
            Replacement::decode_snapshot(cache.config.policy, cache.sets, cache.config.ways, r)?;
        let mut stats = CacheStats::default();
        for c in [&mut stats.hits, &mut stats.misses, &mut stats.fills, &mut stats.writebacks] {
            c.add(r.get_u64()?);
        }
        cache.stats = stats;
        Ok(cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replacement::PolicyKind;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheConfig {
            capacity_bytes: 1024, // 16 lines
            ways: 2,              // 8 sets
            tag_latency: 1,
            data_latency: 2,
            parallel_tag_data: true,
            policy: PolicyKind::Lru,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let a = PhysAddr::new(0x40);
        assert!(!c.access(a, false));
        assert!(c.fill(a, false).is_none());
        assert!(c.access(a, false));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
    }

    #[test]
    fn write_hit_sets_dirty_and_eviction_reports_it() {
        let mut c = small();
        let a = PhysAddr::new(0x40);
        c.fill(a, false);
        c.access(a, true);
        // Force eviction: fill two more lines mapping to the same set.
        let sets = c.config().sets() as u64;
        let stride = sets * 64;
        let b = PhysAddr::new(0x40 + stride);
        let d = PhysAddr::new(0x40 + 2 * stride);
        c.fill(b, false);
        let evicted = c.fill(d, false).expect("set of 2 ways must evict");
        assert_eq!(evicted.addr, a.line_base());
        assert!(evicted.dirty);
        assert_eq!(c.stats().writebacks.get(), 1);
    }

    #[test]
    fn probe_does_not_touch_stats() {
        let mut c = small();
        let a = PhysAddr::new(0x100);
        c.fill(a, false);
        assert!(c.probe(a));
        assert!(!c.probe(PhysAddr::new(0x9000)));
        assert_eq!(c.stats().hits.get(), 0);
        assert_eq!(c.stats().misses.get(), 0);
    }

    #[test]
    fn invalidate_line_returns_dirty_state() {
        let mut c = small();
        let a = PhysAddr::new(0x200);
        c.fill(a, true);
        assert_eq!(c.invalidate_line(a), Some(true));
        assert_eq!(c.invalidate_line(a), None);
        assert!(!c.access(a, false));
    }

    #[test]
    fn retag_moves_line_and_preserves_dirty() {
        let mut c = small();
        let old = PhysAddr::new(0x40);
        let new = PhysAddr::new((1 << 63) | 0x40); // overlay-space twin
        c.fill(old, false);
        c.access(old, true); // dirty
        c.retag(old, new);
        assert!(!c.probe(old));
        assert!(c.probe(new));
        assert_eq!(c.invalidate_line(new), Some(true));
    }

    #[test]
    fn retag_of_absent_line_is_noop() {
        let mut c = small();
        assert!(c.retag(PhysAddr::new(0x40), PhysAddr::new(0x80)).is_none());
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn overlay_and_regular_twins_coexist() {
        // Same low bits, different MSB: both must be cacheable at once,
        // which is exactly why tags must be wide (§4.5).
        let mut c = small();
        let reg = PhysAddr::new(0x40);
        let ovl = PhysAddr::new((1 << 63) | 0x40);
        c.fill(reg, false);
        c.fill(ovl, false);
        assert!(c.probe(reg));
        assert!(c.probe(ovl));
    }

    #[test]
    fn duplicate_fill_does_not_duplicate() {
        let mut c = small();
        let a = PhysAddr::new(0x340);
        c.fill(a, false);
        c.fill(a, true);
        assert_eq!(c.occupancy(), 1);
        // dirty bit merged
        assert_eq!(c.invalidate_line(a), Some(true));
    }

    #[test]
    fn occupancy_and_resident_iteration() {
        let mut c = small();
        for i in 0..5u64 {
            c.fill(PhysAddr::new(i * 64), false);
        }
        assert_eq!(c.occupancy(), 5);
        assert_eq!(c.resident_lines().count(), 5);
    }
}
