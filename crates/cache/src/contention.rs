//! Shared L3 bank-queue contention model for multi-core runs.
//!
//! The L3 is banked; concurrent accesses from different cores that map
//! to the same bank serialize on the bank's tag/data port. Single-core
//! runs never queue (each access starts after the previous one
//! retires), so the machine only instantiates this model when more
//! than one core is configured — the queue then *stretches* access
//! latency by the time the target bank is still busy with an earlier
//! access from another core.
//!
//! The model is deliberately simple and fully deterministic: one
//! `busy_until` horizon per bank, advanced in simulated-cycle order by
//! the scheduler's interleaving. No host-time or thread-count input
//! exists, so merged exports stay byte-identical at any parallelism.

use po_types::{Cycle, PhysAddr};

/// Queueing model for a banked shared L3.
#[derive(Clone, Debug)]
pub struct L3BankQueue {
    /// Per-bank busy horizon: the cycle at which the bank next accepts
    /// a request.
    busy_until: Vec<Cycle>,
    /// Cycles one access occupies its bank (tag + data port).
    occupancy: u64,
}

impl L3BankQueue {
    /// A queue over `banks` banks, each held `occupancy` cycles per
    /// access.
    pub fn new(banks: usize, occupancy: u64) -> Self {
        Self { busy_until: vec![0; banks.max(1)], occupancy }
    }

    fn bank_of(&self, addr: PhysAddr) -> usize {
        let line = addr.raw() / po_types::geometry::LINE_SIZE as u64;
        (line % self.busy_until.len() as u64) as usize
    }

    /// Admits an access to the bank holding `addr`'s line at `now`.
    /// Returns the queueing delay (0 when the bank is idle) and marks
    /// the bank busy for `occupancy` cycles starting when the access
    /// actually proceeds.
    pub fn admit(&mut self, now: Cycle, addr: PhysAddr) -> u64 {
        let bank = self.bank_of(addr);
        let start = now.max(self.busy_until[bank]);
        self.busy_until[bank] = start + self.occupancy;
        start - now
    }

    /// Serializes the bank horizons (geometry comes from config).
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        for &b in &self.busy_until {
            w.put_u64(b);
        }
    }

    /// Rebuilds a queue with the given geometry from
    /// [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation.
    pub fn decode_snapshot(
        banks: usize,
        occupancy: u64,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut q = Self::new(banks, occupancy);
        for b in q.busy_until.iter_mut() {
            *b = r.get_u64()?;
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bank_admits_without_delay() {
        let mut q = L3BankQueue::new(8, 4);
        assert_eq!(q.admit(100, PhysAddr::new(0)), 0);
    }

    #[test]
    fn same_bank_back_to_back_queues() {
        let mut q = L3BankQueue::new(8, 4);
        let a = PhysAddr::new(0);
        assert_eq!(q.admit(100, a), 0);
        // Second access at the same instant waits out the occupancy.
        assert_eq!(q.admit(100, a), 4);
        // Third waits behind both.
        assert_eq!(q.admit(100, a), 8);
    }

    #[test]
    fn different_banks_do_not_interfere() {
        let mut q = L3BankQueue::new(8, 4);
        assert_eq!(q.admit(100, PhysAddr::new(0)), 0);
        // Next line maps to the next bank.
        assert_eq!(q.admit(100, PhysAddr::new(64)), 0);
    }

    #[test]
    fn delay_expires_with_time() {
        let mut q = L3BankQueue::new(8, 4);
        let a = PhysAddr::new(0);
        q.admit(100, a);
        assert_eq!(q.admit(104, a), 0, "bank is free again after occupancy");
    }

    #[test]
    fn snapshot_round_trips() {
        let mut q = L3BankQueue::new(4, 7);
        q.admit(10, PhysAddr::new(0));
        q.admit(10, PhysAddr::new(64));
        let mut w = po_types::SnapshotWriter::new();
        q.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = po_types::SnapshotReader::new(&bytes);
        let mut q2 = L3BankQueue::decode_snapshot(4, 7, &mut r).unwrap();
        assert_eq!(q2.admit(10, PhysAddr::new(0)), q.admit(10, PhysAddr::new(0)));
    }
}
