//! # po-cache — the three-level cache hierarchy of Table 2
//!
//! Implements the processor-side cache system the paper simulates:
//!
//! * a generic set-associative, write-back/write-allocate cache
//!   ([`SetAssocCache`]) with **wide tags** that accommodate the overlay
//!   address space (the paper widens every cache tag by 16 bits, §4.5 —
//!   tags here are full 64-bit line addresses, so overlay addresses are
//!   first-class),
//! * two replacement policies: classic **LRU** (L1/L2) and **DRRIP**
//!   (last-level cache, per Table 2) with 2-bit re-reference prediction
//!   values and set dueling ([`replacement`]),
//! * a **multi-stream prefetcher** modeled after the IBM POWER6-style
//!   stream engine the paper configures: 16 streams, degree 4, distance
//!   24, trained by L2 misses, filling into L3 ([`StreamPrefetcher`]),
//! * the assembled hierarchy ([`CacheHierarchy`]) producing per-access
//!   latency, writeback traffic, and prefetch requests.
//!
//! Caches here are *timing/state* models: they track tags, dirtiness and
//! replacement state. Data movement is handled by the functional layer
//! (`po-dram::DataStore` plus the overlay manager), keeping timing and
//! function independently testable.
//!
//! # Example
//!
//! ```
//! use po_cache::{CacheHierarchy, HierarchyConfig, LookupResult};
//! use po_types::{AccessKind, PhysAddr};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::table2());
//! let a = PhysAddr::new(0x4000);
//! let miss = h.access(a, AccessKind::Read);
//! assert!(matches!(miss.result, LookupResult::Miss));
//! h.fill(a, false);
//! let hit = h.access(a, AccessKind::Read);
//! assert!(matches!(hit.result, LookupResult::Hit { .. }));
//! assert!(hit.latency < miss.latency);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod contention;
pub mod hierarchy;
pub mod prefetch;
pub mod replacement;
pub mod set_assoc;

pub use config::{CacheConfig, HierarchyConfig, PrefetcherConfig};
pub use contention::L3BankQueue;
pub use hierarchy::{AccessOutcome, CacheHierarchy, HierarchyStats, Level, LookupResult};
pub use prefetch::StreamPrefetcher;
pub use replacement::PolicyKind;
pub use set_assoc::{CacheStats, Evicted, SetAssocCache};
