//! Cache and prefetcher configuration (Table 2 of the paper).

use crate::replacement::PolicyKind;

/// Geometry and latency of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Tag-lookup latency in cycles.
    pub tag_latency: u64,
    /// Data-array latency in cycles.
    pub data_latency: u64,
    /// `true` if tag and data are looked up in parallel (hit latency =
    /// max(tag, data)); `false` for serial lookup (hit latency = tag +
    /// data). Table 2: L1/L2 parallel, L3 serial.
    pub parallel_tag_data: bool,
    /// Replacement policy.
    pub policy: PolicyKind,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / po_types::geometry::LINE_SIZE / self.ways
    }

    /// Latency of a hit at this level.
    pub fn hit_latency(&self) -> u64 {
        if self.parallel_tag_data {
            self.tag_latency.max(self.data_latency)
        } else {
            self.tag_latency + self.data_latency
        }
    }

    /// Latency consumed determining a miss at this level (the tag lookup).
    pub fn miss_detect_latency(&self) -> u64 {
        self.tag_latency
    }

    /// Table 2 L1: 64 KB, 4-way, tag/data 1/2 cycles, parallel, LRU.
    pub fn table2_l1() -> Self {
        Self {
            capacity_bytes: 64 * 1024,
            ways: 4,
            tag_latency: 1,
            data_latency: 2,
            parallel_tag_data: true,
            policy: PolicyKind::Lru,
        }
    }

    /// Table 2 L2: 512 KB, 8-way, tag/data 2/8 cycles, parallel, LRU.
    pub fn table2_l2() -> Self {
        Self {
            capacity_bytes: 512 * 1024,
            ways: 8,
            tag_latency: 2,
            data_latency: 8,
            parallel_tag_data: true,
            policy: PolicyKind::Lru,
        }
    }

    /// Table 2 L3: 2 MB, 16-way, tag/data 10/24 cycles, serial, DRRIP.
    pub fn table2_l3() -> Self {
        Self {
            capacity_bytes: 2 * 1024 * 1024,
            ways: 16,
            tag_latency: 10,
            data_latency: 24,
            parallel_tag_data: false,
            policy: PolicyKind::Drrip,
        }
    }
}

/// Stream-prefetcher parameters (Table 2: 16 entries, degree 4,
/// distance 24, monitors L2 misses, prefetches into L3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetcherConfig {
    /// Number of concurrently tracked streams.
    pub streams: usize,
    /// Lines fetched per trigger.
    pub degree: usize,
    /// Maximum lines the stream may run ahead of demand.
    pub distance: usize,
    /// Whether the prefetcher is enabled (ablation hook).
    pub enabled: bool,
}

impl PrefetcherConfig {
    /// The Table 2 configuration.
    pub fn table2() -> Self {
        Self { streams: 16, degree: 4, distance: 24, enabled: true }
    }

    /// A disabled prefetcher (for ablations).
    pub fn disabled() -> Self {
        Self { enabled: false, ..Self::table2() }
    }
}

/// Configuration of the whole three-level hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level cache.
    pub l1: CacheConfig,
    /// Second-level cache.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub l3: CacheConfig,
    /// Stream prefetcher.
    pub prefetcher: PrefetcherConfig,
}

impl HierarchyConfig {
    /// The full Table 2 hierarchy.
    pub fn table2() -> Self {
        Self {
            l1: CacheConfig::table2_l1(),
            l2: CacheConfig::table2_l2(),
            l3: CacheConfig::table2_l3(),
            prefetcher: PrefetcherConfig::table2(),
        }
    }

    /// A tiny hierarchy for fast unit tests (same structure, 256x smaller).
    pub fn tiny() -> Self {
        Self {
            l1: CacheConfig { capacity_bytes: 1024, ways: 2, ..CacheConfig::table2_l1() },
            l2: CacheConfig { capacity_bytes: 4096, ways: 4, ..CacheConfig::table2_l2() },
            l3: CacheConfig { capacity_bytes: 16384, ways: 4, ..CacheConfig::table2_l3() },
            prefetcher: PrefetcherConfig::table2(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_geometry() {
        let h = HierarchyConfig::table2();
        assert_eq!(h.l1.sets(), 256);
        assert_eq!(h.l2.sets(), 1024);
        assert_eq!(h.l3.sets(), 2048);
    }

    #[test]
    fn hit_latencies_match_paper() {
        let h = HierarchyConfig::table2();
        assert_eq!(h.l1.hit_latency(), 2); // parallel 1/2
        assert_eq!(h.l2.hit_latency(), 8); // parallel 2/8
        assert_eq!(h.l3.hit_latency(), 34); // serial 10+24
    }

    #[test]
    fn prefetcher_table2() {
        let p = PrefetcherConfig::table2();
        assert_eq!((p.streams, p.degree, p.distance), (16, 4, 24));
        assert!(p.enabled);
        assert!(!PrefetcherConfig::disabled().enabled);
    }
}
