//! Replacement policies: LRU and DRRIP.
//!
//! Table 2 uses LRU for L1/L2 and **DRRIP** (Dynamic Re-Reference Interval
//! Prediction, Jaleel et al., ISCA 2010 — the paper's reference \[27\]) for
//! the last-level cache.
//!
//! DRRIP here is the standard formulation: 2-bit re-reference prediction
//! values (RRPV); SRRIP inserts at RRPV = 2 ("long"), BRRIP inserts at
//! RRPV = 3 ("distant") except with 1/32 probability; 32 leader sets for
//! each flavor feed a 10-bit PSEL set-dueling counter that picks the
//! policy used by follower sets. Hits promote to RRPV = 0.

/// Which replacement policy a cache uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Least-recently-used (Table 2: L1, L2).
    Lru,
    /// Dynamic re-reference interval prediction (Table 2: L3).
    Drrip,
}

const RRPV_MAX: u8 = 3; // 2-bit RRPV
const RRPV_LONG: u8 = 2;
const PSEL_BITS: u32 = 10;
const PSEL_MAX: u16 = (1 << PSEL_BITS) - 1;
const DUELING_PERIOD: usize = 32; // one SRRIP + one BRRIP leader per 32 sets
const BRRIP_LOW_PROB_MOD: u32 = 32; // BRRIP inserts "long" 1/32 of the time

/// Per-cache replacement state (per-way ranks plus DRRIP dueling state).
#[derive(Clone, Debug)]
pub struct Replacement {
    kind: PolicyKind,
    sets: usize,
    ways: usize,
    /// LRU: recency rank (0 = MRU). DRRIP: RRPV.
    state: Vec<u8>,
    /// DRRIP set-dueling selector (>= midpoint ⇒ BRRIP wins).
    psel: u16,
    /// Deterministic counter driving BRRIP's occasional long insertion.
    brrip_tick: u32,
}

/// The role a set plays in DRRIP set dueling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SetRole {
    SrripLeader,
    BrripLeader,
    Follower,
}

impl Replacement {
    /// Creates replacement state for `sets` x `ways` lines.
    pub fn new(kind: PolicyKind, sets: usize, ways: usize) -> Self {
        let state = match kind {
            // LRU ranks must start as a permutation per set so that ties
            // never arise (0 = MRU .. ways-1 = LRU).
            PolicyKind::Lru => (0..sets * ways).map(|i| (i % ways) as u8).collect(),
            PolicyKind::Drrip => vec![RRPV_MAX; sets * ways],
        };
        Self { kind, sets, ways, state, psel: PSEL_MAX / 2, brrip_tick: 0 }
    }

    #[inline]
    fn idx(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    fn role(&self, set: usize) -> SetRole {
        match set % DUELING_PERIOD {
            0 => SetRole::SrripLeader,
            1 => SetRole::BrripLeader,
            _ => SetRole::Follower,
        }
    }

    /// Records a hit on `(set, way)`.
    pub fn on_hit(&mut self, set: usize, way: usize) {
        match self.kind {
            PolicyKind::Lru => self.touch_lru(set, way),
            PolicyKind::Drrip => {
                let i = self.idx(set, way);
                self.state[i] = 0;
            }
        }
    }

    fn touch_lru(&mut self, set: usize, way: usize) {
        let old = self.state[self.idx(set, way)];
        for w in 0..self.ways {
            let i = self.idx(set, w);
            if w == way {
                self.state[i] = 0;
            } else if self.state[i] < old {
                self.state[i] += 1;
            }
        }
    }

    /// Records a fill into `(set, way)`.
    pub fn on_fill(&mut self, set: usize, way: usize) {
        match self.kind {
            PolicyKind::Lru => self.touch_lru(set, way),
            PolicyKind::Drrip => {
                // A miss in a leader set trains PSEL toward the other
                // policy (misses are "votes against" the leader's policy).
                match self.role(set) {
                    SetRole::SrripLeader => self.psel = (self.psel + 1).min(PSEL_MAX),
                    SetRole::BrripLeader => self.psel = self.psel.saturating_sub(1),
                    SetRole::Follower => {}
                }
                let use_brrip = match self.role(set) {
                    SetRole::SrripLeader => false,
                    SetRole::BrripLeader => true,
                    SetRole::Follower => self.psel > PSEL_MAX / 2,
                };
                let i = self.idx(set, way);
                self.state[i] = if use_brrip {
                    self.brrip_tick = self.brrip_tick.wrapping_add(1);
                    if self.brrip_tick.is_multiple_of(BRRIP_LOW_PROB_MOD) {
                        RRPV_LONG
                    } else {
                        RRPV_MAX
                    }
                } else {
                    RRPV_LONG
                };
            }
        }
    }

    /// Chooses the victim way in `set`, given per-way validity. Invalid
    /// ways are always preferred.
    pub fn victim(&mut self, set: usize, valid: &[bool]) -> usize {
        debug_assert_eq!(valid.len(), self.ways);
        if let Some(way) = valid.iter().position(|v| !v) {
            return way;
        }
        match self.kind {
            PolicyKind::Lru => {
                // Evict the way with the highest recency rank (ties go
                // to the highest way, matching max_by_key's last-max).
                let mut victim = 0;
                for w in 1..self.ways {
                    if self.state[self.idx(set, w)] >= self.state[self.idx(set, victim)] {
                        victim = w;
                    }
                }
                victim
            }
            PolicyKind::Drrip => {
                // Find an RRPV==MAX way, aging everyone until one appears.
                loop {
                    for w in 0..self.ways {
                        if self.state[self.idx(set, w)] == RRPV_MAX {
                            return w;
                        }
                    }
                    for w in 0..self.ways {
                        let i = self.idx(set, w);
                        self.state[i] += 1;
                    }
                }
            }
        }
    }

    /// Number of sets this state covers.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Serializes the mutable replacement state (geometry and policy come
    /// from the cache config and are not re-encoded).
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        for s in &self.state {
            w.put_u8(*s);
        }
        w.put_u16(self.psel);
        w.put_u32(self.brrip_tick);
    }

    /// Rebuilds replacement state for a `kind`/`sets`/`ways` cache from
    /// [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation or
    /// out-of-range values.
    pub fn decode_snapshot(
        kind: PolicyKind,
        sets: usize,
        ways: usize,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut out = Self::new(kind, sets, ways);
        let bound = match kind {
            PolicyKind::Lru => ways as u8,
            PolicyKind::Drrip => RRPV_MAX + 1,
        };
        for s in out.state.iter_mut() {
            let v = r.get_u8()?;
            if v >= bound {
                return Err(po_types::PoError::Corrupted("snapshot replacement rank too large"));
            }
            *s = v;
        }
        out.psel = r.get_u16()?;
        if out.psel > PSEL_MAX {
            return Err(po_types::PoError::Corrupted("snapshot PSEL exceeds 10 bits"));
        }
        out.brrip_tick = r.get_u32()?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut r = Replacement::new(PolicyKind::Lru, 1, 4);
        let valid = [true; 4];
        for w in 0..4 {
            r.on_fill(0, w);
        }
        // Touch 0..3 in order: way 0 is now LRU.
        for w in 0..4 {
            r.on_hit(0, w);
        }
        assert_eq!(r.victim(0, &valid), 0);
        r.on_hit(0, 0); // promote 0; way 1 becomes LRU
        assert_eq!(r.victim(0, &valid), 1);
    }

    #[test]
    fn invalid_ways_are_preferred_victims() {
        let mut r = Replacement::new(PolicyKind::Lru, 1, 4);
        assert_eq!(r.victim(0, &[true, false, true, true]), 1);
        let mut d = Replacement::new(PolicyKind::Drrip, 1, 4);
        assert_eq!(d.victim(0, &[true, true, true, false]), 3);
    }

    #[test]
    fn drrip_hit_promotes_to_zero_and_survives() {
        let mut r = Replacement::new(PolicyKind::Drrip, DUELING_PERIOD, 4);
        let set = 5; // follower
        let valid = [true; 4];
        for w in 0..4 {
            r.on_fill(set, w);
        }
        r.on_hit(set, 2);
        // Way 2 has RRPV 0; the victim must be a different way.
        assert_ne!(r.victim(set, &valid), 2);
    }

    #[test]
    fn drrip_scan_resistance() {
        // A long streaming scan through a follower set should not force
        // out a frequently re-referenced line: insertions never enter at
        // RRPV 0, so the hot line (RRPV 0) survives each victim search.
        let mut r = Replacement::new(PolicyKind::Drrip, DUELING_PERIOD, 4);
        let set = 7;
        let valid = [true; 4];
        for w in 0..4 {
            r.on_fill(set, w);
        }
        r.on_hit(set, 0); // hot line in way 0
        for _ in 0..64 {
            let v = r.victim(set, &valid);
            assert_ne!(v, 0, "scan must not evict the re-referenced line");
            r.on_fill(set, v);
            r.on_hit(set, 0); // keep way 0 hot
        }
    }

    #[test]
    fn dueling_moves_psel() {
        let mut r = Replacement::new(PolicyKind::Drrip, DUELING_PERIOD * 2, 2);
        let before = r.psel;
        // Misses in the SRRIP leader set push PSEL up.
        for _ in 0..16 {
            r.on_fill(0, 0);
        }
        assert!(r.psel > before);
        // Misses in the BRRIP leader set push it back down.
        for _ in 0..32 {
            r.on_fill(1, 0);
        }
        assert!(r.psel < before);
    }
}
