//! Multi-stream prefetcher (Table 2: "Stream prefetcher, monitor L2
//! misses and prefetch into L3, 16 entries, degree = 4, distance = 24" —
//! modeled after the feedback-directed/IBM POWER6 stream engines the
//! paper cites [33, 48]).
//!
//! A stream entry is trained by two ascending (or descending) misses in
//! the same 4 KB-aligned region; once trained, each further demand miss
//! that matches the stream issues `degree` prefetches, never running more
//! than `distance` lines ahead of the demand stream.

use crate::config::PrefetcherConfig;
use po_types::{Counter, PhysAddr};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StreamState {
    /// Saw one miss; waiting for a second to learn the direction.
    Allocated,
    /// Trained; actively prefetching.
    Active,
}

#[derive(Clone, Copy, Debug)]
struct Stream {
    /// Line number (addr >> 6) of the most recent matching demand miss.
    last_demand: u64,
    /// Line number one past the last prefetch issued.
    next_prefetch: u64,
    /// +1 or -1.
    direction: i64,
    state: StreamState,
    /// LRU stamp for entry replacement.
    last_used: u64,
}

/// Prefetcher statistics.
#[derive(Clone, Debug, Default)]
pub struct PrefetchStats {
    /// Demand misses observed (training inputs).
    pub trainings: Counter,
    /// Prefetch requests issued.
    pub issued: Counter,
    /// Streams allocated.
    pub allocations: Counter,
}

/// The stream prefetcher.
///
/// # Example
///
/// ```
/// use po_cache::{StreamPrefetcher, PrefetcherConfig};
/// use po_types::PhysAddr;
///
/// let mut p = StreamPrefetcher::new(PrefetcherConfig::table2());
/// assert!(p.train(PhysAddr::new(0x0)).is_empty());   // first miss: allocate
/// let issued = p.train(PhysAddr::new(0x40));          // second: trained
/// assert!(!issued.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct StreamPrefetcher {
    config: PrefetcherConfig,
    streams: Vec<Stream>,
    tick: u64,
    stats: PrefetchStats,
}

impl StreamPrefetcher {
    /// Creates an idle prefetcher.
    pub fn new(config: PrefetcherConfig) -> Self {
        Self { config, streams: Vec::new(), tick: 0, stats: PrefetchStats::default() }
    }

    /// Returns the configuration.
    pub fn config(&self) -> &PrefetcherConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &PrefetchStats {
        &self.stats
    }

    /// Observes a demand miss (the paper trains on L2 misses) and returns
    /// the line addresses to prefetch (into L3).
    pub fn train(&mut self, addr: PhysAddr) -> Vec<PhysAddr> {
        if !self.config.enabled {
            return Vec::new();
        }
        self.stats.trainings.inc();
        self.tick += 1;
        let line = addr.line_base().raw() >> po_types::geometry::LINE_SHIFT;

        // Match an existing stream: the miss must land within `distance`
        // lines of the stream head, on the stream's side.
        let window = self.config.distance as u64;
        if let Some(idx) = self.streams.iter().position(|s| {
            let delta = line as i64 - s.last_demand as i64;
            match s.state {
                StreamState::Allocated => delta.unsigned_abs() <= window && delta != 0,
                StreamState::Active => delta * s.direction > 0 && delta.unsigned_abs() <= window,
            }
        }) {
            let degree = self.config.degree as u64;
            let s = &mut self.streams[idx];
            s.last_used = self.tick;
            match s.state {
                StreamState::Allocated => {
                    s.direction = if line > s.last_demand { 1 } else { -1 };
                    s.state = StreamState::Active;
                    s.last_demand = line;
                    s.next_prefetch = (line as i64 + s.direction) as u64;
                }
                StreamState::Active => {
                    s.last_demand = line;
                }
            }
            // Issue up to `degree` prefetches, staying within `distance`
            // lines of the demand head.
            let mut out = Vec::new();
            let limit = s.last_demand as i64 + s.direction * window as i64;
            for _ in 0..degree {
                let next = s.next_prefetch as i64;
                let within = if s.direction > 0 { next <= limit } else { next >= limit };
                if !within || next < 0 {
                    break;
                }
                out.push(PhysAddr::new((next as u64) << po_types::geometry::LINE_SHIFT));
                s.next_prefetch = (next + s.direction) as u64;
            }
            self.stats.issued.add(out.len() as u64);
            return out;
        }

        // No match: allocate (LRU-replace when full).
        self.stats.allocations.inc();
        let entry = Stream {
            last_demand: line,
            next_prefetch: line + 1,
            direction: 1,
            state: StreamState::Allocated,
            last_used: self.tick,
        };
        if self.streams.len() < self.config.streams {
            self.streams.push(entry);
        } else if let Some(victim) = self.streams.iter_mut().min_by_key(|s| s.last_used) {
            *victim = entry;
        }
        Vec::new()
    }

    /// Number of streams currently tracked.
    pub fn active_streams(&self) -> usize {
        self.streams.len()
    }

    /// Serializes stream entries (in table order), the LRU tick and
    /// stats.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        w.put_u64(self.tick);
        w.put_len(self.streams.len());
        for s in &self.streams {
            w.put_u64(s.last_demand);
            w.put_u64(s.next_prefetch);
            w.put_i64(s.direction);
            w.put_bool(matches!(s.state, StreamState::Active));
            w.put_u64(s.last_used);
        }
        for c in [&self.stats.trainings, &self.stats.issued, &self.stats.allocations] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a prefetcher with `config` from [`encode_snapshot`]
    /// bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation or an
    /// oversized stream table.
    pub fn decode_snapshot(
        config: PrefetcherConfig,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut p = Self::new(config);
        p.tick = r.get_u64()?;
        let n = r.get_len()?;
        if n > p.config.streams {
            return Err(po_types::PoError::Corrupted("snapshot stream table exceeds capacity"));
        }
        for _ in 0..n {
            let last_demand = r.get_u64()?;
            let next_prefetch = r.get_u64()?;
            let direction = r.get_i64()?;
            if direction != 1 && direction != -1 {
                return Err(po_types::PoError::Corrupted("snapshot stream direction invalid"));
            }
            let state = if r.get_bool()? { StreamState::Active } else { StreamState::Allocated };
            let last_used = r.get_u64()?;
            p.streams.push(Stream { last_demand, next_prefetch, direction, state, last_used });
        }
        for c in [&mut p.stats.trainings, &mut p.stats.issued, &mut p.stats.allocations] {
            c.add(r.get_u64()?);
        }
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> StreamPrefetcher {
        StreamPrefetcher::new(PrefetcherConfig::table2())
    }

    fn line(n: u64) -> PhysAddr {
        PhysAddr::new(n * 64)
    }

    #[test]
    fn two_ascending_misses_train_a_stream() {
        let mut p = pf();
        assert!(p.train(line(100)).is_empty());
        let issued = p.train(line(101));
        assert_eq!(issued.len(), 4); // degree
        assert_eq!(issued[0], line(102));
        assert_eq!(issued[3], line(105));
    }

    #[test]
    fn descending_stream_is_detected() {
        let mut p = pf();
        p.train(line(200));
        let issued = p.train(line(199));
        assert_eq!(issued[0], line(198));
        assert_eq!(issued[3], line(195));
    }

    #[test]
    fn stream_respects_distance() {
        let mut p = pf();
        p.train(line(0));
        let mut issued_total = 0;
        // Demand stays at line 1; repeated matches may not run >24 ahead.
        issued_total += p.train(line(1)).len();
        for _ in 0..20 {
            issued_total += p.train(line(2)).len();
        }
        // distance=24 from head at line 2 ⇒ max prefetch line 26,
        // starting from 2 ⇒ at most 24 prefetches.
        assert!(issued_total <= 24 + 4, "issued {issued_total}");
    }

    #[test]
    fn disabled_prefetcher_is_silent() {
        let mut p = StreamPrefetcher::new(PrefetcherConfig::disabled());
        assert!(p.train(line(1)).is_empty());
        assert!(p.train(line(2)).is_empty());
        assert_eq!(p.stats().issued.get(), 0);
    }

    #[test]
    fn stream_table_is_bounded_with_lru_replacement() {
        let mut p = pf();
        // 40 unrelated misses, far apart: only 16 streams survive.
        for i in 0..40u64 {
            p.train(line(i * 10_000));
        }
        assert_eq!(p.active_streams(), 16);
    }

    #[test]
    fn far_jump_does_not_match_stream() {
        let mut p = pf();
        p.train(line(100));
        p.train(line(101)); // trained
        let issued = p.train(line(500)); // new region
        assert!(issued.is_empty(), "far miss must allocate, not prefetch");
    }
}
