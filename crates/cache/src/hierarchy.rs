//! The assembled three-level hierarchy.
//!
//! Per Table 2: 64 KB L1 (LRU) → 512 KB L2 (LRU) → 2 MB L3 (DRRIP), no
//! inclusion enforced, stream prefetcher trained by L2 misses filling
//! into L3. The hierarchy reports, per access: the level that serviced
//! it, the latency accumulated on the lookup path, dirty writebacks
//! displaced by fills, and prefetch addresses the memory system should
//! fetch into L3.

use crate::config::HierarchyConfig;
use crate::prefetch::StreamPrefetcher;
use crate::set_assoc::{Evicted, SetAssocCache};
use po_telemetry::{Event as TelemetryEvent, HitLevel, TelemetrySink};
use po_types::{AccessKind, Counter, PhysAddr};

/// Which cache level serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// First-level cache.
    L1,
    /// Second-level cache.
    L2,
    /// Last-level cache.
    L3,
}

/// Result of a hierarchy lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// Serviced by a cache.
    Hit {
        /// The level that hit.
        level: Level,
    },
    /// Missed everywhere; memory must service the access.
    Miss,
}

/// Everything a single access produced.
#[derive(Clone, Debug)]
pub struct AccessOutcome {
    /// Hit level or miss.
    pub result: LookupResult,
    /// Cycles spent in the cache lookup path (for a miss: all three tag
    /// lookups; memory latency is added by the caller).
    pub latency: u64,
    /// Dirty lines displaced by fills during this access; the caller
    /// posts them to the memory controller.
    pub writebacks: Vec<PhysAddr>,
    /// Prefetch addresses generated (to be fetched into L3 off the
    /// critical path).
    pub prefetches: Vec<PhysAddr>,
}

/// Hierarchy-wide statistics.
#[derive(Clone, Debug, Default)]
pub struct HierarchyStats {
    /// Demand accesses.
    pub accesses: Counter,
    /// Hits per level.
    pub l1_hits: Counter,
    /// Hits per level.
    pub l2_hits: Counter,
    /// Hits per level.
    pub l3_hits: Counter,
    /// Full misses (to memory).
    pub misses: Counter,
    /// Prefetch fills installed into L3.
    pub prefetch_fills: Counter,
}

/// The three-level cache hierarchy. See the [crate docs](crate) for an
/// example.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    prefetcher: StreamPrefetcher,
    stats: HierarchyStats,
    /// Telemetry handle (never serialized; the machine re-installs it
    /// after a snapshot restore).
    sink: TelemetrySink,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            prefetcher: StreamPrefetcher::new(config.prefetcher),
            stats: HierarchyStats::default(),
            sink: TelemetrySink::noop(),
        }
    }

    /// Installs the telemetry sink (a clone sharing the machine's core).
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
    }

    /// Returns hierarchy statistics.
    pub fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    /// Returns the individual level (for fine-grained stats).
    pub fn level(&self, level: Level) -> &SetAssocCache {
        match level {
            Level::L1 => &self.l1,
            Level::L2 => &self.l2,
            Level::L3 => &self.l3,
        }
    }

    /// Returns the prefetcher (stats access).
    pub fn prefetcher(&self) -> &StreamPrefetcher {
        &self.prefetcher
    }

    fn collect(evicted: Option<Evicted>, out: &mut Vec<PhysAddr>) {
        if let Some(e) = evicted {
            if e.dirty {
                out.push(e.addr);
            }
        }
    }

    /// Performs a demand access to the line containing `addr`.
    ///
    /// On an L2/L3 hit the line is also filled upward so subsequent
    /// accesses hit closer to the core; on a full miss the caller should
    /// obtain the line from memory and then call [`CacheHierarchy::fill`].
    pub fn access(&mut self, addr: PhysAddr, kind: AccessKind) -> AccessOutcome {
        let out = self.access_inner(addr, kind);
        if self.sink.is_active() {
            self.sink.emit(|| TelemetryEvent::CacheAccess {
                addr: addr.raw(),
                write: kind.is_write(),
                level: match out.result {
                    LookupResult::Hit { level: Level::L1 } => HitLevel::L1,
                    LookupResult::Hit { level: Level::L2 } => HitLevel::L2,
                    LookupResult::Hit { level: Level::L3 } => HitLevel::L3,
                    LookupResult::Miss => HitLevel::Miss,
                },
                latency: out.latency,
            });
            self.sink.count("cache.accesses", 1);
            if matches!(out.result, LookupResult::Miss) {
                self.sink.count("cache.misses", 1);
            }
        }
        out
    }

    fn access_inner(&mut self, addr: PhysAddr, kind: AccessKind) -> AccessOutcome {
        self.stats.accesses.inc();
        let is_write = kind.is_write();
        let mut writebacks = Vec::new();
        let mut prefetches = Vec::new();
        let mut latency = 0;

        if self.l1.access(addr, is_write) {
            self.stats.l1_hits.inc();
            return AccessOutcome {
                result: LookupResult::Hit { level: Level::L1 },
                latency: self.l1.config().hit_latency(),
                writebacks,
                prefetches,
            };
        }
        latency += self.l1.config().miss_detect_latency();

        if self.l2.access(addr, is_write) {
            self.stats.l2_hits.inc();
            latency += self.l2.config().hit_latency();
            Self::collect(self.l1.fill(addr, is_write), &mut writebacks);
            return AccessOutcome {
                result: LookupResult::Hit { level: Level::L2 },
                latency,
                writebacks,
                prefetches,
            };
        }
        latency += self.l2.config().miss_detect_latency();
        // L2 miss trains the stream prefetcher (Table 2).
        prefetches = self.prefetcher.train(addr);

        if self.l3.access(addr, is_write) {
            self.stats.l3_hits.inc();
            latency += self.l3.config().hit_latency();
            Self::collect(self.l2.fill(addr, false), &mut writebacks);
            Self::collect(self.l1.fill(addr, is_write), &mut writebacks);
            return AccessOutcome {
                result: LookupResult::Hit { level: Level::L3 },
                latency,
                writebacks,
                prefetches,
            };
        }
        latency += self.l3.config().miss_detect_latency();
        self.stats.misses.inc();

        AccessOutcome { result: LookupResult::Miss, latency, writebacks, prefetches }
    }

    /// Installs a line fetched from memory into all three levels (demand
    /// fill); returns dirty writebacks displaced by the fills.
    pub fn fill(&mut self, addr: PhysAddr, dirty: bool) -> Vec<PhysAddr> {
        let mut writebacks = Vec::new();
        Self::collect(self.l3.fill(addr, false), &mut writebacks);
        Self::collect(self.l2.fill(addr, false), &mut writebacks);
        Self::collect(self.l1.fill(addr, dirty), &mut writebacks);
        writebacks
    }

    /// Installs a prefetched line into L3 only (Table 2: "prefetch into
    /// L3"); returns dirty writebacks displaced.
    pub fn fill_prefetch(&mut self, addr: PhysAddr) -> Vec<PhysAddr> {
        self.stats.prefetch_fills.inc();
        let mut writebacks = Vec::new();
        Self::collect(self.l3.fill(addr, false), &mut writebacks);
        writebacks
    }

    /// Checks whether the line is resident at any level (no state change).
    pub fn probe(&self, addr: PhysAddr) -> bool {
        self.l1.probe(addr) || self.l2.probe(addr) || self.l3.probe(addr)
    }

    /// Invalidates the line everywhere; returns `true` if any copy was
    /// dirty.
    pub fn invalidate_line(&mut self, addr: PhysAddr) -> bool {
        let d1 = self.l1.invalidate_line(addr).unwrap_or(false);
        let d2 = self.l2.invalidate_line(addr).unwrap_or(false);
        let d3 = self.l3.invalidate_line(addr).unwrap_or(false);
        d1 || d2 || d3
    }

    /// Re-tags a resident line from `old` to `new` at every level where it
    /// is resident (the overlaying-write tag update, §4.3.3). Returns
    /// dirty writebacks displaced from destination sets, and whether any
    /// copy was moved.
    pub fn retag(&mut self, old: PhysAddr, new: PhysAddr) -> (Vec<PhysAddr>, bool) {
        let mut writebacks = Vec::new();
        let mut moved = false;
        for cache in [&mut self.l1, &mut self.l2, &mut self.l3] {
            if let Some(evicted) = cache.retag(old, new) {
                if evicted.dirty {
                    writebacks.push(evicted.addr);
                }
                moved = true;
            } else if cache.probe(new) {
                moved = true;
            }
        }
        (writebacks, moved)
    }

    /// Marks the line dirty wherever resident (used after retag-based
    /// overlaying writes, where the subsequent store must dirty the line).
    pub fn mark_dirty(&mut self, addr: PhysAddr) {
        for cache in [&mut self.l1, &mut self.l2, &mut self.l3] {
            if cache.probe(addr) {
                cache.access(addr, true);
            }
        }
    }

    /// Serializes all three levels, the prefetcher and hierarchy stats.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        self.l1.encode_snapshot(w);
        self.l2.encode_snapshot(w);
        self.l3.encode_snapshot(w);
        self.prefetcher.encode_snapshot(w);
        for c in [
            &self.stats.accesses,
            &self.stats.l1_hits,
            &self.stats.l2_hits,
            &self.stats.l3_hits,
            &self.stats.misses,
            &self.stats.prefetch_fills,
        ] {
            w.put_u64(c.get());
        }
    }

    /// Rebuilds a hierarchy with `config` geometry from
    /// [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation or
    /// malformed data; pass the same config the snapshot was taken with.
    pub fn decode_snapshot(
        config: HierarchyConfig,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let l1 = SetAssocCache::decode_snapshot(config.l1, r)?;
        let l2 = SetAssocCache::decode_snapshot(config.l2, r)?;
        let l3 = SetAssocCache::decode_snapshot(config.l3, r)?;
        let prefetcher = StreamPrefetcher::decode_snapshot(config.prefetcher, r)?;
        let mut stats = HierarchyStats::default();
        for c in [
            &mut stats.accesses,
            &mut stats.l1_hits,
            &mut stats.l2_hits,
            &mut stats.l3_hits,
            &mut stats.misses,
            &mut stats.prefetch_fills,
        ] {
            c.add(r.get_u64()?);
        }
        Ok(Self { l1, l2, l3, prefetcher, stats, sink: TelemetrySink::noop() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn tiny() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn miss_then_hit_progression() {
        let mut h = tiny();
        let a = PhysAddr::new(0x1000);
        let o = h.access(a, AccessKind::Read);
        assert_eq!(o.result, LookupResult::Miss);
        h.fill(a, false);
        let o = h.access(a, AccessKind::Read);
        assert_eq!(o.result, LookupResult::Hit { level: Level::L1 });
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        let a = PhysAddr::new(0x0);
        h.fill(a, false);
        // Evict from tiny L1 (16 lines) by filling 64 distinct lines that
        // alias across its 8 sets.
        for i in 1..=64u64 {
            h.fill(PhysAddr::new(i * 64), false);
        }
        assert!(!h.level(Level::L1).probe(a));
        let o = h.access(a, AccessKind::Read);
        // Must still hit somewhere below L1.
        assert!(matches!(
            o.result,
            LookupResult::Hit { level: Level::L2 } | LookupResult::Hit { level: Level::L3 }
        ));
    }

    #[test]
    fn miss_latency_is_sum_of_tag_lookups() {
        let mut h = tiny();
        let o = h.access(PhysAddr::new(0x5000), AccessKind::Read);
        // tag latencies: 1 (L1) + 2 (L2) + 10 (L3)
        assert_eq!(o.latency, 13);
    }

    #[test]
    fn l3_hit_latency_includes_serial_tag_data() {
        let mut h = tiny();
        let a = PhysAddr::new(0x2000);
        // Install into L3 only (prefetch path).
        h.fill_prefetch(a);
        let o = h.access(a, AccessKind::Read);
        assert_eq!(o.result, LookupResult::Hit { level: Level::L3 });
        // 1 (L1 tag) + 2 (L2 tag) + 34 (L3 serial hit)
        assert_eq!(o.latency, 37);
    }

    #[test]
    fn sequential_misses_generate_prefetches() {
        let mut h = tiny();
        let mut got = 0;
        for i in 0..8u64 {
            let o = h.access(PhysAddr::new(i * 64), AccessKind::Read);
            got += o.prefetches.len();
            h.fill(PhysAddr::new(i * 64), false);
        }
        assert!(got > 0, "ascending miss stream must trigger the prefetcher");
    }

    #[test]
    fn dirty_writeback_emerges_on_eviction() {
        let mut h = tiny();
        let a = PhysAddr::new(0x0);
        h.fill(a, true); // dirty in L1
        let mut wbs = Vec::new();
        for i in 1..=200u64 {
            wbs.extend(h.fill(PhysAddr::new(i * 64), false));
            let o = h.access(PhysAddr::new(i * 64), AccessKind::Read);
            wbs.extend(o.writebacks);
        }
        assert!(
            wbs.contains(&a.line_base()),
            "dirty line must be written back when evicted from every level"
        );
    }

    #[test]
    fn retag_preserves_residency_under_new_tag() {
        let mut h = tiny();
        let old = PhysAddr::new(0x3000);
        let new = PhysAddr::new((1 << 63) | 0x3000);
        h.fill(old, false);
        let (_, moved) = h.retag(old, new);
        assert!(moved);
        assert!(h.probe(new));
        assert!(!h.probe(old));
    }

    #[test]
    fn invalidate_line_reports_dirtiness() {
        let mut h = tiny();
        let a = PhysAddr::new(0x4000);
        h.fill(a, true);
        assert!(h.invalidate_line(a));
        assert!(!h.invalidate_line(a));
    }

    #[test]
    fn stats_accumulate() {
        let mut h = tiny();
        let a = PhysAddr::new(0x40);
        h.access(a, AccessKind::Read);
        h.fill(a, false);
        h.access(a, AccessKind::Read);
        assert_eq!(h.stats().accesses.get(), 2);
        assert_eq!(h.stats().misses.get(), 1);
        assert_eq!(h.stats().l1_hits.get(), 1);
    }
}
