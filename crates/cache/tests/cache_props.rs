//! Property tests for the set-associative cache: structural invariants
//! that must hold under arbitrary access/fill/invalidate/retag
//! interleavings, for both replacement policies.

use po_cache::{CacheConfig, PolicyKind, SetAssocCache};
use po_types::PhysAddr;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn config(policy: PolicyKind) -> CacheConfig {
    CacheConfig {
        capacity_bytes: 2048, // 32 lines
        ways: 4,              // 8 sets
        tag_latency: 1,
        data_latency: 1,
        parallel_tag_data: true,
        policy,
    }
}

#[derive(Clone, Debug)]
enum Op {
    Access { line: u64, write: bool },
    Fill { line: u64, dirty: bool },
    Invalidate { line: u64 },
    Retag { from: u64, to: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let line = 0u64..64; // twice the capacity: plenty of conflict
    prop_oneof![
        (line.clone(), any::<bool>()).prop_map(|(line, write)| Op::Access { line, write }),
        (line.clone(), any::<bool>()).prop_map(|(line, dirty)| Op::Fill { line, dirty }),
        line.clone().prop_map(|line| Op::Invalidate { line }),
        (line.clone(), line).prop_map(|(from, to)| Op::Retag { from, to }),
    ]
}

fn addr(line: u64) -> PhysAddr {
    PhysAddr::new(line * 64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_structural_invariants(
        policy_drrip in any::<bool>(),
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        let policy = if policy_drrip { PolicyKind::Drrip } else { PolicyKind::Lru };
        let mut cache = SetAssocCache::new(config(policy));
        // Oracle: the set of lines that *may* be resident (filled, not
        // invalidated). Eviction can remove a member at any time, so the
        // invariant is resident ⊆ may_be_resident.
        let mut may_be_resident: BTreeSet<u64> = BTreeSet::new();

        for op in &ops {
            match *op {
                Op::Access { line, write } => {
                    let hit = cache.access(addr(line), write);
                    if hit {
                        prop_assert!(
                            may_be_resident.contains(&(line * 64)),
                            "hit on a line that was never filled (line {line})"
                        );
                    }
                }
                Op::Fill { line, dirty } => {
                    if let Some(evicted) = cache.fill(addr(line), dirty) {
                        let key = evicted.addr.raw();
                        prop_assert!(
                            may_be_resident.remove(&key),
                            "evicted a line that was never filled ({key:#x})"
                        );
                    }
                    may_be_resident.insert(line * 64);
                }
                Op::Invalidate { line } => {
                    if cache.invalidate_line(addr(line)).is_some() {
                        prop_assert!(may_be_resident.remove(&(line * 64)));
                    }
                }
                Op::Retag { from, to } => {
                    if from != to {
                        if let Some(evicted) = cache.retag(addr(from), addr(to)) {
                            let key = evicted.addr.raw();
                            prop_assert!(may_be_resident.remove(&key));
                        }
                        if may_be_resident.remove(&(from * 64)) {
                            may_be_resident.insert(to * 64);
                        }
                    }
                }
            }
            // Residency is a subset of the oracle; no duplicates; bounded.
            let resident: Vec<u64> = cache.resident_lines().map(|a| a.raw()).collect();
            let unique: BTreeSet<u64> = resident.iter().copied().collect();
            prop_assert_eq!(unique.len(), resident.len(), "duplicate tags in the cache");
            prop_assert!(resident.len() <= 32, "occupancy exceeds capacity");
            for r in &unique {
                prop_assert!(
                    may_be_resident.contains(r),
                    "resident line {r:#x} not in the oracle"
                );
            }
            prop_assert_eq!(cache.occupancy(), resident.len());
        }
    }

    /// Probe never disagrees with access about presence.
    #[test]
    fn probe_matches_access(fills in prop::collection::vec(0u64..64, 1..60)) {
        let mut cache = SetAssocCache::new(config(PolicyKind::Lru));
        for &line in &fills {
            cache.fill(addr(line), false);
        }
        for line in 0..64u64 {
            let probed = cache.probe(addr(line));
            let accessed = cache.access(addr(line), false);
            prop_assert_eq!(probed, accessed, "probe/access disagree on line {}", line);
        }
    }
}
