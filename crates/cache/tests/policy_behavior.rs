//! Behavioral tests: do the replacement policies actually earn their
//! keep? DRRIP (Table 2's LLC policy) must survive streaming scans that
//! destroy LRU, and the prefetcher must convert a streaming miss storm
//! into hits.

use po_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, PolicyKind, SetAssocCache};
use po_types::{AccessKind, PhysAddr};

/// A small cache with the given policy.
fn cache(policy: PolicyKind) -> SetAssocCache {
    SetAssocCache::new(CacheConfig {
        capacity_bytes: 16 * 1024, // 256 lines
        ways: 16,
        tag_latency: 1,
        data_latency: 1,
        parallel_tag_data: true,
        policy,
    })
}

/// Mixed workload: a hot set that fits comfortably, plus an endless
/// streaming scan that never re-references. DRRIP should keep the hot
/// set resident; LRU lets the scan flush it.
fn run_mixed(policy: PolicyKind) -> f64 {
    let mut c = cache(policy);
    let hot: Vec<PhysAddr> = (0..64u64).map(|i| PhysAddr::new(i * 64)).collect();
    let mut hot_hits = 0u64;
    let mut hot_refs = 0u64;
    let mut scan_cursor = 1u64 << 20;
    for round in 0..400u64 {
        // Touch the hot set.
        for &a in &hot {
            hot_refs += 1;
            if c.access(a, false) {
                hot_hits += 1;
            } else {
                c.fill(a, false);
            }
        }
        // Stream 256 never-reused lines between hot rounds.
        for _ in 0..256 {
            let a = PhysAddr::new(scan_cursor);
            scan_cursor += 64;
            if !c.access(a, false) {
                c.fill(a, false);
            }
        }
        let _ = round;
    }
    hot_hits as f64 / hot_refs as f64
}

#[test]
fn drrip_beats_lru_under_streaming() {
    let lru = run_mixed(PolicyKind::Lru);
    let drrip = run_mixed(PolicyKind::Drrip);
    assert!(
        drrip > lru + 0.2,
        "DRRIP hot-set hit rate ({drrip:.2}) must clearly beat LRU ({lru:.2}) under a scan"
    );
    assert!(drrip > 0.6, "DRRIP must retain most of the hot set, got {drrip:.2}");
}

#[test]
fn lru_wins_on_pure_reuse() {
    // Without the scan, both policies should be near-perfect; LRU must
    // not be *hurt* by the dueling machinery.
    let mut lru = cache(PolicyKind::Lru);
    let mut drrip = cache(PolicyKind::Drrip);
    let hot: Vec<PhysAddr> = (0..128u64).map(|i| PhysAddr::new(i * 64)).collect();
    for c in [&mut lru, &mut drrip] {
        for _ in 0..50 {
            for &a in &hot {
                if !c.access(a, false) {
                    c.fill(a, false);
                }
            }
        }
    }
    assert!(lru.stats().hit_rate() > 0.95);
    assert!(drrip.stats().hit_rate() > 0.90);
}

#[test]
fn prefetcher_turns_stream_misses_into_l3_hits() {
    let mut with_pf = CacheHierarchy::new(HierarchyConfig::table2());
    let mut without = CacheHierarchy::new(HierarchyConfig {
        prefetcher: po_cache::PrefetcherConfig::disabled(),
        ..HierarchyConfig::table2()
    });
    for h in [&mut with_pf, &mut without] {
        for i in 0..4096u64 {
            let a = PhysAddr::new(0x100_0000 + i * 64);
            let out = h.access(a, AccessKind::Read);
            if matches!(out.result, po_cache::LookupResult::Miss) {
                h.fill(a, false);
            }
            for pf in out.prefetches {
                h.fill_prefetch(pf);
            }
        }
    }
    let misses_with = with_pf.stats().misses.get();
    let misses_without = without.stats().misses.get();
    assert!(
        misses_with * 3 < misses_without,
        "prefetching must remove most streaming misses ({misses_with} vs {misses_without})"
    );
    assert!(with_pf.stats().l3_hits.get() > 2000, "prefetched lines must hit in L3");
}

#[test]
fn write_allocate_makes_store_then_load_hit() {
    let mut h = CacheHierarchy::new(HierarchyConfig::table2());
    let a = PhysAddr::new(0x4000);
    let out = h.access(a, AccessKind::Write);
    assert!(matches!(out.result, po_cache::LookupResult::Miss));
    h.fill(a, true);
    let out = h.access(a, AccessKind::Read);
    assert!(matches!(out.result, po_cache::LookupResult::Hit { .. }));
}
