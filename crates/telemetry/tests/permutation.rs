//! Property tests for the telemetry merge laws: absorbing per-shard
//! telemetry in **every permutation** of shard order yields byte-for-byte
//! the serialization a serial (single-sink) run produces. This is the
//! algebra the shard-determinism CI job leans on — commutativity and
//! associativity with an empty identity — pinned exhaustively for small
//! shard counts rather than sampled.

use po_telemetry::{Event, Journal, Log2Histogram, MetricsRegistry, TelemetryMerge, TelemetrySink};

/// All permutations of `0..n` in lexicographic order (Heap's algorithm
/// reorders; we want determinism, so generate recursively).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for rest in permutations(n - 1) {
        for slot in 0..=rest.len() {
            let mut p = rest.clone();
            p.insert(slot, n - 1);
            out.push(p);
        }
    }
    out.sort();
    out
}

/// A deterministic per-shard value stream: `xorshift`-style but fixed,
/// so the test never depends on process state.
fn values(shard: u64, n: u64) -> impl Iterator<Item = u64> {
    (0..n).map(move |i| {
        let mut x = shard.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i + 1);
        x ^= x >> 33;
        x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        (x >> 40) + 1
    })
}

#[test]
fn registry_merge_matches_serial_under_every_permutation() {
    const SHARDS: usize = 4;
    // The serial run: every shard's values recorded into one registry.
    let mut serial = MetricsRegistry::new();
    let mut shards: Vec<MetricsRegistry> = Vec::new();
    for s in 0..SHARDS as u64 {
        let mut reg = MetricsRegistry::new();
        for v in values(s, 16 + s) {
            for r in [&mut serial, &mut reg] {
                // po-analyze: allow(PA-L002) — test registry, no stats struct
                r.count("omt.walks", v);
                r.observe("omt.walk_latency", v);
            }
        }
        // Gauges are high-water marks: the serial run sees the max.
        reg.gauge("oms.high_water", (s * 100) as i64);
        serial.gauge("oms.high_water", (s * 100) as i64);
        shards.push(reg);
    }
    let expected = serial.to_json();
    for perm in permutations(SHARDS) {
        let mut merged = MetricsRegistry::new();
        for &s in &perm {
            merged.merge(&shards[s]);
        }
        assert_eq!(merged.to_json(), expected, "permutation {perm:?}");
        assert_eq!(
            merged.counter("omt.walks"),
            serial.counter("omt.walks"),
            "permutation {perm:?}"
        );
    }
}

#[test]
fn histogram_merge_matches_serial_under_every_permutation() {
    const SHARDS: usize = 4;
    let mut serial = Log2Histogram::new();
    let mut shards: Vec<Log2Histogram> = Vec::new();
    for s in 0..SHARDS as u64 {
        let mut h = Log2Histogram::new();
        for v in values(s, 24) {
            h.observe(v);
            serial.observe(v);
        }
        shards.push(h);
    }
    for perm in permutations(SHARDS) {
        let mut merged = Log2Histogram::new();
        for &s in &perm {
            merged.merge(&shards[s]);
        }
        assert_eq!(merged.to_json(), serial.to_json(), "permutation {perm:?}");
        assert_eq!(merged.count(), serial.count());
        assert_eq!(merged.sum(), serial.sum());
        assert_eq!(merged.min(), serial.min());
        assert_eq!(merged.max(), serial.max());
    }
}

#[test]
fn journal_merge_orders_by_job_seq_under_every_permutation() {
    const JOBS: usize = 4;
    let journals: Vec<Journal> = (0..JOBS as u64)
        .map(|j| {
            let mut journal = Journal::new(64);
            for (i, v) in values(j, 5 + j).enumerate() {
                journal.push(v, Event::OmtWalk { opn: j * 100 + i as u64, latency: v });
            }
            journal
        })
        .collect();
    // The reference export: jobs absorbed in submission order.
    let mut reference = po_telemetry::MergedJournal::new();
    for (j, journal) in journals.iter().enumerate() {
        reference.absorb(j as u64, journal);
    }
    let expected = reference.to_jsonl();
    assert!(!expected.is_empty());
    for perm in permutations(JOBS) {
        let mut merged = po_telemetry::MergedJournal::new();
        for &j in &perm {
            merged.absorb(j as u64, &journals[j]);
        }
        assert_eq!(merged.to_jsonl(), expected, "permutation {perm:?}");
        assert_eq!(merged.total_emitted(), reference.total_emitted());
    }
}

#[test]
fn full_sink_merge_is_permutation_invariant_end_to_end() {
    const JOBS: usize = 4;
    let sinks: Vec<TelemetrySink> = (0..JOBS as u64)
        .map(|j| {
            let sink = TelemetrySink::active();
            for (i, v) in values(j, 8).enumerate() {
                sink.set_now(j * 1000 + i as u64);
                sink.emit(|| Event::OmtWalk { opn: j * 10 + i as u64, latency: v });
                // po-analyze: allow(PA-L002) — test sink, no stats struct
                sink.count("omt.walks", 1);
                sink.observe("omt.walk_latency", v);
            }
            sink.gauge("oms.high_water", (j * 7) as i64);
            sink.instructions(8);
            sink
        })
        .collect();
    let mut reference = TelemetryMerge::new();
    for (j, sink) in sinks.iter().enumerate() {
        assert!(reference.absorb(j as u64, sink));
    }
    for perm in permutations(JOBS) {
        let mut merged = TelemetryMerge::new();
        for &j in &perm {
            merged.absorb(j as u64, &sinks[j]);
        }
        assert_eq!(merged.journal_jsonl(), reference.journal_jsonl(), "permutation {perm:?}");
        assert_eq!(merged.registry().to_json(), reference.registry().to_json());
        assert_eq!(merged.cpi_stack().to_json(), reference.cpi_stack().to_json());
        assert_eq!(merged.run_report("perm"), reference.run_report("perm"));
    }
}
