//! Span-style access-lifecycle tracing and the per-layer CPI stack.
//!
//! Each timed memory operation opens a *span*; the layers it traverses
//! (TLB, caches, OMT walk, DRAM, plus the overlay mechanisms that add
//! cycles on top — CoW faults, overlaying writes, promotions) attribute
//! their latency contributions to it; closing the span folds the
//! contributions into a running [`CpiStack`] and appends an
//! [`AccessSpan`] record to a bounded ring for Chrome-trace export.
//!
//! Attribution discipline (keeps the stack additive): base-path layers
//! (TLB/cache/OMT/DRAM) report their *own* latency; overlay mechanisms
//! report only the *extra* cycles they add beyond the base path, so
//! `sum(layers) + residual == total latency` for every span. Residual
//! cycles (issue-window stalls, rounding) land in [`Layer::Other`].

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Number of attribution layers.
pub const NUM_LAYERS: usize = 10;

/// Where cycles of a memory operation are spent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// TLB lookup (including the page-table walk on a miss).
    Tlb,
    /// Cache-hierarchy lookup latency.
    Cache,
    /// OMT walk at the memory controller (OMT-cache miss penalty).
    OmtWalk,
    /// DRAM access beyond the cache/OMT latency.
    Dram,
    /// Extra cycles of a copy-on-write page copy.
    CowFault,
    /// Extra cycles of creating/extending an overlay on a store.
    OverlayWrite,
    /// Extra cycles of overlay promotion (commit / copy-and-commit).
    Promotion,
    /// Non-memory (compute) instructions retiring.
    Core,
    /// Extra cycles from shared-resource contention (L3 bank queue,
    /// DRAM bandwidth) and overlay coherence stalls under multi-core
    /// load. Zero on single-core runs.
    Contention,
    /// Residual: cycles not attributed to any layer above.
    Other,
}

impl Layer {
    /// All layers in display order.
    pub const ALL: [Layer; NUM_LAYERS] = [
        Layer::Tlb,
        Layer::Cache,
        Layer::OmtWalk,
        Layer::Dram,
        Layer::CowFault,
        Layer::OverlayWrite,
        Layer::Promotion,
        Layer::Core,
        Layer::Contention,
        Layer::Other,
    ];

    /// Dense index (0..NUM_LAYERS).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Layer::Tlb => 0,
            Layer::Cache => 1,
            Layer::OmtWalk => 2,
            Layer::Dram => 3,
            Layer::CowFault => 4,
            Layer::OverlayWrite => 5,
            Layer::Promotion => 6,
            Layer::Core => 7,
            Layer::Contention => 8,
            Layer::Other => 9,
        }
    }

    /// Stable name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Tlb => "tlb",
            Layer::Cache => "cache",
            Layer::OmtWalk => "omt_walk",
            Layer::Dram => "dram",
            Layer::CowFault => "cow_fault",
            Layer::OverlayWrite => "overlay_write",
            Layer::Promotion => "promotion",
            Layer::Core => "core",
            Layer::Contention => "contention",
            Layer::Other => "other",
        }
    }
}

/// One completed memory-operation span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessSpan {
    /// `true` for stores.
    pub write: bool,
    /// Virtual address accessed.
    pub va: u64,
    /// Cycle the operation was issued.
    pub start: u64,
    /// Total latency in cycles.
    pub total: u64,
    /// Per-layer cycle contributions, indexed by [`Layer::index`].
    pub layers: [u64; NUM_LAYERS],
}

impl AccessSpan {
    /// Cycles attributed to `layer`.
    pub fn layer(&self, layer: Layer) -> u64 {
        self.layers[layer.index()]
    }
}

/// Aggregated per-layer cycle totals — the CPI stack of a run.
///
/// `cycles_per_instruction` of each layer is that layer's contribution
/// to the workload's CPI; layers not exercised report 0.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpiStack {
    layers: [u64; NUM_LAYERS],
    /// Memory operations spanned.
    ops: u64,
    /// Instructions retired (set via [`CpiStack::add_instructions`]).
    instructions: u64,
}

impl CpiStack {
    /// An empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cycles` to `layer`.
    #[inline]
    pub fn add(&mut self, layer: Layer, cycles: u64) {
        self.layers[layer.index()] = self.layers[layer.index()].saturating_add(cycles);
    }

    /// Counts one completed memory-operation span.
    #[inline]
    pub fn add_span(&mut self, span: &AccessSpan) {
        for (i, &c) in span.layers.iter().enumerate() {
            self.layers[i] = self.layers[i].saturating_add(c);
        }
        self.ops += 1;
    }

    /// Counts retired instructions (the CPI denominator).
    #[inline]
    pub fn add_instructions(&mut self, n: u64) {
        self.instructions += n;
    }

    /// Folds `other` into `self`: per-layer cycles, ops, and
    /// instructions all add. Commutative and associative with the empty
    /// stack as identity — the shard-merge law for CPI stacks.
    pub fn merge(&mut self, other: &Self) {
        for (c, &o) in self.layers.iter_mut().zip(other.layers.iter()) {
            *c = c.saturating_add(o);
        }
        self.ops = self.ops.saturating_add(other.ops);
        self.instructions = self.instructions.saturating_add(other.instructions);
    }

    /// Cycles attributed to `layer`.
    pub fn layer_cycles(&self, layer: Layer) -> u64 {
        self.layers[layer.index()]
    }

    /// Total attributed cycles across all layers.
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().sum()
    }

    /// Memory operations spanned.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Instructions retired.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// `layer`'s contribution to CPI (0.0 with no instructions).
    pub fn layer_cpi(&self, layer: Layer) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.layer_cycles(layer) as f64 / self.instructions as f64
        }
    }

    /// JSON object mapping layer name to attributed cycles, plus
    /// `ops` and `instructions`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"layers\":{");
        let mut first = true;
        for layer in Layer::ALL {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{}\":{}", layer.as_str(), self.layer_cycles(layer));
        }
        let _ = write!(s, "}},\"ops\":{},\"instructions\":{}}}", self.ops, self.instructions);
        s
    }

    /// Renders the stack as an aligned text table with per-layer CPI
    /// and percentage bars.
    pub fn render_text(&self) -> String {
        let total = self.total_cycles().max(1);
        let mut s = String::new();
        let _ = writeln!(s, "  {:<14} {:>14} {:>8} {:>8}  ", "layer", "cycles", "cpi", "share");
        for layer in Layer::ALL {
            let c = self.layer_cycles(layer);
            if c == 0 {
                continue;
            }
            let share = c as f64 / total as f64;
            let bar_len = (share * 30.0).round() as usize;
            let _ = writeln!(
                s,
                "  {:<14} {:>14} {:>8.3} {:>7.1}%  {}",
                layer.as_str(),
                c,
                self.layer_cpi(layer),
                share * 100.0,
                "#".repeat(bar_len)
            );
        }
        let _ = writeln!(
            s,
            "  {:<14} {:>14} {:>8.3}",
            "total",
            self.total_cycles(),
            if self.instructions == 0 {
                0.0
            } else {
                self.total_cycles() as f64 / self.instructions as f64
            }
        );
        let _ = writeln!(s, "  ops={} instructions={}", self.ops, self.instructions);
        s
    }
}

/// A span under construction (one per in-flight memory operation; the
/// simulator is single-issue per machine so one slot suffices).
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    write: bool,
    va: u64,
    start: u64,
    layers: [u64; NUM_LAYERS],
}

/// Tracks the in-flight span and the ring of completed spans.
#[derive(Clone, Debug)]
pub struct SpanTracker {
    current: Option<OpenSpan>,
    ring: VecDeque<AccessSpan>,
    capacity: usize,
    dropped: u64,
    stack: CpiStack,
}

impl SpanTracker {
    /// A tracker keeping at most `capacity` completed spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            current: None,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
            stack: CpiStack::new(),
        }
    }

    /// Opens a span for a memory operation issued at `start`.
    /// An unclosed previous span is discarded (fault-aborted access).
    pub fn begin(&mut self, write: bool, va: u64, start: u64) {
        self.current = Some(OpenSpan { write, va, start, layers: [0; NUM_LAYERS] });
    }

    /// Attributes `cycles` to `layer`. Inside a span the cycles go to
    /// the span; outside (e.g. compute instructions) they go straight
    /// to the aggregate stack.
    pub fn attribute(&mut self, layer: Layer, cycles: u64) {
        match &mut self.current {
            Some(span) => {
                span.layers[layer.index()] = span.layers[layer.index()].saturating_add(cycles);
            }
            None => self.stack.add(layer, cycles),
        }
    }

    /// Closes the current span with its total latency, assigning any
    /// unattributed cycles to [`Layer::Other`]. No-op if no span is
    /// open.
    pub fn end(&mut self, total: u64) -> Option<AccessSpan> {
        let open = self.current.take()?;
        let mut layers = open.layers;
        let attributed: u64 = layers.iter().sum();
        layers[Layer::Other.index()] += total.saturating_sub(attributed);
        let span = AccessSpan { write: open.write, va: open.va, start: open.start, total, layers };
        self.stack.add_span(&span);
        if self.capacity == 0 {
            self.dropped += 1;
        } else {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
                self.dropped += 1;
            }
            self.ring.push_back(span);
        }
        Some(span)
    }

    /// Counts retired instructions.
    pub fn add_instructions(&mut self, n: u64) {
        self.stack.add_instructions(n);
    }

    /// The aggregate CPI stack.
    pub fn stack(&self) -> &CpiStack {
        &self.stack
    }

    /// Completed spans currently held, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &AccessSpan> + '_ {
        self.ring.iter()
    }

    /// Spans evicted from the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// `true` if a span is currently open.
    pub fn in_span(&self) -> bool {
        self.current.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle_attributes_residual_to_other() {
        let mut t = SpanTracker::new(4);
        t.begin(false, 0x1000, 100);
        t.attribute(Layer::Tlb, 1);
        t.attribute(Layer::Cache, 9);
        let span = t.end(30).expect("span was open");
        assert_eq!(span.layer(Layer::Tlb), 1);
        assert_eq!(span.layer(Layer::Cache), 9);
        assert_eq!(span.layer(Layer::Other), 20);
        assert_eq!(span.total, 30);
        assert_eq!(t.stack().ops(), 1);
        assert_eq!(t.stack().total_cycles(), 30);
    }

    #[test]
    fn attribution_outside_span_goes_to_aggregate() {
        let mut t = SpanTracker::new(4);
        t.attribute(Layer::Core, 50);
        assert_eq!(t.stack().layer_cycles(Layer::Core), 50);
        assert_eq!(t.stack().ops(), 0);
    }

    #[test]
    fn end_without_begin_is_noop() {
        let mut t = SpanTracker::new(4);
        assert!(t.end(10).is_none());
        assert_eq!(t.stack().ops(), 0);
    }

    #[test]
    fn cpi_math() {
        let mut s = CpiStack::new();
        s.add(Layer::Dram, 300);
        s.add(Layer::Core, 100);
        s.add_instructions(200);
        assert!((s.layer_cpi(Layer::Dram) - 1.5).abs() < 1e-9);
        assert_eq!(s.total_cycles(), 400);
        let json = s.to_json();
        assert!(json.contains("\"dram\":300"));
        assert!(json.contains("\"instructions\":200"));
    }

    #[test]
    fn span_ring_bounded() {
        let mut t = SpanTracker::new(2);
        for i in 0..5 {
            t.begin(true, i, i);
            t.end(1);
        }
        assert_eq!(t.spans().count(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.stack().ops(), 5, "aggregate stack still counts evicted spans");
    }
}
