//! Order-insensitive merging of per-shard telemetry.
//!
//! The shard pool gives every workload job its own [`TelemetrySink`],
//! so workers never contend on one shared core — but the exports CI
//! byte-diffs (`summary.json`, journal JSONL, run reports) must not
//! depend on which worker finished first. This module is the other half
//! of that bargain: everything a sink records merges under laws that
//! are commutative and associative with an empty identity, and the
//! merged journal is totally ordered by `(job, seq)` — the job id is
//! assigned at submission time and `seq` orders events within a job (it
//! advances with the job's simulated cycle), so the serialized bytes
//! are a pure function of the job set, never of worker interleaving.
//!
//! Merge laws: counters, histograms, CPI-stack cycles, ops, and
//! instruction counts *add*; gauges (all high-water marks) take the
//! elementwise *maximum*; journal records *union* under the `(job,
//! seq)` order.

use crate::journal::{EventRecord, Journal};
use crate::metrics::MetricsRegistry;
use crate::sink::{TelemetryCore, TelemetrySink};
use crate::span::CpiStack;
use std::fmt::Write as _;

/// The union of per-job event journals, totally ordered by
/// `(job, seq)` so exports are byte-identical however the journals
/// arrive.
#[derive(Clone, Debug, Default)]
pub struct MergedJournal {
    entries: Vec<(u64, EventRecord)>,
    total_emitted: u64,
    dropped: u64,
    flushed: u64,
    jobs: u64,
}

impl MergedJournal {
    /// An empty merged journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one job's journal. Job ids must be distinct per absorbed
    /// journal — they are the major sort key of the export.
    pub fn absorb(&mut self, job_id: u64, journal: &Journal) {
        self.entries.extend(journal.records().map(|&r| (job_id, r)));
        self.total_emitted += journal.total_emitted();
        self.dropped += journal.dropped();
        self.flushed += journal.flushed();
        self.jobs += 1;
    }

    /// Records currently held across all absorbed journals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Journals absorbed.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Total events emitted across all absorbed journals.
    pub fn total_emitted(&self) -> u64 {
        self.total_emitted
    }

    /// Events dropped across all absorbed journals.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events flushed to incremental streams across absorbed journals.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// All records as JSONL in `(job, seq)` order, each line the
    /// record's own serialization with a leading `"job"` key:
    /// `{"job":..,"seq":..,"cycle":..,"kind":"..",..}`.
    pub fn to_jsonl(&self) -> String {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by_key(|&i| (self.entries[i].0, self.entries[i].1.seq));
        let mut s = String::with_capacity(self.entries.len() * 96);
        for i in order {
            let (job, record) = &self.entries[i];
            let line = record.to_jsonl();
            let _ = write!(s, "{{\"job\":{job},{}", &line[1..]);
            s.push('\n');
        }
        s
    }
}

/// Accumulates per-job telemetry cores into one merged view: registry,
/// CPI stack, and journal, each under its order-insensitive law.
#[derive(Clone, Debug, Default)]
pub struct TelemetryMerge {
    registry: MetricsRegistry,
    stack: CpiStack,
    journal: MergedJournal,
}

impl TelemetryMerge {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one job's core under the merge laws.
    pub fn absorb_core(&mut self, job_id: u64, core: &TelemetryCore) {
        self.registry.merge(core.registry());
        self.stack.merge(core.cpi_stack());
        self.journal.absorb(job_id, core.journal());
    }

    /// Absorbs one job's sink; returns `false` (and absorbs nothing)
    /// for a `Noop` sink.
    pub fn absorb(&mut self, job_id: u64, sink: &TelemetrySink) -> bool {
        sink.with_core(|core| self.absorb_core(job_id, core)).is_some()
    }

    /// The merged metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The merged CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.stack
    }

    /// The merged journal.
    pub fn journal(&self) -> &MergedJournal {
        &self.journal
    }

    /// The merged journal as JSONL (see [`MergedJournal::to_jsonl`]).
    pub fn journal_jsonl(&self) -> String {
        self.journal.to_jsonl()
    }

    /// The merged human-readable run report: same shape as a single
    /// job's report, with the journal line counting absorbed jobs.
    pub fn run_report(&self, title: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "=== {title} ===");
        if self.stack.ops() > 0 || self.stack.total_cycles() > 0 {
            let _ = writeln!(s, "\nCPI stack (per-layer cycle attribution):");
            s.push_str(&self.stack.render_text());
        }
        if !self.registry.is_empty() {
            let _ = writeln!(s, "\nmetrics:");
            s.push_str(&self.registry.render_text());
        }
        let _ = writeln!(
            s,
            "\nevent journal: {} emitted across {} jobs, {} held, {} dropped",
            self.journal.total_emitted(),
            self.journal.jobs(),
            self.journal.len(),
            self.journal.dropped()
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Event;
    use crate::span::Layer;

    fn job_sink(job: u64, events: u64) -> TelemetrySink {
        let sink = TelemetrySink::active();
        for i in 0..events {
            sink.set_now(100 * job + i);
            sink.emit(|| Event::OmtWalk { opn: job * 10 + i, latency: 1 + i });
            sink.count("omt.walks", 1);
            sink.observe("omt.walk_latency", 1 + i);
        }
        sink.gauge("oms.high_water", (job * 7) as i64);
        sink.begin_access(false, 0x1000 * job);
        sink.layer(Layer::Dram, 30);
        sink.end_access(32);
        sink.instructions(events);
        sink
    }

    #[test]
    fn merge_is_order_insensitive_byte_for_byte() {
        let sinks: Vec<_> = (0..4).map(|j| (j, job_sink(j, 3 + j))).collect();
        let mut forward = TelemetryMerge::new();
        for (job, sink) in &sinks {
            assert!(forward.absorb(*job, sink));
        }
        let mut reverse = TelemetryMerge::new();
        for (job, sink) in sinks.iter().rev() {
            reverse.absorb(*job, sink);
        }
        assert_eq!(forward.journal_jsonl(), reverse.journal_jsonl());
        assert_eq!(forward.registry().to_json(), reverse.registry().to_json());
        assert_eq!(forward.cpi_stack().to_json(), reverse.cpi_stack().to_json());
        assert_eq!(forward.run_report("t"), reverse.run_report("t"));
    }

    #[test]
    fn merged_journal_lines_carry_the_job_key_in_order() {
        let mut m = MergedJournal::new();
        let mut a = Journal::new(8);
        a.push(5, Event::OmtWalk { opn: 1, latency: 2 });
        let mut b = Journal::new(8);
        b.push(1, Event::OmtWalk { opn: 2, latency: 3 });
        m.absorb(1, &a);
        m.absorb(0, &b);
        let jsonl = m.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"job\":0,\"seq\":0,"), "job 0 first: {}", lines[0]);
        assert!(lines[1].starts_with("{\"job\":1,\"seq\":0,"), "job 1 second: {}", lines[1]);
        assert_eq!(m.jobs(), 2);
        assert_eq!(m.total_emitted(), 2);
    }

    #[test]
    fn noop_sink_absorbs_nothing() {
        let mut m = TelemetryMerge::new();
        assert!(!m.absorb(0, &TelemetrySink::noop()));
        assert!(m.journal().is_empty());
        assert!(m.registry().is_empty());
    }
}
