//! # po-telemetry — deterministic tracing, metrics, and run reports
//!
//! The observability substrate of the page-overlays simulator. The
//! paper's evaluation (§6) rests on fine-grained accounting — CPI
//! stacks, OMT-cache hit rates, memory-overhead curves, per-access
//! latency breakdowns — and this crate provides the machinery to
//! collect all of it without perturbing the simulation:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and log2-bucketed
//!   latency histograms ([`Log2Histogram`]), iterated and exported in
//!   deterministic name order.
//! * [`Journal`] — a bounded ring of typed [`Event`]s (TLB lookups,
//!   O-bit checks, cache accesses, OMT walks, OMS resolutions, DRAM
//!   accesses, overlaying writes, reclaims, injected faults) stamped
//!   with **simulated cycles, never wall clock** — so two identical
//!   seeded runs produce byte-identical journals and the deterministic
//!   simulation harness can dump the tail on divergence.
//! * [`SpanTracker`] / [`CpiStack`] — span-style access-lifecycle
//!   tracing: each timed memory operation opens a span, the layers it
//!   traverses attribute their latency contributions, and the closed
//!   spans aggregate into a per-layer CPI stack.
//! * Exporters — JSONL event logs, Chrome `trace_event` JSON
//!   ([`chrome_trace`]), and a human-readable run report
//!   ([`run_report`]).
//! * [`TelemetryMerge`] / [`MergedJournal`] — order-insensitive merging
//!   of per-shard sinks: counters/histograms/CPI stacks add, gauges
//!   take the peak, and merged journals are totally ordered by
//!   `(job, seq)`, so exports from a sharded run are byte-identical to
//!   a serial one regardless of worker interleaving.
//!
//! The handle every layer holds is a [`TelemetrySink`]: an enum whose
//! default [`Noop`](TelemetrySink::Noop) variant makes every recording
//! method a single discriminant test (arguments are behind closures, so
//! nothing is even constructed). The machine distributes clones of one
//! active sink to all layers, exactly like the fault injector.
//!
//! # Example
//!
//! ```
//! use po_telemetry::{Event, HitLevel, Layer, TelemetrySink};
//!
//! let sink = TelemetrySink::active();
//! sink.set_now(100);                       // simulated cycle, set by the machine
//! sink.begin_access(false, 0x1000);        // a load issues
//! sink.layer(Layer::Tlb, 1);               // TLB hit: 1 cycle
//! sink.emit(|| Event::TlbLookup { asid: 1, vpn: 1, level: HitLevel::L1, latency: 1 });
//! sink.layer(Layer::Cache, 9);             // L2 hit: 9 cycles
//! sink.end_access(10);                     // span closes; CPI stack updated
//! sink.instructions(1);
//!
//! let stack = sink.cpi_stack().unwrap();
//! assert_eq!(stack.layer_cycles(Layer::Tlb), 1);
//! assert_eq!(stack.layer_cycles(Layer::Cache), 9);
//! assert!(sink.journal_jsonl().contains("\"kind\":\"TlbLookup\""));
//!
//! // The default sink records nothing and costs (almost) nothing.
//! let off = TelemetrySink::noop();
//! off.emit(|| unreachable!("never constructed on Noop"));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(missing_docs)]

pub mod export;
pub mod journal;
pub mod merge;
pub mod metrics;
pub mod sink;
pub mod span;

pub use export::{chrome_trace, run_report};
pub use journal::{Event, EventRecord, HitLevel, Journal};
pub use merge::{MergedJournal, TelemetryMerge};
pub use metrics::{Log2Histogram, MetricsRegistry};
pub use sink::{TelemetryCore, TelemetrySink};
pub use span::{AccessSpan, CpiStack, Layer, SpanTracker};
