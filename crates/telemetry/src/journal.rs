//! The deterministic structured event journal.
//!
//! A bounded ring buffer of typed [`Event`]s, each stamped with a
//! monotonically increasing sequence number and the *simulated* cycle
//! at which it occurred. Wall-clock time never appears anywhere: two
//! runs of the same seeded workload produce byte-identical journals,
//! which is what lets the deterministic-simulation harness diff them
//! and dump the tail on divergence.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Hit level of a lookup in a two-level structure (TLB) or a
/// three-level one (cache hierarchy). `Miss` means every level missed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HitLevel {
    /// First-level hit.
    L1,
    /// Second-level hit.
    L2,
    /// Third-level hit (caches only).
    L3,
    /// Missed every level.
    Miss,
}

impl HitLevel {
    /// Stable string form used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            HitLevel::L1 => "L1",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Miss => "miss",
        }
    }
}

/// One structured telemetry event.
///
/// Fields are raw integers (page numbers, addresses, cycle counts) so
/// the crate has no dependency on the simulator's newtypes and any
/// layer can emit without conversion ceremony. The variant set mirrors
/// the access path of the paper's Figure 6: TLB, O-bit check, cache,
/// OMT walk / OMT-cache resolve, OMS, DRAM, plus the overlay lifecycle
/// (overlaying write, reclaim) and injected faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A TLB lookup (L1/L2/miss) and its latency.
    TlbLookup {
        /// Address-space id of the requesting process.
        asid: u16,
        /// Virtual page number looked up.
        vpn: u64,
        /// Where it hit.
        level: HitLevel,
        /// Lookup latency in cycles (includes the walk on a miss).
        latency: u64,
    },
    /// An OBitVector membership test deciding overlay vs page routing.
    OBitCheck {
        /// Overlay page number checked.
        opn: u64,
        /// Line index within the page (0..64).
        line: u8,
        /// Whether the bit was set (line lives in the overlay).
        set: bool,
    },
    /// A cache-hierarchy access.
    CacheAccess {
        /// Line-aligned physical/overlay address presented to the caches.
        addr: u64,
        /// `true` for stores.
        write: bool,
        /// Where it hit (or `Miss` for a full hierarchy miss).
        level: HitLevel,
        /// Hierarchy latency in cycles (miss latency excludes DRAM).
        latency: u64,
    },
    /// A full OMT walk (OMT-cache miss) at the memory controller.
    OmtWalk {
        /// Overlay page number walked.
        opn: u64,
        /// Walk latency in cycles.
        latency: u64,
    },
    /// A memory-controller overlay-address resolution (OMT-cache probe).
    OmsResolve {
        /// Overlay page number resolved.
        opn: u64,
        /// Line index within the page.
        line: u8,
        /// Whether the OMT cache hit.
        cache_hit: bool,
    },
    /// A DRAM access and its latency.
    DramAccess {
        /// Main-memory address.
        addr: u64,
        /// `true` for writes.
        write: bool,
        /// Latency in cycles from issue to completion.
        latency: u64,
    },
    /// An overlaying write: a store to a shared page creates/extends an
    /// overlay instead of copying the page.
    OverlayingWrite {
        /// Overlay page number written.
        opn: u64,
        /// Line index within the page.
        line: u8,
    },
    /// Overlay memory reclaimed by collapsing a cold overlay.
    Reclaim {
        /// Overlay page number collapsed.
        opn: u64,
        /// OMS bytes freed.
        freed_bytes: u64,
    },
    /// An OMS compaction pass relocated live segments to coalesce free
    /// space (or aborted mid-pass on a relocation failure).
    Compaction {
        /// Total bytes moved to lower addresses by this pass.
        relocated_bytes: u64,
        /// Number of segments relocated.
        moves: u64,
        /// Whether the pass aborted early (relocation copy failed).
        aborted: bool,
    },
    /// A fault-injection site fired.
    FaultInjected {
        /// Stable site name (e.g. `"OmsAllocFailed"`).
        site: &'static str,
    },
    /// A core acquired overlaying-read-exclusive rights on a line
    /// before an overlaying write (§4.3.3 step 1).
    CohReadExclusive {
        /// Core that acquired exclusivity.
        core: u32,
        /// Overlay page number.
        opn: u64,
        /// Line index within the page.
        line: u8,
    },
    /// A single-line OBitVector-update message delivered from the
    /// writing core to a remote TLB copy (§4.3.3 step 2).
    CohObitUpdate {
        /// Writing (sending) core.
        src: u32,
        /// Remote core whose TLB copy was patched.
        dest: u32,
        /// Overlay page number.
        opn: u64,
        /// Line index within the page.
        line: u8,
    },
    /// A promotion reached its commit point on the issuing core
    /// (§4.3.4); remote cores still hold stale entries until the
    /// shootdown completes.
    CohPromote {
        /// Core that performed the promotion.
        core: u32,
        /// Overlay page number promoted.
        opn: u64,
    },
    /// A TLB-shootdown window opened for a page.
    CohShootdownBegin {
        /// Initiating core.
        core: u32,
        /// Overlay page number being shot down.
        opn: u64,
    },
    /// One remote core acknowledged a shootdown (its TLB copy is gone).
    CohShootdownAck {
        /// Initiating core.
        core: u32,
        /// Acknowledging remote core.
        from: u32,
        /// Overlay page number being shot down.
        opn: u64,
    },
    /// The shootdown window closed: every remote copy is invalidated
    /// and the new mapping is globally visible.
    CohShootdownEnd {
        /// Initiating core.
        core: u32,
        /// Overlay page number shot down.
        opn: u64,
    },
    /// A timed access to an overlay-enabled page, annotated with the
    /// issuing core — the observation points the happens-before
    /// analysis orders.
    CohAccess {
        /// Issuing core.
        core: u32,
        /// Overlay page number accessed.
        opn: u64,
        /// Line index within the page.
        line: u8,
        /// `true` for stores.
        write: bool,
    },
    /// A TLB miss refilled a core's entry for an overlay-enabled page
    /// from the (coherent) page tables — the refilled copy is fresh.
    CohFill {
        /// Core whose TLB was refilled.
        core: u32,
        /// Overlay page number.
        opn: u64,
    },
}

impl Event {
    /// Stable kind string used in exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::TlbLookup { .. } => "TlbLookup",
            Event::OBitCheck { .. } => "OBitCheck",
            Event::CacheAccess { .. } => "CacheAccess",
            Event::OmtWalk { .. } => "OmtWalk",
            Event::OmsResolve { .. } => "OmsResolve",
            Event::DramAccess { .. } => "DramAccess",
            Event::OverlayingWrite { .. } => "OverlayingWrite",
            Event::Reclaim { .. } => "Reclaim",
            Event::Compaction { .. } => "Compaction",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::CohReadExclusive { .. } => "CohReadExclusive",
            Event::CohObitUpdate { .. } => "CohObitUpdate",
            Event::CohPromote { .. } => "CohPromote",
            Event::CohShootdownBegin { .. } => "CohShootdownBegin",
            Event::CohShootdownAck { .. } => "CohShootdownAck",
            Event::CohShootdownEnd { .. } => "CohShootdownEnd",
            Event::CohAccess { .. } => "CohAccess",
            Event::CohFill { .. } => "CohFill",
        }
    }

    /// Duration in simulated cycles, for events that model a latency.
    pub fn duration(&self) -> Option<u64> {
        match self {
            Event::TlbLookup { latency, .. }
            | Event::CacheAccess { latency, .. }
            | Event::OmtWalk { latency, .. }
            | Event::DramAccess { latency, .. } => Some(*latency),
            _ => None,
        }
    }

    /// Writes the variant-specific JSON fields (no braces) into `out`.
    fn write_json_fields(&self, out: &mut String) {
        match *self {
            Event::TlbLookup { asid, vpn, level, latency } => {
                let _ = write!(
                    out,
                    "\"asid\":{asid},\"vpn\":{vpn},\"level\":\"{}\",\"latency\":{latency}",
                    level.as_str()
                );
            }
            Event::OBitCheck { opn, line, set } => {
                let _ = write!(out, "\"opn\":{opn},\"line\":{line},\"set\":{set}");
            }
            Event::CacheAccess { addr, write, level, latency } => {
                let _ = write!(
                    out,
                    "\"addr\":{addr},\"write\":{write},\"level\":\"{}\",\"latency\":{latency}",
                    level.as_str()
                );
            }
            Event::OmtWalk { opn, latency } => {
                let _ = write!(out, "\"opn\":{opn},\"latency\":{latency}");
            }
            Event::OmsResolve { opn, line, cache_hit } => {
                let _ = write!(out, "\"opn\":{opn},\"line\":{line},\"cache_hit\":{cache_hit}");
            }
            Event::DramAccess { addr, write, latency } => {
                let _ = write!(out, "\"addr\":{addr},\"write\":{write},\"latency\":{latency}");
            }
            Event::OverlayingWrite { opn, line } => {
                let _ = write!(out, "\"opn\":{opn},\"line\":{line}");
            }
            Event::Reclaim { opn, freed_bytes } => {
                let _ = write!(out, "\"opn\":{opn},\"freed_bytes\":{freed_bytes}");
            }
            Event::Compaction { relocated_bytes, moves, aborted } => {
                let _ = write!(
                    out,
                    "\"relocated_bytes\":{relocated_bytes},\"moves\":{moves},\"aborted\":{aborted}"
                );
            }
            Event::FaultInjected { site } => {
                let _ = write!(out, "\"site\":\"{site}\"");
            }
            Event::CohReadExclusive { core, opn, line } => {
                let _ = write!(out, "\"core\":{core},\"opn\":{opn},\"line\":{line}");
            }
            Event::CohObitUpdate { src, dest, opn, line } => {
                let _ = write!(out, "\"src\":{src},\"dest\":{dest},\"opn\":{opn},\"line\":{line}");
            }
            Event::CohPromote { core, opn } => {
                let _ = write!(out, "\"core\":{core},\"opn\":{opn}");
            }
            Event::CohShootdownBegin { core, opn } => {
                let _ = write!(out, "\"core\":{core},\"opn\":{opn}");
            }
            Event::CohShootdownAck { core, from, opn } => {
                let _ = write!(out, "\"core\":{core},\"from\":{from},\"opn\":{opn}");
            }
            Event::CohShootdownEnd { core, opn } => {
                let _ = write!(out, "\"core\":{core},\"opn\":{opn}");
            }
            Event::CohAccess { core, opn, line, write } => {
                let _ =
                    write!(out, "\"core\":{core},\"opn\":{opn},\"line\":{line},\"write\":{write}");
            }
            Event::CohFill { core, opn } => {
                let _ = write!(out, "\"core\":{core},\"opn\":{opn}");
            }
        }
    }
}

/// A journal entry: an event plus its sequence number and cycle stamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number (0-based, counts every event emitted,
    /// including those since evicted from the ring).
    pub seq: u64,
    /// Simulated cycle at which the event occurred.
    pub cycle: u64,
    /// The event.
    pub event: Event,
}

impl EventRecord {
    /// One JSONL line (no trailing newline), keys in fixed order:
    /// `{"seq":..,"cycle":..,"kind":"..",<fields>}`.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"cycle\":{},\"kind\":\"{}\"",
            self.seq,
            self.cycle,
            self.event.kind()
        );
        let mut fields = String::new();
        self.event.write_json_fields(&mut fields);
        if !fields.is_empty() {
            s.push(',');
            s.push_str(&fields);
        }
        s.push('}');
        s
    }
}

/// A bounded ring of [`EventRecord`]s.
///
/// When full, the oldest record is evicted; `dropped()` reports how
/// many were lost. Capacity 0 disables recording entirely (the
/// sequence counter still advances so counters stay meaningful).
///
/// With a *stream* installed ([`Journal::set_stream`]), records that
/// would be evicted are instead written to the stream as JSONL, so a
/// long run traces completely in bounded memory: the flushed lines
/// followed by [`Journal::to_jsonl`] of the resident ring reproduce,
/// byte for byte, what an unbounded journal would have exported.
pub struct Journal {
    ring: VecDeque<EventRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    flushed: u64,
    stream: Option<Box<dyn std::io::Write + Send>>,
}

impl Clone for Journal {
    /// Clones the ring and counters. The stream, if any, stays with the
    /// original: a writer cannot be duplicated, and two journals
    /// interleaving lines into one file would corrupt it.
    fn clone(&self) -> Self {
        Self {
            ring: self.ring.clone(),
            capacity: self.capacity,
            next_seq: self.next_seq,
            dropped: self.dropped,
            flushed: self.flushed,
            stream: None,
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("ring", &self.ring)
            .field("capacity", &self.capacity)
            .field("next_seq", &self.next_seq)
            .field("dropped", &self.dropped)
            .field("flushed", &self.flushed)
            .field("stream", &self.stream.as_ref().map(|_| "<writer>"))
            .finish()
    }
}

impl Journal {
    /// A journal holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            dropped: 0,
            flushed: 0,
            stream: None,
        }
    }

    /// Installs an incremental JSONL writer: from now on, records that
    /// would be evicted (or dropped by a zero-capacity ring) are
    /// written to it instead of lost. Replaces any previous stream.
    pub fn set_stream(&mut self, stream: Box<dyn std::io::Write + Send>) {
        self.stream = Some(stream);
    }

    /// Removes and returns the incremental writer, flushing it first.
    pub fn take_stream(&mut self) -> Option<Box<dyn std::io::Write + Send>> {
        let mut stream = self.stream.take()?;
        let _ = stream.flush();
        Some(stream)
    }

    /// Appends an event at `cycle`. A full ring evicts the oldest
    /// record — to the stream when one is installed, otherwise dropped.
    pub fn push(&mut self, cycle: u64, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let record = EventRecord { seq, cycle, event };
        if self.capacity == 0 {
            self.spill(record);
            return;
        }
        if self.ring.len() == self.capacity {
            if let Some(evicted) = self.ring.pop_front() {
                self.spill(evicted);
            }
        }
        self.ring.push_back(record);
    }

    /// Routes a record leaving the ring: to the stream when one is
    /// installed (a failed write counts as dropped), else dropped.
    fn spill(&mut self, record: EventRecord) {
        match &mut self.stream {
            Some(stream) => {
                let mut line = record.to_jsonl();
                line.push('\n');
                if stream.write_all(line.as_bytes()).is_ok() {
                    self.flushed += 1;
                } else {
                    self.dropped += 1;
                }
            }
            None => self.dropped += 1,
        }
    }

    /// Records currently held, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &EventRecord> + '_ {
        self.ring.iter()
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> impl Iterator<Item = &EventRecord> + '_ {
        let skip = self.ring.len().saturating_sub(n);
        self.ring.iter().skip(skip)
    }

    /// Total events ever emitted (including evicted ones).
    pub fn total_emitted(&self) -> u64 {
        self.next_seq
    }

    /// Events evicted (or not recorded because capacity is 0) that did
    /// not reach a stream.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events flushed to the incremental stream instead of dropped.
    pub fn flushed(&self) -> u64 {
        self.flushed
    }

    /// Records currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if no records are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Discards all records (sequence numbering continues).
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// All held records as JSONL, one event per line, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for r in &self.ring {
            s.push_str(&r.to_jsonl());
            s.push('\n');
        }
        s
    }

    /// The most recent `n` records as JSONL.
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut s = String::new();
        for r in self.tail(n) {
            s.push_str(&r.to_jsonl());
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let mut j = Journal::new(2);
        j.push(10, Event::OverlayingWrite { opn: 1, line: 0 });
        j.push(11, Event::OverlayingWrite { opn: 2, line: 1 });
        j.push(12, Event::OverlayingWrite { opn: 3, line: 2 });
        assert_eq!(j.len(), 2);
        assert_eq!(j.total_emitted(), 3);
        assert_eq!(j.dropped(), 1);
        let seqs: Vec<_> = j.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn zero_capacity_counts_but_drops() {
        let mut j = Journal::new(0);
        j.push(1, Event::FaultInjected { site: "x" });
        assert!(j.is_empty());
        assert_eq!(j.total_emitted(), 1);
        assert_eq!(j.dropped(), 1);
    }

    #[test]
    fn jsonl_shape() {
        let r = EventRecord {
            seq: 7,
            cycle: 42,
            event: Event::TlbLookup { asid: 1, vpn: 16, level: HitLevel::L2, latency: 10 },
        };
        assert_eq!(
            r.to_jsonl(),
            "{\"seq\":7,\"cycle\":42,\"kind\":\"TlbLookup\",\"asid\":1,\"vpn\":16,\"level\":\"L2\",\"latency\":10}"
        );
        let r2 = EventRecord {
            seq: 0,
            cycle: 0,
            event: Event::OBitCheck { opn: 9, line: 3, set: true },
        };
        assert_eq!(
            r2.to_jsonl(),
            "{\"seq\":0,\"cycle\":0,\"kind\":\"OBitCheck\",\"opn\":9,\"line\":3,\"set\":true}"
        );
    }

    #[test]
    fn coherence_jsonl_shape() {
        let cases = [
            (
                Event::CohReadExclusive { core: 0, opn: 5, line: 3 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohReadExclusive\",\"core\":0,\"opn\":5,\"line\":3}",
            ),
            (
                Event::CohObitUpdate { src: 0, dest: 2, opn: 5, line: 3 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohObitUpdate\",\"src\":0,\"dest\":2,\"opn\":5,\"line\":3}",
            ),
            (
                Event::CohPromote { core: 1, opn: 5 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohPromote\",\"core\":1,\"opn\":5}",
            ),
            (
                Event::CohShootdownBegin { core: 1, opn: 5 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohShootdownBegin\",\"core\":1,\"opn\":5}",
            ),
            (
                Event::CohShootdownAck { core: 1, from: 3, opn: 5 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohShootdownAck\",\"core\":1,\"from\":3,\"opn\":5}",
            ),
            (
                Event::CohShootdownEnd { core: 1, opn: 5 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohShootdownEnd\",\"core\":1,\"opn\":5}",
            ),
            (
                Event::CohAccess { core: 2, opn: 5, line: 63, write: true },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohAccess\",\"core\":2,\"opn\":5,\"line\":63,\"write\":true}",
            ),
            (
                Event::CohFill { core: 2, opn: 5 },
                "{\"seq\":0,\"cycle\":9,\"kind\":\"CohFill\",\"core\":2,\"opn\":5}",
            ),
        ];
        for (event, want) in cases {
            let r = EventRecord { seq: 0, cycle: 9, event };
            assert_eq!(r.to_jsonl(), want);
            assert_eq!(event.duration(), None, "coherence annotations carry no latency");
        }
    }

    #[test]
    fn tail_returns_newest() {
        let mut j = Journal::new(8);
        for i in 0..5 {
            j.push(i, Event::OmtWalk { opn: i, latency: 1 });
        }
        let seqs: Vec<_> = j.tail(2).map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(j.tail_jsonl(2).lines().count(), 2);
    }

    #[test]
    fn stream_preserves_the_serial_export() {
        use std::io::Write as _;
        use std::sync::{Arc, Mutex};

        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl std::io::Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("unpoisoned").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let flushed_bytes = Arc::new(Mutex::new(Vec::new()));
        let mut bounded = Journal::new(2);
        bounded.set_stream(Box::new(SharedBuf(Arc::clone(&flushed_bytes))));
        let mut unbounded = Journal::new(usize::MAX);
        for i in 0..5 {
            bounded.push(i, Event::OmtWalk { opn: i, latency: 1 });
            unbounded.push(i, Event::OmtWalk { opn: i, latency: 1 });
        }
        let mut stream = bounded.take_stream().expect("stream was installed");
        stream.flush().expect("flush");
        assert_eq!(bounded.flushed(), 3);
        assert_eq!(bounded.dropped(), 0, "a streamed eviction is not a drop");
        assert_eq!(bounded.len(), 2);
        let flushed =
            String::from_utf8(flushed_bytes.lock().expect("unpoisoned").clone()).expect("utf8");
        assert_eq!(
            format!("{flushed}{}", bounded.to_jsonl()),
            unbounded.to_jsonl(),
            "flushed + resident lines reproduce the serial export"
        );
    }

    #[test]
    fn zero_capacity_with_stream_is_pure_streaming() {
        let mut j = Journal::new(0);
        j.set_stream(Box::new(Vec::new()));
        j.push(1, Event::FaultInjected { site: "x" });
        assert_eq!(j.flushed(), 1);
        assert_eq!(j.dropped(), 0);
        assert!(j.is_empty());
    }

    #[test]
    fn clone_does_not_carry_the_stream() {
        let mut j = Journal::new(1);
        j.set_stream(Box::new(Vec::new()));
        j.push(1, Event::FaultInjected { site: "x" });
        let mut copy = j.clone();
        assert!(copy.take_stream().is_none());
        assert_eq!(copy.len(), 1);
        assert!(j.take_stream().is_some(), "original keeps its writer");
    }

    #[test]
    fn durations() {
        assert_eq!(Event::DramAccess { addr: 0, write: false, latency: 30 }.duration(), Some(30));
        assert_eq!(Event::Reclaim { opn: 0, freed_bytes: 256 }.duration(), None);
    }
}
