//! Exporters: Chrome `trace_event` JSON and the human-readable run
//! report. (JSONL export lives on [`Journal`](crate::journal::Journal)
//! itself since it is also the divergence-dump format.)
//!
//! Chrome traces use the *JSON array format* of the Trace Event
//! specification: a top-level object with a `traceEvents` array of
//! complete (`"ph":"X"`), instant (`"ph":"i"`) and metadata (`"ph":"M"`)
//! events. Timestamps are simulated cycles reported as microseconds
//! (1 cycle = 1 µs), so a 2.67 GHz run renders ~2670× slower than
//! "real time" — irrelevant for inspection, which only needs relative
//! structure. Load the file in `chrome://tracing` or Perfetto.

use crate::journal::Event;
use crate::sink::{TelemetryCore, TelemetrySink};
use crate::span::Layer;
use std::fmt::Write as _;

/// Track (tid) layout of the exported trace.
const TRACKS: [(u64, &str); 8] = [
    (0, "access spans"),
    (1, "tlb"),
    (2, "cache"),
    (3, "omt"),
    (4, "dram"),
    (5, "overlay"),
    (6, "faults"),
    (7, "coherence"),
];

fn track_of(event: &Event) -> u64 {
    match event {
        Event::TlbLookup { .. } => 1,
        Event::CacheAccess { .. } => 2,
        Event::OBitCheck { .. } | Event::OmtWalk { .. } | Event::OmsResolve { .. } => 3,
        Event::DramAccess { .. } => 4,
        Event::OverlayingWrite { .. } | Event::Reclaim { .. } | Event::Compaction { .. } => 5,
        Event::FaultInjected { .. } => 6,
        Event::CohReadExclusive { .. }
        | Event::CohObitUpdate { .. }
        | Event::CohPromote { .. }
        | Event::CohShootdownBegin { .. }
        | Event::CohShootdownAck { .. }
        | Event::CohShootdownEnd { .. }
        | Event::CohAccess { .. }
        | Event::CohFill { .. } => 7,
    }
}

/// Serializes the core's journal and spans as a Chrome `trace_event`
/// JSON document.
pub fn chrome_trace(core: &TelemetryCore) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: &str, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(s);
    };

    push(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"po-sim\"}}",
        &mut out,
    );
    for (tid, name) in TRACKS {
        push(
            &format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
    }

    for span in core.spans() {
        let mut args = String::new();
        for layer in Layer::ALL {
            let c = span.layer(layer);
            if c > 0 {
                let _ = write!(args, ",\"{}\":{}", layer.as_str(), c);
            }
        }
        push(
            &format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"access\",\"args\":{{\"va\":{}{args}}}}}",
                span.start,
                span.total.max(1),
                if span.write { "store" } else { "load" },
                span.va
            ),
            &mut out,
        );
    }

    for rec in core.journal().records() {
        let tid = track_of(&rec.event);
        let name = rec.event.kind();
        match rec.event.duration() {
            Some(dur) => push(
                &format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{name}\",\"cat\":\"event\",\"args\":{{\"seq\":{}}}}}",
                    rec.cycle,
                    dur.max(1),
                    rec.seq
                ),
                &mut out,
            ),
            None => push(
                &format!(
                    "{{\"ph\":\"i\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"s\":\"t\",\"name\":\"{name}\",\"cat\":\"event\",\"args\":{{\"seq\":{}}}}}",
                    rec.cycle, rec.seq
                ),
                &mut out,
            ),
        }
    }

    out.push_str("]}");
    out
}

/// Renders the human-readable run report: CPI stack, metrics registry,
/// and journal summary.
pub fn run_report(title: &str, core: &TelemetryCore) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "=== {title} ===");
    let stack = core.cpi_stack();
    if stack.ops() > 0 || stack.total_cycles() > 0 {
        let _ = writeln!(s, "\nCPI stack (per-layer cycle attribution):");
        s.push_str(&stack.render_text());
    }
    let registry = core.registry();
    if !registry.is_empty() {
        let _ = writeln!(s, "\nmetrics:");
        s.push_str(&registry.render_text());
    }
    let j = core.journal();
    let _ = writeln!(
        s,
        "\nevent journal: {} emitted, {} held (capacity {}), {} dropped",
        j.total_emitted(),
        j.len(),
        j.capacity(),
        j.dropped()
    );
    s
}

impl TelemetrySink {
    /// Chrome `trace_event` JSON of everything recorded (empty document
    /// when `Noop`).
    pub fn chrome_trace_json(&self) -> String {
        self.with_core(chrome_trace)
            .unwrap_or_else(|| "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}".to_string())
    }

    /// The human-readable run report.
    pub fn run_report(&self, title: &str) -> String {
        self.with_core(|core| run_report(title, core))
            .unwrap_or_else(|| format!("=== {title} ===\n(telemetry disabled)\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::HitLevel;

    fn populated_sink() -> TelemetrySink {
        let sink = TelemetrySink::active();
        sink.set_now(100);
        sink.begin_access(false, 0x1000);
        sink.layer(Layer::Tlb, 1);
        sink.emit(|| Event::TlbLookup { asid: 1, vpn: 1, level: HitLevel::L1, latency: 1 });
        sink.layer(Layer::Cache, 9);
        sink.emit(|| Event::CacheAccess {
            addr: 0x1000,
            write: false,
            level: HitLevel::Miss,
            latency: 9,
        });
        sink.emit(|| Event::OverlayingWrite { opn: 7, line: 3 });
        sink.end_access(40);
        sink.count("cache.accesses", 1);
        sink.instructions(1);
        sink
    }

    #[test]
    fn chrome_trace_is_balanced_json_with_metadata() {
        let trace = populated_sink().chrome_trace_json();
        assert!(trace.starts_with('{') && trace.ends_with('}'));
        assert_eq!(
            trace.matches('{').count(),
            trace.matches('}').count(),
            "balanced braces: {trace}"
        );
        assert!(trace.contains("\"traceEvents\":["));
        assert!(trace.contains("\"thread_name\""));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"ph\":\"i\""), "instant event for OverlayingWrite");
        assert!(trace.contains("\"name\":\"load\""));
    }

    #[test]
    fn noop_trace_is_valid_empty_document() {
        let trace = TelemetrySink::noop().chrome_trace_json();
        assert_eq!(trace, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }

    #[test]
    fn run_report_mentions_everything() {
        let report = populated_sink().run_report("unit test");
        assert!(report.contains("=== unit test ==="));
        assert!(report.contains("CPI stack"));
        assert!(report.contains("tlb"));
        assert!(report.contains("cache.accesses"));
        assert!(report.contains("event journal: 3 emitted"));
    }

    #[test]
    fn deterministic_export_bytes() {
        let a = populated_sink();
        let b = populated_sink();
        assert_eq!(a.chrome_trace_json(), b.chrome_trace_json());
        assert_eq!(a.journal_jsonl(), b.journal_jsonl());
        assert_eq!(a.run_report("t"), b.run_report("t"));
    }
}
