//! The [`TelemetrySink`] handle threaded through every simulator layer.
//!
//! Mirrors the `FaultInjector` distribution pattern: the machine builds
//! one sink and hands clones to the OS model, the TLBs, the cache
//! hierarchies, the overlay manager (which forwards to the OMT cache
//! and the Overlay Memory Store) and the DRAM model. All clones share
//! one [`TelemetryCore`], so a single report covers every layer.
//!
//! The default sink is [`TelemetrySink::Noop`]: a unit variant whose
//! every method is a single discriminant test — no allocation, no lock,
//! no argument evaluation (event construction is behind a closure).
//! Simulation state is never read *from* telemetry, so enabling or
//! disabling a sink cannot perturb execution: a telemetry-on run and a
//! telemetry-off run reach bit-identical machine snapshots.

use crate::journal::{Event, Journal};
use crate::metrics::MetricsRegistry;
use crate::span::{AccessSpan, CpiStack, Layer, SpanTracker};
use std::sync::{Arc, Mutex};

/// Default journal ring capacity.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;
/// Default completed-span ring capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// The shared state behind an active sink.
#[derive(Debug)]
pub struct TelemetryCore {
    /// Current simulated cycle, set by the machine at each timed
    /// operation so layers without a time context can stamp events.
    now: u64,
    /// The bounded structured event journal.
    journal: Journal,
    /// Span tracking + aggregate CPI stack.
    spans: SpanTracker,
    /// Counters, gauges, histograms.
    registry: MetricsRegistry,
}

impl TelemetryCore {
    fn new(journal_capacity: usize, span_capacity: usize) -> Self {
        Self {
            now: 0,
            journal: Journal::new(journal_capacity),
            spans: SpanTracker::new(span_capacity),
            registry: MetricsRegistry::new(),
        }
    }

    /// Current simulated cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The event journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Completed spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &AccessSpan> + '_ {
        self.spans.spans()
    }

    /// The aggregate CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        self.spans.stack()
    }

    /// The metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

/// A cloneable telemetry handle; see the module docs.
///
/// All clones of an `Active` sink share one [`TelemetryCore`].
#[derive(Clone, Debug, Default)]
pub enum TelemetrySink {
    /// Inert: every operation is a single discriminant test.
    #[default]
    Noop,
    /// Recording into the shared core.
    Active(Arc<Mutex<TelemetryCore>>),
}

impl TelemetrySink {
    /// The inert sink (also `Default`).
    #[inline]
    pub const fn noop() -> Self {
        TelemetrySink::Noop
    }

    /// An active sink with default ring capacities.
    pub fn active() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY, DEFAULT_SPAN_CAPACITY)
    }

    /// An active sink with explicit journal/span ring capacities.
    pub fn with_capacity(journal_capacity: usize, span_capacity: usize) -> Self {
        TelemetrySink::Active(Arc::new(Mutex::new(TelemetryCore::new(
            journal_capacity,
            span_capacity,
        ))))
    }

    /// `true` if this sink records anything.
    #[inline]
    pub fn is_active(&self) -> bool {
        matches!(self, TelemetrySink::Active(_))
    }

    #[inline]
    fn with_core_mut<R>(&self, f: impl FnOnce(&mut TelemetryCore) -> R) -> Option<R> {
        match self {
            TelemetrySink::Noop => None,
            TelemetrySink::Active(core) => Some(Self::record(core, f)),
        }
    }

    /// The recording arm, kept out of line so that a `Noop` sink costs
    /// its callers exactly one discriminant test — inlining the lock
    /// and ring/registry updates into every instrumented hot path would
    /// bloat those functions even when telemetry is off.
    #[cold]
    #[inline(never)]
    fn record<R>(core: &Mutex<TelemetryCore>, f: impl FnOnce(&mut TelemetryCore) -> R) -> R {
        // Lock poisoning cannot occur: no code panics while holding the
        // core lock, so a poisoned guard is simply recovered.
        f(&mut core.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Runs `f` against the shared core (None when `Noop`). This is the
    /// exporters' read path.
    pub fn with_core<R>(&self, f: impl FnOnce(&TelemetryCore) -> R) -> Option<R> {
        self.with_core_mut(|core| f(core))
    }

    // --- time ---------------------------------------------------------

    /// Sets the current simulated cycle; the machine calls this at each
    /// timed operation so every layer's events carry cycle stamps.
    #[inline]
    pub fn set_now(&self, cycle: u64) {
        self.with_core_mut(|core| core.now = cycle);
    }

    /// Current simulated cycle (0 when `Noop`).
    #[inline]
    pub fn now(&self) -> u64 {
        self.with_core(|core| core.now).unwrap_or(0)
    }

    // --- events -------------------------------------------------------

    /// Appends an event to the journal, stamped with the current cycle.
    /// The closure is never called on a `Noop` sink, so argument
    /// construction costs nothing when telemetry is off.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> Event) {
        self.with_core_mut(|core| {
            let now = core.now;
            core.journal.push(now, make());
        });
    }

    // --- metrics ------------------------------------------------------

    /// Adds `n` to a named counter.
    #[inline]
    pub fn count(&self, name: &'static str, n: u64) {
        self.with_core_mut(|core| core.registry.count(name, n));
    }

    /// Sets a named gauge.
    #[inline]
    pub fn gauge(&self, name: &'static str, v: i64) {
        self.with_core_mut(|core| core.registry.gauge(name, v));
    }

    /// Records a histogram observation.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        self.with_core_mut(|core| core.registry.observe(name, v));
    }

    /// Reads back a counter (0 when `Noop` or never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_core(|core| core.registry.counter(name)).unwrap_or(0)
    }

    // --- spans --------------------------------------------------------

    /// Opens a span for a memory operation issued at the current cycle.
    #[inline]
    pub fn begin_access(&self, write: bool, va: u64) {
        self.with_core_mut(|core| {
            let now = core.now;
            core.spans.begin(write, va, now);
        });
    }

    /// Attributes `cycles` to `layer` — to the open span if one exists,
    /// otherwise straight to the aggregate CPI stack.
    #[inline]
    pub fn layer(&self, layer: Layer, cycles: u64) {
        if cycles == 0 {
            return;
        }
        self.with_core_mut(|core| core.spans.attribute(layer, cycles));
    }

    /// Closes the open span with its total latency and folds it into
    /// the CPI stack (also records the latency histogram).
    #[inline]
    pub fn end_access(&self, total: u64) {
        self.with_core_mut(|core| {
            if core.spans.end(total).is_some() {
                core.registry.observe("machine.access_latency", total);
            }
        });
    }

    /// Counts retired instructions (the CPI-stack denominator).
    #[inline]
    pub fn instructions(&self, n: u64) {
        self.with_core_mut(|core| core.spans.add_instructions(n));
    }

    // --- streaming ----------------------------------------------------

    /// Installs an incremental JSONL writer on the journal: records
    /// evicted on ring wrap are flushed to it instead of dropped.
    /// No-op on `Noop`.
    pub fn set_journal_stream(&self, stream: Box<dyn std::io::Write + Send>) {
        self.with_core_mut(|core| core.journal.set_stream(stream));
    }

    /// Removes and returns the journal's incremental writer, flushing
    /// it first (`None` when `Noop` or no stream was installed).
    pub fn take_journal_stream(&self) -> Option<Box<dyn std::io::Write + Send>> {
        self.with_core_mut(|core| core.journal.take_stream()).flatten()
    }

    // --- exports ------------------------------------------------------

    /// All journaled events as JSONL (empty when `Noop`).
    pub fn journal_jsonl(&self) -> String {
        self.with_core(|core| core.journal.to_jsonl()).unwrap_or_default()
    }

    /// The newest `n` journaled events as JSONL (empty when `Noop`).
    pub fn tail_jsonl(&self, n: usize) -> String {
        self.with_core(|core| core.journal.tail_jsonl(n)).unwrap_or_default()
    }

    /// A copy of the aggregate CPI stack (None when `Noop`).
    pub fn cpi_stack(&self) -> Option<CpiStack> {
        self.with_core(|core| *core.cpi_stack())
    }

    /// A copy of the metrics registry (None when `Noop`).
    pub fn metrics(&self) -> Option<MetricsRegistry> {
        self.with_core(|core| core.registry().clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::HitLevel;

    #[test]
    fn noop_is_inert_and_free_of_side_effects() {
        let sink = TelemetrySink::noop();
        assert!(!sink.is_active());
        sink.set_now(100);
        assert_eq!(sink.now(), 0);
        let mut called = false;
        sink.emit(|| {
            called = true;
            Event::FaultInjected { site: "x" }
        });
        assert!(!called, "event constructor must not run on Noop");
        sink.count("c", 1);
        assert_eq!(sink.counter("c"), 0);
        assert_eq!(sink.journal_jsonl(), "");
        assert!(sink.cpi_stack().is_none());
    }

    #[test]
    fn clones_share_one_core() {
        let sink = TelemetrySink::active();
        let clone = sink.clone();
        sink.set_now(42);
        clone.emit(|| Event::TlbLookup { asid: 1, vpn: 2, level: HitLevel::L1, latency: 1 });
        clone.count("tlb.l1_hits", 1);
        assert_eq!(sink.counter("tlb.l1_hits"), 1);
        let jsonl = sink.journal_jsonl();
        assert!(
            jsonl.contains("\"cycle\":42"),
            "clone saw the cycle set via the original: {jsonl}"
        );
    }

    #[test]
    fn span_flow_through_sink() {
        let sink = TelemetrySink::active();
        sink.set_now(10);
        sink.begin_access(true, 0x2000);
        sink.layer(Layer::Tlb, 1);
        sink.layer(Layer::Dram, 29);
        sink.end_access(35);
        let stack = sink.cpi_stack().expect("active");
        assert_eq!(stack.layer_cycles(Layer::Tlb), 1);
        assert_eq!(stack.layer_cycles(Layer::Dram), 29);
        assert_eq!(stack.layer_cycles(Layer::Other), 5);
        assert_eq!(stack.ops(), 1);
        let m = sink.metrics().expect("active");
        assert_eq!(m.histogram("machine.access_latency").map(|h| h.count()), Some(1));
    }
}
