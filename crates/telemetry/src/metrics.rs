//! Named counters, gauges, and log2-bucketed latency histograms.
//!
//! The registry is the *aggregate* side of telemetry: where the event
//! journal records individual occurrences, the registry folds them into
//! totals that can be cross-checked against the simulator's own
//! statistics structs (`SimStats`, `OverlayStats`, …) and exported as
//! JSON.
//!
//! Determinism: all maps are `BTreeMap`s keyed by `&'static str`, so
//! iteration order — and therefore every exported byte — depends only
//! on the metric names, never on hash seeds or insertion order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two latency histogram: bucket `i` counts observations
/// `v` with `bit_length(v) == i`, i.e. bucket 0 holds `v == 0`,
/// bucket 1 holds `v == 1`, bucket 2 holds `2..=3`, bucket 3 holds
/// `4..=7`, and so on up to bucket 64.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; 65], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Index of the bucket holding `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 if empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `i` (0..=64).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Folds `other` into `self`: buckets, counts, and sums add; the
    /// extrema combine as min-of-mins / max-of-maxes.
    ///
    /// This is the shard-merge law: commutative and associative, with
    /// the empty histogram as identity, so per-shard histograms merged
    /// in any order equal the histogram a serial run would have built.
    pub fn merge(&mut self, other: &Self) {
        for (b, &o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates the non-empty buckets as `(bucket_lo, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_lo(i), c))
    }

    /// JSON object: `{"count":..,"sum":..,"min":..,"max":..,"buckets":{"<lo>":n,..}}`.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":{{",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        let mut first = true;
        for (lo, c) in self.nonzero_buckets() {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{lo}\":{c}");
        }
        s.push_str("}}");
        s
    }
}

/// A registry of named counters, gauges, and latency histograms.
///
/// Names are `&'static str` by design: every metric name in the
/// simulator is a compile-time constant, and static names keep the
/// hot-path cost to a `BTreeMap` lookup with no allocation.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter (creating it at zero).
    #[inline]
    pub fn count(&mut self, name: &'static str, n: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(n);
    }

    /// Sets the named gauge.
    #[inline]
    pub fn gauge(&mut self, name: &'static str, v: i64) {
        self.gauges.insert(name, v);
    }

    /// Records one observation in the named histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().observe(v);
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (None if never set).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Log2Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, i64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Log2Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds `other` into `self` under the shard-merge laws: counters
    /// and histograms add, gauges take the elementwise maximum.
    ///
    /// Every law is commutative and associative with the empty registry
    /// as identity, so per-shard registries merged in any permutation
    /// equal the registry a serial run would have produced. Gauges are
    /// the one lossy case — "last write wins" is inherently
    /// order-sensitive, so across shards they are defined as the peak
    /// value instead (all current gauges are high-water marks).
    pub fn merge(&mut self, other: &Self) {
        for (&name, &n) in &other.counters {
            self.count(name, n);
        }
        for (&name, &v) in &other.gauges {
            self.gauges.entry(name).and_modify(|g| *g = (*g).max(v)).or_insert(v);
        }
        for (&name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Serializes the whole registry as one JSON object with
    /// `counters`, `gauges`, and `histograms` sub-objects, keys in
    /// deterministic (lexicographic) order.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"counters\":{");
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{v}");
        }
        s.push_str("},\"histograms\":{");
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{}", h.to_json());
        }
        s.push_str("}}");
        s
    }

    /// Renders a human-readable table of everything recorded.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        if !self.counters.is_empty() {
            s.push_str("counters:\n");
            for (k, v) in &self.counters {
                let _ = writeln!(s, "  {k:<40} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            s.push_str("gauges:\n");
            for (k, v) in &self.gauges {
                let _ = writeln!(s, "  {k:<40} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            s.push_str("histograms (log2 buckets):\n");
            for (k, h) in &self.histograms {
                let _ = writeln!(
                    s,
                    "  {k:<40} count={} mean={:.1} min={} max={}",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                );
                for (lo, c) in h.nonzero_buckets() {
                    let _ = writeln!(s, "    >= {lo:<10} {c:>12}");
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(7), 3);
        assert_eq!(Log2Histogram::bucket_of(8), 4);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_lo(0), 0);
        assert_eq!(Log2Histogram::bucket_lo(1), 1);
        assert_eq!(Log2Histogram::bucket_lo(4), 8);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Log2Histogram::new();
        for v in [0, 1, 3, 200] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 204);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 200);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(2), 1);
        assert_eq!(h.bucket(8), 1); // 200 is in [128, 256)
    }

    #[test]
    fn registry_round_trip() {
        let mut r = MetricsRegistry::new();
        r.count("b.second", 2);
        r.count("a.first", 1);
        r.count("a.first", 1);
        r.gauge("g", -5);
        r.observe("lat", 100);
        assert_eq!(r.counter("a.first"), 2);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge_value("g"), Some(-5));
        let names: Vec<_> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a.first", "b.second"], "deterministic name order");
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{\"a.first\":2,\"b.second\":2}"));
        assert!(json.contains("\"gauges\":{\"g\":-5}"));
        assert!(json.contains("\"lat\":{\"count\":1"));
    }

    #[test]
    fn histogram_merge_equals_serial_observation() {
        let mut serial = Log2Histogram::new();
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in [0, 1, 3, 200] {
            serial.observe(v);
            a.observe(v);
        }
        for v in [7, 4096] {
            serial.observe(v);
            b.observe(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, serial);
        assert_eq!(ba, serial, "merge is commutative");

        let mut with_empty = a.clone();
        with_empty.merge(&Log2Histogram::new());
        assert_eq!(with_empty, a, "empty histogram is the identity");
    }

    #[test]
    fn registry_merge_laws() {
        let mut a = MetricsRegistry::new();
        a.count("c", 2);
        a.gauge("g", 5);
        a.observe("h", 8);
        let mut b = MetricsRegistry::new();
        b.count("c", 3);
        b.count("only_b", 1);
        b.gauge("g", 9);
        b.observe("h", 16);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("c"), 5);
        assert_eq!(ab.counter("only_b"), 1);
        assert_eq!(ab.gauge_value("g"), Some(9), "gauges merge as the peak");
        assert_eq!(ab.histogram("h").map(Log2Histogram::count), Some(2));
        assert_eq!(ab.to_json(), ba.to_json(), "merge is commutative byte-for-byte");
    }

    #[test]
    fn empty_registry_json() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        assert_eq!(r.to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }
}
