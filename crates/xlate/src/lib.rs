//! # po-xlate — pluggable address-translation backends
//!
//! The paper positions page overlays as one point in the virtual-memory
//! design space; rivals such as the Virtual Block Interface
//! (arXiv:2005.09748) and segmentation-over-paging (arXiv:2006.00380)
//! occupy others. This crate turns the simulator into a comparative lab
//! by extracting the full translation lifecycle behind one seam:
//!
//! * [`AddressTranslation`] — the trait covering walk, fill, protect,
//!   remap/privatize, fork, overlay promotion hooks, OMS grant
//!   accounting, and the per-step cost model. The timing machine in
//!   `po-sim` calls **only** through this trait (lint PA-L007 enforces
//!   it), so a backend swap changes translation semantics and costs
//!   without touching the cache/DRAM/core models.
//! * [`OverlayPaging`] — the canonical backend: 4-level page tables
//!   plus the OMT overlay machinery (the paper's design).
//! * [`SegmentedPaging`] — a rival backend in the style of
//!   segmentation-over-paging (arXiv:2006.00380): a flat, single-step
//!   translation structure (modeled over the same page-table substrate)
//!   with a much cheaper miss walk, **no** overlay support, and classic
//!   page-granular copy-on-write for every divergence.
//! * [`TranslationBackend`] — the runtime-selectable enum the machine
//!   embeds; [`BackendKind`] names a backend in configs, CLI flags
//!   (`--backend overlay|seg`), and snapshot headers.
//!
//! Both backends share [`PagingState`] (OS model + overlay manager +
//! OMS grant ledger), so functional state snapshots byte-identically
//! regardless of which backend produced them — only the snapshot
//! header's backend tag and config fingerprint differ.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use po_dram::DataStore;
use po_overlay::{CompactionOutcome, EvictOutcome, OverlayConfig, OverlayManager, OverlayStats};
use po_telemetry::TelemetrySink;
use po_types::geometry::PAGE_SIZE;
use po_types::snapshot::{SnapshotReader, SnapshotWriter};
use po_types::{
    Asid, FaultInjector, LineData, MainMemAddr, OBitVector, Opn, PoError, PoResult, Ppn, VirtAddr,
    Vpn,
};
use po_vm::{OsModel, Pte, VmConfig, WriteOutcome};

/// Names an [`AddressTranslation`] backend in configurations, CLI
/// flags, and snapshot headers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// Page tables + the OMT overlay machinery (the paper's design).
    #[default]
    Overlay,
    /// Segmentation-over-paging (arXiv:2006.00380): flat single-step
    /// translation, cheap walks, no overlays — classic page-granular
    /// CoW on every divergence.
    Seg,
}

impl BackendKind {
    /// Every backend, in a stable order (CLI help, CI matrices).
    pub const ALL: [BackendKind; 2] = [BackendKind::Overlay, BackendKind::Seg];

    /// Whether this backend implements overlay semantics. A machine in
    /// overlay mode on a backend without them degrades to classic CoW.
    pub fn supports_overlays(self) -> bool {
        matches!(self, BackendKind::Overlay)
    }

    /// Stable one-byte tag stored in snapshot headers.
    pub fn tag(self) -> u8 {
        match self {
            BackendKind::Overlay => 0,
            BackendKind::Seg => 1,
        }
    }

    /// Inverse of [`BackendKind::tag`].
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on an unknown tag.
    pub fn from_tag(tag: u8) -> PoResult<Self> {
        match tag {
            0 => Ok(BackendKind::Overlay),
            1 => Ok(BackendKind::Seg),
            _ => Err(PoError::Corrupted("unknown translation-backend tag")),
        }
    }

    /// The CLI / export name (`overlay`, `seg`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Overlay => "overlay",
            BackendKind::Seg => "seg",
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "overlay" => Ok(BackendKind::Overlay),
            "seg" => Ok(BackendKind::Seg),
            other => Err(format!("unknown backend {other:?} (expected: overlay, seg)")),
        }
    }
}

/// What a `fork` decided: the new address space plus the shootdown
/// decision — which ASIDs now hold stale cached translations. The
/// caller (the machine) owns the TLBs and performs the flushes; the OS
/// model never mutates TLBs directly (the back-channel the ROADMAP
/// flagged).
#[derive(Clone, Debug)]
pub struct ForkOutcome {
    /// The child address space.
    pub child: Asid,
    /// Address spaces whose cached translations the fork invalidated.
    pub flush: Vec<Asid>,
}

/// The translation state every backend shares: the OS model (page /
/// segment tables, frame allocator), the overlay manager (inert on
/// backends without overlay support), and the OMS grant ledger.
///
/// Keeping the state common means backend choice changes *behavior and
/// cost*, not serialization: snapshots interoperate structurally and
/// differ only in their header tag.
#[derive(Debug)]
pub struct PagingState {
    os: OsModel,
    overlay: OverlayManager,
    /// Frames granted to the OMS so far (excluded from the "regular
    /// frames" part of the memory metric; OMS consumption is counted at
    /// segment granularity instead).
    oms_frames: u64,
}

impl PagingState {
    fn new(overlay: OverlayConfig, vm: VmConfig) -> Self {
        Self { os: OsModel::new(vm), overlay: OverlayManager::new(overlay), oms_frames: 0 }
    }

    fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.os.encode_snapshot(w);
        self.overlay.encode_snapshot(w);
        w.put_u64(self.oms_frames);
    }

    fn decode_snapshot(overlay: OverlayConfig, r: &mut SnapshotReader) -> PoResult<Self> {
        let os = OsModel::decode_snapshot(r)?;
        let overlay = OverlayManager::decode_snapshot(overlay, r)?;
        let oms_frames = r.get_u64()?;
        Ok(Self { os, overlay, oms_frames })
    }
}

/// The full translation lifecycle, as one seam.
///
/// The provided methods implement the shared page-table + overlay
/// lifecycle over [`PagingState`]; backends override the cost hooks
/// ([`AddressTranslation::walk_cycles`],
/// [`AddressTranslation::omt_walk_cycles`]) and — through
/// [`BackendKind::supports_overlays`] — whether the overlay machinery
/// is reachable at all. The timing machine calls only through this
/// trait; it never touches `PageTable` or `Omt` internals (PA-L007).
pub trait AddressTranslation {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// Shared translation state.
    fn state(&self) -> &PagingState;

    /// Shared translation state, mutably.
    fn state_mut(&mut self) -> &mut PagingState;

    // --------------------------------------------------------------
    // Cost model hooks.
    // --------------------------------------------------------------

    /// Cycles a translation-structure walk costs on a TLB miss, given
    /// the configured page-walk penalty. `OverlayPaging` pays the full
    /// 4-level radix walk; `SegmentedPaging` resolves in a single flat
    /// lookup and pays a quarter of it.
    fn walk_cycles(&self, tlb_miss_penalty: u64) -> u64 {
        tlb_miss_penalty
    }

    /// Cycles an OMT walk costs on an OMT-cache miss. Backends without
    /// overlays never reach this path.
    fn omt_walk_cycles(&self, omt_walk_latency: u64) -> u64 {
        omt_walk_latency
    }

    /// Whether overlay semantics are available on this backend.
    fn supports_overlays(&self) -> bool {
        self.kind().supports_overlays()
    }

    // --------------------------------------------------------------
    // Address-space lifecycle (walk / fill / protect / remap).
    // --------------------------------------------------------------

    /// Creates an address space.
    fn spawn(&mut self) -> PoResult<Asid> {
        self.state_mut().os.spawn()
    }

    /// Maps `count` anonymous pages at `start`.
    fn map_range(&mut self, asid: Asid, start: Vpn, count: u64, writable: bool) -> PoResult<()> {
        self.state_mut().os.map_range(asid, start, count, writable)
    }

    /// Allocates one physical frame.
    fn alloc_frame(&mut self) -> PoResult<Ppn> {
        self.state_mut().os.alloc_frame()
    }

    /// Maps `vpn` onto an existing shared frame (read-only, CoW).
    fn map_shared_frame(&mut self, asid: Asid, vpn: Vpn, ppn: Ppn) -> PoResult<()> {
        self.state_mut().os.map_shared_frame(asid, vpn, ppn)
    }

    /// Marks an existing mapping overlay-enabled — the protect step of
    /// sharing under overlay semantics. Callers gate this on
    /// [`AddressTranslation::supports_overlays`]; the default backend
    /// body is shared because the flag lives in the common state.
    fn protect_for_share(&mut self, asid: Asid, vpn: Vpn) -> PoResult<()> {
        self.state_mut().os.enable_overlays(asid, vpn)
    }

    /// Translates `va` (the walk a TLB miss performs).
    fn walk(&self, asid: Asid, va: VirtAddr) -> PoResult<Pte> {
        self.state().os.translate(asid, va)
    }

    /// Privatizes the page under `va` for writing (classic CoW remap:
    /// sole owner flips flags, shared frame is copied), returning the
    /// shootdown decision.
    fn privatize(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        mem: &mut DataStore,
    ) -> PoResult<WriteOutcome> {
        self.state_mut().os.prepare_write(asid, va, mem)
    }

    /// Functional one-byte write through the OS path (privatizes if
    /// needed).
    fn write_byte(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        value: u8,
        mem: &mut DataStore,
    ) -> PoResult<WriteOutcome> {
        self.state_mut().os.write(asid, va, value, mem)
    }

    /// Every mapping of `asid` (hash-ordered; sort before replaying).
    fn pages(&self, asid: Asid) -> PoResult<Vec<(Vpn, Pte)>> {
        self.state().os.pages(asid)
    }

    /// Physical frames currently allocated (including OMS grants).
    fn frames_allocated(&self) -> u64 {
        self.state().os.frames_allocated()
    }

    /// Forks `parent` copy-on-write. With `overlay` set (the machine is
    /// in overlay mode *and* the backend supports overlays) every
    /// shared page is additionally overlay-enabled on both sides. The
    /// shootdown decision — which ASIDs hold stale translations —
    /// returns in the [`ForkOutcome`]; this method never touches TLBs.
    fn fork(&mut self, parent: Asid, overlay: bool) -> PoResult<ForkOutcome> {
        let st = self.state_mut();
        let child = st.os.fork(parent)?;
        if overlay {
            for (vpn, _) in st.os.pages(parent)? {
                st.os.enable_overlays(parent, vpn)?;
                st.os.enable_overlays(child, vpn)?;
            }
        }
        Ok(ForkOutcome { child, flush: vec![parent, child] })
    }

    // --------------------------------------------------------------
    // Overlay lifecycle (inert on backends without overlay support).
    // --------------------------------------------------------------

    /// Whether `opn` currently has an overlay.
    fn has_overlay(&self, opn: Opn) -> bool {
        self.state().overlay.has_overlay(opn)
    }

    /// The OBitVector of `opn`'s overlay.
    fn obitvec(&self, opn: Opn) -> PoResult<OBitVector> {
        self.state().overlay.obitvec(opn)
    }

    /// The walk-time OBitVector fetch (Figure 6): warms the
    /// controller's OMT cache as a side effect and returns the vector
    /// (empty when the page has no overlay).
    fn fill_obitvec(&mut self, opn: Opn) -> OBitVector {
        let st = self.state_mut();
        st.overlay.warm_omt_cache(opn);
        st.overlay.obitvec(opn).unwrap_or(OBitVector::EMPTY)
    }

    /// Stages `data` as overlay line `line` of `opn` (creates the
    /// overlay on first touch; OMS backing is allocated lazily).
    fn overlaying_write(&mut self, opn: Opn, line: usize, data: LineData) -> PoResult<()> {
        self.state_mut().overlay.overlaying_write(opn, line, data)
    }

    /// Rewrites a line already in `opn`'s overlay.
    fn write_overlay_line(&mut self, opn: Opn, line: usize, data: LineData) -> PoResult<()> {
        self.state_mut().overlay.write_line(opn, line, data)
    }

    /// Reads `line` of the page with overlay semantics: from the
    /// overlay if the line is overlaid, else from `phys`.
    fn resolve_read(
        &self,
        opn: Opn,
        line: usize,
        phys: MainMemAddr,
        mem: &DataStore,
    ) -> PoResult<LineData> {
        self.state().overlay.resolve_read(opn, line, phys, mem)
    }

    /// Whether the controller must materialize OMS backing for `line`
    /// before resolving it.
    fn line_needs_materialization(&self, opn: Opn, line: usize) -> bool {
        self.state().overlay.line_needs_materialization(opn, line)
    }

    /// Memory-controller resolution of an overlay line address to its
    /// OMS home; the flag reports an OMT-cache hit.
    fn controller_resolve(
        &mut self,
        opn: Opn,
        line: usize,
        modify: bool,
    ) -> PoResult<(MainMemAddr, bool)> {
        self.state_mut().overlay.controller_resolve(opn, line, modify)
    }

    /// Evicts one dirty overlay line into the OMS, granting the store
    /// fresh frames from the OS when it must grow (single attempt; the
    /// machine owns the reclaim/compact retry ladder).
    fn evict_line(&mut self, opn: Opn, line: usize, mem: &mut DataStore) -> PoResult<EvictOutcome> {
        let PagingState { os, overlay, oms_frames } = self.state_mut();
        let mut grant = |frames: u64| {
            let base = os.grant_oms_chunk(frames)?;
            *oms_frames += frames;
            Ok(base)
        };
        overlay.evict_line(opn, line, mem, &mut grant)
    }

    /// Evicts every resident line of `opn` into the OMS (single
    /// attempt), returning how many lines moved.
    fn evict_all_of(&mut self, opn: Opn, mem: &mut DataStore) -> PoResult<usize> {
        let PagingState { os, overlay, oms_frames } = self.state_mut();
        let mut grant = |frames: u64| {
            let base = os.grant_oms_chunk(frames)?;
            *oms_frames += frames;
            Ok(base)
        };
        overlay.evict_all(opn, mem, &mut grant)
    }

    /// Commits `opn`'s overlay onto the page at `frame` and destroys
    /// the overlay (§4.3.4 commit promotion).
    fn commit_overlay_to(
        &mut self,
        opn: Opn,
        frame: MainMemAddr,
        mem: &mut DataStore,
    ) -> PoResult<usize> {
        self.state_mut().overlay.commit(opn, frame, mem)
    }

    /// Commits `opn`'s overlay onto `frame` and reports the OMS bytes
    /// freed (the §4.4.2 reclaim valve).
    fn collapse_overlay(
        &mut self,
        opn: Opn,
        frame: MainMemAddr,
        mem: &mut DataStore,
    ) -> PoResult<u64> {
        self.state_mut().overlay.collapse_overlay(opn, frame, mem)
    }

    /// Discards `opn`'s overlay (§4.3.4 discard promotion).
    fn discard_overlay(&mut self, opn: Opn) -> PoResult<()> {
        self.state_mut().overlay.discard(opn)
    }

    /// Every page that currently has an overlay, in OPN order (the OMT
    /// iterates hash-ordered; sorting keeps grant streams and fault
    /// plans reproducible).
    fn overlay_pages(&self) -> Vec<Opn> {
        let mut opns: Vec<Opn> = self.state().overlay.omt().iter().map(|(o, _)| *o).collect();
        opns.sort_by_key(|o| o.raw());
        opns
    }

    /// Reclaim candidates under memory pressure, coldest first.
    fn reclaim_candidates(&self, exempt: Option<Opn>) -> Vec<Opn> {
        self.state().overlay.reclaim_candidates(exempt)
    }

    /// Notes an allocation retry (pressure-ladder statistics).
    fn note_alloc_retry(&mut self) {
        self.state_mut().overlay.note_alloc_retry();
    }

    /// One live OMS compaction pass; returns the outcome and the pages
    /// whose segments moved (their cached translations are stale).
    fn compact_store(&mut self, mem: &mut DataStore) -> PoResult<(CompactionOutcome, Vec<Opn>)> {
        self.state_mut().overlay.compact_store(mem)
    }

    /// Overlay lines resident in the manager (not yet in the OMS).
    fn resident_lines(&self) -> usize {
        self.state().overlay.resident_lines()
    }

    /// Bytes of OMS segment capacity in use.
    fn overlay_memory_bytes(&self) -> u64 {
        self.state().overlay.overlay_memory_bytes()
    }

    /// Frames the OS has granted the OMS so far.
    fn oms_frames(&self) -> u64 {
        self.state().oms_frames
    }

    // --------------------------------------------------------------
    // Wiring, verification, serialization.
    // --------------------------------------------------------------

    /// Overlay statistics with injected-fault counters synced.
    fn overlay_stats(&mut self) -> OverlayStats {
        let st = self.state_mut();
        st.overlay.sync_injected_faults();
        st.overlay.stats().clone()
    }

    /// Distributes a fault injector to the OS model and overlay layers.
    fn set_fault_injector(&mut self, inj: FaultInjector) {
        let st = self.state_mut();
        st.os.set_fault_injector(inj.clone());
        st.overlay.set_fault_injector(inj);
    }

    /// Distributes a telemetry sink to the OS model and overlay layers.
    fn set_telemetry(&mut self, sink: TelemetrySink) {
        let st = self.state_mut();
        st.os.set_telemetry(sink.clone());
        st.overlay.set_telemetry(sink);
    }

    /// Arms the deliberately-injected OMS-leak canary (DST).
    fn set_inject_oms_leak(&mut self, armed: bool) {
        self.state_mut().overlay.set_inject_oms_leak(armed);
    }

    /// Structural self-check: overlay-manager invariants plus the grant
    /// ledger — the OMS must manage exactly the bytes of the frames the
    /// OS granted it.
    fn verify(&self) -> PoResult<()> {
        let st = self.state();
        st.overlay.verify_invariants()?;
        if st.overlay.store().bytes_managed() != st.oms_frames * PAGE_SIZE as u64 {
            return Err(PoError::Corrupted(
                "OMS managed bytes disagree with the frames granted by the OS",
            ));
        }
        Ok(())
    }

    /// The OS model (read-only observation: stats, allocator, pages).
    fn os(&self) -> &OsModel {
        &self.state().os
    }

    /// The overlay manager (read-only observation: stats, OMT cache,
    /// store accounting).
    fn overlay(&self) -> &OverlayManager {
        &self.state().overlay
    }

    /// Serializes the backend's translation state (OS model, overlay
    /// manager, grant ledger). The backend *kind* is written by the
    /// snapshot header, not here.
    fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        self.state().encode_snapshot(w);
    }
}

/// The canonical backend: page tables + the OMT overlay machinery.
#[derive(Debug)]
pub struct OverlayPaging {
    state: PagingState,
}

impl AddressTranslation for OverlayPaging {
    fn kind(&self) -> BackendKind {
        BackendKind::Overlay
    }

    fn state(&self) -> &PagingState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut PagingState {
        &mut self.state
    }
}

/// Divisor applied to the page-walk penalty by [`SegmentedPaging`]: a
/// flat segment lookup is one access instead of a 4-level pointer
/// chase.
const SEG_WALK_DIVISOR: u64 = 4;

/// Segmentation-over-paging (arXiv:2006.00380): translation resolves in
/// one flat segment-table step (cheap walks), but the design has no
/// line-granular overlay machinery — every divergence is classic
/// page-granular copy-on-write.
#[derive(Debug)]
pub struct SegmentedPaging {
    state: PagingState,
}

impl AddressTranslation for SegmentedPaging {
    fn kind(&self) -> BackendKind {
        BackendKind::Seg
    }

    fn state(&self) -> &PagingState {
        &self.state
    }

    fn state_mut(&mut self) -> &mut PagingState {
        &mut self.state
    }

    fn walk_cycles(&self, tlb_miss_penalty: u64) -> u64 {
        (tlb_miss_penalty / SEG_WALK_DIVISOR).max(1)
    }
}

/// The runtime-selectable backend a machine embeds. Enum dispatch: the
/// backend set is closed and snapshots must name their backend with a
/// stable tag.
#[derive(Debug)]
pub enum TranslationBackend {
    /// See [`OverlayPaging`].
    Overlay(OverlayPaging),
    /// See [`SegmentedPaging`].
    Seg(SegmentedPaging),
}

impl TranslationBackend {
    /// Builds a fresh backend of `kind`.
    pub fn new(kind: BackendKind, overlay: OverlayConfig, vm: VmConfig) -> Self {
        let state = PagingState::new(overlay, vm);
        match kind {
            BackendKind::Overlay => TranslationBackend::Overlay(OverlayPaging { state }),
            BackendKind::Seg => TranslationBackend::Seg(SegmentedPaging { state }),
        }
    }

    /// Restores a backend of `kind` from a snapshot stream (the caller
    /// has already read and validated the header's backend tag).
    ///
    /// # Errors
    ///
    /// Propagates snapshot corruption.
    pub fn decode_snapshot(
        kind: BackendKind,
        overlay: OverlayConfig,
        r: &mut SnapshotReader,
    ) -> PoResult<Self> {
        let state = PagingState::decode_snapshot(overlay, r)?;
        Ok(match kind {
            BackendKind::Overlay => TranslationBackend::Overlay(OverlayPaging { state }),
            BackendKind::Seg => TranslationBackend::Seg(SegmentedPaging { state }),
        })
    }
}

impl AddressTranslation for TranslationBackend {
    fn kind(&self) -> BackendKind {
        match self {
            TranslationBackend::Overlay(b) => b.kind(),
            TranslationBackend::Seg(b) => b.kind(),
        }
    }

    fn state(&self) -> &PagingState {
        match self {
            TranslationBackend::Overlay(b) => b.state(),
            TranslationBackend::Seg(b) => b.state(),
        }
    }

    fn state_mut(&mut self) -> &mut PagingState {
        match self {
            TranslationBackend::Overlay(b) => b.state_mut(),
            TranslationBackend::Seg(b) => b.state_mut(),
        }
    }

    fn walk_cycles(&self, tlb_miss_penalty: u64) -> u64 {
        match self {
            TranslationBackend::Overlay(b) => b.walk_cycles(tlb_miss_penalty),
            TranslationBackend::Seg(b) => b.walk_cycles(tlb_miss_penalty),
        }
    }

    fn omt_walk_cycles(&self, omt_walk_latency: u64) -> u64 {
        match self {
            TranslationBackend::Overlay(b) => b.omt_walk_cycles(omt_walk_latency),
            TranslationBackend::Seg(b) => b.omt_walk_cycles(omt_walk_latency),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend(kind: BackendKind) -> TranslationBackend {
        TranslationBackend::new(kind, OverlayConfig::default(), VmConfig::default())
    }

    #[test]
    fn kind_round_trips_through_tag_and_name() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_tag(kind.tag()).unwrap(), kind);
            assert_eq!(kind.name().parse::<BackendKind>().unwrap(), kind);
        }
        assert!(BackendKind::from_tag(99).is_err());
        assert!("vax".parse::<BackendKind>().is_err());
    }

    #[test]
    fn seg_walks_are_cheaper_but_never_free() {
        let seg = backend(BackendKind::Seg);
        let ovl = backend(BackendKind::Overlay);
        assert_eq!(ovl.walk_cycles(1000), 1000);
        assert_eq!(seg.walk_cycles(1000), 250);
        assert_eq!(seg.walk_cycles(2), 1, "floor at one cycle");
        assert!(!seg.supports_overlays());
        assert!(ovl.supports_overlays());
    }

    #[test]
    fn fork_reports_shootdown_decision_without_touching_tlbs() {
        let mut b = backend(BackendKind::Overlay);
        let parent = b.spawn().unwrap();
        b.map_range(parent, Vpn::new(0x10), 2, true).unwrap();
        let out = b.fork(parent, true).unwrap();
        assert_eq!(out.flush, vec![parent, out.child]);
        for (_, pte) in b.pages(parent).unwrap() {
            assert!(pte.flags.overlay_enabled);
        }
        for (_, pte) in b.pages(out.child).unwrap() {
            assert!(pte.flags.overlay_enabled);
        }
    }

    #[test]
    fn seg_fork_leaves_overlays_disabled() {
        let mut b = backend(BackendKind::Seg);
        let parent = b.spawn().unwrap();
        b.map_range(parent, Vpn::new(0x10), 2, true).unwrap();
        let out = b.fork(parent, false).unwrap();
        for asid in [parent, out.child] {
            for (_, pte) in b.pages(asid).unwrap() {
                assert!(!pte.flags.overlay_enabled);
            }
        }
    }

    #[test]
    fn snapshot_round_trips_across_construction() {
        let mut b = backend(BackendKind::Seg);
        let pid = b.spawn().unwrap();
        b.map_range(pid, Vpn::new(0x10), 4, true).unwrap();
        let mut w = SnapshotWriter::new();
        b.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let restored =
            TranslationBackend::decode_snapshot(BackendKind::Seg, OverlayConfig::default(), &mut r)
                .unwrap();
        r.expect_end().unwrap();
        let mut w2 = SnapshotWriter::new();
        restored.encode_snapshot(&mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn grant_ledger_is_verified() {
        let mut b = backend(BackendKind::Overlay);
        let pid = b.spawn().unwrap();
        b.map_range(pid, Vpn::new(0x10), 1, true).unwrap();
        let opn = Opn::encode(pid, Vpn::new(0x10));
        let mut mem = DataStore::new();
        b.overlaying_write(opn, 3, LineData::zeroed()).unwrap();
        b.evict_line(opn, 3, &mut mem).unwrap();
        assert!(b.oms_frames() > 0, "eviction must have granted OMS frames");
        b.verify().unwrap();
    }
}
