//! The hard invariant of the parallel harness, as a test: every byte a
//! bench driver exports — `summary.json`, merged journal JSONL, merged
//! run reports — is identical at `--shards 1` and `--shards 8`. The CI
//! `shard-determinism` job re-checks the same equality on the real
//! binaries; this test pins it in-process with small budgets so a
//! violation is caught before a slow CI round-trip.

use po_bench::suite::run_fork_suite_pairs;
use po_bench::{summary, ShardPool};
use po_telemetry::TelemetryMerge;

const WARMUP: u64 = 2_000;
const POST: u64 = 3_000;
const SEED: u64 = 42;

#[test]
fn summary_json_bytes_are_shard_invariant() {
    let serial = summary::collect(&ShardPool::serial(), WARMUP, POST, SEED).expect("serial");
    let sharded = summary::collect(&ShardPool::new(8), WARMUP, POST, SEED).expect("sharded");
    assert_eq!(summary::to_json(&serial), summary::to_json(&sharded));
}

#[test]
fn merged_telemetry_exports_are_shard_invariant() {
    let export = |pool: &ShardPool| {
        let pairs = run_fork_suite_pairs(pool, WARMUP, POST, SEED, Some(512)).expect("suite");
        let mut merge = TelemetryMerge::new();
        for pair in &pairs {
            assert!(merge.absorb(pair.cow.id, &pair.cow.telemetry));
            assert!(merge.absorb(pair.oow.id, &pair.oow.telemetry));
        }
        (merge.journal_jsonl(), merge.run_report("shard-determinism"))
    };
    let (serial_jsonl, serial_report) = export(&ShardPool::serial());
    let (sharded_jsonl, sharded_report) = export(&ShardPool::new(8));
    assert!(!serial_jsonl.is_empty(), "fork jobs must journal events");
    assert_eq!(serial_jsonl, sharded_jsonl);
    assert_eq!(serial_report, sharded_report);
}

#[test]
fn fingerprints_are_shard_invariant() {
    let run = |pool: &ShardPool| -> Vec<(String, u64)> {
        run_fork_suite_pairs(pool, WARMUP, POST, SEED, None)
            .expect("suite")
            .into_iter()
            .flat_map(|p| {
                [
                    (p.cow.label.clone(), p.cow.snapshot_fingerprint),
                    (p.oow.label.clone(), p.oow.snapshot_fingerprint),
                ]
            })
            .collect()
    };
    assert_eq!(run(&ShardPool::serial()), run(&ShardPool::new(8)));
}
