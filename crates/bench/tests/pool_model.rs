//! Exhaustive-interleaving model check of the [`ShardPool`] claim loop
//! (DESIGN.md §12), via the workspace's minimal loom shim.
//!
//! The pool's determinism argument hangs on one concurrent structure:
//! workers claim items through `cursor.fetch_add(1)` and write results
//! into slots indexed by submission order. The transcription below
//! mirrors `ShardPool::run`'s inner loop — an atomic cursor over a
//! precomputed claim order, one claim-marker per slot — and the model
//! explores *every* schedule of the workers' atomic operations,
//! asserting on each one that:
//!
//! * every item is claimed exactly once (no double execution, no
//!   drops), and
//! * every result slot is filled exactly once (the `Vec` the pool
//!   returns is complete at any shard count).
//!
//! The third test drops the atomicity of the claim (load + store
//! instead of fetch-add) and demands the checker FIND the double
//! claim — the positive control that the exploration actually covers
//! the racy window the real loop closes.
//!
//! [`ShardPool`]: po_bench::ShardPool

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Arc;

/// The claim loop of `ShardPool::run`, transcribed over loom atomics:
/// `workers` threads race over `jobs` slots via one fetch-add cursor.
/// Returns per-slot claim counts.
fn run_claim_loop(workers: usize, jobs: usize) -> Arc<Vec<AtomicUsize>> {
    let cursor = Arc::new(AtomicUsize::new(0));
    let claims: Arc<Vec<AtomicUsize>> = Arc::new((0..jobs).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let cursor = Arc::clone(&cursor);
            let claims = Arc::clone(&claims);
            loom::thread::spawn(move || loop {
                let at = cursor.fetch_add(1, Ordering::Relaxed);
                if at >= claims.len() {
                    break;
                }
                claims[at].fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker");
    }
    claims
}

#[test]
fn claim_loop_claims_every_job_exactly_once_two_workers() {
    loom::model(|| {
        let claims = run_claim_loop(2, 3);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i} claim count");
        }
    });
}

#[test]
fn claim_loop_claims_every_job_exactly_once_three_workers() {
    loom::model(|| {
        let claims = run_claim_loop(3, 2);
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "job {i} claim count");
        }
    });
}

/// Positive control: replace the atomic fetch-add with a load+store
/// pair and the cursor has a window where two workers claim the same
/// job — the model checker must surface a schedule where that happens.
#[test]
fn non_atomic_cursor_is_caught() {
    let caught = std::panic::catch_unwind(|| {
        loom::model(|| {
            let cursor = Arc::new(AtomicUsize::new(0));
            let claims: Arc<Vec<AtomicUsize>> =
                Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let cursor = Arc::clone(&cursor);
                    let claims = Arc::clone(&claims);
                    loom::thread::spawn(move || loop {
                        // Broken claim: not a single atomic RMW.
                        let at = cursor.load(Ordering::Relaxed);
                        cursor.store(at + 1, Ordering::Relaxed);
                        if at >= claims.len() {
                            break;
                        }
                        claims[at].fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
            for c in claims.iter() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "double or dropped claim");
            }
        });
    })
    .expect_err("the model checker must find the double-claim schedule");
    let msg = caught.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("schedule ["), "failure must name its schedule: {msg}");
}
