//! One-command reproduction: runs every quantitative experiment and
//! writes `bench_results/report.md` with the paper-vs-measured summary.
//!
//! All machine-driving work fans out over the shared shard pool; every
//! fork job records into a private telemetry sink and the per-job
//! streams are merged — ordered by `(job, seq)` — into
//! `bench_results/repro.events.jsonl` and `repro.report.txt`. Both the
//! report and the merged exports are byte-identical at any `--shards`
//! value; the `shard-determinism` CI job diffs them.
//!
//! Usage: `cargo run --release -p po-bench --bin repro_all
//! [--post <instr>] [--warmup <instr>] [--scale <f>] [--seed <n>]
//! [--shards <n>]`
//!
//! (The per-figure binaries print the full tables; this target produces
//! the headline numbers in one pass — a few minutes at defaults.)

use po_bench::suite::run_fork_suite_pairs;
use po_bench::{geomean, Args, ShardPool};
use po_sim::{hardware_cost, SystemConfig};
use po_sparse::{
    nonzero_locality, overhead_vs_ideal, uf_like_suite, CsrMatrix, OverlayMatrix, TimedSpmv,
};
use po_telemetry::TelemetryMerge;
use std::fmt::Write as _;

/// Ring capacity of each fork job's private event journal.
const JOB_EVENT_CAPACITY: usize = 4096;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 400_000);
    let post_instr: u64 = args.get("post", 600_000);
    let scale: f64 = args.get("scale", 0.3);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let mut report = String::new();
    let w = &mut report;
    writeln!(w, "# page-overlays reproduction report\n").unwrap();
    writeln!(
        w,
        "Parameters: warmup={warmup_instr} post={post_instr} instructions, \
         sparse scale={scale}, seed={seed}.\n"
    )
    .unwrap();

    // ---- §4.5 hardware cost ------------------------------------------
    let cost = hardware_cost(&SystemConfig::table2());
    writeln!(
        w,
        "## §4.5 hardware cost\n\n\
         OMT cache {} B + TLB extension {} B + tag extension {} B = **{:.1} KB** \
         (paper: 94.5 KB).\n",
        cost.omt_cache_bytes,
        cost.tlb_extension_bytes,
        cost.tag_extension_bytes,
        cost.total_bytes() as f64 / 1024.0
    )
    .unwrap();

    // ---- Figures 8 & 9 ----------------------------------------------
    println!(
        "running the 15-benchmark fork experiment (Figures 8 & 9) on {} shard(s)…",
        pool.shards()
    );
    let pairs =
        run_fork_suite_pairs(&pool, warmup_instr, post_instr, seed, Some(JOB_EVENT_CAPACITY))
            .expect("fork suite");
    let mut merge = TelemetryMerge::new();
    let mut mem_ratios = Vec::new();
    let mut cpi_ratios = Vec::new();
    writeln!(w, "## Figures 8 & 9 — fork: CoW vs OoW\n").unwrap();
    writeln!(w, "| benchmark | type | mem oow/cow | cpi oow/cow |").unwrap();
    writeln!(w, "|---|---|---|---|").unwrap();
    for pair in &pairs {
        merge.absorb(pair.cow.id, &pair.cow.telemetry);
        merge.absorb(pair.oow.id, &pair.oow.telemetry);
        let (cow, oow) = (pair.cow(), pair.oow());
        let mem_ratio = if cow.extra_memory_bytes == 0 {
            1.0
        } else {
            oow.extra_memory_bytes as f64 / cow.extra_memory_bytes as f64
        };
        let cpi_ratio = oow.cpi / cow.cpi;
        mem_ratios.push(mem_ratio);
        cpi_ratios.push(cpi_ratio);
        writeln!(
            w,
            "| {} | {:?} | {:.3} | {:.3} |",
            pair.spec.name, pair.spec.wtype, mem_ratio, cpi_ratio
        )
        .unwrap();
    }
    let mem_mean = geomean(&mem_ratios);
    let cpi_mean = geomean(&cpi_ratios);
    writeln!(
        w,
        "\n**Measured:** OoW saves {:.0}% memory (paper: 53%) and runs {:.0}% faster \
         (paper: 15%).\n",
        (1.0 - mem_mean) * 100.0,
        (1.0 - cpi_mean) * 100.0
    )
    .unwrap();

    // ---- Figure 10 ----------------------------------------------------
    println!("running the 87-matrix SpMV sweep (Figure 10)…");
    let mut results: Vec<(f64, f64, f64)> = pool.run(
        uf_like_suite(scale, seed),
        |spec| spec.matrix.nnz() as u64,
        |spec| {
            let timed = TimedSpmv::table2();
            let l = nonzero_locality(&spec.matrix, 64);
            let csr = CsrMatrix::from_triplets(&spec.matrix);
            let ovl = OverlayMatrix::from_triplets(&spec.matrix);
            let tc = timed.time_csr(&csr).expect("csr");
            let to = timed.time_overlay(&ovl).expect("overlay");
            (
                l,
                tc.cycles as f64 / to.cycles as f64,
                to.memory_bytes as f64 / tc.memory_bytes as f64,
            )
        },
    );
    let total = results.len();
    let wins = results.iter().filter(|(_, perf, _)| *perf > 1.0).count();
    results.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite L"));
    let first_win_l = results.iter().find(|(_, perf, _)| *perf > 1.0).map(|(l, _, _)| *l);
    let (hi_l, hi_perf, hi_mem) = results.last().expect("nonempty suite");
    writeln!(
        w,
        "## Figure 10 — SpMV overlays vs CSR\n\n\
         Overlays beat CSR on **{wins}/{total}** matrices (paper: 34/87); first win at \
         L = {:.2} (paper: ≈4.5). At L = {hi_l:.1}: **{:.0}% faster, {:.0}% less \
         memory** than CSR (paper raefsky4: 92% faster, 34% less).\n",
        first_win_l.unwrap_or(f64::NAN),
        (hi_perf - 1.0) * 100.0,
        (1.0 - hi_mem) * 100.0
    )
    .unwrap();

    // ---- Figure 11 -----------------------------------------------------
    println!("computing the line-size overhead sweep (Figure 11)…");
    let suite = uf_like_suite(scale, seed);
    let mut oh64 = Vec::new();
    let mut oh4k = Vec::new();
    for spec in &suite {
        oh64.push(overhead_vs_ideal(&spec.matrix, 64));
        oh4k.push(overhead_vs_ideal(&spec.matrix, 4096));
    }
    writeln!(
        w,
        "## Figure 11 — storage granularity\n\n\
         Geomean overhead vs ideal: 64 B lines {:.1}x, 4 KB pages **{:.1}x** \
         (paper: 53x at page granularity; our scatter families reach {:.0}x).\n",
        geomean(&oh64),
        geomean(&oh4k),
        oh4k.iter().cloned().fold(0.0f64, f64::max)
    )
    .unwrap();

    std::fs::create_dir_all("bench_results").expect("mkdir");
    std::fs::write("bench_results/report.md", &report).expect("write report");
    std::fs::write("bench_results/repro.events.jsonl", merge.journal_jsonl())
        .expect("write events");
    std::fs::write(
        "bench_results/repro.report.txt",
        merge.run_report("repro_all fork suite (merged over jobs)"),
    )
    .expect("write telemetry report");
    println!("\n{report}");
    println!("report written to bench_results/report.md");
    println!("merged telemetry: bench_results/repro.events.jsonl, bench_results/repro.report.txt");
}
