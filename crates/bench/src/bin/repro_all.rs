//! One-command reproduction: runs every quantitative experiment and
//! writes `bench_results/report.md` with the paper-vs-measured summary.
//!
//! Usage: `cargo run --release -p po-bench --bin repro_all
//! [--post <instr>] [--warmup <instr>] [--scale <f>] [--seed <n>]`
//!
//! (The per-figure binaries print the full tables; this target produces
//! the headline numbers in one pass — a few minutes at defaults.)

use po_bench::{geomean, Args};
use po_sim::{hardware_cost, run_fork_experiment, SystemConfig};
use po_sparse::{
    nonzero_locality, overhead_vs_ideal, uf_like_suite, CsrMatrix, OverlayMatrix, TimedSpmv,
};
use po_workloads::spec_suite;
use std::fmt::Write as _;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 400_000);
    let post_instr: u64 = args.get("post", 600_000);
    let scale: f64 = args.get("scale", 0.3);
    let seed: u64 = args.get("seed", 42);

    let mut report = String::new();
    let w = &mut report;
    writeln!(w, "# page-overlays reproduction report\n").unwrap();
    writeln!(
        w,
        "Parameters: warmup={warmup_instr} post={post_instr} instructions, \
         sparse scale={scale}, seed={seed}.\n"
    )
    .unwrap();

    // ---- §4.5 hardware cost ------------------------------------------
    let cost = hardware_cost(&SystemConfig::table2());
    writeln!(
        w,
        "## §4.5 hardware cost\n\n\
         OMT cache {} B + TLB extension {} B + tag extension {} B = **{:.1} KB** \
         (paper: 94.5 KB).\n",
        cost.omt_cache_bytes,
        cost.tlb_extension_bytes,
        cost.tag_extension_bytes,
        cost.total_bytes() as f64 / 1024.0
    )
    .unwrap();

    // ---- Figures 8 & 9 ----------------------------------------------
    println!("running the 15-benchmark fork experiment (Figures 8 & 9)…");
    let mut mem_ratios = Vec::new();
    let mut cpi_ratios = Vec::new();
    writeln!(w, "## Figures 8 & 9 — fork: CoW vs OoW\n").unwrap();
    writeln!(w, "| benchmark | type | mem oow/cow | cpi oow/cow |").unwrap();
    writeln!(w, "|---|---|---|---|").unwrap();
    for spec in spec_suite() {
        let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
        let warmup = spec.generate_warmup(warmup_instr, seed);
        let post = spec.generate_post_fork(post_instr, seed);
        let cow =
            run_fork_experiment(SystemConfig::table2(), spec.base_vpn(), mapped, &warmup, &post)
                .expect("cow run");
        let oow = run_fork_experiment(
            SystemConfig::table2_overlay(),
            spec.base_vpn(),
            mapped,
            &warmup,
            &post,
        )
        .expect("oow run");
        let mem_ratio = if cow.extra_memory_bytes == 0 {
            1.0
        } else {
            oow.extra_memory_bytes as f64 / cow.extra_memory_bytes as f64
        };
        let cpi_ratio = oow.cpi / cow.cpi;
        mem_ratios.push(mem_ratio);
        cpi_ratios.push(cpi_ratio);
        writeln!(w, "| {} | {:?} | {:.3} | {:.3} |", spec.name, spec.wtype, mem_ratio, cpi_ratio)
            .unwrap();
    }
    let mem_mean = geomean(&mem_ratios);
    let cpi_mean = geomean(&cpi_ratios);
    writeln!(
        w,
        "\n**Measured:** OoW saves {:.0}% memory (paper: 53%) and runs {:.0}% faster \
         (paper: 15%).\n",
        (1.0 - mem_mean) * 100.0,
        (1.0 - cpi_mean) * 100.0
    )
    .unwrap();

    // ---- Figure 10 ----------------------------------------------------
    println!("running the 87-matrix SpMV sweep (Figure 10)…");
    let timed = TimedSpmv::table2();
    let mut wins = 0usize;
    let mut total = 0usize;
    let mut first_win_l: Option<f64> = None;
    let mut results: Vec<(f64, f64, f64)> = Vec::new();
    for spec in uf_like_suite(scale, seed) {
        let l = nonzero_locality(&spec.matrix, 64);
        let csr = CsrMatrix::from_triplets(&spec.matrix);
        let ovl = OverlayMatrix::from_triplets(&spec.matrix);
        let tc = timed.time_csr(&csr).expect("csr");
        let to = timed.time_overlay(&ovl).expect("overlay");
        let perf = tc.cycles as f64 / to.cycles as f64;
        let mem = to.memory_bytes as f64 / tc.memory_bytes as f64;
        results.push((l, perf, mem));
        total += 1;
        if perf > 1.0 {
            wins += 1;
        }
    }
    results.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite L"));
    for (l, perf, _) in &results {
        if *perf > 1.0 && first_win_l.is_none() {
            first_win_l = Some(*l);
        }
    }
    let (hi_l, hi_perf, hi_mem) = results.last().expect("nonempty suite");
    writeln!(
        w,
        "## Figure 10 — SpMV overlays vs CSR\n\n\
         Overlays beat CSR on **{wins}/{total}** matrices (paper: 34/87); first win at \
         L = {:.2} (paper: ≈4.5). At L = {hi_l:.1}: **{:.0}% faster, {:.0}% less \
         memory** than CSR (paper raefsky4: 92% faster, 34% less).\n",
        first_win_l.unwrap_or(f64::NAN),
        (hi_perf - 1.0) * 100.0,
        (1.0 - hi_mem) * 100.0
    )
    .unwrap();

    // ---- Figure 11 -----------------------------------------------------
    println!("computing the line-size overhead sweep (Figure 11)…");
    let suite = uf_like_suite(scale, seed);
    let mut oh64 = Vec::new();
    let mut oh4k = Vec::new();
    for spec in &suite {
        oh64.push(overhead_vs_ideal(&spec.matrix, 64));
        oh4k.push(overhead_vs_ideal(&spec.matrix, 4096));
    }
    writeln!(
        w,
        "## Figure 11 — storage granularity\n\n\
         Geomean overhead vs ideal: 64 B lines {:.1}x, 4 KB pages **{:.1}x** \
         (paper: 53x at page granularity; our scatter families reach {:.0}x).\n",
        geomean(&oh64),
        geomean(&oh4k),
        oh4k.iter().cloned().fold(0.0f64, f64::max)
    )
    .unwrap();

    std::fs::create_dir_all("bench_results").expect("mkdir");
    std::fs::write("bench_results/report.md", &report).expect("write report");
    println!("\n{report}");
    println!("report written to bench_results/report.md");
}
