//! Ablation: fine-grained segments vs page-per-overlay storage.
//!
//! §4.4 notes the memory controller *could* "use a full physical page
//! to store each overlay — forgoing the memory capacity benefit". This
//! ablation reruns the Figure 8 memory measurement for the Type 3
//! workloads with the full segment set (256 B…4 KB) against the
//! page-per-overlay fallback, as fine/coarse job pairs on the shard
//! pool.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_segments
//! [--shards <n>]`

use po_bench::suite::{fork_job, run_jobs};
use po_bench::{human_bytes, Args, ResultTable, ShardPool};
use po_overlay::SegmentClass;
use po_sim::SystemConfig;
use po_workloads::{spec_suite, WorkloadType};

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let specs: Vec<_> =
        spec_suite().into_iter().filter(|s| s.wtype == WorkloadType::SparsePages).collect();
    let mut jobs = Vec::with_capacity(specs.len() * 2);
    for (i, spec) in specs.iter().enumerate() {
        jobs.push(fork_job(
            2 * i as u64,
            format!("segments/{}/fine", spec.name),
            SystemConfig::table2_overlay(),
            spec,
            warmup_instr,
            post_instr,
            seed,
        ));
        let mut coarse_cfg = SystemConfig::table2_overlay();
        coarse_cfg.overlay.min_segment_class = SegmentClass::K4;
        jobs.push(fork_job(
            2 * i as u64 + 1,
            format!("segments/{}/coarse", spec.name),
            coarse_cfg,
            spec,
            warmup_instr,
            post_instr,
            seed,
        ));
    }
    let results = run_jobs(&pool, jobs).expect("runs failed");

    let mut table = ResultTable::new(
        "Ablation: OMS segment granularity (extra memory after fork, Type 3)",
        &["benchmark", "fine_segments", "page_per_overlay", "ratio"],
    );
    for (i, spec) in specs.iter().enumerate() {
        let fine = results[2 * i].outcome.as_fork().expect("fork job outcome");
        let coarse = results[2 * i + 1].outcome.as_fork().expect("fork job outcome");
        table.row(&[
            &spec.name,
            &human_bytes(fine.extra_memory_bytes),
            &human_bytes(coarse.extra_memory_bytes),
            &format!(
                "{:.2}x",
                coarse.extra_memory_bytes as f64 / fine.extra_memory_bytes.max(1) as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\n(Expected: page-per-overlay storage costs several times more memory for \
         sparse writers, while still beating CoW on work — the trade-off §4.4 describes.)"
    );
    table.save_csv("ablation_segments").expect("csv");
}
