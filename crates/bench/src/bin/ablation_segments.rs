//! Ablation: fine-grained segments vs page-per-overlay storage.
//!
//! §4.4 notes the memory controller *could* "use a full physical page
//! to store each overlay — forgoing the memory capacity benefit". This
//! ablation reruns the Figure 8 memory measurement for the Type 3
//! workloads with the full segment set (256 B…4 KB) against the
//! page-per-overlay fallback.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_segments`

use po_bench::{human_bytes, Args, ResultTable};
use po_overlay::SegmentClass;
use po_sim::{run_fork_experiment, SystemConfig};
use po_workloads::{spec_suite, WorkloadType};

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);

    let mut table = ResultTable::new(
        "Ablation: OMS segment granularity (extra memory after fork, Type 3)",
        &["benchmark", "fine_segments", "page_per_overlay", "ratio"],
    );
    for spec in spec_suite().into_iter().filter(|s| s.wtype == WorkloadType::SparsePages) {
        let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
        let warmup = spec.generate_warmup(warmup_instr, seed);
        let post = spec.generate_post_fork(post_instr, seed);

        let fine = run_fork_experiment(
            SystemConfig::table2_overlay(),
            spec.base_vpn(),
            mapped,
            &warmup,
            &post,
        )
        .expect("fine run");
        let mut coarse_cfg = SystemConfig::table2_overlay();
        coarse_cfg.overlay.min_segment_class = SegmentClass::K4;
        let coarse = run_fork_experiment(coarse_cfg, spec.base_vpn(), mapped, &warmup, &post)
            .expect("coarse run");

        table.row(&[
            &spec.name,
            &human_bytes(fine.extra_memory_bytes),
            &human_bytes(coarse.extra_memory_bytes),
            &format!(
                "{:.2}x",
                coarse.extra_memory_bytes as f64 / fine.extra_memory_bytes.max(1) as f64
            ),
        ]);
    }
    table.print();
    println!(
        "\n(Expected: page-per-overlay storage costs several times more memory for \
         sparse writers, while still beating CoW on work — the trade-off §4.4 describes.)"
    );
    table.save_csv("ablation_segments").expect("csv");
}
