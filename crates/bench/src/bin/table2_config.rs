//! Table 2: the simulated system's parameters, plus the §4.5 hardware
//! cost accounting (94.5 KB).
//!
//! Usage: `cargo run --release -p po-bench --bin table2_config`

use po_bench::ResultTable;
use po_sim::{hardware_cost, SystemConfig};

fn main() {
    let c = SystemConfig::table2();
    let mut t = ResultTable::new(
        "Table 2: main parameters of the simulated system",
        &["component", "configuration"],
    );
    t.row(&[
        &"Processor",
        &"2.67 GHz, single issue, out-of-order, 64-entry instruction window, 64 B cache lines",
    ]);
    t.row(&[&"TLB", &format!(
        "4K pages, {}-entry {}-way L1 ({} cycle), {}-entry L2 ({} cycles), TLB miss = {} cycles",
        c.tlb.l1_entries, c.tlb.l1_ways, c.tlb.l1_latency, c.tlb.l2_entries, c.tlb.l2_latency, c.tlb.miss_latency
    )]);
    t.row(&[
        &"L1 cache",
        &format!(
            "{} KB, {}-way, tag/data = {}/{} cycles, parallel lookup, LRU",
            c.hierarchy.l1.capacity_bytes / 1024,
            c.hierarchy.l1.ways,
            c.hierarchy.l1.tag_latency,
            c.hierarchy.l1.data_latency
        ),
    ]);
    t.row(&[
        &"L2 cache",
        &format!(
            "{} KB, {}-way, tag/data = {}/{} cycles, parallel lookup, LRU",
            c.hierarchy.l2.capacity_bytes / 1024,
            c.hierarchy.l2.ways,
            c.hierarchy.l2.tag_latency,
            c.hierarchy.l2.data_latency
        ),
    ]);
    t.row(&[&"Prefetcher", &format!(
        "stream prefetcher, monitors L2 misses, prefetches into L3, {} entries, degree {}, distance {}",
        c.hierarchy.prefetcher.streams, c.hierarchy.prefetcher.degree, c.hierarchy.prefetcher.distance
    )]);
    t.row(&[
        &"L3 cache",
        &format!(
            "{} MB, {}-way, tag/data = {}/{} cycles, serial lookup, DRRIP",
            c.hierarchy.l3.capacity_bytes / 1024 / 1024,
            c.hierarchy.l3.ways,
            c.hierarchy.l3.tag_latency,
            c.hierarchy.l3.data_latency
        ),
    ]);
    t.row(&[&"DRAM controller", &format!(
        "open row, FR-FCFS drain-when-full, {}-entry write buffer, {}-entry OMT cache, OMT miss = {} cycles",
        c.dram.write_buffer_entries, c.overlay.omt_cache_entries, c.overlay.omt_walk_latency
    )]);
    t.row(&[
        &"DRAM & bus",
        &format!(
            "DDR3-1066, 1 channel, 1 rank, {} banks, 8 B bus, burst 8, {} KB row buffer",
            c.dram.banks,
            c.dram.row_buffer_bytes / 1024
        ),
    ]);
    t.print();

    let cost = hardware_cost(&c);
    let mut hc = ResultTable::new(
        "Section 4.5: hardware storage cost",
        &["structure", "bytes", "kilobytes"],
    );
    hc.row(&[
        &"OMT cache (64 x 512 bits)",
        &cost.omt_cache_bytes,
        &format!("{:.1}", cost.omt_cache_bytes as f64 / 1024.0),
    ]);
    hc.row(&[
        &"TLB OBitVector extension",
        &cost.tlb_extension_bytes,
        &format!("{:.1}", cost.tlb_extension_bytes as f64 / 1024.0),
    ]);
    hc.row(&[
        &"Cache tag extension (16 bits/line)",
        &cost.tag_extension_bytes,
        &format!("{:.1}", cost.tag_extension_bytes as f64 / 1024.0),
    ]);
    hc.row(&[&"total", &cost.total_bytes(), &format!("{:.1}", cost.total_bytes() as f64 / 1024.0)]);
    hc.print();
    println!("\n(The paper reports 4 KB + 8.5 KB + 82 KB = 94.5 KB.)");
    hc.save_csv("hardware_cost").expect("csv");
}
