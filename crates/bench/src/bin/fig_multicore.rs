//! The contended-fork multi-core figure: the §5.1 fork scenario driven
//! by 1/2/4/8 cores over the same shared pages, showing how
//! shared-resource contention (`Layer::Contention`) and §4.3.3 overlay
//! coherence traffic scale with core count.
//!
//! Each core count is one shard-pool job running
//! [`po_mc::run_contended_fork`] on its own machine with a private
//! telemetry sink; results come back in submission order and the merged
//! exports — `bench_results/fig_multicore.summary.json`,
//! `fig_multicore.events.jsonl`, `fig_multicore.report.txt` — are
//! byte-identical at any `--shards` value and any host thread count
//! (the `multicore-smoke` CI job diffs them).
//!
//! Usage: `cargo run --release -p po-bench --bin fig_multicore
//! [--ops <n per core>] [--seed <n>] [--shards <n>]`

use po_bench::{Args, ResultTable, ShardPool};
use po_mc::{run_contended_fork, ContendedForkOutcome, ContendedForkSpec};
use po_sim::SystemConfig;
use po_telemetry::{Layer, TelemetryMerge, TelemetrySink};
use std::fmt::Write as _;

/// Ring capacity of each job's private event journal.
const JOB_EVENT_CAPACITY: usize = 2048;

/// Core counts swept, in output order.
const CORE_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args = Args::from_env();
    let ops_per_core: usize = args.get("ops", 3000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    println!(
        "running the contended-fork workload at {CORE_COUNTS:?} cores on {} shard(s)…",
        pool.shards()
    );
    let results: Vec<(usize, ContendedForkOutcome, TelemetrySink)> = pool.run(
        CORE_COUNTS.to_vec(),
        |&cores| (cores * ops_per_core) as u64,
        move |cores| {
            let spec =
                ContendedForkSpec { ops_per_core, ..ContendedForkSpec::standard(cores, seed) };
            let sink = TelemetrySink::with_capacity(JOB_EVENT_CAPACITY, 256);
            let out = run_contended_fork(SystemConfig::table2_overlay(), &spec, sink.clone())
                .expect("contended fork");
            (cores, out, sink)
        },
    );

    let mut table = ResultTable::new(
        "contended fork: contention and overlay coherence vs core count",
        &[
            "cores",
            "cycles",
            "cpi",
            "contention_stalls",
            "contention_cpi",
            "obit_msgs",
            "invalidations",
            "coherence_stalls",
            "fingerprint",
        ],
    );
    let mut merge = TelemetryMerge::new();
    let mut json = String::from("{\n");
    for (i, (cores, out, sink)) in results.iter().enumerate() {
        merge.absorb(*cores as u64, sink);
        let contention_cpi =
            sink.cpi_stack().map(|s| s.layer_cpi(Layer::Contention)).unwrap_or(0.0);
        table.row(&[
            cores,
            &out.sched.stats.cycles,
            &format!("{:.4}", out.cpi),
            &out.contention_stall_cycles(),
            &format!("{contention_cpi:.5}"),
            &out.coherence_obit_msgs(),
            &out.coherence_invalidations(),
            &out.coherence_stall_cycles(),
            &format!("{:016x}", out.snapshot_fingerprint),
        ]);
        let _ = write!(
            json,
            "  \"cores_{cores}\": {{ \"cycles\": {}, \"cpi\": {:.6}, \
             \"contention_stall_cycles\": {}, \"coherence_obit_msgs\": {}, \
             \"coherence_invalidations\": {}, \"coherence_stall_cycles\": {}, \
             \"snapshot_fingerprint\": \"{:016x}\" }}",
            out.sched.stats.cycles,
            out.cpi,
            out.contention_stall_cycles(),
            out.coherence_obit_msgs(),
            out.coherence_invalidations(),
            out.coherence_stall_cycles(),
            out.snapshot_fingerprint,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");

    table.print();
    table.save_csv("fig_multicore").expect("save csv");

    std::fs::create_dir_all("bench_results").expect("create bench_results");
    std::fs::write("bench_results/fig_multicore.summary.json", &json).expect("write summary");
    std::fs::write("bench_results/fig_multicore.events.jsonl", merge.journal_jsonl())
        .expect("write events");
    std::fs::write(
        "bench_results/fig_multicore.report.txt",
        merge.run_report("contended fork (merged over core counts)"),
    )
    .expect("write report");

    let four = results.iter().find(|(c, _, _)| *c == 4).map(|(_, out, _)| out);
    if let Some(out) = four {
        assert!(
            out.contention_stall_cycles() > 0 && out.coherence_obit_msgs() > 0,
            "4-core contended fork must show contention and coherence traffic"
        );
    }
    println!("exports: bench_results/fig_multicore.summary.json, .events.jsonl, .report.txt");
}
