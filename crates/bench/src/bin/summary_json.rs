//! Machine-readable benchmark summary: `bench_results/summary.json`.
//!
//! Runs the §5.1 fork experiment for every workload of the SPEC-like
//! suite plus the Figure 10 SpMV kernel — on a selectable
//! address-translation backend — and writes one JSON object per
//! workload:
//!
//! ```json
//! { "workload": { "cycles": .., "cpi": .., "memory_overhead_pct": ..,
//!                 "omt_cache_hit_rate": .., "overlay_bytes": .. } }
//! ```
//!
//! * `cycles` / `cpi` — the measured window (post-fork segment for the
//!   suite, one iteration for SpMV).
//! * `memory_overhead_pct` — extra memory after the fork relative to
//!   the mapped working set (for SpMV: representation footprint
//!   relative to the dense array).
//! * `omt_cache_hit_rate` — OMT-cache hits / accesses over the run.
//! * `overlay_bytes` — Overlay Memory Store bytes in use (segment
//!   footprint for SpMV).
//!
//! `--backend overlay` (the default) writes the checked-in
//! `bench_results/summary.json`; any other backend writes
//! `bench_results/summary_<backend>.json` with the same row names, so
//! the files compare row-by-row. Whenever the rival backend's summary
//! is already on disk, a per-workload comparison table (cycles and the
//! cycle ratio) is printed — the comparative-lab view.
//!
//! Deterministic: same arguments, byte-identical file — the overlay
//! snapshot is checked in to seed the repo's performance trajectory,
//! and the `perf_ratchet` binary gates CI on cycle regressions against
//! it. The measurement and encoding live in [`po_bench::summary`] so
//! both binaries agree on them by construction.
//!
//! Workload runs fan out over the shared shard pool (`--shards N` /
//! `PO_SHARDS`); the bytes written are identical at any shard count —
//! the `shard-determinism` CI job diffs `--shards 1` against
//! `--shards 8`.
//!
//! Usage: `cargo run --release -p po-bench --bin summary_json
//! [--backend <overlay|seg>] [--warmup <instr>] [--post <instr>]
//! [--seed <n>] [--shards <n>]`

use po_bench::{summary, Args, ResultTable, ShardPool};
use po_sim::BackendKind;

/// Where `backend`'s summary lives (the overlay file name is the
/// historical, ratchet-gated one).
fn summary_path(backend: BackendKind) -> String {
    match backend {
        BackendKind::Overlay => "bench_results/summary.json".to_string(),
        other => format!("bench_results/summary_{other}.json"),
    }
}

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 40_000);
    let post_instr: u64 = args.get("post", 60_000);
    let seed: u64 = args.get("seed", 42);
    let backend: BackendKind = args.get("backend", BackendKind::Overlay);
    let pool = ShardPool::from_args(&args);

    let rows = summary::collect_for_backend(&pool, backend, warmup_instr, post_instr, seed)
        .expect("summary workload failed");
    let json = summary::to_json(&rows);

    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = summary_path(backend);
    std::fs::write(&path, &json).expect("write summary json");
    println!("{} workloads summarized to {path} (backend: {backend})", rows.len());

    // The comparative-lab view: pair these rows against every rival
    // backend whose summary is already on disk.
    for rival in BackendKind::ALL {
        if rival == backend {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(summary_path(rival)) else {
            continue;
        };
        let parsed = match summary::parse_cycles(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("summary_json: cannot parse {}: {e}", summary_path(rival));
                continue;
            }
        };
        let mut table = ResultTable::new(
            &format!("Backend comparison: {backend} vs {rival} (cycles)"),
            &["workload", &backend.to_string(), &rival.to_string(), "ratio"],
        );
        for cmp in summary::compare_backends(&rows, &parsed) {
            table.row(&[
                &cmp.workload,
                &cmp.current,
                &cmp.rival.map_or_else(|| "-".to_string(), |c| c.to_string()),
                &cmp.ratio.map_or_else(|| "-".to_string(), |r| format!("{r:.3}")),
            ]);
        }
        table.print();
    }
}
