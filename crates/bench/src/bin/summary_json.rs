//! Machine-readable benchmark summary: `bench_results/summary.json`.
//!
//! Runs the §5.1 fork experiment (overlay-on-write) for every workload
//! of the SPEC-like suite plus the Figure 10 SpMV kernel, and writes one
//! JSON object per workload:
//!
//! ```json
//! { "workload": { "cycles": .., "cpi": .., "memory_overhead_pct": ..,
//!                 "omt_cache_hit_rate": .., "overlay_bytes": .. } }
//! ```
//!
//! * `cycles` / `cpi` — the measured window (post-fork segment for the
//!   suite, one iteration for SpMV).
//! * `memory_overhead_pct` — extra memory after the fork relative to
//!   the mapped working set (for SpMV: representation footprint
//!   relative to the dense array).
//! * `omt_cache_hit_rate` — OMT-cache hits / accesses over the run.
//! * `overlay_bytes` — Overlay Memory Store bytes in use (segment
//!   footprint for SpMV).
//!
//! Deterministic: same arguments, byte-identical file — the snapshot is
//! checked in to seed the repo's performance trajectory, and CI diffs
//! two back-to-back runs.
//!
//! Usage: `cargo run --release -p po-bench --bin summary_json
//! [--warmup <instr>] [--post <instr>] [--seed <n>]`

use po_bench::Args;
use po_sim::{run_fork_experiment, SystemConfig};
use po_sparse::{gen as matrix_gen, CsrMatrix, OverlayMatrix, TimedSpmv};
use po_telemetry::TelemetrySink;
use po_types::geometry::PAGE_SIZE;
use po_workloads::spec_suite;
use std::fmt::Write as _;

struct SummaryRow {
    workload: String,
    cycles: u64,
    cpi: f64,
    memory_overhead_pct: f64,
    omt_cache_hit_rate: f64,
    overlay_bytes: u64,
}

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 40_000);
    let post_instr: u64 = args.get("post", 60_000);
    let seed: u64 = args.get("seed", 42);

    let mut rows = Vec::new();
    for spec in spec_suite() {
        let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
        let warmup = spec.generate_warmup(warmup_instr, seed);
        let post = spec.generate_post_fork(post_instr, seed);
        let r = run_fork_experiment(
            SystemConfig::table2_overlay(),
            spec.base_vpn(),
            mapped,
            &warmup,
            &post,
        )
        .expect("fork experiment failed");
        rows.push(SummaryRow {
            workload: format!("fork/{}", spec.name),
            cycles: r.post_cycles,
            cpi: r.cpi,
            memory_overhead_pct: 100.0 * r.extra_memory_bytes as f64
                / (mapped * PAGE_SIZE as u64) as f64,
            omt_cache_hit_rate: r.omt_cache_hit_rate,
            overlay_bytes: r.overlay_bytes,
        });
    }

    // SpMV: the overlay representation on a high-locality matrix, with
    // telemetry supplying the OMT-cache counters.
    let triplets = matrix_gen::clustered(40, 512, 20_000, 8, true, seed);
    let csr = CsrMatrix::from_triplets(&triplets);
    let ovl = OverlayMatrix::from_triplets(&triplets);
    let dense_bytes = (ovl.rows() * ovl.cols() * 8) as f64;
    let sink = TelemetrySink::active();
    let timed = TimedSpmv::new(SystemConfig::table2_overlay()).with_telemetry(sink.clone());
    let o = timed.time_overlay(&ovl).expect("overlay SpMV failed");
    let hits = sink.counter("omt_cache.hits") as f64;
    let misses = sink.counter("omt_cache.misses") as f64;
    rows.push(SummaryRow {
        workload: "spmv/overlay".to_string(),
        cycles: o.cycles,
        cpi: o.cpi(),
        memory_overhead_pct: 100.0 * o.memory_bytes as f64 / dense_bytes,
        omt_cache_hit_rate: if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 },
        overlay_bytes: o.memory_bytes,
    });
    let c = TimedSpmv::new(SystemConfig::table2_overlay()).time_csr(&csr).expect("CSR SpMV failed");
    rows.push(SummaryRow {
        workload: "spmv/csr".to_string(),
        cycles: c.cycles,
        cpi: c.cpi(),
        memory_overhead_pct: 100.0 * c.memory_bytes as f64 / dense_bytes,
        omt_cache_hit_rate: 0.0,
        overlay_bytes: 0,
    });

    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "  \"{}\": {{\"cycles\": {}, \"cpi\": {:.4}, \"memory_overhead_pct\": {:.4}, \
             \"omt_cache_hit_rate\": {:.4}, \"overlay_bytes\": {}}}",
            r.workload,
            r.cycles,
            r.cpi,
            r.memory_overhead_pct,
            r.omt_cache_hit_rate,
            r.overlay_bytes
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");

    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/summary.json";
    std::fs::write(path, &json).expect("write summary.json");
    println!("{} workloads summarized to {path}", rows.len());
}
