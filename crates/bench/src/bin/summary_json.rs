//! Machine-readable benchmark summary: `bench_results/summary.json`.
//!
//! Runs the §5.1 fork experiment (overlay-on-write) for every workload
//! of the SPEC-like suite plus the Figure 10 SpMV kernel, and writes one
//! JSON object per workload:
//!
//! ```json
//! { "workload": { "cycles": .., "cpi": .., "memory_overhead_pct": ..,
//!                 "omt_cache_hit_rate": .., "overlay_bytes": .. } }
//! ```
//!
//! * `cycles` / `cpi` — the measured window (post-fork segment for the
//!   suite, one iteration for SpMV).
//! * `memory_overhead_pct` — extra memory after the fork relative to
//!   the mapped working set (for SpMV: representation footprint
//!   relative to the dense array).
//! * `omt_cache_hit_rate` — OMT-cache hits / accesses over the run.
//! * `overlay_bytes` — Overlay Memory Store bytes in use (segment
//!   footprint for SpMV).
//!
//! Deterministic: same arguments, byte-identical file — the snapshot is
//! checked in to seed the repo's performance trajectory, and the
//! `perf_ratchet` binary gates CI on cycle regressions against it. The
//! measurement and encoding live in [`po_bench::summary`] so both
//! binaries agree on them by construction.
//!
//! Workload runs fan out over the shared shard pool (`--shards N` /
//! `PO_SHARDS`); the bytes written are identical at any shard count —
//! the `shard-determinism` CI job diffs `--shards 1` against
//! `--shards 8`.
//!
//! Usage: `cargo run --release -p po-bench --bin summary_json
//! [--warmup <instr>] [--post <instr>] [--seed <n>] [--shards <n>]`

use po_bench::{summary, Args, ShardPool};

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 40_000);
    let post_instr: u64 = args.get("post", 60_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let rows =
        summary::collect(&pool, warmup_instr, post_instr, seed).expect("summary workload failed");
    let json = summary::to_json(&rows);

    std::fs::create_dir_all("bench_results").expect("create bench_results");
    let path = "bench_results/summary.json";
    std::fs::write(path, &json).expect("write summary.json");
    println!("{} workloads summarized to {path}", rows.len());
}
