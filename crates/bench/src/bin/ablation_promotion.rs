//! Ablation: overlay-promotion threshold (§4.3.4).
//!
//! "When using overlay-on-write, if most of the cache lines within a
//! virtual page are modified, maintaining them in an overlay does not
//! provide any advantage." This sweep varies the line-count threshold
//! at which an overlay is promoted (copy-and-commit) to a private page,
//! on the densest Type 2 workload (lbm, 64 lines per dirty page). The
//! six thresholds run as shard-pool jobs.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_promotion
//! [--shards <n>]`

use po_bench::suite::{fork_job, run_jobs};
use po_bench::{human_bytes, Args, ResultTable, ShardPool};
use po_sim::SystemConfig;
use po_workloads::spec_suite;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let spec = spec_suite().into_iter().find(|s| s.name == "lbm").expect("lbm exists");
    let thresholds = [8usize, 16, 32, 48, 64, 65];
    let jobs = thresholds
        .iter()
        .enumerate()
        .map(|(i, &threshold)| {
            let mut config = SystemConfig::table2_overlay();
            config.promote_threshold = threshold;
            fork_job(
                i as u64,
                format!("promotion/{threshold}"),
                config,
                &spec,
                warmup_instr,
                post_instr,
                seed,
            )
        })
        .collect();
    let results = run_jobs(&pool, jobs).expect("sweep failed");

    let mut table = ResultTable::new(
        "Ablation: promotion threshold (lbm, full-page writer)",
        &["threshold", "cpi", "extra_memory", "ovl_writes"],
    );
    for (&threshold, result) in thresholds.iter().zip(&results) {
        let r = result.outcome.as_fork().expect("fork job outcome");
        table.row(&[
            &(if threshold > 64 { "never".to_string() } else { threshold.to_string() }),
            &format!("{:.3}", r.cpi),
            &human_bytes(r.extra_memory_bytes),
            &r.overlaying_writes,
        ]);
    }
    table.print();
    println!(
        "\n(Expected: aggressive promotion (low thresholds) pays page copies like CoW; \
         never-promote keeps full-page overlays in 4 KB segments — same memory, \
         no copy. The paper leaves the policy to the system; Table 2 runs use 64.)"
    );
    table.save_csv("ablation_promotion").expect("csv");
}
