//! Ablation: instruction-window size.
//!
//! Overlay-on-write wins partly because its per-line latencies hide in
//! the out-of-order window, while copy-on-write's page copy is one big
//! synchronous stall. A smaller window should therefore *shrink*
//! overlay-on-write's advantage. This sweep reruns the mcf fork
//! experiment across window sizes, as CoW/OoW job pairs on the shard
//! pool.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_window
//! [--shards <n>]`

use po_bench::suite::{fork_job, run_jobs};
use po_bench::{Args, ResultTable, ShardPool};
use po_sim::SystemConfig;
use po_workloads::spec_suite;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let spec = spec_suite().into_iter().find(|s| s.name == "mcf").expect("mcf exists");
    let windows = [8usize, 16, 32, 64, 128, 256];
    let mut jobs = Vec::with_capacity(windows.len() * 2);
    for (i, &window) in windows.iter().enumerate() {
        let mut cow_cfg = SystemConfig::table2();
        cow_cfg.window_entries = window;
        let mut oow_cfg = SystemConfig::table2_overlay();
        oow_cfg.window_entries = window;
        jobs.push(fork_job(
            2 * i as u64,
            format!("window/{window}/cow"),
            cow_cfg,
            &spec,
            warmup_instr,
            post_instr,
            seed,
        ));
        jobs.push(fork_job(
            2 * i as u64 + 1,
            format!("window/{window}/oow"),
            oow_cfg,
            &spec,
            warmup_instr,
            post_instr,
            seed,
        ));
    }
    let results = run_jobs(&pool, jobs).expect("sweep failed");

    let mut table = ResultTable::new(
        "Ablation: instruction window size (mcf fork experiment)",
        &["window", "cow_cpi", "oow_cpi", "oow/cow"],
    );
    for (i, &window) in windows.iter().enumerate() {
        let cow = results[2 * i].outcome.as_fork().expect("fork job outcome");
        let oow = results[2 * i + 1].outcome.as_fork().expect("fork job outcome");
        table.row(&[
            &window,
            &format!("{:.3}", cow.cpi),
            &format!("{:.3}", oow.cpi),
            &format!("{:.3}", oow.cpi / cow.cpi),
        ]);
    }
    table.print();
    println!("\n(Table 2's window is 64 entries.)");
    table.save_csv("ablation_window").expect("csv");
}
