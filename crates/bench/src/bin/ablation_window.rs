//! Ablation: instruction-window size.
//!
//! Overlay-on-write wins partly because its per-line latencies hide in
//! the out-of-order window, while copy-on-write's page copy is one big
//! synchronous stall. A smaller window should therefore *shrink*
//! overlay-on-write's advantage. This sweep reruns the mcf fork
//! experiment across window sizes.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_window`

use po_bench::{Args, ResultTable};
use po_sim::{run_fork_experiment, SystemConfig};
use po_workloads::spec_suite;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);

    let spec = spec_suite().into_iter().find(|s| s.name == "mcf").expect("mcf exists");
    let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
    let warmup = spec.generate_warmup(warmup_instr, seed);
    let post = spec.generate_post_fork(post_instr, seed);

    let mut table = ResultTable::new(
        "Ablation: instruction window size (mcf fork experiment)",
        &["window", "cow_cpi", "oow_cpi", "oow/cow"],
    );
    for window in [8usize, 16, 32, 64, 128, 256] {
        let mut cow_cfg = SystemConfig::table2();
        cow_cfg.window_entries = window;
        let mut oow_cfg = SystemConfig::table2_overlay();
        oow_cfg.window_entries = window;
        let cow =
            run_fork_experiment(cow_cfg, spec.base_vpn(), mapped, &warmup, &post).expect("cow run");
        let oow =
            run_fork_experiment(oow_cfg, spec.base_vpn(), mapped, &warmup, &post).expect("oow run");
        table.row(&[
            &window,
            &format!("{:.3}", cow.cpi),
            &format!("{:.3}", oow.cpi),
            &format!("{:.3}", oow.cpi / cow.cpi),
        ]);
    }
    table.print();
    println!("\n(Table 2's window is 64 entries.)");
    table.save_csv("ablation_window").expect("csv");
}
