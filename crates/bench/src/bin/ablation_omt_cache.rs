//! Ablation: OMT-cache size (Table 2 uses 64 entries).
//!
//! The OMT cache hides the 1000-cycle OMT walk on overlay-space misses.
//! Sequential scans keep only one overlay page live at a time, so this
//! microbenchmark interleaves overlay reads across blocks of 64 pages
//! (line 0 of every page, then line 1 of every page, …): the OMT
//! working set is exactly 64 entries, producing the knee at Table 2's
//! size.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_omt_cache`

use po_bench::{Args, ResultTable};
use po_sim::{run_trace, Machine, SystemConfig, TraceOp};
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{LineData, VirtAddr, Vpn};

const BASE_VPN: u64 = 0x8_0000;
const PAGES: u64 = 512;
const LINES_PER_PAGE_USED: u64 = 16;
const BLOCK: u64 = 64;

fn build_machine(omt_entries: usize) -> (Machine, po_types::Asid) {
    let mut config = SystemConfig::table2_overlay();
    config.overlay.omt_cache_entries = omt_entries;
    let mut m = Machine::new(config).expect("machine");
    let pid = m.spawn_process().expect("process");
    m.map_shared_zero_range(pid, Vpn::new(BASE_VPN), PAGES).expect("map");
    for p in 0..PAGES {
        for l in 0..LINES_PER_PAGE_USED {
            m.seed_overlay_line(pid, Vpn::new(BASE_VPN + p), l as usize, LineData::splat(1))
                .expect("seed");
        }
    }
    (m, pid)
}

fn trace() -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for block in 0..PAGES / BLOCK {
        for line in 0..LINES_PER_PAGE_USED {
            for p in 0..BLOCK {
                let vpn = BASE_VPN + block * BLOCK + p;
                ops.push(TraceOp::Load(VirtAddr::new(
                    vpn * PAGE_SIZE as u64 + line * LINE_SIZE as u64,
                )));
                ops.push(TraceOp::Compute(4));
            }
        }
    }
    ops
}

fn main() {
    let _args = Args::from_env();
    let ops = trace();
    let mut table = ResultTable::new(
        "Ablation: OMT cache size (interleaved overlay reads, 64-page blocks)",
        &["omt_entries", "cycles", "omt_hit_rate", "vs_table2"],
    );
    let sizes = [1usize, 4, 16, 64, 256];
    let mut results = Vec::new();
    for &entries in &sizes {
        let (mut m, pid) = build_machine(entries);
        let stats = run_trace(&mut m, pid, &ops).expect("run");
        let hit_rate = m.overlay().omt_cache().stats().hit_rate();
        results.push((entries, stats.cycles, hit_rate));
    }
    let table2_cycles = results.iter().find(|(e, _, _)| *e == 64).expect("64 in sweep").1 as f64;
    for (entries, cycles, hit_rate) in results {
        table.row(&[
            &entries,
            &cycles,
            &format!("{:.1}%", hit_rate * 100.0),
            &format!("{:+.1}%", (cycles as f64 / table2_cycles - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("\n(Expected: a knee at 64 entries — the block working set; Table 2's choice.)");
    table.save_csv("ablation_omt_cache").expect("csv");
}
