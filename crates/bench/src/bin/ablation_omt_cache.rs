//! Ablation: OMT-cache size (Table 2 uses 64 entries).
//!
//! The OMT cache hides the 1000-cycle OMT walk on overlay-space misses.
//! Sequential scans keep only one overlay page live at a time, so this
//! microbenchmark interleaves overlay reads across blocks of 64 pages
//! (line 0 of every page, then line 1 of every page, …): the OMT
//! working set is exactly 64 entries, producing the knee at Table 2's
//! size. The five cache sizes run as shard-pool jobs.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_omt_cache
//! [--shards <n>]`

use po_bench::suite::run_jobs;
use po_bench::{Args, ResultTable, ShardPool};
use po_sim::{SystemConfig, TraceJob, TraceOp, WorkloadJob};
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{VirtAddr, Vpn};

const BASE_VPN: u64 = 0x8_0000;
const PAGES: u64 = 512;
const LINES_PER_PAGE_USED: u64 = 16;
const BLOCK: u64 = 64;

fn trace() -> Vec<TraceOp> {
    let mut ops = Vec::new();
    for block in 0..PAGES / BLOCK {
        for line in 0..LINES_PER_PAGE_USED {
            for p in 0..BLOCK {
                let vpn = BASE_VPN + block * BLOCK + p;
                ops.push(TraceOp::Load(VirtAddr::new(
                    vpn * PAGE_SIZE as u64 + line * LINE_SIZE as u64,
                )));
                ops.push(TraceOp::Compute(4));
            }
        }
    }
    ops
}

fn main() {
    let args = Args::from_env();
    let pool = ShardPool::from_args(&args);
    let ops = trace();
    let seed_lines: Vec<(u64, usize, u8)> = (0..PAGES)
        .flat_map(|p| (0..LINES_PER_PAGE_USED).map(move |l| (p, l as usize, 1u8)))
        .collect();

    let sizes = [1usize, 4, 16, 64, 256];
    let jobs = sizes
        .iter()
        .enumerate()
        .map(|(i, &entries)| {
            let mut config = SystemConfig::table2_overlay();
            config.overlay.omt_cache_entries = entries;
            WorkloadJob::trace(
                i as u64,
                format!("omt_cache/{entries}"),
                config,
                TraceJob {
                    base_vpn: Vpn::new(BASE_VPN),
                    mapped_pages: PAGES,
                    shared_zero: true,
                    seed_lines: seed_lines.clone(),
                    ops: ops.clone(),
                },
            )
        })
        .collect();
    let results = run_jobs(&pool, jobs).expect("sweep failed");

    let mut table = ResultTable::new(
        "Ablation: OMT cache size (interleaved overlay reads, 64-page blocks)",
        &["omt_entries", "cycles", "omt_hit_rate", "vs_table2"],
    );
    let trace_of = |i: usize| results[i].outcome.as_trace().expect("trace job outcome");
    let table2_cycles =
        sizes.iter().position(|&e| e == 64).map(|i| trace_of(i).stats.cycles).expect("64 in sweep")
            as f64;
    for (i, &entries) in sizes.iter().enumerate() {
        let t = trace_of(i);
        table.row(&[
            &entries,
            &t.stats.cycles,
            &format!("{:.1}%", t.omt_cache_hit_rate * 100.0),
            &format!("{:+.1}%", (t.stats.cycles as f64 / table2_cycles - 1.0) * 100.0),
        ]);
    }
    table.print();
    println!("\n(Expected: a knee at 64 entries — the block working set; Table 2's choice.)");
    table.save_csv("ablation_omt_cache").expect("csv");
}
