//! §5.2 sensitivity study: overlay SpMV vs the dense representation on
//! randomly-generated matrices with varying sparsity.
//!
//! The paper: "our representation outperforms the dense-matrix
//! representation for all sparsity levels — the performance gap
//! increases linearly with the fraction of zero cache lines in the
//! matrix." The sparsity levels fan out over the shard pool.
//!
//! Usage: `cargo run --release -p po-bench --bin sparsity_sweep
//! [--rows <n>] [--cols <n>] [--seed <n>] [--shards <n>]`

use po_bench::{Args, ResultTable, ShardPool};
use po_sparse::{gen, OverlayMatrix, TimedSpmv};

fn main() {
    let args = Args::from_env();
    let rows: usize = args.get("rows", 64);
    let cols: usize = args.get("cols", 512);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let dense = TimedSpmv::table2().time_dense(rows, cols).expect("dense timing failed");

    let pcts = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99];
    let timings = pool.run(
        pcts.to_vec(),
        |_| 1,
        |pct| {
            let t = gen::with_zero_line_fraction(rows, cols, pct, seed);
            let ovl = OverlayMatrix::from_triplets(&t);
            TimedSpmv::table2().time_overlay(&ovl).expect("overlay timing failed")
        },
    );

    let mut table = ResultTable::new(
        "Sparsity sweep: overlay SpMV speedup over dense (one iteration)",
        &["zero_line_fraction", "overlay_cycles", "dense_cycles", "speedup"],
    );
    let mut prev_speedup = 0.0f64;
    for (pct, to) in pcts.iter().zip(&timings) {
        let speedup = dense.cycles as f64 / to.cycles as f64;
        table.row(&[
            &format!("{:.0}%", pct * 100.0),
            &to.cycles,
            &dense.cycles,
            &format!("{speedup:.2}x"),
        ]);
        if *pct > 0.0 {
            prev_speedup = prev_speedup.max(speedup);
        }
    }
    table.print();
    println!(
        "\nThe overlay representation wins at every sparsity level, with the gap \
         growing with the zero-line fraction (paper §5.2). Peak speedup here: {prev_speedup:.1}x."
    );
    let path = table.save_csv("sparsity_sweep").expect("csv");
    println!("CSV written to {}", path.display());
}
