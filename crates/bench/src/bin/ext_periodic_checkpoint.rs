//! Extension experiment: *periodic* fork checkpointing (§5.1's
//! motivating scenario run to steady state).
//!
//! The paper measures one post-fork interval; this extension runs many:
//! each interval forks a fresh checkpoint child, the parent keeps
//! mutating, and overlays are committed at the next fork (the
//! checkpoint-commit of §5.3.2). Reported: steady-state CPI, peak
//! per-interval extra memory, and total copy/overlay volume for CoW vs
//! OoW. The benchmark/mode grid runs as shard-pool jobs.
//!
//! Usage: `cargo run --release -p po-bench --bin ext_periodic_checkpoint
//! [--intervals <n>] [--interval-instr <instr>] [--shards <n>]`

use po_bench::suite::run_jobs;
use po_bench::{human_bytes, Args, ResultTable, ShardPool};
use po_sim::{SystemConfig, WorkloadJob};
use po_workloads::spec_suite;

fn main() {
    let args = Args::from_env();
    let intervals: u64 = args.get("intervals", 8);
    let interval_instr: u64 = args.get("interval-instr", 200_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let names = ["sphinx3", "lbm", "mcf"];
    let modes = [("cow", SystemConfig::table2()), ("oow", SystemConfig::table2_overlay())];
    let mut jobs = Vec::with_capacity(names.len() * modes.len());
    for (b, name) in names.iter().enumerate() {
        let spec = spec_suite().into_iter().find(|s| &s.name == name).expect("known benchmark");
        let mapped = spec.mapped_pages(interval_instr * intervals);
        let warmup = spec.generate_warmup(interval_instr, seed);
        let interval = spec.generate_post_fork(interval_instr, seed);
        for (m, (mode, config)) in modes.iter().enumerate() {
            jobs.push(
                WorkloadJob::periodic_checkpoint(
                    (b * modes.len() + m) as u64,
                    format!("checkpoint/{name}/{mode}"),
                    config.clone(),
                    spec.base_vpn(),
                    mapped,
                    warmup.clone(),
                    interval.clone(),
                    intervals,
                )
                .with_seed(seed),
            );
        }
    }
    let results = run_jobs(&pool, jobs).expect("periodic run");

    let mut table = ResultTable::new(
        "Extension: periodic fork checkpointing (steady state)",
        &["benchmark", "mode", "cpi", "peak_extra_mem", "pages_copied", "ovl_writes"],
    );
    for (b, name) in names.iter().enumerate() {
        for (m, (mode, _)) in modes.iter().enumerate() {
            let r = results[b * modes.len() + m]
                .outcome
                .as_periodic_checkpoint()
                .expect("checkpoint job outcome");
            table.row(&[
                name,
                mode,
                &format!("{:.3}", r.cpi),
                &human_bytes(r.peak_extra_memory_bytes),
                &r.pages_copied,
                &r.overlaying_writes,
            ]);
        }
    }
    table.print();
    println!(
        "\n({} intervals of {} instructions each. OoW's advantages persist in steady \
         state: every interval re-diverges through overlays, which are committed at \
         the next checkpoint fork.)",
        intervals, interval_instr
    );
    table.save_csv("ext_periodic_checkpoint").expect("csv");
}
