//! Extension experiment: why not just shrink the page size? (§1)
//!
//! The paper's motivation: "simply reducing the page size results in an
//! unacceptable increase in virtual-to-physical mapping table overhead
//! and TLB pressure." This experiment quantifies both costs.
//!
//! Emulation: the machine's page geometry is fixed at 4 KB, so a page
//! size of `P < 4096` is emulated by scaling the TLB entry counts down
//! by `4096 / P` — the TLB then covers exactly the reach it would have
//! with P-byte pages — while the mapping-table overhead is computed
//! directly (one 8 B leaf PTE per P bytes of mapped memory, plus ~0.2%
//! interior nodes). Overlays deliver 64 B granularity while keeping the
//! 4 KB TLB reach and page-table size. The five configurations run as
//! shard-pool jobs.
//!
//! Usage: `cargo run --release -p po-bench --bin ext_small_pages
//! [--shards <n>]`

use po_bench::suite::{fork_job, run_jobs};
use po_bench::{human_bytes, Args, ResultTable, ShardPool};
use po_sim::SystemConfig;
use po_workloads::spec_suite;

fn page_table_bytes(footprint_bytes: u64, page_size: u64) -> u64 {
    let leaves = footprint_bytes.div_ceil(page_size) * 8;
    leaves + leaves / 512 // interior levels (~0.2%)
}

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 300_000);
    let post_instr: u64 = args.get("post", 500_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let spec = spec_suite().into_iter().find(|s| s.name == "mcf").expect("mcf exists");
    let footprint_bytes = spec.mapped_pages(warmup_instr.max(post_instr)) * 4096;

    let page_sizes = [4096u64, 2048, 1024, 512];
    let mut jobs = Vec::with_capacity(page_sizes.len() + 1);
    for (i, &page_size) in page_sizes.iter().enumerate() {
        let scale = (4096 / page_size) as usize;
        let mut config = SystemConfig::table2();
        config.tlb.l1_entries = (config.tlb.l1_entries / scale).max(config.tlb.l1_ways);
        config.tlb.l2_entries = (config.tlb.l2_entries / scale).max(config.tlb.l2_ways);
        jobs.push(fork_job(
            i as u64,
            format!("small_pages/{page_size}B/cow"),
            config,
            &spec,
            warmup_instr,
            post_instr,
            seed,
        ));
    }
    jobs.push(fork_job(
        page_sizes.len() as u64,
        "small_pages/4096B/oow",
        SystemConfig::table2_overlay(),
        &spec,
        warmup_instr,
        post_instr,
        seed,
    ));
    let results = run_jobs(&pool, jobs).expect("run failed");

    let mut table = ResultTable::new(
        "Extension: shrinking the page size vs overlays (mcf)",
        &["scheme", "granularity", "cpi", "page_table", "divergence_mem"],
    );
    for (i, &page_size) in page_sizes.iter().enumerate() {
        let r = results[i].outcome.as_fork().expect("fork job outcome");
        // CoW at page granularity: divergence memory scales with the page
        // size (each dirty page copies page_size bytes).
        let divergence = r.pages_copied * page_size;
        table.row(&[
            &format!("{}B pages + CoW", page_size),
            &format!("{page_size}B"),
            &format!("{:.3}", r.cpi),
            &human_bytes(page_table_bytes(footprint_bytes, page_size)),
            &human_bytes(divergence),
        ]);
    }

    // The overlay framework: full 4 KB TLB reach, 4 KB page tables, 64 B
    // divergence granularity.
    let oow = results[page_sizes.len()].outcome.as_fork().expect("fork job outcome");
    table.row(&[
        &"4096B pages + overlays",
        &"64B",
        &format!("{:.3}", oow.cpi),
        &human_bytes(page_table_bytes(footprint_bytes, 4096)),
        &human_bytes(oow.extra_memory_bytes),
    ]);

    table.print();
    println!(
        "\n(Shrinking pages multiplies page-table storage and shreds TLB reach — CPI \
         rises — yet still only reaches 512 B granularity. Overlays get 64 B \
         granularity with 4 KB-page costs: the paper's §1 argument, quantified.)"
    );
    table.save_csv("ext_small_pages").expect("csv");
}
