//! Figure 10: SpMV with page overlays vs CSR over the 87-matrix suite,
//! sorted by the non-zero locality metric L.
//!
//! For each matrix, one SpMV iteration is timed on the Table 2 machine
//! for the overlay and CSR representations; the figure's two series are
//! the overlay's performance (CSR cycles / overlay cycles; >1 = overlay
//! faster) and relative memory (overlay bytes / CSR bytes; <1 = overlay
//! smaller), both normalized to CSR. The paper's crossover sits near
//! L ≈ 4.5, with overlays winning on 34 of 87 matrices. Matrices fan
//! out over the shard pool (each timing runs on its own machine, so the
//! numbers are shard-invariant).
//!
//! Usage: `cargo run --release -p po-bench --bin fig10_spmv
//! [--scale <f>] [--seed <n>] [--shards <n>]` (scale multiplies
//! non-zero counts; default 0.3 keeps the sweep under a minute).

use po_bench::{Args, ResultTable, ShardPool};
use po_sparse::{nonzero_locality, uf_like_suite, CsrMatrix, OverlayMatrix, TimedSpmv};

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.3);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let mut rows: Vec<(f64, String, f64, f64)> = pool.run(
        uf_like_suite(scale, seed),
        |spec| spec.matrix.nnz() as u64,
        |spec| {
            let timed = TimedSpmv::table2();
            let l = nonzero_locality(&spec.matrix, 64);
            let csr = CsrMatrix::from_triplets(&spec.matrix);
            let ovl = OverlayMatrix::from_triplets(&spec.matrix);
            let tc = timed.time_csr(&csr).expect("CSR timing failed");
            let to = timed.time_overlay(&ovl).expect("overlay timing failed");
            let perf = tc.cycles as f64 / to.cycles as f64;
            let mem = to.memory_bytes as f64 / tc.memory_bytes as f64;
            (l, spec.name.clone(), perf, mem)
        },
    );
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("L is finite"));

    let mut table = ResultTable::new(
        "Figure 10: overlay SpMV normalized to CSR (sorted by L)",
        &["matrix", "L", "perf_vs_csr", "mem_vs_csr(x)"],
    );
    let mut wins = 0usize;
    let mut crossover_l: Option<f64> = None;
    let mut win_perf = Vec::new();
    let mut win_mem = Vec::new();
    for (l, name, perf, mem) in &rows {
        if *perf > 1.0 {
            wins += 1;
            win_perf.push(*perf);
            win_mem.push(*mem);
            if crossover_l.is_none() {
                crossover_l = Some(*l);
            }
        }
        table.row(&[name, &format!("{l:.2}"), &format!("{perf:.3}"), &format!("{mem:.3}")]);
    }
    table.print();

    println!("\nOverlays outperform CSR on {wins} of {} matrices (paper: 34 of 87).", rows.len());
    if let Some(l) = crossover_l {
        println!("First overlay win at L = {l:.2} (paper: crossover near L = 4.5).");
    }
    if !win_perf.is_empty() {
        let mean_perf = po_bench::geomean(&win_perf);
        let mean_mem = po_bench::geomean(&win_mem);
        println!(
            "On winning matrices: {:.0}% faster, {:.2}x CSR's memory \
             (paper: 27% faster, 0.92x memory on its 34 winners).",
            (mean_perf - 1.0) * 100.0,
            mean_mem
        );
    }
    let path = table.save_csv("fig10_spmv").expect("csv");
    println!("CSV written to {}", path.display());
}
