//! Figure 8: additional memory consumed after a fork — copy-on-write vs
//! overlay-on-write, across the 15 workloads.
//!
//! Usage: `cargo run --release -p po-bench --bin fig8_fork_memory
//! [--post <instr>] [--warmup <instr>] [--seed <n>]`
//!
//! The paper runs 200 M warmup + 300 M post-fork instructions; defaults
//! here are scaled down 500x (the generators are rate-parameterized, so
//! the CoW/OoW ratio — the paper's 53% mean reduction — is stable under
//! scaling; see DESIGN.md §5).

use po_bench::{geomean, human_bytes, Args, ResultTable};
use po_sim::{run_fork_experiment, SystemConfig};
use po_workloads::spec_suite;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 400_000);
    let post_instr: u64 = args.get("post", 600_000);
    let seed: u64 = args.get("seed", 42);

    let mut table = ResultTable::new(
        "Figure 8: additional memory after fork (CoW vs OoW)",
        &["benchmark", "type", "cow", "oow", "oow/cow"],
    );
    let mut ratios = Vec::new();
    let mut cow_total = 0u64;
    let mut oow_total = 0u64;

    for spec in spec_suite() {
        let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
        let warmup = spec.generate_warmup(warmup_instr, seed);
        let post = spec.generate_post_fork(post_instr, seed);

        let cow =
            run_fork_experiment(SystemConfig::table2(), spec.base_vpn(), mapped, &warmup, &post)
                .expect("CoW run failed");
        let oow = run_fork_experiment(
            SystemConfig::table2_overlay(),
            spec.base_vpn(),
            mapped,
            &warmup,
            &post,
        )
        .expect("OoW run failed");

        let ratio = if cow.extra_memory_bytes == 0 {
            1.0
        } else {
            oow.extra_memory_bytes as f64 / cow.extra_memory_bytes as f64
        };
        ratios.push(ratio);
        cow_total += cow.extra_memory_bytes;
        oow_total += oow.extra_memory_bytes;
        table.row(&[
            &spec.name,
            &format!("{:?}", spec.wtype),
            &human_bytes(cow.extra_memory_bytes),
            &human_bytes(oow.extra_memory_bytes),
            &format!("{ratio:.3}"),
        ]);
    }

    let mean = geomean(&ratios);
    table.row(&[
        &"mean",
        &"-",
        &human_bytes(cow_total / 15),
        &human_bytes(oow_total / 15),
        &format!("{mean:.3}"),
    ]);
    table.print();
    println!(
        "\nOverlay-on-write uses {:.0}% less additional memory than copy-on-write \
         (geomean; paper: 53% average reduction).",
        (1.0 - mean) * 100.0
    );
    let path = table.save_csv("fig8_fork_memory").expect("csv");
    println!("CSV written to {}", path.display());
}
