//! Figure 8: additional memory consumed after a fork — copy-on-write vs
//! overlay-on-write, across the 15 workloads.
//!
//! Usage: `cargo run --release -p po-bench --bin fig8_fork_memory
//! [--backend <overlay|seg>] [--post <instr>] [--warmup <instr>]
//! [--seed <n>] [--shards <n>]`
//!
//! The paper runs 200 M warmup + 300 M post-fork instructions; defaults
//! here are scaled down 500x (the generators are rate-parameterized, so
//! the CoW/OoW ratio — the paper's 53% mean reduction — is stable under
//! scaling; see DESIGN.md §5). The 30 runs go through the shared shard
//! pool; the table is identical at any `--shards`.
//!
//! `--backend` picks the address-translation backend for *both*
//! halves of every pair: on `seg` (no overlay support) the OoW half
//! degrades to classic CoW and the reduction collapses toward 0% —
//! the comparative-lab control run.

use po_bench::suite::run_fork_suite_pairs_on;
use po_bench::{geomean, human_bytes, Args, ResultTable, ShardPool};
use po_sim::BackendKind;

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 400_000);
    let post_instr: u64 = args.get("post", 600_000);
    let seed: u64 = args.get("seed", 42);
    let backend: BackendKind = args.get("backend", BackendKind::Overlay);
    let pool = ShardPool::from_args(&args);

    let pairs = run_fork_suite_pairs_on(&pool, backend, warmup_instr, post_instr, seed, None)
        .expect("fork suite failed");

    let mut table = ResultTable::new(
        &format!("Figure 8: additional memory after fork (CoW vs OoW, backend: {backend})"),
        &["benchmark", "type", "cow", "oow", "oow/cow"],
    );
    let mut ratios = Vec::new();
    let mut cow_total = 0u64;
    let mut oow_total = 0u64;

    for pair in &pairs {
        let (cow, oow) = (pair.cow(), pair.oow());
        let ratio = if cow.extra_memory_bytes == 0 {
            1.0
        } else {
            oow.extra_memory_bytes as f64 / cow.extra_memory_bytes as f64
        };
        ratios.push(ratio);
        cow_total += cow.extra_memory_bytes;
        oow_total += oow.extra_memory_bytes;
        table.row(&[
            &pair.spec.name,
            &format!("{:?}", pair.spec.wtype),
            &human_bytes(cow.extra_memory_bytes),
            &human_bytes(oow.extra_memory_bytes),
            &format!("{ratio:.3}"),
        ]);
    }

    let mean = geomean(&ratios);
    table.row(&[
        &"mean",
        &"-",
        &human_bytes(cow_total / pairs.len() as u64),
        &human_bytes(oow_total / pairs.len() as u64),
        &format!("{mean:.3}"),
    ]);
    table.print();
    println!(
        "\nOverlay-on-write uses {:.0}% less additional memory than copy-on-write \
         (geomean; paper: 53% average reduction).",
        (1.0 - mean) * 100.0
    );
    let csv_name = match backend {
        BackendKind::Overlay => "fig8_fork_memory".to_string(),
        other => format!("fig8_fork_memory_{other}"),
    };
    let path = table.save_csv(&csv_name).expect("csv");
    println!("CSV written to {}", path.display());
}
