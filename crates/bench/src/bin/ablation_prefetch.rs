//! Ablation: stream + overlay-aware prefetching.
//!
//! The paper argues overlays stay competitive with dense layouts partly
//! because "the hardware … can efficiently prefetch the overlay cache
//! lines" (§5.2). This ablation times dense and overlay SpMV with the
//! prefetcher on and off; the two configurations run as shard-pool
//! tasks.
//!
//! Usage: `cargo run --release -p po-bench --bin ablation_prefetch
//! [--shards <n>]`

use po_bench::{Args, ResultTable, ShardPool};
use po_sim::SystemConfig;
use po_sparse::{gen, OverlayMatrix, TimedSpmv};

fn main() {
    let args = Args::from_env();
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);
    let t = gen::with_zero_line_fraction(64, 512, 0.5, seed);
    let ovl = OverlayMatrix::from_triplets(&t);

    let configs = [("prefetch on (Table 2)", true), ("prefetch off", false)];
    let timings = pool.run(
        configs.to_vec(),
        |_| 1,
        |(_, enabled)| {
            let mut config = SystemConfig::table2_overlay();
            config.hierarchy.prefetcher.enabled = enabled;
            let timed = TimedSpmv::new(config);
            let d = timed.time_dense(64, 512).expect("dense");
            let o = timed.time_overlay(&ovl).expect("overlay");
            (d, o)
        },
    );

    let mut table = ResultTable::new(
        "Ablation: prefetching on/off (SpMV cycles, 50% zero lines)",
        &["config", "dense", "overlay", "overlay/dense"],
    );
    for ((label, _), (d, o)) in configs.iter().zip(&timings) {
        table.row(&[
            label,
            &d.cycles,
            &o.cycles,
            &format!("{:.2}", o.cycles as f64 / d.cycles as f64),
        ]);
    }
    table.print();
    println!(
        "\n(Expected: disabling prefetch hurts both, but the overlay path depends on \
         OBitVector-guided prefetch to hide its Overlay-Memory-Store latency.)"
    );
    table.save_csv("ablation_prefetch").expect("csv");
}
