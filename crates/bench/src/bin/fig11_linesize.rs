//! Figure 11: memory overhead of fine-grained sparse storage at
//! different granularities (16 B … 4 KB), normalized to the ideal
//! representation that stores only non-zero values; CSR shown for
//! reference.
//!
//! Headline shapes from the paper: page-granularity (4 KB) storage
//! costs ~53x ideal on average, while 64 B lines stay in the low single
//! digits, and finer-than-64 B granularity beats CSR on more matrices.
//!
//! Usage: `cargo run --release -p po-bench --bin fig11_linesize
//! [--scale <f>] [--seed <n>]`

use po_bench::{geomean, Args, ResultTable};
use po_sparse::{
    csr_bytes, ideal_bytes, nonzero_locality, overlay_bytes_for_line_size, uf_like_suite,
};

const LINE_SIZES: [usize; 7] = [16, 32, 64, 256, 1024, 2048, 4096];

fn main() {
    let args = Args::from_env();
    let scale: f64 = args.get("scale", 0.3);
    let seed: u64 = args.get("seed", 42);

    let suite = uf_like_suite(scale, seed);
    let mut rows: Vec<(f64, String, f64, Vec<f64>)> = Vec::new();
    for spec in &suite {
        let l = nonzero_locality(&spec.matrix, 64);
        let ideal = ideal_bytes(&spec.matrix) as f64;
        let csr = csr_bytes(&spec.matrix) as f64 / ideal;
        let overheads: Vec<f64> = LINE_SIZES
            .iter()
            .map(|&ls| overlay_bytes_for_line_size(&spec.matrix, ls) as f64 / ideal)
            .collect();
        rows.push((l, spec.name.clone(), csr, overheads));
    }
    rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("L is finite"));

    let mut table = ResultTable::new(
        "Figure 11: memory overhead vs ideal (stores only non-zeros)",
        &["matrix", "L", "CSR", "16B", "32B", "64B", "256B", "1KB", "2KB", "4KB"],
    );
    for (l, name, csr, ov) in &rows {
        table.row(&[
            name,
            &format!("{l:.2}"),
            &format!("{csr:.2}"),
            &format!("{:.2}", ov[0]),
            &format!("{:.2}", ov[1]),
            &format!("{:.2}", ov[2]),
            &format!("{:.2}", ov[3]),
            &format!("{:.2}", ov[4]),
            &format!("{:.2}", ov[5]),
            &format!("{:.2}", ov[6]),
        ]);
    }
    table.print();

    // Summary: mean overhead per granularity, and how many matrices each
    // granularity beats CSR on (the circles in the paper's figure).
    let mut summary = ResultTable::new(
        "Summary: geomean overhead and #matrices where granularity beats CSR",
        &["granularity", "geomean_overhead", "beats_csr_on"],
    );
    summary.row(&[
        &"CSR",
        &format!("{:.2}", geomean(&rows.iter().map(|r| r.2).collect::<Vec<_>>())),
        &"-",
    ]);
    for (i, &ls) in LINE_SIZES.iter().enumerate() {
        let ovs: Vec<f64> = rows.iter().map(|r| r.3[i]).collect();
        let beats = rows.iter().filter(|r| r.3[i] < r.2).count();
        summary.row(&[
            &format!("{ls}B"),
            &format!("{:.2}", geomean(&ovs)),
            &format!("{beats}/{}", rows.len()),
        ]);
    }
    summary.print();
    let mean_4k = geomean(&rows.iter().map(|r| r.3[LINE_SIZES.len() - 1]).collect::<Vec<_>>());
    println!(
        "\nPage-granularity (4KB) storage costs {mean_4k:.0}x ideal on average \
         (paper: 53x); finer granularities beat CSR on progressively more matrices."
    );
    let path = table.save_csv("fig11_linesize").expect("csv");
    println!("CSV written to {}", path.display());
    summary.save_csv("fig11_summary").expect("csv");
}
