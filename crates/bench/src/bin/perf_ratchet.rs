//! CI performance ratchet over `bench_results/summary.json`.
//!
//! Re-measures every summarized workload with the same deterministic
//! parameters the checked-in snapshot was produced with, and compares
//! cycle counts per workload against the baseline:
//!
//! * a workload whose cycles grew more than the tolerance (default 5%)
//!   **fails** the ratchet,
//! * a workload present in the baseline but no longer measured fails
//!   too (lost coverage is a regression),
//! * a workload new since the baseline is reported but passes — it is
//!   gated once the baseline is re-committed.
//!
//! An intentional slowdown is committed by regenerating the baseline
//! (`cargo run --release -p po-bench --bin summary_json`) in the same
//! change that causes it, so the diff carries the price tag.
//!
//! The ratchet also holds a **fragmentation ceiling**: a fixed seeded
//! churn stream (the `po_soak` generator) replayed through the full
//! differential harness must end with the OMS fragmentation ratio
//! under `--frag-ceiling` (default 0.5) — §4.4.2 compaction keeps long
//! churn off the fragmentation wall, and this line fails if it stops
//! doing so, independent of cycle counts.
//!
//! The ratchet also holds a **wall-clock throughput floor**: the
//! 4-core contended-fork workload must sustain at least
//! `--min-ops-per-sec` trace ops per wall-clock second (default
//! 10 000 — a deliberately generous floor; the release build runs
//! orders of magnitude faster). Simulated cycles catch modeling
//! regressions; this line catches the simulator itself getting slow.
//!
//! ```text
//! perf_ratchet [--baseline PATH] [--tolerance PCT]
//!              [--warmup <instr>] [--post <instr>] [--seed <n>]
//!              [--frag-ceiling F] [--min-ops-per-sec N]
//! ```
//!
//! Exits 0 when the ratchet holds, 1 on regression, 2 when the
//! baseline is missing or unreadable.

use po_bench::{summary, Args, ShardPool};
use po_mc::{run_contended_fork, ContendedForkSpec};
use po_sim::{generate_soak_ops, run_job, SystemConfig, WorkloadJob};
use po_telemetry::TelemetrySink;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args = Args::from_env();
    let baseline_path: String = args.get("baseline", "bench_results/summary.json".to_string());
    let tolerance: f64 = args.get("tolerance", 5.0);
    let warmup_instr: u64 = args.get("warmup", 40_000);
    let post_instr: u64 = args.get("post", 60_000);
    let seed: u64 = args.get("seed", 42);

    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf_ratchet: cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match summary::parse_cycles(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf_ratchet: {baseline_path} is not a summary snapshot: {e}");
            return ExitCode::from(2);
        }
    };

    // Simulated cycles are shard-invariant, but the ratchet measures at
    // one shard anyway so its numbers never depend on host parallelism.
    let rows = match summary::collect(&ShardPool::serial(), warmup_instr, post_instr, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_ratchet: measurement failed: {e}");
            return ExitCode::from(2);
        }
    };

    let report = summary::compare(&baseline, &rows, tolerance);
    println!("perf ratchet vs {baseline_path} (tolerance {tolerance}%):");
    for l in &report.lines {
        let verdict = if l.regressed { "REGRESSED" } else { "ok" };
        match (l.baseline, l.current, l.delta_pct) {
            (Some(b), Some(c), Some(d)) => {
                println!("  {:<16} {b:>8} -> {c:>8} cycles ({d:+.2}%)  {verdict}", l.workload);
            }
            (Some(b), None, _) => {
                println!("  {:<16} {b:>8} -> (not measured)  {verdict}", l.workload);
            }
            (None, Some(c), _) => {
                println!("  {:<16} (new) -> {c:>8} cycles  {verdict}", l.workload);
            }
            _ => unreachable!("a ratchet line always has at least one side"),
        }
    }
    println!("geomean cycle ratio current/baseline: {:.4}", report.geomean_ratio);

    let frag_ceiling: f64 = args.get("frag-ceiling", 0.5);
    let soak_ops = generate_soak_ops(seed, 1500);
    let soak = WorkloadJob::soak(
        0,
        "ratchet-churn".to_string(),
        SystemConfig::table2_overlay(),
        soak_ops,
        frag_ceiling,
    )
    .with_seed(seed);
    let frag_ok = match run_job(soak) {
        Ok(result) => match result.outcome.as_soak() {
            Some(s) => {
                let verdict = match &s.verdict {
                    Ok(()) => "ok".to_string(),
                    Err(e) => format!("FAIL: {e}"),
                };
                println!(
                    "fragmentation ratchet: churn frag={:.3} (ceiling {frag_ceiling:.3}), \
                     {} compaction passes  {verdict}",
                    s.final_fragmentation, s.compaction_passes,
                );
                s.verdict.is_ok()
            }
            None => false,
        },
        Err(e) => {
            eprintln!("perf_ratchet: churn replay died: {e:?}");
            false
        }
    };

    // Wall-clock throughput floor on the multi-core path: the scheduler
    // and contention/coherence bookkeeping must not make the simulator
    // itself slow. The workload is deterministic; only the wall clock
    // around it is measured.
    let min_ops_per_sec: f64 = args.get("min-ops-per-sec", 10_000.0);
    let spec = ContendedForkSpec { ops_per_core: 10_000, ..ContendedForkSpec::standard(4, seed) };
    let total_ops = spec.cores * spec.ops_per_core;
    let started = std::time::Instant::now();
    let throughput_ok =
        match run_contended_fork(SystemConfig::table2_overlay(), &spec, TelemetrySink::noop()) {
            Ok(_) => {
                let elapsed = started.elapsed().as_secs_f64().max(1e-9);
                let ops_per_sec = total_ops as f64 / elapsed;
                let verdict = if ops_per_sec >= min_ops_per_sec { "ok" } else { "FAIL" };
                println!(
                "throughput ratchet: 4-core contended fork ran {total_ops} ops in {elapsed:.3}s \
                 = {ops_per_sec:.0} ops/s (floor {min_ops_per_sec:.0})  {verdict}"
            );
                ops_per_sec >= min_ops_per_sec
            }
            Err(e) => {
                eprintln!("perf_ratchet: the throughput workload died: {e:?}");
                false
            }
        };

    if report.pass() && frag_ok && throughput_ok {
        println!("ratchet holds: no workload regressed beyond {tolerance}%");
        ExitCode::SUCCESS
    } else {
        let n = report.lines.iter().filter(|l| l.regressed).count();
        if n > 0 {
            eprintln!(
                "perf_ratchet: {n} workload(s) regressed beyond {tolerance}% — if intentional, \
                 regenerate the baseline with summary_json and commit it with the cause"
            );
        }
        if !frag_ok {
            eprintln!(
                "perf_ratchet: the churn stream breached the {frag_ceiling:.3} fragmentation \
                 ceiling (or failed outright) — compaction has regressed"
            );
        }
        if !throughput_ok {
            eprintln!(
                "perf_ratchet: wall-clock throughput fell under {min_ops_per_sec:.0} ops/s — \
                 the simulator itself has slowed down"
            );
        }
        ExitCode::from(1)
    }
}
