//! Figure 9: cycles-per-instruction of the post-fork window (lower is
//! better) — copy-on-write vs overlay-on-write across the 15 workloads.
//!
//! Usage: `cargo run --release -p po-bench --bin fig9_fork_cpi
//! [--post <instr>] [--warmup <instr>] [--seed <n>] [--shards <n>]`
//!
//! Expected shape (paper §5.1): Type 1 shows no difference; Type 2 OoW
//! wins except `cactus` (tight write bursts favor CoW's high-MLP page
//! copy); Type 3 OoW wins clearly; ~15% mean performance improvement.
//! Runs go through the shared shard pool; simulated cycles do not
//! depend on `--shards`.

use po_bench::suite::run_fork_suite_pairs;
use po_bench::{geomean, Args, ResultTable, ShardPool};

fn main() {
    let args = Args::from_env();
    let warmup_instr: u64 = args.get("warmup", 400_000);
    let post_instr: u64 = args.get("post", 600_000);
    let seed: u64 = args.get("seed", 42);
    let pool = ShardPool::from_args(&args);

    let pairs = run_fork_suite_pairs(&pool, warmup_instr, post_instr, seed, None)
        .expect("fork suite failed");

    let mut table = ResultTable::new(
        "Figure 9: CPI after fork (lower is better)",
        &["benchmark", "type", "cow_cpi", "oow_cpi", "oow/cow", "pages_copied", "ovl_writes"],
    );
    let mut ratios = Vec::new();

    for pair in &pairs {
        let (cow, oow) = (pair.cow(), pair.oow());
        let ratio = oow.cpi / cow.cpi;
        ratios.push(ratio);
        table.row(&[
            &pair.spec.name,
            &format!("{:?}", pair.spec.wtype),
            &format!("{:.3}", cow.cpi),
            &format!("{:.3}", oow.cpi),
            &format!("{ratio:.3}"),
            &cow.pages_copied,
            &oow.overlaying_writes,
        ]);
    }

    let mean = geomean(&ratios);
    table.row(&[&"mean", &"-", &"-", &"-", &format!("{mean:.3}"), &"-", &"-"]);
    table.print();
    println!(
        "\nOverlay-on-write improves post-fork performance by {:.0}% \
         (geomean CPI ratio; paper: 15% average improvement).",
        (1.0 - mean) * 100.0
    );
    let path = table.save_csv("fig9_fork_cpi").expect("csv");
    println!("CSV written to {}", path.display());
}
