//! Job-building helpers shared by the bench binaries.
//!
//! Every figure/ablation binary describes its work as
//! [`WorkloadJob`]s and hands them to one [`ShardPool`]; the private
//! machine-drive loops the binaries used to carry live in
//! `po_sim::runner` now (po-analyze rule PA-L005 keeps them from
//! growing back). This module holds the recurring job shapes: the §5.1
//! CoW/OoW fork pair over the 15-workload suite, and the generic
//! "run these jobs, propagate the first machine fault" funnel.

use crate::pool::ShardPool;
use po_sim::runner::{run_job, JobResult, WorkloadJob};
use po_sim::{BackendKind, ForkExperimentResult, SystemConfig};
use po_types::PoResult;
use po_workloads::{spec_suite, WorkloadSpec};

/// Runs `jobs` on the pool (heaviest first) and returns their results
/// in submission order, failing on the first machine fault.
///
/// # Errors
///
/// The first job's machine fault, by submission order.
pub fn run_jobs(pool: &ShardPool, jobs: Vec<WorkloadJob>) -> PoResult<Vec<JobResult>> {
    pool.run(jobs, WorkloadJob::weight, run_job).into_iter().collect()
}

/// Builds the §5.1 fork-experiment job for `spec` under `config`:
/// mapped pages and warmup/post traces come from the spec's generators,
/// exactly as every figure binary derived them.
pub fn fork_job(
    id: u64,
    label: impl Into<String>,
    config: SystemConfig,
    spec: &WorkloadSpec,
    warmup_instr: u64,
    post_instr: u64,
    seed: u64,
) -> WorkloadJob {
    WorkloadJob::fork(
        id,
        label,
        config,
        spec.base_vpn(),
        spec.mapped_pages(warmup_instr.max(post_instr)),
        spec.generate_warmup(warmup_instr, seed),
        spec.generate_post_fork(post_instr, seed),
    )
    .with_seed(seed)
}

/// One workload's CoW and OoW fork runs (Figures 8 & 9 share this).
#[derive(Clone, Debug)]
pub struct ForkPair {
    /// The workload that was run.
    pub spec: WorkloadSpec,
    /// The copy-on-write run (`SystemConfig::table2`).
    pub cow: JobResult,
    /// The overlay-on-write run (`SystemConfig::table2_overlay`).
    pub oow: JobResult,
}

impl ForkPair {
    /// The CoW fork result.
    pub fn cow(&self) -> &ForkExperimentResult {
        self.cow.outcome.as_fork().expect("fork job outcome")
    }

    /// The OoW fork result.
    pub fn oow(&self) -> &ForkExperimentResult {
        self.oow.outcome.as_fork().expect("fork job outcome")
    }
}

/// Runs the whole 15-workload suite as CoW/OoW pairs through the pool.
/// With `telemetry_capacity = Some(n)` every job records into a private
/// sink of that ring size (for merged exports); job ids are
/// `2*spec_index` (CoW) and `2*spec_index + 1` (OoW). Shorthand for
/// [`run_fork_suite_pairs_on`] with the canonical overlay backend.
///
/// # Errors
///
/// The first machine fault.
pub fn run_fork_suite_pairs(
    pool: &ShardPool,
    warmup_instr: u64,
    post_instr: u64,
    seed: u64,
    telemetry_capacity: Option<usize>,
) -> PoResult<Vec<ForkPair>> {
    run_fork_suite_pairs_on(
        pool,
        BackendKind::Overlay,
        warmup_instr,
        post_instr,
        seed,
        telemetry_capacity,
    )
}

/// [`run_fork_suite_pairs`] with every machine translating through
/// `backend`. On a backend without overlay support the "oow" half
/// degrades to classic CoW by construction — the CoW/OoW gap closing
/// to 1.0 is exactly what the comparative lab measures there.
///
/// # Errors
///
/// The first machine fault.
pub fn run_fork_suite_pairs_on(
    pool: &ShardPool,
    backend: BackendKind,
    warmup_instr: u64,
    post_instr: u64,
    seed: u64,
    telemetry_capacity: Option<usize>,
) -> PoResult<Vec<ForkPair>> {
    let cow = SystemConfig { backend, ..SystemConfig::table2() };
    let oow = SystemConfig { backend, ..SystemConfig::table2_overlay() };
    let specs = spec_suite();
    let mut jobs = Vec::with_capacity(specs.len() * 2);
    for (i, spec) in specs.iter().enumerate() {
        for (half, mode, config) in [(0, "cow", cow.clone()), (1, "oow", oow.clone())] {
            let mut job = fork_job(
                (2 * i + half) as u64,
                format!("fork/{}/{mode}", spec.name),
                config,
                spec,
                warmup_instr,
                post_instr,
                seed,
            );
            if let Some(capacity) = telemetry_capacity {
                job = job.with_telemetry(capacity);
            }
            jobs.push(job);
        }
    }
    let mut results = run_jobs(pool, jobs)?.into_iter();
    Ok(specs
        .into_iter()
        .map(|spec| {
            let cow = results.next().expect("one result per job");
            let oow = results.next().expect("one result per job");
            ForkPair { spec, cow, oow }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_pairs_are_shard_invariant() {
        // Tiny instruction budgets: this is a determinism test, not a
        // measurement. Every per-pair number and fingerprint must agree
        // between a serial pool and a 4-shard pool.
        let serial = run_fork_suite_pairs(&ShardPool::serial(), 2_000, 3_000, 7, None).unwrap();
        let sharded = run_fork_suite_pairs(&ShardPool::new(4), 2_000, 3_000, 7, None).unwrap();
        assert_eq!(serial.len(), 15);
        for (s, p) in serial.iter().zip(&sharded) {
            assert_eq!(s.spec.name, p.spec.name);
            assert_eq!(s.cow.snapshot_fingerprint, p.cow.snapshot_fingerprint);
            assert_eq!(s.oow.snapshot_fingerprint, p.oow.snapshot_fingerprint);
            assert_eq!(s.cow().post_cycles, p.cow().post_cycles);
            assert_eq!(s.oow().post_cycles, p.oow().post_cycles);
            assert_eq!(s.oow().extra_memory_bytes, p.oow().extra_memory_bytes);
        }
    }
}
