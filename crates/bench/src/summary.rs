//! The benchmark summary: collection, JSON encoding, and the CI ratchet.
//!
//! `bench_results/summary.json` is a checked-in snapshot of the repo's
//! performance trajectory: one row per workload (the §5.1 fork suite
//! plus the Figure 10 SpMV kernel) with cycles, CPI, memory overhead,
//! OMT-cache hit rate, and overlay footprint. This module is the single
//! source of truth for producing it (`collect` and `to_json`, used by
//! the `summary_json` binary) and for holding the line on it
//! (`parse_cycles` and `compare`, used by the `perf_ratchet` binary):
//! CI regenerates the summary and fails on any per-workload cycle
//! regression beyond the tolerance, so a slowdown has to be committed
//! deliberately, baseline and cause together.

use crate::pool::ShardPool;
use crate::suite::fork_job;
use crate::{geomean, suite};
use po_sim::{BackendKind, SystemConfig};
use po_sparse::{gen as matrix_gen, CsrMatrix, OverlayMatrix, SpmvTiming, TimedSpmv};
use po_telemetry::TelemetrySink;
use po_types::geometry::PAGE_SIZE;
use po_types::PoResult;
use po_workloads::spec_suite;
use std::fmt::Write as _;

/// One workload's measurements, as serialized into `summary.json`.
#[derive(Clone, Debug)]
pub struct SummaryRow {
    /// Workload name, e.g. `fork/mcf` or `spmv/overlay`.
    pub workload: String,
    /// Cycles over the measured window (the ratchet gates on this).
    pub cycles: u64,
    /// Cycles per instruction over the same window.
    pub cpi: f64,
    /// Extra memory relative to the mapped working set, in percent.
    pub memory_overhead_pct: f64,
    /// OMT-cache hits / accesses over the run.
    pub omt_cache_hit_rate: f64,
    /// Overlay Memory Store bytes in use at the end of the run.
    pub overlay_bytes: u64,
}

/// Runs every summarized workload through `pool` and returns one row
/// each: the §5.1 fork experiment (overlay-on-write) per suite
/// benchmark, then the overlay and CSR SpMV kernels. Shorthand for
/// [`collect_for_backend`] on the canonical overlay backend — the
/// variant the checked-in `summary.json` snapshots.
///
/// # Errors
///
/// Propagates any machine error from the underlying experiments.
pub fn collect(
    pool: &ShardPool,
    warmup_instr: u64,
    post_instr: u64,
    seed: u64,
) -> PoResult<Vec<SummaryRow>> {
    collect_for_backend(pool, BackendKind::Overlay, warmup_instr, post_instr, seed)
}

/// [`collect`] on an arbitrary address-translation backend: the same
/// workloads, traces, and row names, with every machine translating
/// through `backend`. Row names are backend-agnostic so per-backend
/// summary files compare row-by-row; a backend without overlay support
/// runs the identical streams under classic CoW (fork rows then report
/// zero overlay bytes, and the SpMV "overlay" kernel degrades to
/// page-privatized reads — the cycle gap is the lab's signal).
///
/// Deterministic *at any shard count*: rows come back in submission
/// order and every job runs on its own machine, so the same arguments
/// produce byte-identical JSON whether the pool has 1 worker or 8.
///
/// # Errors
///
/// Propagates any machine error from the underlying experiments.
pub fn collect_for_backend(
    pool: &ShardPool,
    backend: BackendKind,
    warmup_instr: u64,
    post_instr: u64,
    seed: u64,
) -> PoResult<Vec<SummaryRow>> {
    let config = SystemConfig { backend, ..SystemConfig::table2_overlay() };
    let specs = spec_suite();
    let jobs = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            fork_job(
                i as u64,
                format!("fork/{}", spec.name),
                config.clone(),
                spec,
                warmup_instr,
                post_instr,
                seed,
            )
        })
        .collect();
    let mut rows = Vec::new();
    for (spec, result) in specs.iter().zip(suite::run_jobs(pool, jobs)?) {
        let mapped = spec.mapped_pages(warmup_instr.max(post_instr));
        let r = result.outcome.as_fork().expect("fork job outcome");
        rows.push(SummaryRow {
            workload: result.label.clone(),
            cycles: r.post_cycles,
            cpi: r.cpi,
            memory_overhead_pct: 100.0 * r.extra_memory_bytes as f64
                / (mapped * PAGE_SIZE as u64) as f64,
            omt_cache_hit_rate: r.omt_cache_hit_rate,
            overlay_bytes: r.overlay_bytes,
        });
    }

    // SpMV: the overlay representation on a high-locality matrix, with
    // telemetry supplying the OMT-cache counters. The two kernels are
    // two pool tasks; each builds its own TimedSpmv machine.
    let triplets = matrix_gen::clustered(40, 512, 20_000, 8, true, seed);
    let csr = CsrMatrix::from_triplets(&triplets);
    let ovl = OverlayMatrix::from_triplets(&triplets);
    let dense_bytes = (ovl.rows() * ovl.cols() * 8) as f64;
    enum Kernel {
        Overlay,
        Csr,
    }
    let timings: Vec<PoResult<(SpmvTiming, f64)>> = pool.run(
        vec![Kernel::Overlay, Kernel::Csr],
        |k| match k {
            Kernel::Overlay => 2,
            Kernel::Csr => 1,
        },
        |k| match k {
            Kernel::Overlay => {
                let sink = TelemetrySink::active();
                let timed = TimedSpmv::new(config.clone()).with_telemetry(sink.clone());
                let o = timed.time_overlay(&ovl)?;
                let hits = sink.counter("omt_cache.hits") as f64;
                let misses = sink.counter("omt_cache.misses") as f64;
                let rate = if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 };
                Ok((o, rate))
            }
            Kernel::Csr => {
                let c = TimedSpmv::new(config.clone()).time_csr(&csr)?;
                Ok((c, 0.0))
            }
        },
    );
    let mut timings = timings.into_iter();
    let (o, overlay_rate) = timings.next().expect("overlay kernel timing")?;
    rows.push(SummaryRow {
        workload: "spmv/overlay".to_string(),
        cycles: o.cycles,
        cpi: o.cpi(),
        memory_overhead_pct: 100.0 * o.memory_bytes as f64 / dense_bytes,
        omt_cache_hit_rate: overlay_rate,
        overlay_bytes: o.memory_bytes,
    });
    let (c, _) = timings.next().expect("csr kernel timing")?;
    rows.push(SummaryRow {
        workload: "spmv/csr".to_string(),
        cycles: c.cycles,
        cpi: c.cpi(),
        memory_overhead_pct: 100.0 * c.memory_bytes as f64 / dense_bytes,
        omt_cache_hit_rate: 0.0,
        overlay_bytes: 0,
    });
    Ok(rows)
}

/// Renders rows as the checked-in `summary.json` text (byte-stable:
/// row order is collection order, floats are fixed to four places).
#[must_use]
pub fn to_json(rows: &[SummaryRow]) -> String {
    let mut json = String::from("{\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "  \"{}\": {{\"cycles\": {}, \"cpi\": {:.4}, \"memory_overhead_pct\": {:.4}, \
             \"omt_cache_hit_rate\": {:.4}, \"overlay_bytes\": {}}}",
            r.workload,
            r.cycles,
            r.cpi,
            r.memory_overhead_pct,
            r.omt_cache_hit_rate,
            r.overlay_bytes
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("}\n");
    json
}

/// Extracts `(workload, cycles)` pairs from a `summary.json` text, in
/// file order. Tolerant of whitespace but tied to the fixed shape
/// [`to_json`] emits — one workload per line; this is a snapshot
/// parser, not a general JSON reader.
///
/// # Errors
///
/// Returns a located message if a row line has no parseable name or
/// cycle count.
pub fn parse_cycles(json: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in json.lines().enumerate() {
        let line = line.trim();
        if !line.contains("\"cycles\"") {
            continue;
        }
        let err = |what: &str| format!("summary line {}: {what}: {line}", lineno + 1);
        let mut quotes = line.split('"');
        let name = quotes.nth(1).ok_or_else(|| err("no workload name"))?;
        let after =
            line.split("\"cycles\":").nth(1).ok_or_else(|| err("no cycles field"))?.trim_start();
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        let cycles = digits.parse::<u64>().map_err(|_| err("cycle count is not an integer"))?;
        out.push((name.to_string(), cycles));
    }
    if out.is_empty() {
        return Err("summary has no workload rows".to_string());
    }
    Ok(out)
}

/// One workload's verdict from [`compare`].
#[derive(Clone, Debug)]
pub struct RatchetLine {
    /// Workload name.
    pub workload: String,
    /// Baseline cycles (`None` for a workload new since the baseline).
    pub baseline: Option<u64>,
    /// Freshly measured cycles (`None` for a workload that vanished).
    pub current: Option<u64>,
    /// Signed cycle delta in percent, when both sides exist.
    pub delta_pct: Option<f64>,
    /// True if this line alone fails the ratchet.
    pub regressed: bool,
}

/// The ratchet verdict over a whole summary.
#[derive(Clone, Debug)]
pub struct RatchetReport {
    /// Per-workload verdicts, baseline order then new workloads.
    pub lines: Vec<RatchetLine>,
    /// Geometric-mean cycle ratio current/baseline over shared workloads.
    pub geomean_ratio: f64,
}

impl RatchetReport {
    /// True if no workload regressed and none vanished.
    #[must_use]
    pub fn pass(&self) -> bool {
        self.lines.iter().all(|l| !l.regressed)
    }
}

/// Compares fresh measurements against the checked-in baseline.
///
/// A workload fails the ratchet if its cycles grew more than
/// `tolerance_pct` over the baseline, or if it exists in the baseline
/// but was not measured (lost coverage is a regression too). Workloads
/// new since the baseline are reported but never fail — they get gated
/// once the baseline is re-committed.
#[must_use]
pub fn compare(
    baseline: &[(String, u64)],
    current: &[SummaryRow],
    tolerance_pct: f64,
) -> RatchetReport {
    let mut lines = Vec::new();
    let mut ratios = Vec::new();
    for (name, base) in baseline {
        let cur = current.iter().find(|r| &r.workload == name).map(|r| r.cycles);
        let delta_pct = cur.map(|c| 100.0 * (c as f64 - *base as f64) / *base as f64);
        let regressed = match delta_pct {
            Some(d) => d > tolerance_pct,
            None => true, // vanished workload
        };
        if let Some(c) = cur {
            ratios.push(c as f64 / *base as f64);
        }
        lines.push(RatchetLine {
            workload: name.clone(),
            baseline: Some(*base),
            current: cur,
            delta_pct,
            regressed,
        });
    }
    for r in current {
        if !baseline.iter().any(|(name, _)| name == &r.workload) {
            lines.push(RatchetLine {
                workload: r.workload.clone(),
                baseline: None,
                current: Some(r.cycles),
                delta_pct: None,
                regressed: false,
            });
        }
    }
    let geomean_ratio = if ratios.is_empty() { 1.0 } else { geomean(&ratios) };
    RatchetReport { lines, geomean_ratio }
}

/// One row of the cross-backend comparison: a freshly measured backend
/// against a rival's summary file (row names are backend-agnostic, so
/// rows pair by workload).
#[derive(Clone, Debug)]
pub struct BackendComparisonRow {
    /// Workload name shared by both summaries.
    pub workload: String,
    /// Cycles just measured on the selected backend.
    pub current: u64,
    /// The rival's cycles for the same workload, if its summary has it.
    pub rival: Option<u64>,
    /// `current / rival` when both sides exist.
    pub ratio: Option<f64>,
}

/// Pairs fresh per-backend measurements with a rival backend's summary
/// (as parsed by [`parse_cycles`]), one comparison row per measured
/// workload, in measurement order.
#[must_use]
pub fn compare_backends(
    current: &[SummaryRow],
    rival: &[(String, u64)],
) -> Vec<BackendComparisonRow> {
    current
        .iter()
        .map(|r| {
            let other = rival.iter().find(|(name, _)| name == &r.workload).map(|&(_, c)| c);
            BackendComparisonRow {
                workload: r.workload.clone(),
                current: r.cycles,
                rival: other,
                ratio: other.map(|c| r.cycles as f64 / c as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(workload: &str, cycles: u64) -> SummaryRow {
        SummaryRow {
            workload: workload.to_string(),
            cycles,
            cpi: 2.0,
            memory_overhead_pct: 0.1,
            omt_cache_hit_rate: 0.9,
            overlay_bytes: 2048,
        }
    }

    #[test]
    fn json_roundtrips_through_the_snapshot_parser() {
        let rows = vec![row("fork/mcf", 1000), row("spmv/overlay", 50)];
        let parsed = parse_cycles(&to_json(&rows)).unwrap();
        assert_eq!(parsed, vec![("fork/mcf".to_string(), 1000), ("spmv/overlay".to_string(), 50)]);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_cycles("{}\n").is_err());
        assert!(parse_cycles("  \"w\": {\"cycles\": x}\n").is_err());
    }

    #[test]
    fn ratchet_passes_within_tolerance_and_fails_beyond() {
        let base = vec![("a".to_string(), 1000), ("b".to_string(), 1000)];
        let ok = compare(&base, &[row("a", 1049), row("b", 960)], 5.0);
        assert!(ok.pass(), "{:?}", ok.lines);
        assert!(ok.geomean_ratio < 1.01);

        let bad = compare(&base, &[row("a", 1051), row("b", 960)], 5.0);
        assert!(!bad.pass());
        assert_eq!(bad.lines.iter().filter(|l| l.regressed).count(), 1);
    }

    #[test]
    fn backend_comparison_pairs_by_workload() {
        let current = vec![row("fork/mcf", 900), row("spmv/overlay", 50)];
        let rival = vec![("fork/mcf".to_string(), 1000)];
        let cmp = compare_backends(&current, &rival);
        assert_eq!(cmp.len(), 2);
        assert_eq!(cmp[0].rival, Some(1000));
        assert!((cmp[0].ratio.unwrap() - 0.9).abs() < 1e-9);
        assert_eq!(cmp[1].rival, None);
        assert!(cmp[1].ratio.is_none());
    }

    #[test]
    fn vanished_workload_fails_and_new_workload_does_not() {
        let base = vec![("a".to_string(), 1000)];
        let vanished = compare(&base, &[row("c", 10)], 5.0);
        assert!(!vanished.pass());
        assert!(vanished.lines.iter().any(|l| l.workload == "a" && l.regressed));
        assert!(vanished.lines.iter().any(|l| l.workload == "c" && !l.regressed));
    }
}
