//! The shard pool: deterministic fan-out of workload jobs over OS
//! threads (DESIGN.md §12).
//!
//! Every bench driver funnels its machine-driving work through one
//! [`ShardPool`]. The pool is deliberately tiny — `std::thread::scope`,
//! an atomic cursor, no work stealing, no rayon — because the
//! determinism argument has to fit in a paragraph:
//!
//! * items are scheduled **longest-job-first** (by a caller-supplied
//!   weight) so one straggler never starts last;
//! * each worker claims the next unclaimed item via an atomic cursor —
//!   which worker runs which item is racy and irrelevant;
//! * results land in a slot vector indexed by **submission order**, so
//!   the returned `Vec` is identical for `--shards 1` and `--shards 8`.
//!
//! Simulated cycles are unaffected by sharding (every job runs on its
//! own [`po_sim::Machine`]); only wall-clock changes. The perf ratchet
//! therefore always measures at one shard.

use crate::Args;
use std::cmp::Reverse;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted when `--shards` is absent.
pub const SHARDS_ENV: &str = "PO_SHARDS";

/// A fixed-width pool of worker threads for bench jobs.
#[derive(Clone, Debug)]
pub struct ShardPool {
    shards: usize,
}

impl ShardPool {
    /// A pool with exactly `shards` workers (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        Self { shards: shards.max(1) }
    }

    /// A single-shard pool: every job runs inline on the caller's
    /// thread. The perf ratchet pins itself here so its wall-clock
    /// numbers are comparable across hosts.
    pub fn serial() -> Self {
        Self::new(1)
    }

    /// Shard count from `--shards N`, else the `PO_SHARDS` environment
    /// variable, else [`std::thread::available_parallelism`].
    pub fn from_args(args: &Args) -> Self {
        let fallback = std::env::var(SHARDS_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Self::new(args.get("shards", fallback))
    }

    /// Worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs `work` over every item, heaviest first, and returns the
    /// results **in submission order** regardless of shard count or
    /// completion order. With one shard (or one item) everything runs
    /// inline in submission order — the serial baseline the determinism
    /// CI job diffs against.
    pub fn run<T, R>(
        &self,
        items: Vec<T>,
        weight: impl Fn(&T) -> u64,
        work: impl Fn(T) -> R + Sync,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
    {
        let n = items.len();
        if self.shards == 1 || n <= 1 {
            return items.into_iter().map(work).collect();
        }

        // Claim order: heaviest first, submission index as tiebreak so
        // the schedule itself is deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        let weights: Vec<u64> = items.iter().map(&weight).collect();
        order.sort_by_key(|&i| (Reverse(weights[i]), i));

        let slots: Vec<Mutex<Option<T>>> =
            items.into_iter().map(|item| Mutex::new(Some(item))).collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..self.shards.min(n) {
                scope.spawn(|| loop {
                    let at = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&index) = order.get(at) else { break };
                    // The cursor hands each index to exactly one worker,
                    // so both takes see untouched slots; a poisoned lock
                    // is unreachable (no panics while holding it).
                    let item = slots[index]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        .expect("each slot is claimed exactly once");
                    let result = work(item);
                    *results[index].lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("every slot is filled when the scope joins")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_keep_submission_order_at_any_shard_count() {
        let items: Vec<u64> = (0..37).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for shards in [1, 2, 4, 8] {
            let got = ShardPool::new(shards).run(items.clone(), |&x| x, |x| x * x);
            assert_eq!(got, expected, "shards={shards}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let results = ShardPool::new(4).run(
            (0..100u64).collect(),
            |_| 1,
            |x| {
                ran.fetch_add(1, Ordering::Relaxed);
                x
            },
        );
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(results.len(), 100);
    }

    #[test]
    fn zero_shards_clamps_to_one_and_empty_input_is_fine() {
        let pool = ShardPool::new(0);
        assert_eq!(pool.shards(), 1);
        let empty: Vec<u64> = ShardPool::new(4).run(Vec::new(), |&x| x, |x: u64| x);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_shards_than_items_still_covers_everything() {
        let got = ShardPool::new(16).run(vec![10u64, 20, 30], |&x| x, |x| x + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }
}
