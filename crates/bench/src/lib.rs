//! # po-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! full experiment index):
//!
//! | target | regenerates |
//! |---|---|
//! | `table2_config` | Table 2 parameters + §4.5 hardware cost |
//! | `fig8_fork_memory` | Figure 8: extra memory after fork, CoW vs OoW |
//! | `fig9_fork_cpi` | Figure 9: CPI after fork, CoW vs OoW |
//! | `fig10_spmv` | Figure 10: SpMV perf/memory vs CSR over 87 matrices |
//! | `fig11_linesize` | Figure 11: memory overhead vs line size |
//! | `sparsity_sweep` | §5.2 random-sparsity sensitivity study |
//! | `ablation_*` | design-choice ablations (OMT cache, prefetch, segments) |
//!
//! Criterion micro-benchmarks for the framework's hot operations live
//! under `benches/`.
//!
//! Every binary accepts `--scale <f>` (work multiplier, default 1.0)
//! and `--seed <n>`, prints an aligned table to stdout, and writes a
//! CSV next to it under `bench_results/`.
//!
//! Machine-driving work goes through the shared shard pool
//! ([`pool::ShardPool`]) as `po_sim::runner` jobs (helpers in
//! [`suite`]): `--shards N` / `PO_SHARDS` picks the worker count, and
//! results — tables, `summary.json`, merged telemetry exports — are
//! byte-identical at any shard count.

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod pool;
pub mod suite;
pub mod summary;

pub use pool::ShardPool;

use std::fmt::Display;
use std::fs;
use std::path::PathBuf;

/// Minimal argument parsing: `--key value` pairs.
#[derive(Clone, Debug)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parses the process arguments.
    pub fn from_env() -> Self {
        Self { raw: std::env::args().skip(1).collect() }
    }

    /// Value of `--name`, parsed, or `default`.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        let key = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Whether the bare flag `--name` is present.
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.raw.iter().any(|a| a == &key)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A simple result table that prints aligned to stdout and saves a CSV.
#[derive(Clone, Debug)]
pub struct ResultTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Prints the table aligned to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Writes the table as CSV under `bench_results/<name>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save_csv(&self, name: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("bench_results");
        fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        fs::write(&path, out)?;
        Ok(path)
    }
}

/// Geometric mean of positive values (the paper's "mean" bars).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a byte count human-readably (B/KB/MB).
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_uniform_is_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KB");
        assert_eq!(human_bytes(3 << 20), "3.00MB");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = ResultTable::new("t", &["a", "b"]);
        t.row(&[&1, &"x"]);
        assert_eq!(t.rows.len(), 1);
    }
}
