//! Criterion benchmarks for the functional SpMV kernels: dense vs CSR
//! vs overlay-backed, plus the dynamic-insertion comparison the paper
//! highlights (§5.2: CSR insertion is costly, overlay insertion is one
//! line move).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use po_sparse::{gen, CsrMatrix, OverlayMatrix};

fn inputs() -> (po_sparse::TripletMatrix, Vec<f64>) {
    let t = gen::clustered(64, 512, 16_000, 8, true, 5);
    let x: Vec<f64> = (0..512).map(|i| (i % 17) as f64 - 8.0).collect();
    (t, x)
}

fn bench_spmv(c: &mut Criterion) {
    let (t, x) = inputs();
    let dense = t.to_dense();
    let csr = CsrMatrix::from_triplets(&t);
    let ovl = OverlayMatrix::from_triplets(&t);
    let mut group = c.benchmark_group("spmv");
    group.bench_function("dense", |b| b.iter(|| dense.spmv(&x)));
    group.bench_function("csr", |b| b.iter(|| csr.spmv(&x)));
    group.bench_function("overlay", |b| b.iter(|| ovl.spmv(&x)));
    group.finish();
}

fn bench_dynamic_insert(c: &mut Criterion) {
    let (t, _) = inputs();
    let mut group = c.benchmark_group("dynamic_insert");
    group.bench_function("csr_insert", |b| {
        b.iter_batched(
            || CsrMatrix::from_triplets(&t),
            |mut csr| {
                for i in 0..32u32 {
                    csr.insert((i % 64) as usize, ((i * 37) % 512) as usize, 1.0);
                }
                csr
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("overlay_insert", |b| {
        b.iter_batched(
            || OverlayMatrix::from_triplets(&t),
            |mut ovl| {
                for i in 0..32u32 {
                    ovl.set((i % 64) as usize, ((i * 37) % 512) as usize, 1.0);
                }
                ovl
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let (t, _) = inputs();
    let mut group = c.benchmark_group("construction");
    group.bench_function("csr_from_triplets", |b| b.iter(|| CsrMatrix::from_triplets(&t)));
    group.bench_function("overlay_from_triplets", |b| b.iter(|| OverlayMatrix::from_triplets(&t)));
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_dynamic_insert, bench_construction);
criterion_main!(benches);
