//! Criterion benchmarks for the hardware-model substrates: cache
//! lookups (LRU and DRRIP), DRAM scheduling, and TLB operations —
//! the per-access costs that bound overall simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use po_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache};
use po_dram::{DramConfig, DramModel};
use po_tlb::{Tlb, TlbConfig, TlbEntry};
use po_types::{AccessKind, Asid, MainMemAddr, OBitVector, PhysAddr, Ppn, Vpn};
use po_vm::{Pte, PteFlags};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1024));

    group.bench_function("l1_hit_lookup_x1024", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::table2_l1());
        for i in 0..512u64 {
            cache.fill(PhysAddr::new(i * 64), false);
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1024u64 {
                if cache.access(PhysAddr::new((i % 512) * 64), false) {
                    hits += 1;
                }
            }
            hits
        })
    });

    group.bench_function("drrip_fill_churn_x1024", |b| {
        b.iter_batched(
            || SetAssocCache::new(CacheConfig::table2_l3()),
            |mut cache| {
                for i in 0..1024u64 {
                    cache.fill(PhysAddr::new(i * 64 * 2048), i % 3 == 0);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("hierarchy_access_x1024", |b| {
        b.iter_batched(
            || CacheHierarchy::new(HierarchyConfig::table2()),
            |mut h| {
                for i in 0..1024u64 {
                    let a = PhysAddr::new((i % 256) * 64);
                    let out = h.access(a, AccessKind::Read);
                    if matches!(out.result, po_cache::LookupResult::Miss) {
                        h.fill(a, false);
                    }
                }
                h
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    group.throughput(Throughput::Elements(1024));

    group.bench_function("sequential_reads_x1024", |b| {
        b.iter_batched(
            || DramModel::new(DramConfig::table2()),
            |mut dram| {
                let mut t = 0;
                for i in 0..1024u64 {
                    t = dram.read(t, MainMemAddr::new(i * 64));
                }
                (dram, t)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("row_conflict_reads_x1024", |b| {
        b.iter_batched(
            || DramModel::new(DramConfig::table2()),
            |mut dram| {
                let mut t = 0;
                for i in 0..1024u64 {
                    // Same bank, alternating rows: worst case.
                    t = dram.read(t, MainMemAddr::new((i % 2) * 8 * 8192 * 16));
                }
                (dram, t)
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("posted_writes_with_drains_x1024", |b| {
        b.iter_batched(
            || DramModel::new(DramConfig::table2()),
            |mut dram| {
                let mut t = 0;
                for i in 0..1024u64 {
                    t = dram.write(t, MainMemAddr::new(i * 64));
                }
                (dram, t)
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_tlb(c: &mut Criterion) {
    let entry = |vpn: u64| TlbEntry {
        asid: Asid::new(1),
        vpn: Vpn::new(vpn),
        pte: Pte {
            ppn: Ppn::new(vpn + 10),
            flags: PteFlags { present: true, writable: true, ..Default::default() },
        },
        obitvec: OBitVector::EMPTY,
    };
    let mut group = c.benchmark_group("tlb");
    group.throughput(Throughput::Elements(1024));

    group.bench_function("l1_hit_lookup_x1024", |b| {
        let mut tlb = Tlb::new(TlbConfig::table2());
        for v in 0..16u64 {
            tlb.fill(entry(v));
        }
        b.iter(|| {
            let mut hits = 0;
            for i in 0..1024u64 {
                if tlb.lookup(Asid::new(1), Vpn::new(i % 16)).entry.is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });

    group.bench_function("fill_churn_x1024", |b| {
        b.iter_batched(
            || Tlb::new(TlbConfig::table2()),
            |mut tlb| {
                for v in 0..1024u64 {
                    tlb.fill(entry(v * 7));
                }
                tlb
            },
            BatchSize::SmallInput,
        )
    });

    group.bench_function("coherence_obit_update_x1024", |b| {
        let mut tlb = Tlb::new(TlbConfig::table2());
        for v in 0..64u64 {
            tlb.fill(entry(v));
        }
        b.iter(|| {
            for i in 0..1024u64 {
                tlb.coherence_obit_update(Asid::new(1), Vpn::new(i % 64), (i % 64) as usize, true);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_dram, bench_tlb);
criterion_main!(benches);
