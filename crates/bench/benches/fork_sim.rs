//! Criterion benchmark for the simulator itself: how fast the Table 2
//! machine executes trace operations (simulation throughput), and the
//! end-to-end fork experiment at a small scale.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use po_sim::{run_fork_experiment, run_trace, Machine, SystemConfig};
use po_types::Vpn;
use po_workloads::spec_suite;

fn bench_machine_throughput(c: &mut Criterion) {
    let spec = spec_suite().into_iter().find(|s| s.name == "mcf").expect("mcf");
    let ops = spec.generate_post_fork(50_000, 3);
    let instr: u64 = ops.iter().map(|o| o.instructions()).sum();

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(instr));
    group.bench_function("trace_throughput_50k_instr", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(SystemConfig::table2()).unwrap();
                let pid = m.spawn_process().unwrap();
                m.map_range(pid, spec.base_vpn(), spec.mapped_pages(50_000)).unwrap();
                (m, pid)
            },
            |(mut m, pid)| {
                run_trace(&mut m, pid, &ops).unwrap();
                m
            },
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_fork_experiment(c: &mut Criterion) {
    let spec = spec_suite().into_iter().find(|s| s.name == "omnet").expect("omnet");
    let warmup = spec.generate_warmup(20_000, 4);
    let post = spec.generate_post_fork(40_000, 4);
    let mapped = spec.mapped_pages(40_000);

    let mut group = c.benchmark_group("fork_experiment_40k_instr");
    group.sample_size(10);
    group.bench_function("cow", |b| {
        b.iter(|| {
            run_fork_experiment(SystemConfig::table2(), spec.base_vpn(), mapped, &warmup, &post)
                .unwrap()
        })
    });
    group.bench_function("oow", |b| {
        b.iter(|| {
            run_fork_experiment(
                SystemConfig::table2_overlay(),
                spec.base_vpn(),
                mapped,
                &warmup,
                &post,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_machine_build(c: &mut Criterion) {
    c.bench_function("machine/build_table2", |b| {
        b.iter(|| Machine::new(SystemConfig::table2()).unwrap())
    });
    c.bench_function("machine/fork_1000_pages", |b| {
        b.iter_batched(
            || {
                let mut m = Machine::new(SystemConfig::table2_overlay()).unwrap();
                let pid = m.spawn_process().unwrap();
                m.map_range(pid, Vpn::new(0x100), 1000).unwrap();
                (m, pid)
            },
            |(mut m, pid)| {
                m.fork(pid).unwrap();
                m
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_machine_throughput, bench_fork_experiment, bench_machine_build);
criterion_main!(benches);
