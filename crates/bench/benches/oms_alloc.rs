//! Criterion micro-benchmarks for the Overlay Memory Store allocator
//! and the segment-metadata line (Figure 7 encode/decode).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use po_overlay::{OverlayMemoryStore, SegmentClass, SegmentMeta};
use po_types::MainMemAddr;

fn bench_alloc_free(c: &mut Criterion) {
    c.bench_function("oms/alloc_free_256b", |b| {
        b.iter_batched(
            || {
                let mut s = OverlayMemoryStore::new();
                s.add_chunk(MainMemAddr::new(0x10_0000), 64);
                s
            },
            |mut s| {
                let mut segs = Vec::with_capacity(256);
                for _ in 0..256 {
                    segs.push(s.allocate(SegmentClass::B256).unwrap());
                }
                for seg in segs {
                    s.free(seg, SegmentClass::B256).unwrap();
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_split_chain(c: &mut Criterion) {
    // Worst-case allocation: every 256 B request splits a fresh 4 KB
    // page all the way down.
    c.bench_function("oms/split_4k_to_256b", |b| {
        b.iter_batched(
            || {
                let mut s = OverlayMemoryStore::new();
                s.add_chunk(MainMemAddr::new(0x10_0000), 256);
                s
            },
            |mut s| {
                for _ in 0..256 {
                    s.allocate(SegmentClass::B256).unwrap();
                    // Drain the split residue so the next alloc splits again.
                    while s.free_count(SegmentClass::B256) > 0 {
                        s.allocate(SegmentClass::B256).unwrap();
                    }
                    while s.free_count(SegmentClass::B512) > 0 {
                        s.allocate(SegmentClass::B512).unwrap();
                    }
                    while s.free_count(SegmentClass::K1) > 0 {
                        s.allocate(SegmentClass::K1).unwrap();
                    }
                    while s.free_count(SegmentClass::K2) > 0 {
                        s.allocate(SegmentClass::K2).unwrap();
                    }
                }
                s
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_meta_ops(c: &mut Criterion) {
    c.bench_function("segment_meta/alloc_slots", |b| {
        b.iter_batched(
            || SegmentMeta::new(SegmentClass::K2),
            |mut m| {
                for l in 0..31 {
                    m.alloc_slot(l);
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    let mut m = SegmentMeta::new(SegmentClass::K2);
    for l in (0..64).step_by(2) {
        m.alloc_slot(l);
    }
    c.bench_function("segment_meta/encode_decode", |b| {
        b.iter(|| {
            let enc = m.encode();
            SegmentMeta::decode(SegmentClass::K2, &enc)
        })
    });
}

criterion_group!(benches, bench_alloc_free, bench_split_chain, bench_meta_ops);
criterion_main!(benches);
