//! Criterion micro-benchmarks for the overlay framework's hot
//! operations: overlaying writes, overlay reads (cache-resident and
//! OMS-backed), lazy eviction, and the promotion actions.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use po_dram::DataStore;
use po_overlay::{OverlayConfig, OverlayManager};
use po_sim::SystemConfig;
use po_types::{Asid, LineData, MainMemAddr, Opn, Vpn};

fn opn(v: u64) -> Opn {
    Opn::encode(Asid::new(1), Vpn::new(v))
}

fn manager_with_store() -> (OverlayManager, DataStore, u64) {
    let mut mgr = OverlayManager::new(OverlayConfig::default());
    let mem = DataStore::new();
    let mut cursor = 0x10_0000u64;
    mgr.grow_store(&mut |frames| {
        let base = MainMemAddr::new(cursor * 4096);
        cursor += frames;
        Ok(base)
    })
    .expect("grow");
    (mgr, mem, cursor)
}

fn bench_overlaying_write(c: &mut Criterion) {
    c.bench_function("overlay/overlaying_write", |b| {
        b.iter_batched(
            || OverlayManager::new(OverlayConfig::default()),
            |mut mgr| {
                for line in 0..64 {
                    mgr.overlaying_write(opn(1), line, LineData::splat(line as u8)).unwrap();
                }
                mgr
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_read_resident(c: &mut Criterion) {
    let (mut mgr, mem, _) = manager_with_store();
    for line in 0..64 {
        mgr.overlaying_write(opn(1), line, LineData::splat(line as u8)).unwrap();
    }
    c.bench_function("overlay/read_line_resident", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for line in 0..64 {
                acc ^= mgr.read_line(opn(1), line, &mem).unwrap().as_bytes()[0];
            }
            acc
        })
    });
}

fn bench_read_from_oms(c: &mut Criterion) {
    let (mut mgr, mut mem, mut cursor) = manager_with_store();
    for line in 0..64 {
        mgr.overlaying_write(opn(1), line, LineData::splat(line as u8)).unwrap();
        mgr.evict_line(opn(1), line, &mut mem, &mut |frames| {
            let base = MainMemAddr::new(cursor * 4096);
            cursor += frames;
            Ok(base)
        })
        .unwrap();
    }
    c.bench_function("overlay/read_line_from_oms", |b| {
        b.iter(|| {
            let mut acc = 0u8;
            for line in 0..64 {
                acc ^= mgr.read_line(opn(1), line, &mem).unwrap().as_bytes()[0];
            }
            acc
        })
    });
}

fn bench_evict_with_lazy_alloc(c: &mut Criterion) {
    c.bench_function("overlay/evict_line_lazy_alloc", |b| {
        b.iter_batched(
            || {
                let (mut mgr, mem, cursor) = manager_with_store();
                for line in 0..16 {
                    mgr.overlaying_write(opn(1), line, LineData::splat(1)).unwrap();
                }
                (mgr, mem, cursor)
            },
            |(mut mgr, mut mem, mut cursor)| {
                for line in 0..16 {
                    mgr.evict_line(opn(1), line, &mut mem, &mut |frames| {
                        let base = MainMemAddr::new(cursor * 4096);
                        cursor += frames;
                        Ok(base)
                    })
                    .unwrap();
                }
                (mgr, mem)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_commit(c: &mut Criterion) {
    c.bench_function("overlay/copy_and_commit", |b| {
        b.iter_batched(
            || {
                let (mut mgr, mut mem, _) = manager_with_store();
                for line in (0..64).step_by(3) {
                    mgr.overlaying_write(opn(1), line, LineData::splat(9)).unwrap();
                }
                for l in 0..64u64 {
                    mem.write_line(MainMemAddr::new(0x5000_0000 + l * 64), LineData::splat(3));
                }
                (mgr, mem)
            },
            |(mut mgr, mut mem)| {
                mgr.copy_and_commit(
                    opn(1),
                    MainMemAddr::new(0x5000_0000),
                    MainMemAddr::new(0x6000_0000),
                    &mut mem,
                )
                .unwrap();
                (mgr, mem)
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_timed_store_paths(c: &mut Criterion) {
    // Full machine: the cost of a timed overlaying write vs a CoW store.
    c.bench_function("machine/overlaying_write_store", |b| {
        b.iter_batched(
            || {
                let mut m = po_sim::Machine::new(SystemConfig::table2_overlay()).unwrap();
                let pid = m.spawn_process().unwrap();
                m.map_range(pid, Vpn::new(0x100), 1).unwrap();
                let _child = m.fork(pid).unwrap();
                (m, pid)
            },
            |(mut m, pid)| {
                m.access_at(
                    0,
                    pid,
                    po_types::VirtAddr::new(0x100_000),
                    po_types::AccessKind::Write,
                )
                .unwrap();
                m
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("machine/cow_store", |b| {
        b.iter_batched(
            || {
                let mut m = po_sim::Machine::new(SystemConfig::table2()).unwrap();
                let pid = m.spawn_process().unwrap();
                m.map_range(pid, Vpn::new(0x100), 1).unwrap();
                let _child = m.fork(pid).unwrap();
                (m, pid)
            },
            |(mut m, pid)| {
                m.access_at(
                    0,
                    pid,
                    po_types::VirtAddr::new(0x100_000),
                    po_types::AccessKind::Write,
                )
                .unwrap();
                m
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_overlaying_write,
    bench_read_resident,
    bench_read_from_oms,
    bench_evict_with_lazy_alloc,
    bench_commit,
    bench_timed_store_paths,
);
criterion_main!(benches);
