//! The paper's fork/checkpoint experiment (§5.1, Figures 8 & 9).
//!
//! "Our evaluation models a scenario where a process is checkpointed at
//! regular intervals using the fork system call": run a warmup segment,
//! `fork`, then run the parent for a post-fork segment while the child
//! idles. Measured: the additional memory consumed after the fork
//! (Figure 8) and the cycles-per-instruction of the post-fork segment
//! (Figure 9), under copy-on-write vs overlay-on-write.

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::trace::{run_trace, TraceOp};
use po_telemetry::TelemetrySink;
use po_types::{PoResult, Vpn};

/// Result of one fork experiment.
#[derive(Clone, Debug)]
pub struct ForkExperimentResult {
    /// Instructions executed after the fork.
    pub post_instructions: u64,
    /// Cycles consumed after the fork.
    pub post_cycles: u64,
    /// CPI of the post-fork segment (Figure 9's metric).
    pub cpi: f64,
    /// Additional memory consumed after the fork, bytes (Figure 8's
    /// metric).
    pub extra_memory_bytes: u64,
    /// Whole pages copied by CoW faults.
    pub pages_copied: u64,
    /// Overlaying writes performed.
    pub overlaying_writes: u64,
    /// OMT-cache hit rate over the whole run (0 when never accessed,
    /// i.e. in CoW mode).
    pub omt_cache_hit_rate: f64,
    /// Overlay Memory Store bytes in use after the post-fork segment,
    /// captured before the final flush folds overlays back into their
    /// pages (0 in CoW mode).
    pub overlay_bytes: u64,
}

/// Runs the §5.1 scenario: map `mapped_pages` pages at `base_vpn`, run
/// `warmup`, fork, mark the memory epoch, run `post` on the parent
/// (child idles), flush overlay residue, and report.
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_fork_experiment(
    config: SystemConfig,
    base_vpn: Vpn,
    mapped_pages: u64,
    warmup: &[TraceOp],
    post: &[TraceOp],
) -> PoResult<ForkExperimentResult> {
    run_fork_experiment_instrumented(
        config,
        base_vpn,
        mapped_pages,
        warmup,
        post,
        TelemetrySink::noop(),
    )
}

/// [`run_fork_experiment`] with a caller-supplied telemetry sink
/// installed on the machine for the whole run, so the post-fork segment
/// can be decomposed into a per-layer CPI stack and an event journal.
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_fork_experiment_instrumented(
    config: SystemConfig,
    base_vpn: Vpn,
    mapped_pages: u64,
    warmup: &[TraceOp],
    post: &[TraceOp],
    sink: TelemetrySink,
) -> PoResult<ForkExperimentResult> {
    let mut machine = Machine::new(config)?;
    machine.install_telemetry(sink);
    run_fork_experiment_on(&mut machine, base_vpn, mapped_pages, warmup, post)
}

/// The fork experiment against a caller-built [`Machine`] (fresh — the
/// scenario spawns its own process). This is the form the workload
/// runner drives, so the machine outlives the experiment and its final
/// snapshot can be fingerprinted.
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_fork_experiment_on(
    machine: &mut Machine,
    base_vpn: Vpn,
    mapped_pages: u64,
    warmup: &[TraceOp],
    post: &[TraceOp],
) -> PoResult<ForkExperimentResult> {
    let parent = machine.spawn_process()?;
    machine.map_range(parent, base_vpn, mapped_pages)?;

    run_trace(machine, parent, warmup)?;
    let _child = machine.fork(parent)?;
    machine.mark_memory_epoch();

    let stats = run_trace(machine, parent, post)?;
    let overlay_bytes = machine.overlay().store().bytes_in_use();
    machine.flush_overlays()?;

    let total = machine.snapshot();
    Ok(ForkExperimentResult {
        post_instructions: stats.instructions,
        post_cycles: stats.cycles,
        cpi: stats.cpi(),
        extra_memory_bytes: machine.extra_memory_bytes(),
        pages_copied: total.pages_copied.get(),
        overlaying_writes: total.overlaying_writes.get(),
        omt_cache_hit_rate: machine.overlay().omt_cache().stats().hit_rate(),
        overlay_bytes,
    })
}

/// Result of the periodic-checkpoint extension experiment.
#[derive(Clone, Debug)]
pub struct PeriodicCheckpointResult {
    /// Checkpoints (forks) taken.
    pub intervals: u64,
    /// CPI over the whole run.
    pub cpi: f64,
    /// Peak extra memory across intervals, bytes.
    pub peak_extra_memory_bytes: u64,
    /// Pages copied (CoW) over the whole run.
    pub pages_copied: u64,
    /// Overlaying writes over the whole run.
    pub overlaying_writes: u64,
}

/// The full §5.1 motivation — "a process is checkpointed at regular
/// intervals using the fork system call" — run for `intervals` rounds:
/// each round forks a checkpoint child (discarding the previous one),
/// marks the memory epoch, and runs one `interval` trace. The paper
/// measures one interval; this extension shows the steady-state
/// behaviour across many (divergence re-accumulates after every fork).
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_periodic_checkpoint_experiment(
    config: SystemConfig,
    base_vpn: Vpn,
    mapped_pages: u64,
    warmup: &[TraceOp],
    interval: &[TraceOp],
    intervals: u64,
) -> PoResult<PeriodicCheckpointResult> {
    let mut machine = Machine::new(config)?;
    run_periodic_checkpoint_experiment_on(
        &mut machine,
        base_vpn,
        mapped_pages,
        warmup,
        interval,
        intervals,
    )
}

/// The periodic-checkpoint experiment against a caller-built, fresh
/// [`Machine`] — the workload-runner form (see
/// [`run_fork_experiment_on`]).
///
/// # Errors
///
/// Propagates machine faults.
pub fn run_periodic_checkpoint_experiment_on(
    machine: &mut Machine,
    base_vpn: Vpn,
    mapped_pages: u64,
    warmup: &[TraceOp],
    interval: &[TraceOp],
    intervals: u64,
) -> PoResult<PeriodicCheckpointResult> {
    let parent = machine.spawn_process()?;
    machine.map_range(parent, base_vpn, mapped_pages)?;
    run_trace(machine, parent, warmup)?;

    let start = machine.snapshot();
    let mut peak = 0u64;
    for _ in 0..intervals {
        let _checkpoint_child = machine.fork(parent)?;
        machine.mark_memory_epoch();
        run_trace(machine, parent, interval)?;
        machine.flush_overlays()?;
        peak = peak.max(machine.extra_memory_bytes());
    }
    let end = machine.snapshot();
    let instr = end.instructions - start.instructions;
    let cycles = end.cycles - start.cycles;
    Ok(PeriodicCheckpointResult {
        intervals,
        cpi: po_types::stats::ratio(cycles, instr),
        peak_extra_memory_bytes: peak,
        pages_copied: end.pages_copied.get(),
        overlaying_writes: end.overlaying_writes.get(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
    use po_types::VirtAddr;

    /// A tiny hand-built workload: touch `pages` pages, writing
    /// `lines_per_page` lines in each, with compute gaps.
    fn writes(base: u64, pages: u64, lines_per_page: u64, gap: u32) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for p in 0..pages {
            for l in 0..lines_per_page {
                ops.push(TraceOp::Store(VirtAddr::new(
                    (base + p) * PAGE_SIZE as u64 + l * LINE_SIZE as u64,
                )));
                ops.push(TraceOp::Compute(gap));
            }
        }
        ops
    }

    #[test]
    fn sparse_writer_uses_far_less_memory_with_overlays() {
        // Type-3 shape: 8 pages, 2 lines per page.
        let base = 0x200;
        let warmup = writes(base, 8, 1, 10);
        let post = writes(base, 8, 2, 50);
        let cow = run_fork_experiment(SystemConfig::table2(), Vpn::new(base), 16, &warmup, &post)
            .unwrap();
        let oow =
            run_fork_experiment(SystemConfig::table2_overlay(), Vpn::new(base), 16, &warmup, &post)
                .unwrap();
        assert_eq!(cow.pages_copied, 8);
        assert_eq!(oow.pages_copied, 0);
        assert_eq!(oow.overlaying_writes, 16);
        assert!(
            oow.extra_memory_bytes * 4 < cow.extra_memory_bytes,
            "overlay ({}) must be far below CoW ({})",
            oow.extra_memory_bytes,
            cow.extra_memory_bytes
        );
        assert!(
            oow.cpi < cow.cpi,
            "OoW CPI ({:.3}) must beat CoW CPI ({:.3}) for sparse writers",
            oow.cpi,
            cow.cpi
        );
    }

    #[test]
    fn periodic_checkpointing_runs_to_steady_state() {
        let base = 0x400;
        let warmup = writes(base, 2, 1, 10);
        let interval = writes(base, 4, 2, 30);
        for config in [SystemConfig::table2(), SystemConfig::table2_overlay()] {
            let overlay_mode = config.overlay_mode;
            let r = run_periodic_checkpoint_experiment(
                config,
                Vpn::new(base),
                16,
                &warmup,
                &interval,
                5,
            )
            .unwrap();
            assert_eq!(r.intervals, 5);
            assert!(r.cpi > 1.0);
            if overlay_mode {
                assert_eq!(r.pages_copied, 0, "OoW never page-copies in the fault path");
                assert_eq!(r.overlaying_writes, 5 * 8, "8 line divergences per interval");
            } else {
                assert_eq!(r.pages_copied, 5 * 4, "4 dirty pages per interval");
            }
        }
    }

    #[test]
    fn no_writes_means_no_extra_memory() {
        let base = 0x300;
        let mut post = Vec::new();
        for l in 0..32u64 {
            post.push(TraceOp::Load(VirtAddr::new(base * PAGE_SIZE as u64 + l * LINE_SIZE as u64)));
            post.push(TraceOp::Compute(20));
        }
        for config in [SystemConfig::table2(), SystemConfig::table2_overlay()] {
            let r = run_fork_experiment(config, Vpn::new(base), 4, &[], &post).unwrap();
            assert_eq!(r.extra_memory_bytes, 0);
            assert_eq!(r.pages_copied, 0);
        }
    }
}
