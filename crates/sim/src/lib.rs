//! # po-sim — the event-driven timing simulator (Table 2)
//!
//! Ties every substrate together into the system the paper simulates: a
//! 2.67 GHz single-issue out-of-order core with a 64-entry instruction
//! window, the OBitVector-extended TLBs, the three-level cache
//! hierarchy with stream prefetching, and the DDR3-1066 memory system
//! with the overlay-aware memory controller (OMT cache + Overlay Memory
//! Store).
//!
//! Structure:
//!
//! * [`SystemConfig`] — all Table 2 parameters plus the overlay-framework
//!   costs; [`hardware_cost`] reproduces the §4.5 storage accounting
//!   (94.5 KB total).
//! * [`CoreModel`] — the bounded-instruction-window timing model:
//!   instructions issue one per cycle, memory operations occupy window
//!   entries until they complete, a full window stalls issue. This is
//!   what turns per-access latencies into CPI with realistic
//!   memory-level parallelism.
//! * [`Machine`] — the full system: translates, looks up caches, walks
//!   the OMT on overlay misses, schedules DRAM, performs copy-on-write
//!   *or* overlay-on-write on stores to shared pages.
//! * [`Trace`] / [`run_trace`] — trace-driven execution.
//! * [`scenario`] — the paper's fork/checkpoint experiment (§5.1).
//! * [`runner`] — the shared workload runner every bench driver uses:
//!   a [`WorkloadJob`] (config + scenario/trace + fault plan + seed)
//!   executes on its own machine into a [`JobResult`] (outcome +
//!   snapshot fingerprint + private telemetry sink), so jobs can be
//!   farmed out to shard threads with deterministic, order-insensitive
//!   merges.
//!
//! # Example
//!
//! ```
//! use po_sim::{Machine, SystemConfig, TraceOp, run_trace};
//! use po_types::Vpn;
//!
//! let mut m = Machine::new(SystemConfig::table2())?;
//! let pid = m.spawn_process()?;
//! m.map_range(pid, Vpn::new(0x100), 4)?;
//! let trace = vec![
//!     TraceOp::Load(po_types::VirtAddr::new(0x100_000)),
//!     TraceOp::Compute(10),
//!     TraceOp::Store(po_types::VirtAddr::new(0x100_040)),
//! ];
//! let stats = run_trace(&mut m, pid, &trace)?;
//! assert_eq!(stats.instructions, 12);
//! assert!(stats.cycles > 12, "misses cost more than 1 cycle each");
//! # Ok::<(), po_types::PoError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod config;
pub mod core_model;
pub mod machine;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod sim_test;
pub mod spec_mirror;
pub mod stats;
pub mod trace;
pub mod trace_io;

pub use config::{hardware_cost, HardwareCost, SystemConfig};
pub use core_model::CoreModel;
pub use machine::Machine;
pub use oracle::DiffOracle;
pub use po_xlate::{AddressTranslation, BackendKind};
pub use runner::{
    run_job, JobKind, JobOutcome, JobResult, SoakOutcome, TraceJob, TraceOutcome, WorkloadJob,
};
pub use scenario::{
    run_fork_experiment, run_fork_experiment_instrumented, run_fork_experiment_on,
    run_periodic_checkpoint_experiment, run_periodic_checkpoint_experiment_on,
    ForkExperimentResult, PeriodicCheckpointResult,
};
pub use sim_test::{
    generate_mc_ops, generate_ops, generate_soak_ops, run_crash_convergence,
    run_crash_convergence_staged, run_ops, run_ops_traced, shrink_by, shrink_ops,
    shrink_ops_filtered, SimHarness, FAILURE_EVENT_TAIL, MAX_MAP_PAGES, MAX_VPN_SPAN, VPN_BASE,
};
pub use spec_mirror::SpecMirror;
pub use stats::SimStats;
pub use trace::{run_trace, Trace, TraceOp};
pub use trace_io::{read_trace, write_trace, write_trace_with_seed, TraceIoError};
