//! Trace persistence: a simple line-oriented text format so workloads
//! can be captured once and replayed across configurations (and shared
//! between machines without rebuilding the generators).
//!
//! Format, one op per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! !trace-version 2   # optional headers, before the first op,
//! !ops 4             # each at most once
//! !seed 1b2c3d
//! C <n>              # n compute instructions
//! L <hexaddr>        # load
//! S <hexaddr>        # store
//! P                  # spawn a process              (version 2)
//! M <p> <hexvpn> <n> # map n pages at vpn           (version 2)
//! F <p>              # fork                         (version 2)
//! W <p> <hexva> <v>  # poke one byte                (version 2)
//! R <p> <hexva>      # peek one byte                (version 2)
//! K <p> <hexvpn> <line> <v>  # seed overlay line    (version 2)
//! T <p> <hexvpn>     # commit page overlay          (version 2)
//! D <p> <hexvpn>     # discard page overlay         (version 2)
//! U                  # flush dirty overlay lines    (version 2)
//! G                  # reclaim overlay memory       (version 2)
//! O                  # compact the overlay store    (version 2)
//! A <c>              # route timed ops to core c    (version 3)
//! ```
//!
//! Headers are validated strictly: duplicates are rejected, a declared
//! `!ops` count must match the number of ops actually present, a
//! declared `!trace-version 1` trace may not contain version-2 tags
//! (nor version-1/2 traces version-3 tags), and line indices must be in
//! `0..64`. Version-1 traces (no headers, only `C`/`L`/`S`) remain
//! parseable unchanged, and the writer only emits the version a trace
//! actually needs — existing goldens stay byte-stable.

use crate::trace::TraceOp;
use po_types::geometry::{LINES_PER_PAGE, PAGE_SHIFT, VADDR_BITS};
use po_types::VirtAddr;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line (1-based line number + description).
    Parse {
        /// Line number of the problem.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error on trace: {e}"),
            TraceIoError::Parse { line, what } => {
                write!(f, "trace parse error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the text format. Traces containing harness-level
/// ops are written with version-2 headers (including an `!ops` count
/// that [`read_trace`] cross-checks); pure `C`/`L`/`S` traces keep the
/// header-free version-1 shape for compatibility.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace<W: Write>(w: W, ops: &[TraceOp]) -> Result<(), TraceIoError> {
    write_trace_with_seed(w, ops, None)
}

/// [`write_trace`] plus an optional `!seed` header recording the
/// generator seed that produced the trace (reproducibility metadata for
/// fuzzer repros; ignored by the parser beyond validation).
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace_with_seed<W: Write>(
    mut w: W,
    ops: &[TraceOp],
    seed: Option<u64>,
) -> Result<(), TraceIoError> {
    writeln!(w, "# page-overlays trace, {} ops", ops.len())?;
    let version = if ops.iter().any(|op| matches!(op, TraceOp::OnCore { .. })) {
        3
    } else if ops.iter().any(TraceOp::is_harness_op) || seed.is_some() {
        2
    } else {
        1
    };
    if version > 1 {
        writeln!(w, "!trace-version {version}")?;
        writeln!(w, "!ops {}", ops.len())?;
        if let Some(s) = seed {
            writeln!(w, "!seed {s:x}")?;
        }
    }
    for op in ops {
        match op {
            TraceOp::Compute(n) => writeln!(w, "C {n}")?,
            TraceOp::Load(va) => writeln!(w, "L {:x}", va.raw())?,
            TraceOp::Store(va) => writeln!(w, "S {:x}", va.raw())?,
            TraceOp::Spawn => writeln!(w, "P")?,
            TraceOp::Map { proc_sel, start, count } => {
                writeln!(w, "M {proc_sel} {start:x} {count}")?
            }
            TraceOp::Fork { proc_sel } => writeln!(w, "F {proc_sel}")?,
            TraceOp::Poke { proc_sel, va, value } => {
                writeln!(w, "W {proc_sel} {:x} {value}", va.raw())?
            }
            TraceOp::Peek { proc_sel, va } => writeln!(w, "R {proc_sel} {:x}", va.raw())?,
            TraceOp::SeedLine { proc_sel, vpn, line, value } => {
                writeln!(w, "K {proc_sel} {vpn:x} {line} {value}")?
            }
            TraceOp::CommitPage { proc_sel, vpn } => writeln!(w, "T {proc_sel} {vpn:x}")?,
            TraceOp::DiscardPage { proc_sel, vpn } => writeln!(w, "D {proc_sel} {vpn:x}")?,
            TraceOp::Flush => writeln!(w, "U")?,
            TraceOp::Reclaim => writeln!(w, "G")?,
            TraceOp::Compact => writeln!(w, "O")?,
            TraceOp::OnCore { core_sel } => writeln!(w, "A {core_sel}")?,
        }
    }
    Ok(())
}

fn parse_err(line: usize, what: impl Into<String>) -> TraceIoError {
    TraceIoError::Parse { line, what: what.into() }
}

/// Header state accumulated while parsing.
#[derive(Default)]
struct Headers {
    version: Option<u32>,
    ops: Option<usize>,
    seed: Option<u64>,
}

impl Headers {
    fn apply(&mut self, lineno: usize, key: &str, value: &str) -> Result<(), TraceIoError> {
        match key {
            "trace-version" => {
                if self.version.is_some() {
                    return Err(parse_err(lineno, "duplicate !trace-version header"));
                }
                let v: u32 = value
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad trace version {value}")))?;
                if !(1..=3).contains(&v) {
                    return Err(parse_err(lineno, format!("unsupported trace version {v}")));
                }
                self.version = Some(v);
            }
            "ops" => {
                if self.ops.is_some() {
                    return Err(parse_err(lineno, "duplicate !ops header"));
                }
                self.ops = Some(
                    value
                        .parse()
                        .map_err(|_| parse_err(lineno, format!("bad op count {value}")))?,
                );
            }
            "seed" => {
                if self.seed.is_some() {
                    return Err(parse_err(lineno, "duplicate !seed header"));
                }
                self.seed = Some(
                    u64::from_str_radix(value, 16)
                        .map_err(|_| parse_err(lineno, format!("bad hex seed {value}")))?,
                );
            }
            other => return Err(parse_err(lineno, format!("unknown header !{other}"))),
        }
        Ok(())
    }
}

fn parse_u64_hex(lineno: usize, what: &str, s: &str) -> Result<u64, TraceIoError> {
    u64::from_str_radix(s, 16).map_err(|_| parse_err(lineno, format!("bad hex {what} {s}")))
}

/// Parses a virtual address and rejects anything outside the
/// architecture's [`VADDR_BITS`]-bit virtual space — such an op could
/// never correspond to a real access and would silently alias under the
/// harness's clamping.
fn parse_va(lineno: usize, s: &str) -> Result<VirtAddr, TraceIoError> {
    let raw = parse_u64_hex(lineno, "address", s)?;
    if raw >> VADDR_BITS != 0 {
        return Err(parse_err(
            lineno,
            format!("address {raw:#x} outside the {VADDR_BITS}-bit virtual space"),
        ));
    }
    Ok(VirtAddr::new(raw))
}

/// Parses a virtual page number, rejecting values outside the
/// `VADDR_BITS - PAGE_SHIFT`-bit VPN space.
fn parse_vpn(lineno: usize, s: &str) -> Result<u64, TraceIoError> {
    let vpn = parse_u64_hex(lineno, "vpn", s)?;
    if vpn >> (VADDR_BITS - PAGE_SHIFT) != 0 {
        return Err(parse_err(
            lineno,
            format!("vpn {vpn:#x} outside the {}-bit vpn space", VADDR_BITS - PAGE_SHIFT),
        ));
    }
    Ok(vpn)
}

fn parse_dec<T: std::str::FromStr>(lineno: usize, what: &str, s: &str) -> Result<T, TraceIoError> {
    s.parse().map_err(|_| parse_err(lineno, format!("bad {what} {s}")))
}

/// Reads a trace in the text format, validating headers and per-op
/// field ranges.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failures, malformed lines,
/// duplicate or contradictory headers (an `!ops` count that disagrees
/// with the trace body, version-2 tags in a declared version-1 trace),
/// or out-of-range line indices.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TraceOp>, TraceIoError> {
    let mut ops = Vec::new();
    let mut headers = Headers::default();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if let Some(header) = t.strip_prefix('!') {
            if !ops.is_empty() {
                return Err(parse_err(lineno, "header after the first op"));
            }
            let (key, value) = header.split_once(' ').unwrap_or((header, ""));
            headers.apply(lineno, key, value.trim())?;
            continue;
        }
        let mut fields = t.split_whitespace();
        // Statically infallible: t is non-empty after the trim checks.
        let tag = fields.next().unwrap_or("");
        let mut field =
            |what: &str| fields.next().ok_or_else(|| parse_err(lineno, format!("missing {what}")));
        let op = match tag {
            "C" => TraceOp::Compute(parse_dec(lineno, "compute count", field("compute count")?)?),
            "L" => TraceOp::Load(parse_va(lineno, field("address")?)?),
            "S" => TraceOp::Store(parse_va(lineno, field("address")?)?),
            "P" => TraceOp::Spawn,
            "M" => TraceOp::Map {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
                start: parse_vpn(lineno, field("vpn")?)?,
                count: parse_dec(lineno, "page count", field("page count")?)?,
            },
            "F" => TraceOp::Fork {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
            },
            "W" => TraceOp::Poke {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
                va: parse_va(lineno, field("address")?)?,
                value: parse_dec(lineno, "byte value", field("byte value")?)?,
            },
            "R" => TraceOp::Peek {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
                va: parse_va(lineno, field("address")?)?,
            },
            "K" => {
                let proc_sel = parse_dec(lineno, "process selector", field("process selector")?)?;
                let vpn = parse_vpn(lineno, field("vpn")?)?;
                let line_idx: u8 = parse_dec(lineno, "line index", field("line index")?)?;
                if line_idx as usize >= LINES_PER_PAGE {
                    return Err(parse_err(
                        lineno,
                        format!("line index {line_idx} out of range (a page has 64 lines)"),
                    ));
                }
                let value = parse_dec(lineno, "byte value", field("byte value")?)?;
                TraceOp::SeedLine { proc_sel, vpn, line: line_idx, value }
            }
            "T" => TraceOp::CommitPage {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
                vpn: parse_vpn(lineno, field("vpn")?)?,
            },
            "D" => TraceOp::DiscardPage {
                proc_sel: parse_dec(lineno, "process selector", field("process selector")?)?,
                vpn: parse_vpn(lineno, field("vpn")?)?,
            },
            "U" => TraceOp::Flush,
            "G" => TraceOp::Reclaim,
            "O" => TraceOp::Compact,
            "A" => TraceOp::OnCore {
                core_sel: parse_dec(lineno, "core selector", field("core selector")?)?,
            },
            other => return Err(parse_err(lineno, format!("unknown op tag {other}"))),
        };
        if fields.next().is_some() {
            return Err(parse_err(lineno, format!("trailing fields after {tag} op")));
        }
        if headers.version.is_some_and(|v| v < 3) && matches!(op, TraceOp::OnCore { .. }) {
            return Err(parse_err(
                lineno,
                format!("op tag {tag} requires trace version 3, but an older one was declared"),
            ));
        }
        if headers.version == Some(1) && op.is_harness_op() {
            return Err(parse_err(
                lineno,
                format!("op tag {tag} requires trace version 2, but version 1 was declared"),
            ));
        }
        ops.push(op);
    }
    if let Some(declared) = headers.ops {
        if declared != ops.len() {
            return Err(parse_err(
                0,
                format!("!ops header declared {declared} ops but the trace has {}", ops.len()),
            ));
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ops = vec![
            TraceOp::Compute(17),
            TraceOp::Load(VirtAddr::new(0xdead_b000)),
            TraceOp::Store(VirtAddr::new(0x40)),
            TraceOp::Compute(1),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# hello\n\nC 5\n  \nL ff\n";
        let ops = read_trace(text.as_bytes()).unwrap();
        assert_eq!(ops, vec![TraceOp::Compute(5), TraceOp::Load(VirtAddr::new(0xff))]);
    }

    #[test]
    fn errors_locate_the_line() {
        let text = "C 5\nX 1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let text2 = "L zz\n";
        let err2 = read_trace(text2.as_bytes()).unwrap_err();
        assert!(err2.to_string().contains("bad hex address"), "{err2}");
    }

    #[test]
    fn generated_workload_roundtrips() {
        // End-to-end: a real generator trace survives save/load.
        // (Uses a tiny budget to stay fast.)
        let ops: Vec<TraceOp> = (0..100u64)
            .map(|i| {
                if i % 3 == 0 {
                    TraceOp::Compute((i % 7) as u32 + 1)
                } else if i % 3 == 1 {
                    TraceOp::Load(VirtAddr::new(i * 4096))
                } else {
                    TraceOp::Store(VirtAddr::new(i * 64))
                }
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), ops);
    }

    /// One op of every variant, with awkward values.
    fn all_variants() -> Vec<TraceOp> {
        vec![
            TraceOp::Compute(0),
            TraceOp::Compute(u32::MAX),
            TraceOp::Load(VirtAddr::new(0)),
            // The largest valid virtual address (the parser rejects
            // anything past VADDR_BITS).
            TraceOp::Store(VirtAddr::new((1 << VADDR_BITS) - 1)),
            TraceOp::Spawn,
            TraceOp::Map { proc_sel: u32::MAX, start: 0x100, count: 7 },
            TraceOp::Fork { proc_sel: 0 },
            TraceOp::Poke { proc_sel: 3, va: VirtAddr::new(0x1234_5678), value: 255 },
            TraceOp::Peek { proc_sel: 9, va: VirtAddr::new(0xabc) },
            TraceOp::SeedLine { proc_sel: 1, vpn: 0x42, line: 63, value: 0 },
            TraceOp::CommitPage { proc_sel: 2, vpn: 0x101 },
            TraceOp::DiscardPage { proc_sel: 4, vpn: 0x102 },
            TraceOp::Flush,
            TraceOp::Reclaim,
            TraceOp::Compact,
            TraceOp::OnCore { core_sel: u32::MAX },
        ]
    }

    #[test]
    fn core_affinity_bumps_version_to_3() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[TraceOp::OnCore { core_sel: 2 }, TraceOp::Compute(1)]).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("!trace-version 3"), "{text}");
        assert_eq!(
            read_trace(buf.as_slice()).unwrap(),
            vec![TraceOp::OnCore { core_sel: 2 }, TraceOp::Compute(1)]
        );
        // Traces without the op keep their old version (byte-stable
        // goldens): harness ops → 2, pure timed ops → 1 (no headers).
        let mut v2 = Vec::new();
        write_trace(&mut v2, &[TraceOp::Spawn]).unwrap();
        assert!(String::from_utf8(v2).unwrap().contains("!trace-version 2"));
        let mut v1 = Vec::new();
        write_trace(&mut v1, &[TraceOp::Compute(1)]).unwrap();
        assert!(!String::from_utf8(v1).unwrap().contains("!trace-version"));
    }

    #[test]
    fn core_affinity_rejected_under_old_versions() {
        for bad in ["!trace-version 1\nA 0\n", "!trace-version 2\nA 1\n"] {
            let err = read_trace(bad.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("requires trace version 3"), "{bad:?} → {err}");
        }
        assert!(read_trace("!trace-version 3\nA 1\n".as_bytes()).is_ok());
    }

    #[test]
    fn every_variant_roundtrips() {
        let ops = all_variants();
        let mut buf = Vec::new();
        write_trace_with_seed(&mut buf, &ops, Some(0xdead_beef)).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.contains("!trace-version 3"), "{text}");
        assert!(text.contains("!seed deadbeef"), "{text}");
        assert_eq!(read_trace(buf.as_slice()).unwrap(), ops);
    }

    #[test]
    fn duplicate_headers_rejected() {
        for dup in [
            "!trace-version 2\n!trace-version 2\nP\n",
            "!ops 1\n!ops 1\nP\n",
            "!seed 1\n!seed 1\nP\n",
        ] {
            let err = read_trace(dup.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("duplicate"), "{dup:?} → {err}");
        }
    }

    #[test]
    fn contradictory_headers_rejected() {
        // Declared op count disagrees with the body.
        let err = read_trace("!ops 3\nP\nU\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 3 ops"), "{err}");
        // Version-2 tags under a declared version-1 trace.
        let err = read_trace("!trace-version 1\nP\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("requires trace version 2"), "{err}");
        // Headers may not follow ops.
        let err = read_trace("C 1\n!ops 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("header after the first op"), "{err}");
        // Unknown headers are rejected, not skipped.
        let err = read_trace("!frobnicate on\nC 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown header"), "{err}");
    }

    #[test]
    fn out_of_range_line_index_rejected() {
        let err = read_trace("K 0 100 64 7\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line index 64 out of range"), "{err}");
        assert!(read_trace("K 0 100 63 7\n".as_bytes()).is_ok());
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        // Virtual addresses past the 48-bit space: every op carrying one.
        for bad in [
            "L 1000000000000\n",
            "S ffffffffffffffff\n",
            "W 0 1000000000000 1\n",
            "R 0 1000000000000\n",
        ] {
            let err = read_trace(bad.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("virtual space"), "{bad:?} → {err}");
        }
        // The boundary itself is fine.
        assert!(read_trace("L ffffffffffff\n".as_bytes()).is_ok());

        // VPNs past the 36-bit space: every op carrying one.
        for bad in
            ["M 0 1000000000 1\n", "K 0 1000000000 0 1\n", "T 0 1000000000\n", "D 0 1000000000\n"]
        {
            let err = read_trace(bad.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("vpn space"), "{bad:?} → {err}");
        }
        assert!(read_trace("M 0 fffffffff 1\n".as_bytes()).is_ok());
    }

    #[test]
    fn edge_traces_the_verifier_exposes_are_handled() {
        use crate::sim_test::SimHarness;
        use crate::SystemConfig;

        // Spawning past the 15-bit ASID space would re-register an
        // existing ASID; the OS refuses rather than aliasing a process.
        let mut os = po_vm::OsModel::new(po_vm::VmConfig::default());
        for _ in 0..po_types::Asid::MAX {
            os.spawn().unwrap();
        }
        assert!(
            matches!(os.spawn(), Err(po_types::PoError::OutOfMemory)),
            "duplicate ASID registration must be rejected"
        );

        // An op on a vpage that is never mapped: the machine rejects the
        // access (the harness records the skip, the verifier proves it).
        let mut h = SimHarness::new(SystemConfig::table2_overlay()).unwrap();
        h.apply(&TraceOp::Spawn).unwrap();
        assert!(h.machine.peek(h.procs[0], VirtAddr::new(0x999_000)).is_err());
        h.apply(&TraceOp::Peek { proc_sel: 0, va: VirtAddr::new(0x999_000) }).unwrap();

        // An out-of-range overlay line index can only come from a
        // hand-edited trace; the parser is the rejection point.
        assert!(read_trace("!trace-version 2\nP\nK 0 100 255 1\n".as_bytes()).is_err());
    }

    #[test]
    fn trailing_fields_rejected() {
        let err = read_trace("C 5 6\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing fields"), "{err}");
        let err = read_trace("P 1\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing fields"), "{err}");
    }

    #[test]
    fn missing_fields_rejected() {
        for bad in ["M 0 100\n", "W 0 ff\n", "K 0 100 5\n", "F\n"] {
            let err = read_trace(bad.as_bytes()).unwrap_err();
            assert!(err.to_string().contains("missing"), "{bad:?} → {err}");
        }
    }
}
