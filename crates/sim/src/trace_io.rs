//! Trace persistence: a simple line-oriented text format so workloads
//! can be captured once and replayed across configurations (and shared
//! between machines without rebuilding the generators).
//!
//! Format, one op per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! C <n>        # n compute instructions
//! L <hexaddr>  # load
//! S <hexaddr>  # store
//! ```

use crate::trace::TraceOp;
use po_types::VirtAddr;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from trace parsing.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed line (1-based line number + description).
    Parse {
        /// Line number of the problem.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "i/o error on trace: {e}"),
            TraceIoError::Parse { line, what } => {
                write!(f, "trace parse error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the text format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_trace<W: Write>(mut w: W, ops: &[TraceOp]) -> Result<(), TraceIoError> {
    writeln!(w, "# page-overlays trace, {} ops", ops.len())?;
    for op in ops {
        match op {
            TraceOp::Compute(n) => writeln!(w, "C {n}")?,
            TraceOp::Load(va) => writeln!(w, "L {:x}", va.raw())?,
            TraceOp::Store(va) => writeln!(w, "S {:x}", va.raw())?,
        }
    }
    Ok(())
}

/// Reads a trace in the text format.
///
/// # Errors
///
/// Returns [`TraceIoError`] on I/O failures or malformed lines.
pub fn read_trace<R: BufRead>(r: R) -> Result<Vec<TraceOp>, TraceIoError> {
    let mut ops = Vec::new();
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let (tag, rest) = t.split_at(1);
        let arg = rest.trim();
        let op = match tag {
            "C" => TraceOp::Compute(arg.parse::<u32>().map_err(|_| TraceIoError::Parse {
                line: lineno,
                what: format!("bad compute count {arg}"),
            })?),
            "L" | "S" => {
                let addr = u64::from_str_radix(arg, 16).map_err(|_| TraceIoError::Parse {
                    line: lineno,
                    what: format!("bad hex address {arg}"),
                })?;
                if tag == "L" {
                    TraceOp::Load(VirtAddr::new(addr))
                } else {
                    TraceOp::Store(VirtAddr::new(addr))
                }
            }
            other => {
                return Err(TraceIoError::Parse {
                    line: lineno,
                    what: format!("unknown op tag {other}"),
                })
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let ops = vec![
            TraceOp::Compute(17),
            TraceOp::Load(VirtAddr::new(0xdead_b000)),
            TraceOp::Store(VirtAddr::new(0x40)),
            TraceOp::Compute(1),
        ];
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, ops);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# hello\n\nC 5\n  \nL ff\n";
        let ops = read_trace(text.as_bytes()).unwrap();
        assert_eq!(ops, vec![TraceOp::Compute(5), TraceOp::Load(VirtAddr::new(0xff))]);
    }

    #[test]
    fn errors_locate_the_line() {
        let text = "C 5\nX 1\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let text2 = "L zz\n";
        let err2 = read_trace(text2.as_bytes()).unwrap_err();
        assert!(err2.to_string().contains("bad hex address"), "{err2}");
    }

    #[test]
    fn generated_workload_roundtrips() {
        // End-to-end: a real generator trace survives save/load.
        // (Uses a tiny budget to stay fast.)
        let ops: Vec<TraceOp> = (0..100u64)
            .map(|i| {
                if i % 3 == 0 {
                    TraceOp::Compute((i % 7) as u32 + 1)
                } else if i % 3 == 1 {
                    TraceOp::Load(VirtAddr::new(i * 4096))
                } else {
                    TraceOp::Store(VirtAddr::new(i * 64))
                }
            })
            .collect();
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops).unwrap();
        assert_eq!(read_trace(buf.as_slice()).unwrap(), ops);
    }
}
