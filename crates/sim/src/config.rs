//! System configuration (Table 2) and the §4.5 hardware-cost model.

use po_cache::HierarchyConfig;
use po_dram::DramConfig;
use po_overlay::OverlayConfig;
use po_tlb::TlbConfig;
use po_vm::VmConfig;
use po_xlate::BackendKind;

/// Full system configuration. Defaults reproduce Table 2 of the paper.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Cache hierarchy (64 KB / 512 KB / 2 MB, LRU/LRU/DRRIP, stream
    /// prefetcher).
    pub hierarchy: HierarchyConfig,
    /// TLBs (64-entry L1, 1024-entry L2, 1000-cycle miss).
    pub tlb: TlbConfig,
    /// DDR3-1066 memory system.
    pub dram: DramConfig,
    /// Overlay framework (64-entry OMT cache, 1000-cycle OMT walk).
    pub overlay: OverlayConfig,
    /// Physical memory size.
    pub vm: VmConfig,
    /// Out-of-order instruction window (Table 2: 64 entries).
    pub window_entries: usize,
    /// Number of cores (each with private TLBs; caches and memory are
    /// shared). The paper's simulator is multi-core; the evaluation runs
    /// single-threaded workloads, so the default is 1. Extra cores
    /// exercise the §4.3.3 cross-TLB coherence in the timed path.
    pub cores: usize,
    /// Trap + OS fault-handler + page-allocation overhead of a
    /// copy-on-write fault, cycles (a few microseconds at 2.67 GHz,
    /// consistent with measured Linux CoW fault costs [41, 43]).
    pub cow_fault_overhead: u64,
    /// Cost of a TLB shootdown for the CoW remap, cycles (the paper
    /// cites shootdowns as a major CoW cost [6, 40, 52, 54]).
    pub tlb_shootdown_latency: u64,
    /// Cost of the overlaying-read-exclusive coherence round (§4.3.3),
    /// cycles. Small: it rides the existing coherence network.
    pub coherence_update_latency: u64,
    /// Banks in the shared-L3 queueing model. Only exercised with more
    /// than one core: concurrent accesses mapping to the same bank
    /// serialize on its port (the `Layer::Contention` CPI slice).
    pub l3_banks: usize,
    /// Cycles one access occupies an L3 bank (tag + data port).
    pub l3_bank_occupancy: u64,
    /// Channel cycles one 64 B line transfer consumes in the multi-core
    /// DRAM-bandwidth token bucket (DDR3-1066, 8 B bus, burst 8 → 4
    /// bus clocks per line). Only exercised with more than one core.
    pub dram_bandwidth_cycles_per_line: u64,
    /// Which [`AddressTranslation`](po_xlate::AddressTranslation)
    /// backend the machine translates through. The overlay backend is
    /// the paper's design; rivals run the same workloads for
    /// comparison (`--backend` on the bench bins).
    pub backend: BackendKind,
    /// `true` = stores to shared pages use overlay-on-write;
    /// `false` = classic copy-on-write.
    pub overlay_mode: bool,
    /// Promote an overlay to a full page once this many lines are in it
    /// (§4.3.4); 64 = only when the whole page has diverged.
    pub promote_threshold: usize,
    /// Enable live OMS compaction (§4.4.2) as the middle rung of the
    /// memory-pressure ladder (reclaim → compact → grow). Disabling it
    /// models the paper's compaction-free allocator, whose free lists
    /// fragment irreversibly under segment-class churn.
    pub oms_compaction: bool,
}

impl SystemConfig {
    /// The Table 2 system with copy-on-write semantics (the baseline).
    pub fn table2() -> Self {
        Self {
            hierarchy: HierarchyConfig::table2(),
            tlb: TlbConfig::table2(),
            dram: DramConfig::table2(),
            overlay: OverlayConfig::default(),
            vm: VmConfig::default(),
            window_entries: 64,
            cores: 1,
            cow_fault_overhead: 5000,
            tlb_shootdown_latency: 5000,
            coherence_update_latency: 30,
            l3_banks: 8,
            l3_bank_occupancy: 4,
            dram_bandwidth_cycles_per_line: 4,
            backend: BackendKind::Overlay,
            overlay_mode: false,
            promote_threshold: 64,
            oms_compaction: true,
        }
    }

    /// The Table 2 system with overlay-on-write enabled.
    pub fn table2_overlay() -> Self {
        Self { overlay_mode: true, ..Self::table2() }
    }

    /// Whether overlay semantics are in effect: overlay mode is on
    /// *and* the selected backend implements overlays. A backend
    /// without them (e.g. `seg`) degrades every divergence to classic
    /// page-granular copy-on-write, whatever `overlay_mode` says.
    pub fn overlay_semantics(&self) -> bool {
        self.overlay_mode && self.backend.supports_overlays()
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::table2()
    }
}

/// Hardware storage cost of the framework (§4.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareCost {
    /// OMT cache: 64 entries × 512 bits.
    pub omt_cache_bytes: usize,
    /// TLB extension: OBitVector (64 bits) per L1+L2 TLB entry.
    pub tlb_extension_bytes: usize,
    /// Cache-tag extension: 16 extra tag bits per line across L1/L2/L3.
    pub tag_extension_bytes: usize,
}

impl HardwareCost {
    /// Total bytes of extra storage.
    pub fn total_bytes(&self) -> usize {
        self.omt_cache_bytes + self.tlb_extension_bytes + self.tag_extension_bytes
    }
}

/// Computes the §4.5 hardware cost for a configuration.
///
/// For Table 2 this reproduces the paper's numbers: 4 KB OMT cache,
/// 8.5 KB of TLB extensions, 82 KB of tag extensions — 94.5 KB total.
pub fn hardware_cost(config: &SystemConfig) -> HardwareCost {
    // Each OMT cache entry: OPN (48) + OMS address (48) + OBitVector (64)
    // + 64 slot pointers (320) + free vector (32) = 512 bits.
    let omt_cache_bytes = config.overlay.omt_cache_entries * 512 / 8;
    // 64 bits per TLB entry.
    let tlb_entries = config.tlb.l1_entries + config.tlb.l2_entries;
    let tlb_extension_bytes = tlb_entries * 64 / 8;
    // 16 extra tag bits per cache line.
    let lines = (config.hierarchy.l1.capacity_bytes
        + config.hierarchy.l2.capacity_bytes
        + config.hierarchy.l3.capacity_bytes)
        / po_types::geometry::LINE_SIZE;
    let tag_extension_bytes = lines * 16 / 8;
    HardwareCost { omt_cache_bytes, tlb_extension_bytes, tag_extension_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_cost_matches_section_4_5() {
        let cost = hardware_cost(&SystemConfig::table2());
        assert_eq!(cost.omt_cache_bytes, 4 * 1024); // "4KB"
        assert_eq!(cost.tlb_extension_bytes, 8704); // "8.5KB"
        assert_eq!(cost.tag_extension_bytes, 82 * 1024); // "82KB"
                                                         // "the overall hardware storage cost is 94.5KB"
        assert_eq!(cost.total_bytes(), 96768);
        assert!((cost.total_bytes() as f64 / 1024.0 - 94.5).abs() < 0.01);
    }

    #[test]
    fn overlay_variant_differs_only_in_mode() {
        let a = SystemConfig::table2();
        let b = SystemConfig::table2_overlay();
        assert!(!a.overlay_mode);
        assert!(b.overlay_mode);
        assert_eq!(a.window_entries, b.window_entries);
    }
}
