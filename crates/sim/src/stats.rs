//! Simulation statistics.

use po_types::Counter;

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Demand loads.
    pub loads: Counter,
    /// Demand stores.
    pub stores: Counter,
    /// Copy-on-write faults taken (CoW mode).
    pub cow_faults: Counter,
    /// Full pages copied by CoW.
    pub pages_copied: Counter,
    /// Overlaying writes performed (OoW mode).
    pub overlaying_writes: Counter,
    /// Overlay promotions to full pages.
    pub promotions: Counter,
    /// Bytes of demand + copy traffic moved over the memory bus.
    pub bus_bytes: u64,
    /// Extra physical memory allocated since the measurement epoch
    /// (regular frames + overlay store), in bytes — the Figure 8 metric.
    pub extra_memory_bytes: u64,
}

impl SimStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        po_types::stats::ratio(self.cycles, self.instructions)
    }
}
