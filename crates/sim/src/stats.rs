//! Simulation statistics.

use po_types::Counter;

/// Aggregate statistics of a simulation run.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Instructions executed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Demand loads.
    pub loads: Counter,
    /// Demand stores.
    pub stores: Counter,
    /// Copy-on-write faults taken (CoW mode).
    pub cow_faults: Counter,
    /// Full pages copied by CoW.
    pub pages_copied: Counter,
    /// Overlaying writes performed (OoW mode).
    pub overlaying_writes: Counter,
    /// Overlay promotions to full pages.
    pub promotions: Counter,
    /// OMS compaction passes run by the pressure ladder (§4.4.2).
    pub compactions: Counter,
    /// Overlaying-read-exclusive coherence requests issued (§4.3.3,
    /// multi-core only).
    pub coherence_read_exclusive: Counter,
    /// Single-line OBitVector update messages delivered to *remote*
    /// cores' TLB copies over the coherence network (§4.3.3).
    pub coherence_obit_msgs: Counter,
    /// Remote-core TLB entries invalidated by cross-core promotions,
    /// commits, discards, and CoW remaps.
    pub coherence_invalidations: Counter,
    /// Cycles timed accesses stalled on coherence delivery to remote
    /// cores (multi-core only).
    pub coherence_stall_cycles: Counter,
    /// Cycles timed accesses stalled on shared-resource contention
    /// (L3 bank queue + DRAM bandwidth; multi-core only).
    pub contention_stall_cycles: Counter,
    /// Bytes of demand + copy traffic moved over the memory bus.
    pub bus_bytes: u64,
    /// Extra physical memory allocated since the measurement epoch
    /// (regular frames + overlay store), in bytes — the Figure 8 metric.
    pub extra_memory_bytes: u64,
}

impl SimStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        po_types::stats::ratio(self.cycles, self.instructions)
    }

    /// Serializes every field in declaration order.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        w.put_u64(self.instructions);
        w.put_u64(self.cycles);
        for c in [
            &self.loads,
            &self.stores,
            &self.cow_faults,
            &self.pages_copied,
            &self.overlaying_writes,
            &self.promotions,
            &self.compactions,
            &self.coherence_read_exclusive,
            &self.coherence_obit_msgs,
            &self.coherence_invalidations,
            &self.coherence_stall_cycles,
            &self.contention_stall_cycles,
        ] {
            w.put_u64(c.get());
        }
        w.put_u64(self.bus_bytes);
        w.put_u64(self.extra_memory_bytes);
    }

    /// Rebuilds statistics from [`SimStats::encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation.
    pub fn decode_snapshot(r: &mut po_types::SnapshotReader) -> po_types::PoResult<Self> {
        let mut s = Self { instructions: r.get_u64()?, cycles: r.get_u64()?, ..Self::default() };
        for c in [
            &mut s.loads,
            &mut s.stores,
            &mut s.cow_faults,
            &mut s.pages_copied,
            &mut s.overlaying_writes,
            &mut s.promotions,
            &mut s.compactions,
            &mut s.coherence_read_exclusive,
            &mut s.coherence_obit_msgs,
            &mut s.coherence_invalidations,
            &mut s.coherence_stall_cycles,
            &mut s.contention_stall_cycles,
        ] {
            c.add(r.get_u64()?);
        }
        s.bus_bytes = r.get_u64()?;
        s.extra_memory_bytes = r.get_u64()?;
        Ok(s)
    }
}
