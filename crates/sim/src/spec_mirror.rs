//! The refinement oracle: po-spec stepped in lockstep with the
//! [`Machine`] (DESIGN.md §13).
//!
//! [`SpecMirror`] owns a [`SpecState`] plus the `pid ↔ Asid` mapping,
//! and exposes:
//!
//! * per-op stepping hooks the harness calls exactly where it does its
//!   byte-oracle bookkeeping (`on_spawn`, `on_map`, `on_write`, …);
//! * [`SpecMirror::reconcile`] — the observation-guided sweep mirroring
//!   the machine's autonomous commits (promotions and pressure
//!   collapses happen deep inside the timed path, invisible to the op
//!   stream; an overlay the machine no longer has is force-committed in
//!   the spec);
//! * [`SpecMirror::check_refinement`] — the abstraction function α over
//!   the machine (page tables, flags, OBitVectors, sharing partition,
//!   OMS bytes) compared field-by-field against the spec after every
//!   transition;
//! * [`SpecMirror::check_interior`] — after an interior crash, α of the
//!   half-finished machine must be a state
//!   [`SpecState::admits_interior`] accepts.
//!
//! The mirror lives entirely outside the timed path: it steps on
//! functional outcomes only and never feeds back into the machine, so
//! timing baselines are unaffected.

use crate::config::SystemConfig;
use crate::machine::Machine;
use po_spec::{SpecOp, SpecOutcome, SpecPage, SpecParams, SpecState, MAX_SEGMENT_BYTES};
use po_types::{Asid, Opn, VirtAddr, Vpn};

/// The spec half of the lockstep pair. Cheap to clone (snapshotted by
/// the crash-convergence runner alongside the byte oracle).
#[derive(Clone, Debug)]
pub struct SpecMirror {
    spec: SpecState,
    /// `asids[pid]` is the machine process the spec's `pid` mirrors.
    asids: Vec<Asid>,
}

impl SpecMirror {
    /// A mirror for a machine built from `config`, with no processes.
    pub fn new(config: &SystemConfig) -> Self {
        let params = SpecParams {
            overlay_mode: config.overlay_semantics(),
            promote_threshold: config.promote_threshold,
            min_seg_bytes: config.overlay.min_segment_class.bytes() as u64,
        };
        Self { spec: SpecState::new(params), asids: Vec::new() }
    }

    /// The current abstract state.
    pub fn state(&self) -> &SpecState {
        &self.spec
    }

    /// The spec process index mirroring `asid`.
    pub fn pid_of(&self, asid: Asid) -> Option<usize> {
        self.asids.iter().position(|&a| a == asid)
    }

    fn pid(&self, asid: Asid) -> Result<usize, String> {
        self.pid_of(asid)
            .ok_or_else(|| format!("asid {} is unknown to the spec mirror", asid.raw()))
    }

    /// A process was spawned.
    pub fn on_spawn(&mut self, asid: Asid) {
        self.spec.step(SpecOp::Spawn);
        self.asids.push(asid);
    }

    /// One page was mapped.
    ///
    /// # Errors
    ///
    /// The spec considers the map illegal — a refinement finding.
    pub fn on_map(&mut self, asid: Asid, vpn: Vpn) -> Result<(), String> {
        let pid = self.pid(asid)?;
        match self.spec.step(SpecOp::Map { pid, vpn: vpn.raw() }) {
            SpecOutcome::Illegal(why) => Err(format!("spec rejects map of {vpn:?}: {why}")),
            _ => Ok(()),
        }
    }

    /// `parent` forked into `child`.
    ///
    /// # Errors
    ///
    /// The spec considers the fork illegal — a refinement finding.
    pub fn on_fork(&mut self, parent: Asid, child: Asid) -> Result<(), String> {
        let pid = self.pid(parent)?;
        match self.spec.step(SpecOp::Fork { parent: pid }) {
            SpecOutcome::Illegal(why) => {
                Err(format!("spec rejects fork of asid {}: {why}", parent.raw()))
            }
            _ => {
                self.asids.push(child);
                Ok(())
            }
        }
    }

    /// A write landed (functionally succeeded) at `va`. Returns the
    /// route the spec predicts so the harness can compare it with the
    /// machine's.
    ///
    /// # Errors
    ///
    /// The spec considers the write illegal — a refinement finding.
    pub fn on_write(
        &mut self,
        asid: Asid,
        va: VirtAddr,
        timed: bool,
    ) -> Result<SpecOutcome, String> {
        let pid = self.pid(asid)?;
        let op = SpecOp::Write { pid, vpn: va.vpn().raw(), line: va.line_in_page(), timed };
        match self.spec.step(op) {
            SpecOutcome::Illegal(why) => Err(format!(
                "spec rejects a write the machine performed at asid {} va {:#x}: {why}",
                asid.raw(),
                va.raw()
            )),
            out => Ok(out),
        }
    }

    /// A line was force-seeded into the overlay of `(asid, vpn)`.
    pub fn on_seed(&mut self, asid: Asid, vpn: Vpn, line: usize) {
        if let Some(pid) = self.pid_of(asid) {
            self.spec.step(SpecOp::SeedLine { pid, vpn: vpn.raw(), line });
        }
    }

    /// The overlay of `(asid, vpn)` was committed (or found already
    /// gone).
    pub fn on_commit(&mut self, asid: Asid, vpn: Vpn) {
        if let Some(pid) = self.pid_of(asid) {
            self.spec.step(SpecOp::Commit { pid, vpn: vpn.raw() });
        }
    }

    /// The overlay of `(asid, vpn)` was discarded.
    pub fn on_discard(&mut self, asid: Asid, vpn: Vpn) {
        if let Some(pid) = self.pid_of(asid) {
            self.spec.step(SpecOp::Discard { pid, vpn: vpn.raw() });
        }
    }

    /// After a *benign* write failure (resource exhaustion mid-op): the
    /// overlay line may have landed before the failure. Believe the
    /// machine's OBitVector for the one line the op targeted, exactly as
    /// the byte oracle does.
    pub fn repair_line(&mut self, machine: &Machine, asid: Asid, va: VirtAddr) {
        let line = va.line_in_page();
        let landed = machine
            .overlay()
            .obitvec(Opn::encode(asid, va.vpn()))
            .map(|v| v.contains(line))
            .unwrap_or(false);
        if landed {
            self.on_seed(asid, va.vpn(), line);
        }
    }

    /// Observation-guided sweep: any spec overlay the machine no longer
    /// holds was promoted or pressure-collapsed inside the op —
    /// force-commit it (same privatise-then-merge semantics).
    pub fn reconcile(&mut self, machine: &Machine) {
        let vanished: Vec<(usize, u64)> = self
            .spec
            .pages()
            .filter(|(_, p)| p.overlay != 0)
            .map(|(&(pid, vpn), _)| (pid, vpn))
            .filter(|&(pid, vpn)| {
                !machine.overlay().has_overlay(Opn::encode(self.asids[pid], Vpn::new(vpn)))
            })
            .collect();
        for (pid, vpn) in vanished {
            self.spec.step(SpecOp::ForceCommit { pid, vpn });
        }
    }

    /// The abstraction function α: the machine's functional state as a
    /// [`SpecState`] (frame ids = raw PPNs; only the partition matters).
    ///
    /// # Errors
    ///
    /// A machine process the mirror tracks cannot be enumerated.
    fn alpha(&self, machine: &Machine) -> Result<SpecState, String> {
        let mut pages = Vec::new();
        for (pid, &asid) in self.asids.iter().enumerate() {
            let table = machine
                .os()
                .pages(asid)
                .map_err(|e| format!("α: cannot enumerate asid {}: {e:?}", asid.raw()))?;
            for (vpn, pte) in table {
                let overlay =
                    machine.overlay().obitvec(Opn::encode(asid, vpn)).map(|v| v.raw()).unwrap_or(0);
                pages.push((
                    (pid, vpn.raw()),
                    SpecPage {
                        frame: pte.ppn.raw(),
                        writable: pte.flags.writable,
                        cow: pte.flags.cow,
                        enabled: pte.flags.overlay_enabled,
                        overlay,
                    },
                ));
            }
        }
        Ok(SpecState::observed(self.spec.params(), self.asids.len(), pages))
    }

    /// Refinement check: α(machine) must equal the spec state — same
    /// processes, same mapped pages, same flags, same overlay sets, an
    /// isomorphic sharing partition — and the machine's overlay store
    /// must fit under the spec's segment-ladder bound.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violation.
    pub fn check_refinement(&self, machine: &Machine, procs: &[Asid]) -> Result<(), String> {
        if procs != self.asids {
            return Err("harness process list diverged from the spec mirror".into());
        }
        if self.spec.procs() != self.asids.len() {
            return Err(format!(
                "spec tracks {} processes, mirror {}",
                self.spec.procs(),
                self.asids.len()
            ));
        }
        let observed = self.alpha(machine)?;
        let spec_keys: Vec<(usize, u64)> = self.spec.pages().map(|(&k, _)| k).collect();
        let obs_keys: Vec<(usize, u64)> = observed.pages().map(|(&k, _)| k).collect();
        if spec_keys != obs_keys {
            return Err(format!(
                "mapped page sets differ: spec has {} pages, machine {}",
                spec_keys.len(),
                obs_keys.len()
            ));
        }
        // Canonical representative of each sharing group: the first
        // (pid, vpn) key using the frame, in BTreeMap order. The two
        // partitions are isomorphic iff every page's representative
        // matches.
        let canon = |state: &SpecState| -> Vec<(usize, u64)> {
            let mut first: std::collections::BTreeMap<u64, (usize, u64)> = Default::default();
            state.pages().map(|(&k, p)| *first.entry(p.frame).or_insert(k)).collect()
        };
        let spec_canon = canon(&self.spec);
        let obs_canon = canon(&observed);
        for (i, (&key, (s, o))) in spec_keys
            .iter()
            .zip(self.spec.pages().map(|(_, p)| p).zip(observed.pages().map(|(_, p)| p)))
            .enumerate()
        {
            if (s.writable, s.cow, s.enabled) != (o.writable, o.cow, o.enabled) {
                return Err(format!(
                    "flags diverge on page {key:?}: spec (writable={}, cow={}, enabled={}), \
                     machine (writable={}, cow={}, enabled={})",
                    s.writable, s.cow, s.enabled, o.writable, o.cow, o.enabled
                ));
            }
            if s.overlay != o.overlay {
                return Err(format!(
                    "overlay line sets diverge on page {key:?}: spec {:#018x}, machine {:#018x}",
                    s.overlay, o.overlay
                ));
            }
            if spec_canon[i] != obs_canon[i] {
                return Err(format!(
                    "sharing partition diverges on page {key:?}: spec shares with {:?}, machine \
                     with {:?}",
                    spec_canon[i], obs_canon[i]
                ));
            }
        }
        // Every machine overlay must belong to a page the spec knows.
        for opn in machine.overlay_pages() {
            let (asid, vpn) = opn.decode();
            let known = self
                .pid_of(asid)
                .map(|pid| self.spec.overlay_raw(pid, vpn.raw()) != 0)
                .unwrap_or(false);
            if !known {
                return Err(format!(
                    "machine holds an overlay for {opn:?} the spec does not know about"
                ));
            }
        }
        let bytes = machine.overlay().overlay_memory_bytes();
        let bound = self.spec.oms_bound_bytes();
        if bytes > bound {
            return Err(format!(
                "OMS holds {bytes} bytes, above the spec's segment-ladder bound of {bound}"
            ));
        }
        Ok(())
    }

    /// After an interior crash inside `op` (`None` = an op with no
    /// single target page): α of the half-finished machine must be a
    /// legal mid-transition state, and the OMS may exceed the bound by
    /// at most one orphaned segment (the OMT-write→OMS-free window).
    ///
    /// # Errors
    ///
    /// A human-readable description of why the state is illegal.
    pub fn check_interior(
        &self,
        machine: &Machine,
        procs: &[Asid],
        op: Option<&SpecOp>,
    ) -> Result<(), String> {
        if procs != self.asids {
            return Err("harness process list diverged from the spec mirror".into());
        }
        let observed = self.alpha(machine)?;
        match op {
            Some(op) => self.spec.admits_interior(&observed, op)?,
            None => self.spec.admits_interior_untargeted(&observed)?,
        }
        let bytes = machine.overlay().overlay_memory_bytes();
        let bound = observed.oms_bound_bytes() + MAX_SEGMENT_BYTES;
        if bytes > bound {
            return Err(format!(
                "OMS holds {bytes} bytes mid-crash, above the bound {bound} (one orphan allowed)"
            ));
        }
        Ok(())
    }
}
