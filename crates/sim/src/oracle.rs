//! The differential oracle: a deliberately boring model of what the
//! machine's *functional* memory contents must be.
//!
//! The oracle keeps, per process, a flat byte image split in two layers:
//!
//! * **base** — bytes whose home is the physical page (or that have been
//!   committed/collapsed there), and
//! * **delta** — bytes currently living in a page's *overlay*, which a
//!   [`DiscardPage`](crate::trace::TraceOp::DiscardPage) can still revert.
//!
//! Reads see delta-over-base; unwritten bytes of a mapped page read as
//! zero (anonymous mappings are zero-filled, and the simulated
//! [`DataStore`](po_dram::DataStore) is zero-default). The oracle does
//! **not** re-derive the machine's routing rules (CoW flags, OBitVectors,
//! promotion thresholds): the harness probes the machine for *where* a
//! write lands and tells the oracle, while the oracle independently
//! tracks *what value* every byte must hold. A machine bug that corrupts
//! data — a bad segment slot, a wrong commit merge, a snapshot that
//! resurrects stale lines — shows up as a byte mismatch even though the
//! routing probe came from the machine itself.

use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{Asid, VirtAddr, Vpn};
use std::collections::{BTreeMap, BTreeSet};

/// One process's expected memory image.
#[derive(Clone, Debug, Default)]
struct ProcImage {
    /// Committed bytes, keyed by virtual address. Absent = zero.
    base: BTreeMap<u64, u8>,
    /// Overlay bytes, keyed by VPN then byte offset within the page.
    /// Revertible until merged (commit/collapse) or dropped (discard).
    delta: BTreeMap<u64, BTreeMap<u32, u8>>,
    /// Mapped virtual page numbers.
    mapped: BTreeSet<u64>,
}

/// The reference model. See the [module docs](self) for the contract.
#[derive(Clone, Debug, Default)]
pub struct DiffOracle {
    procs: BTreeMap<u16, ProcImage>,
}

impl DiffOracle {
    /// Creates an oracle with no processes.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a freshly spawned process (empty address space).
    pub fn spawn(&mut self, asid: Asid) {
        self.procs.insert(asid.raw(), ProcImage::default());
    }

    /// `true` if `asid` has been spawned.
    pub fn knows(&self, asid: Asid) -> bool {
        self.procs.contains_key(&asid.raw())
    }

    /// Records that `vpn` is mapped (zero-filled anonymous page) for
    /// `asid`. Idempotent.
    pub fn note_mapped(&mut self, asid: Asid, vpn: Vpn) {
        self.procs.entry(asid.raw()).or_default().mapped.insert(vpn.raw());
    }

    /// `true` if the oracle believes `asid` has `vpn` mapped.
    pub fn is_mapped(&self, asid: Asid, vpn: Vpn) -> bool {
        self.procs.get(&asid.raw()).is_some_and(|p| p.mapped.contains(&vpn.raw()))
    }

    /// Mapped VPNs of `asid`, ascending.
    pub fn mapped_pages(&self, asid: Asid) -> Vec<Vpn> {
        self.procs
            .get(&asid.raw())
            .map(|p| p.mapped.iter().map(|&v| Vpn::new(v)).collect())
            .unwrap_or_default()
    }

    /// Writes a byte whose home is the physical page.
    pub fn write_base(&mut self, asid: Asid, va: VirtAddr, value: u8) {
        self.procs.entry(asid.raw()).or_default().base.insert(va.raw(), value);
    }

    /// Writes a byte into the page's overlay (revertible by discard).
    pub fn write_delta(&mut self, asid: Asid, va: VirtAddr, value: u8) {
        let off = (va.raw() % PAGE_SIZE as u64) as u32;
        self.procs
            .entry(asid.raw())
            .or_default()
            .delta
            .entry(va.vpn().raw())
            .or_default()
            .insert(off, value);
    }

    /// Splats `value` across a whole overlay line (the
    /// [`SeedLine`](crate::trace::TraceOp::SeedLine) semantics).
    pub fn write_delta_line(&mut self, asid: Asid, vpn: Vpn, line: usize, value: u8) {
        let page = self.procs.entry(asid.raw()).or_default().delta.entry(vpn.raw()).or_default();
        let start = (line * LINE_SIZE) as u32;
        for off in start..start + LINE_SIZE as u32 {
            page.insert(off, value);
        }
    }

    /// Expected byte at `va`, or `None` if the page is unmapped.
    pub fn read(&self, asid: Asid, va: VirtAddr) -> Option<u8> {
        let p = self.procs.get(&asid.raw())?;
        let vpn = va.vpn().raw();
        if !p.mapped.contains(&vpn) {
            return None;
        }
        let off = (va.raw() % PAGE_SIZE as u64) as u32;
        if let Some(&v) = p.delta.get(&vpn).and_then(|d| d.get(&off)) {
            return Some(v);
        }
        Some(p.base.get(&va.raw()).copied().unwrap_or(0))
    }

    /// Folds `vpn`'s delta into base: the overlay was committed (or
    /// collapsed) into the physical page, so a later discard can no
    /// longer revert these bytes. No-op when there is no delta.
    pub fn merge_delta(&mut self, asid: Asid, vpn: Vpn) {
        if let Some(p) = self.procs.get_mut(&asid.raw()) {
            if let Some(d) = p.delta.remove(&vpn.raw()) {
                let page_base = vpn.raw() * PAGE_SIZE as u64;
                for (off, v) in d {
                    p.base.insert(page_base + off as u64, v);
                }
            }
        }
    }

    /// [`merge_delta`](Self::merge_delta) for every page of `asid` —
    /// `fork` materializes all of the parent's overlays before sharing.
    pub fn merge_all_deltas(&mut self, asid: Asid) {
        let pages: Vec<u64> = self
            .procs
            .get(&asid.raw())
            .map(|p| p.delta.keys().copied().collect())
            .unwrap_or_default();
        for vpn in pages {
            self.merge_delta(asid, Vpn::new(vpn));
        }
    }

    /// Drops `vpn`'s delta: the overlay was discarded and the page
    /// reverts to its committed contents.
    pub fn drop_delta(&mut self, asid: Asid, vpn: Vpn) {
        if let Some(p) = self.procs.get_mut(&asid.raw()) {
            p.delta.remove(&vpn.raw());
        }
    }

    /// Clones the parent's image for a fork child. The caller must
    /// [`merge_all_deltas`](Self::merge_all_deltas) on the parent first
    /// (mirroring the machine's materialize-then-share order).
    pub fn clone_process(&mut self, parent: Asid, child: Asid) {
        let img = self.procs.get(&parent.raw()).cloned().unwrap_or_default();
        self.procs.insert(child.raw(), img);
    }

    /// Byte offsets within `vpn` the oracle holds an explicit value for
    /// (base or delta), ascending — the high-value probe points for a
    /// final sweep.
    pub fn known_offsets(&self, asid: Asid, vpn: Vpn) -> Vec<u32> {
        let Some(p) = self.procs.get(&asid.raw()) else { return Vec::new() };
        let lo = vpn.raw() * PAGE_SIZE as u64;
        let hi = lo + PAGE_SIZE as u64;
        let mut out: BTreeSet<u32> =
            p.base.range(lo..hi).map(|(&va, _)| (va - lo) as u32).collect();
        if let Some(d) = p.delta.get(&vpn.raw()) {
            out.extend(d.keys().copied());
        }
        out.into_iter().collect()
    }

    /// `(asid, vpn)` pairs that currently hold a non-empty delta, in
    /// deterministic order — the set the harness probes against the
    /// machine to detect commits it did not issue itself (promotions,
    /// pressure-driven collapses).
    pub fn delta_pages(&self) -> Vec<(Asid, Vpn)> {
        let mut out = Vec::new();
        for (&asid, p) in &self.procs {
            for (&vpn, d) in &p.delta {
                if !d.is_empty() {
                    out.push((Asid::new(asid), Vpn::new(vpn)));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u16) -> Asid {
        Asid::new(n)
    }

    #[test]
    fn delta_overrides_base_until_dropped() {
        let mut o = DiffOracle::new();
        o.spawn(a(1));
        o.note_mapped(a(1), Vpn::new(5));
        let va = VirtAddr::new(5 * PAGE_SIZE as u64 + 7);
        o.write_base(a(1), va, 0x11);
        assert_eq!(o.read(a(1), va), Some(0x11));
        o.write_delta(a(1), va, 0x22);
        assert_eq!(o.read(a(1), va), Some(0x22));
        o.drop_delta(a(1), Vpn::new(5));
        assert_eq!(o.read(a(1), va), Some(0x11));
    }

    #[test]
    fn merge_makes_delta_permanent() {
        let mut o = DiffOracle::new();
        o.spawn(a(1));
        o.note_mapped(a(1), Vpn::new(5));
        let va = VirtAddr::new(5 * PAGE_SIZE as u64);
        o.write_delta(a(1), va, 0x33);
        o.merge_delta(a(1), Vpn::new(5));
        o.drop_delta(a(1), Vpn::new(5));
        assert_eq!(o.read(a(1), va), Some(0x33));
        assert!(o.delta_pages().is_empty());
    }

    #[test]
    fn fork_clones_merged_image() {
        let mut o = DiffOracle::new();
        o.spawn(a(1));
        o.note_mapped(a(1), Vpn::new(2));
        let va = VirtAddr::new(2 * PAGE_SIZE as u64 + 100);
        o.write_delta(a(1), va, 0x44);
        o.merge_all_deltas(a(1));
        o.clone_process(a(1), a(2));
        assert_eq!(o.read(a(2), va), Some(0x44));
        // Diverge the child; the parent is unaffected.
        o.write_base(a(2), va, 0x55);
        assert_eq!(o.read(a(1), va), Some(0x44));
    }

    #[test]
    fn unmapped_reads_are_none_and_mapped_default_zero() {
        let mut o = DiffOracle::new();
        o.spawn(a(1));
        assert_eq!(o.read(a(1), VirtAddr::new(0)), None);
        o.note_mapped(a(1), Vpn::new(0));
        assert_eq!(o.read(a(1), VirtAddr::new(63)), Some(0));
    }

    #[test]
    fn seed_line_splat() {
        let mut o = DiffOracle::new();
        o.spawn(a(1));
        o.note_mapped(a(1), Vpn::new(1));
        o.write_delta_line(a(1), Vpn::new(1), 2, 0xAB);
        let base = PAGE_SIZE as u64 + 2 * LINE_SIZE as u64;
        assert_eq!(o.read(a(1), VirtAddr::new(base)), Some(0xAB));
        assert_eq!(o.read(a(1), VirtAddr::new(base + 63)), Some(0xAB));
        assert_eq!(o.read(a(1), VirtAddr::new(base + 64)), Some(0));
    }
}
