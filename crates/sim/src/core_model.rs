//! The bounded-window core timing model.
//!
//! Table 2's core is single-issue and out-of-order with a 64-entry
//! instruction window. The model captures exactly what that buys:
//! instructions enter the window at one per cycle; each occupies a
//! window entry until it completes; a full window blocks issue until the
//! *oldest* instruction retires (in-order retirement). Independent
//! memory operations therefore overlap (memory-level parallelism up to
//! the window size), while long-latency misses eventually fill the
//! window and stall the core — the mechanism behind every CPI effect in
//! Figures 8–10.

use po_types::Cycle;
use std::collections::VecDeque;

/// The core model.
///
/// # Example
///
/// ```
/// use po_sim::CoreModel;
///
/// let mut core = CoreModel::new(4);
/// // Four independent 100-cycle loads overlap almost entirely…
/// for _ in 0..4 {
///     let t = core.next_issue_cycle();
///     core.complete(t, 100);
/// }
/// assert!(core.cycles() < 110);
/// // …but a fifth must wait for a window slot.
/// let t = core.next_issue_cycle();
/// assert!(t >= 100);
/// ```
#[derive(Clone, Debug)]
pub struct CoreModel {
    window_size: usize,
    /// In-order retirement times of in-flight instructions.
    window: VecDeque<Cycle>,
    last_issue: Cycle,
    last_retire: Cycle,
    instructions: u64,
}

impl CoreModel {
    /// Creates a core with a window of `window_size` entries.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero.
    pub fn new(window_size: usize) -> Self {
        assert!(window_size > 0, "window must hold at least one instruction");
        Self {
            window_size,
            window: VecDeque::with_capacity(window_size),
            last_issue: 0,
            last_retire: 0,
            instructions: 0,
        }
    }

    /// The cycle at which the next instruction can enter the window:
    /// one cycle after the previous issue, or when the oldest in-flight
    /// instruction retires if the window is full.
    pub fn next_issue_cycle(&self) -> Cycle {
        let by_issue_width = self.last_issue + 1;
        if self.window.len() >= self.window_size {
            // Statically infallible: the branch guarantees a non-empty window.
            by_issue_width.max(*self.window.front().expect("window full"))
        } else {
            by_issue_width
        }
    }

    /// Records an instruction that issued at `issue_cycle` with execution
    /// latency `latency`. Retirement is in-order: an instruction cannot
    /// retire before its elders.
    pub fn complete(&mut self, issue_cycle: Cycle, latency: u64) {
        if self.window.len() >= self.window_size {
            self.window.pop_front();
        }
        let completion = issue_cycle + latency.max(1);
        let retire = completion.max(self.last_retire);
        self.window.push_back(retire);
        self.last_issue = issue_cycle;
        self.last_retire = retire;
        self.instructions += 1;
    }

    /// Issues `n` single-cycle (compute) instructions in bulk.
    pub fn issue_compute(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        // Single-cycle ops never clog the window for long; advance the
        // issue pointer and retirement frontier in bulk. If the window is
        // full of long-latency ops, issue is gated by the oldest one.
        let start = self.next_issue_cycle();
        let end = start + (n - 1);
        self.last_issue = end;
        self.last_retire = self.last_retire.max(end + 1);
        // Compute ops retire immediately relative to memory ops; the
        // window keeps only the long-latency tail, so bulk compute leaves
        // the in-flight set untouched except for the retire frontier.
        if let Some(back) = self.window.back_mut() {
            *back = (*back).max(self.last_retire);
        }
        self.instructions += n;
    }

    /// Total cycles elapsed (the retirement time of the youngest
    /// instruction).
    pub fn cycles(&self) -> Cycle {
        self.last_retire
    }

    /// Instructions issued.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Cycles per instruction so far.
    pub fn cpi(&self) -> f64 {
        po_types::stats::ratio(self.cycles(), self.instructions())
    }

    /// Serializes the in-flight window (front to back), issue/retire
    /// frontiers and instruction count. The window size is configuration
    /// and is not re-encoded.
    pub fn encode_snapshot(&self, w: &mut po_types::SnapshotWriter) {
        w.put_len(self.window.len());
        for &retire in &self.window {
            w.put_u64(retire);
        }
        w.put_u64(self.last_issue);
        w.put_u64(self.last_retire);
        w.put_u64(self.instructions);
    }

    /// Rebuilds a core with a `window_size`-entry window from
    /// [`CoreModel::encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`po_types::PoError::Corrupted`] on truncation or an
    /// oversized window.
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero (as [`CoreModel::new`] does).
    pub fn decode_snapshot(
        window_size: usize,
        r: &mut po_types::SnapshotReader,
    ) -> po_types::PoResult<Self> {
        let mut core = Self::new(window_size);
        let n = r.get_len()?;
        if n > window_size {
            return Err(po_types::PoError::Corrupted("snapshot core window exceeds capacity"));
        }
        for _ in 0..n {
            core.window.push_back(r.get_u64()?);
        }
        core.last_issue = r.get_u64()?;
        core.last_retire = r.get_u64()?;
        core.instructions = r.get_u64()?;
        Ok(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_stream_has_cpi_one() {
        let mut core = CoreModel::new(64);
        core.issue_compute(1000);
        assert_eq!(core.instructions(), 1000);
        assert!((core.cpi() - 1.0).abs() < 0.01, "cpi = {}", core.cpi());
    }

    #[test]
    fn independent_misses_overlap_within_window() {
        let mut core = CoreModel::new(64);
        for _ in 0..64 {
            let t = core.next_issue_cycle();
            core.complete(t, 500);
        }
        // 64 overlapping 500-cycle ops: ~500 + 64 cycles, not 64*500.
        assert!(core.cycles() < 600, "cycles = {}", core.cycles());
    }

    #[test]
    fn window_limits_parallelism() {
        let mut small = CoreModel::new(4);
        let mut large = CoreModel::new(64);
        for core in [&mut small, &mut large] {
            for _ in 0..64 {
                let t = core.next_issue_cycle();
                core.complete(t, 500);
            }
        }
        assert!(
            small.cycles() > 2 * large.cycles(),
            "small window ({}) must serialize far more than large ({})",
            small.cycles(),
            large.cycles()
        );
    }

    #[test]
    fn in_order_retirement_is_monotone() {
        let mut core = CoreModel::new(8);
        let t1 = core.next_issue_cycle();
        core.complete(t1, 1000); // slow elder
        let t2 = core.next_issue_cycle();
        core.complete(t2, 1); // fast junior retires after the elder
        assert!(core.cycles() >= t1 + 1000);
    }

    #[test]
    fn compute_between_misses_fills_the_shadow() {
        // A miss followed by compute that fits in its shadow should cost
        // barely more than the miss alone.
        let mut core = CoreModel::new(64);
        let t = core.next_issue_cycle();
        core.complete(t, 400);
        core.issue_compute(50);
        assert!(core.cycles() <= t + 460);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_window_rejected() {
        CoreModel::new(0);
    }
}
