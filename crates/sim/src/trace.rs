//! Trace-driven execution.

use crate::machine::Machine;
use crate::stats::SimStats;
use po_types::{Asid, PoResult, VirtAddr};

/// One operation of a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (1 cycle each, single issue).
    Compute(u32),
    /// A demand load.
    Load(VirtAddr),
    /// A demand store.
    Store(VirtAddr),
}

impl TraceOp {
    /// Instructions this op represents.
    pub fn instructions(&self) -> u64 {
        match self {
            TraceOp::Compute(n) => *n as u64,
            _ => 1,
        }
    }
}

/// A sequence of trace operations.
pub type Trace = Vec<TraceOp>;

/// Runs `ops` on `machine` as process `asid`, returning the statistics
/// *delta* for instructions/cycles (counters are cumulative machine
/// totals).
///
/// # Errors
///
/// Propagates access faults.
///
/// # Example
///
/// See the [crate docs](crate).
pub fn run_trace(machine: &mut Machine, asid: Asid, ops: &[TraceOp]) -> PoResult<SimStats> {
    let before = machine.snapshot();
    for op in ops {
        machine.execute(asid, op)?;
    }
    let mut after = machine.snapshot();
    after.instructions -= before.instructions;
    after.cycles -= before.cycles;
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use po_types::Vpn;

    #[test]
    fn trace_instruction_accounting() {
        let mut m = Machine::new(SystemConfig::table2()).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(1), 2).unwrap();
        let trace = vec![
            TraceOp::Compute(5),
            TraceOp::Load(VirtAddr::new(0x1000)),
            TraceOp::Compute(5),
            TraceOp::Store(VirtAddr::new(0x1040)),
        ];
        let stats = run_trace(&mut m, pid, &trace).unwrap();
        assert_eq!(stats.instructions, 12);
        assert!(stats.cpi() > 1.0);
    }

    #[test]
    fn two_runs_report_deltas() {
        let mut m = Machine::new(SystemConfig::table2()).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(1), 1).unwrap();
        let t = vec![TraceOp::Compute(10)];
        let s1 = run_trace(&mut m, pid, &t).unwrap();
        let s2 = run_trace(&mut m, pid, &t).unwrap();
        assert_eq!(s1.instructions, 10);
        assert_eq!(s2.instructions, 10);
    }

    #[test]
    fn op_instruction_counts() {
        assert_eq!(TraceOp::Compute(7).instructions(), 7);
        assert_eq!(TraceOp::Load(VirtAddr::new(0)).instructions(), 1);
        assert_eq!(TraceOp::Store(VirtAddr::new(0)).instructions(), 1);
    }
}
