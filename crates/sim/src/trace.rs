//! Trace-driven execution.

use crate::machine::Machine;
use crate::stats::SimStats;
use po_types::{Asid, PoResult, VirtAddr};

/// One operation of a trace.
///
/// The first three variants are core-level (timed) operations consumed
/// by [`Machine::execute`]. The remainder are **harness-level**
/// operations used by the deterministic-simulation harness
/// ([`crate::sim_test`]) and the differential fuzzer: they act on the
/// whole machine (processes, mappings, overlay promotions) and are
/// rejected by [`Machine::execute`].
///
/// Harness ops name processes by a *selector*, resolved as
/// `proc_sel % live_process_count` at apply time (no-op when no process
/// exists). This makes **every subsequence of a trace a valid trace** —
/// the property the fuzzer's trace shrinker relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// `n` non-memory instructions (1 cycle each, single issue).
    Compute(u32),
    /// A demand load.
    Load(VirtAddr),
    /// A demand store.
    Store(VirtAddr),
    /// Harness: spawn a new process.
    Spawn,
    /// Harness: map `count` writable anonymous pages at VPN `start` for
    /// the selected process.
    Map {
        /// Process selector (modulo live process count).
        proc_sel: u32,
        /// First virtual page number of the range.
        start: u64,
        /// Pages to map.
        count: u32,
    },
    /// Harness: fork the selected process.
    Fork {
        /// Process selector.
        proc_sel: u32,
    },
    /// Harness: functional one-byte write ([`Machine::poke`]).
    Poke {
        /// Process selector.
        proc_sel: u32,
        /// Target address.
        va: VirtAddr,
        /// Byte to write.
        value: u8,
    },
    /// Harness: functional one-byte read ([`Machine::peek`]), compared
    /// against the differential oracle.
    Peek {
        /// Process selector.
        proc_sel: u32,
        /// Address to read.
        va: VirtAddr,
    },
    /// Harness: seed one overlay line directly into the OMS
    /// ([`Machine::seed_overlay_line`] with a splatted byte).
    SeedLine {
        /// Process selector.
        proc_sel: u32,
        /// Virtual page number.
        vpn: u64,
        /// Line index within the page (0..64; enforced by the trace
        /// parser).
        line: u8,
        /// Byte splatted across the line.
        value: u8,
    },
    /// Harness: commit the page's overlay ([`Machine::commit_overlay`]).
    CommitPage {
        /// Process selector.
        proc_sel: u32,
        /// Virtual page number.
        vpn: u64,
    },
    /// Harness: discard the page's overlay
    /// ([`Machine::discard_overlay`]).
    DiscardPage {
        /// Process selector.
        proc_sel: u32,
        /// Virtual page number.
        vpn: u64,
    },
    /// Harness: flush every cache-resident dirty overlay line into the
    /// OMS ([`Machine::flush_overlays`]).
    Flush,
    /// Harness: reclaim overlay memory by collapsing cold overlays
    /// ([`Machine::recover_overlay_memory`]).
    Reclaim,
    /// Harness: run one OMS compaction pass
    /// ([`Machine::compact_overlay_memory`]) — coalesce free space and
    /// relocate live segments downward. Semantically invisible: no
    /// functional state the oracle or spec tracks changes.
    Compact,
    /// Harness: route subsequent timed ops (`Compute`/`Load`/`Store`)
    /// to core `core_sel % cores` — the multi-core analogue of the
    /// process selector. On a single-core machine this always resolves
    /// to core 0, so every trace stays valid at every core count.
    OnCore {
        /// Core selector (modulo configured core count).
        core_sel: u32,
    },
}

impl TraceOp {
    /// Instructions this op represents (harness-level ops execute no
    /// instructions).
    pub fn instructions(&self) -> u64 {
        match self {
            TraceOp::Compute(n) => *n as u64,
            TraceOp::Load(_) | TraceOp::Store(_) => 1,
            _ => 0,
        }
    }

    /// `true` for harness-level ops (everything except
    /// `Compute`/`Load`/`Store`).
    pub fn is_harness_op(&self) -> bool {
        !matches!(self, TraceOp::Compute(_) | TraceOp::Load(_) | TraceOp::Store(_))
    }
}

/// A sequence of trace operations.
pub type Trace = Vec<TraceOp>;

/// Runs `ops` on `machine` as process `asid`, returning the statistics
/// *delta* for instructions/cycles (counters are cumulative machine
/// totals).
///
/// # Errors
///
/// Propagates access faults.
///
/// # Example
///
/// See the [crate docs](crate).
pub fn run_trace(machine: &mut Machine, asid: Asid, ops: &[TraceOp]) -> PoResult<SimStats> {
    let before = machine.snapshot();
    for op in ops {
        machine.execute(asid, op)?;
    }
    let mut after = machine.snapshot();
    after.instructions -= before.instructions;
    after.cycles -= before.cycles;
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use po_types::Vpn;

    #[test]
    fn trace_instruction_accounting() {
        let mut m = Machine::new(SystemConfig::table2()).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(1), 2).unwrap();
        let trace = vec![
            TraceOp::Compute(5),
            TraceOp::Load(VirtAddr::new(0x1000)),
            TraceOp::Compute(5),
            TraceOp::Store(VirtAddr::new(0x1040)),
        ];
        let stats = run_trace(&mut m, pid, &trace).unwrap();
        assert_eq!(stats.instructions, 12);
        assert!(stats.cpi() > 1.0);
    }

    #[test]
    fn two_runs_report_deltas() {
        let mut m = Machine::new(SystemConfig::table2()).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(1), 1).unwrap();
        let t = vec![TraceOp::Compute(10)];
        let s1 = run_trace(&mut m, pid, &t).unwrap();
        let s2 = run_trace(&mut m, pid, &t).unwrap();
        assert_eq!(s1.instructions, 10);
        assert_eq!(s2.instructions, 10);
    }

    #[test]
    fn op_instruction_counts() {
        assert_eq!(TraceOp::Compute(7).instructions(), 7);
        assert_eq!(TraceOp::Load(VirtAddr::new(0)).instructions(), 1);
        assert_eq!(TraceOp::Store(VirtAddr::new(0)).instructions(), 1);
    }
}
