//! The full simulated system.
//!
//! A [`Machine`] owns every hardware model and a pluggable
//! [`AddressTranslation`] backend, and implements the complete
//! memory-access path of Figure 6: TLB (with OBitVector) → L1/L2/L3 →
//! memory controller (OMT cache → Overlay Memory Store) → DRAM, plus
//! the two write-divergence mechanisms under comparison: classic
//! **copy-on-write** (page copy + shootdown on the critical path,
//! Figure 3a) and **overlay-on-write** (single-line remap via
//! coherence, Figure 3b).
//!
//! All translation — walks, fills, privatization, fork, overlay
//! promotion — goes through the backend trait, so rival VM designs
//! (`SystemConfig::backend`) run the same workloads with their own
//! translation semantics and walk costs (lint PA-L007 keeps it that
//! way).

use crate::config::SystemConfig;
use crate::core_model::CoreModel;
use crate::stats::SimStats;
use po_cache::{CacheHierarchy, L3BankQueue, Level, LookupResult};
use po_dram::{BandwidthBucket, DataStore, DramModel};
use po_overlay::{OverlayManager, OverlayStats};
use po_telemetry::{Event as TelemetryEvent, Layer, TelemetrySink};
use po_tlb::{Tlb, TlbEntry};
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::snapshot::{fingerprint64, SnapshotReader, SnapshotWriter};
use po_types::{
    AccessKind, Asid, CrashStage, Cycle, FaultInjector, FaultPlan, FaultSite, MainMemAddr,
    OBitVector, Opn, PhysAddr, PoError, PoResult, VirtAddr, Vpn,
};
use po_vm::OsModel;
use po_vm::WriteOutcome;
use po_xlate::{AddressTranslation, TranslationBackend};

/// Shared-resource contention state, instantiated only with more than
/// one core (single-core runs never queue, so their timing is exactly
/// the pre-multi-core timing).
#[derive(Clone, Debug)]
struct Contention {
    /// Shared L3 bank queue.
    l3: L3BankQueue,
    /// DRAM channel-bandwidth token bucket.
    dram_bw: BandwidthBucket,
}

impl Contention {
    fn new(config: &SystemConfig) -> Self {
        Self {
            l3: L3BankQueue::new(config.l3_banks, config.l3_bank_occupancy),
            dram_bw: BandwidthBucket::new(config.dram_bandwidth_cycles_per_line),
        }
    }
}

/// Why a TLB shootdown broadcast is happening — decides its coherence
/// annotations and invalidation-counting convention (see
/// `Machine::broadcast_shootdown`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShootdownCause {
    /// OS-driven overlay promotion (reclaim, explicit commit/discard).
    OsPromotion,
    /// OS-driven OMS compaction moved the page's segment.
    OsCompaction,
    /// A core's CoW fault remapped the page.
    CowRemap,
    /// A core's overlaying write crossed the promotion threshold.
    CorePromotion,
}

impl ShootdownCause {
    /// Promotions announce themselves with a `CohPromote` annotation.
    fn is_promotion(self) -> bool {
        matches!(self, ShootdownCause::OsPromotion | ShootdownCause::CorePromotion)
    }

    /// OS-driven maintenance counts every dropped entry (it has no core
    /// of its own); core-initiated remaps count remote cores only.
    fn is_os_driven(self) -> bool {
        matches!(self, ShootdownCause::OsPromotion | ShootdownCause::OsCompaction)
    }
}

/// Memory-consumption baseline recorded by
/// [`Machine::mark_memory_epoch`].
#[derive(Clone, Copy, Debug, Default)]
struct MemoryEpoch {
    /// Regular frames in use (excluding OMS grants) at the epoch.
    frames_net: u64,
    /// Overlay store bytes in use at the epoch.
    overlay_used: u64,
}

/// The simulated system. See the [crate docs](crate) for an example.
#[derive(Debug)]
pub struct Machine {
    config: SystemConfig,
    /// The address-translation backend: OS/translation state plus the
    /// overlay machinery and the OMS grant ledger, behind the
    /// [`AddressTranslation`] seam.
    xlate: TranslationBackend,
    mem: DataStore,
    /// Per-core TLBs (index 0 is the core the single-threaded experiments
    /// run on).
    tlbs: Vec<Tlb>,
    caches: CacheHierarchy,
    dram: DramModel,
    /// Per-core timing models (index 0 is the core the single-threaded
    /// experiments run on).
    cores: Vec<CoreModel>,
    /// Shared-resource contention (L3 bank queue + DRAM bandwidth);
    /// `Some` iff more than one core is configured.
    contention: Option<Contention>,
    stats: SimStats,
    epoch: MemoryEpoch,
    faults: FaultInjector,
    /// Telemetry handle; clones are distributed to every layer by
    /// [`Machine::install_telemetry`]. Never serialized into snapshots —
    /// telemetry-on and telemetry-off machines produce identical bytes.
    sink: TelemetrySink,
    /// One-shot race canary ([`Machine::set_inject_obit_race`]): the next
    /// remote OBitVector-update delivery is performed but its coherence
    /// annotation (event + message accounting) is suppressed, modeling a
    /// message lost in flight. Never serialized — like the sink, it is
    /// harness-side instrumentation, not machine state.
    inject_obit_race: bool,
}

/// Bound on allocation attempts per access: each retry first reclaims
/// overlay memory, so attempts only repeat while reclaim keeps freeing
/// space (or a transient injected refusal clears).
const MAX_ALLOC_ATTEMPTS: usize = 8;

/// `"POSN"` — leading bytes of every machine snapshot.
const SNAPSHOT_MAGIC: u32 = 0x504F_534E;
/// Bumped whenever the snapshot byte layout changes (DESIGN.md §8).
/// v3: compaction counters in `StoreStats`, a new fault site in the
/// injector's per-site arrays.
/// v4: per-core timing models (len-prefixed), shared-resource
/// contention state on multi-core configurations, and the coherence /
/// contention counters in `SimStats`.
/// v5: a translation-backend tag after the config fingerprint, with
/// the backend's state block (OS model, overlay manager, OMS grant
/// ledger) serialized contiguously right after it.
const SNAPSHOT_VERSION: u32 = 5;

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Errors
    ///
    /// Currently infallible; reserved for configurations that pre-allocate
    /// resources.
    pub fn new(config: SystemConfig) -> PoResult<Self> {
        Ok(Self {
            xlate: TranslationBackend::new(
                config.backend,
                config.overlay.clone(),
                config.vm.clone(),
            ),
            mem: DataStore::new(),
            tlbs: (0..config.cores.max(1)).map(|_| Tlb::new(config.tlb.clone())).collect(),
            caches: CacheHierarchy::new(config.hierarchy.clone()),
            dram: DramModel::new(config.dram.clone()),
            cores: (0..config.cores.max(1))
                .map(|_| CoreModel::new(config.window_entries))
                .collect(),
            contention: (config.cores > 1).then(|| Contention::new(&config)),
            stats: SimStats::default(),
            epoch: MemoryEpoch::default(),
            faults: FaultInjector::none(),
            sink: TelemetrySink::noop(),
            inject_obit_race: false,
            config,
        })
    }

    /// Arms telemetry for the whole machine, mirroring
    /// [`Machine::install_fault_plan`]: clones of one sink (sharing one
    /// core) go to the OS model, the DRAM model, the overlay manager
    /// (which forwards to the OMT cache and the OMS), the cache
    /// hierarchy, and every TLB. Pass [`TelemetrySink::noop`] to turn
    /// telemetry back off. Telemetry never feeds back into simulation
    /// state: runs with and without it reach byte-identical snapshots.
    pub fn install_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink;
        self.redistribute_telemetry();
    }

    /// The machine's telemetry sink (Noop unless installed).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.sink
    }

    fn redistribute_telemetry(&mut self) {
        self.xlate.set_telemetry(self.sink.clone());
        self.dram.set_telemetry(self.sink.clone());
        self.caches.set_telemetry(self.sink.clone());
        for tlb in &mut self.tlbs {
            tlb.set_telemetry(self.sink.clone());
        }
    }

    /// Arms fault injection for the whole machine: one shared injector is
    /// distributed to the OS model (frame allocation, OMS grants), the
    /// DRAM model (transient read errors), the overlay manager (OMT-cache
    /// corruption) and its store (allocation failures), and the machine
    /// itself (TLB-shootdown timeouts). With no plan installed every
    /// fault check is a single discriminant test on the fast path.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        let inj = FaultInjector::from_plan(plan);
        self.xlate.set_fault_injector(inj.clone());
        self.dram.set_fault_injector(inj.clone());
        self.faults = inj;
    }

    /// Overlay statistics with [`OverlayStats::injected_faults`] synced
    /// from the shared injector.
    pub fn overlay_stats(&mut self) -> OverlayStats {
        self.xlate.overlay_stats()
    }

    /// Returns the configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Returns the translation backend (the [`AddressTranslation`] seam).
    pub fn translation(&self) -> &TranslationBackend {
        &self.xlate
    }

    /// Returns the OS model (read-only observation).
    pub fn os(&self) -> &OsModel {
        self.xlate.os()
    }

    /// Returns the overlay manager (read-only observation).
    pub fn overlay(&self) -> &OverlayManager {
        self.xlate.overlay()
    }

    /// Every page that currently has an overlay, in OPN order.
    pub fn overlay_pages(&self) -> Vec<Opn> {
        self.xlate.overlay_pages()
    }

    /// Returns core 0's TLB.
    pub fn tlb(&self) -> &Tlb {
        &self.tlbs[0]
    }

    /// Returns core `core`'s TLB.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn tlb_of(&self, core: usize) -> &Tlb {
        &self.tlbs[core]
    }

    /// Number of simulated cores.
    pub fn cores(&self) -> usize {
        self.tlbs.len()
    }

    /// Returns the cache hierarchy.
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// Returns the DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// Returns core 0's timing model.
    pub fn core(&self) -> &CoreModel {
        &self.cores[0]
    }

    /// Returns core `core`'s timing model.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_of(&self, core: usize) -> &CoreModel {
        &self.cores[core]
    }

    /// Simulated cycles retired by core `core` — the scheduling key the
    /// multi-core interleaver orders cores by.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_cycles(&self, core: usize) -> Cycle {
        self.cores[core].cycles()
    }

    /// Returns the functional data store (read-only).
    pub fn mem(&self) -> &DataStore {
        &self.mem
    }

    /// Creates a process.
    ///
    /// # Errors
    ///
    /// Propagates ASID exhaustion.
    pub fn spawn_process(&mut self) -> PoResult<Asid> {
        self.xlate.spawn()
    }

    /// Maps `count` writable anonymous pages at `start` for `asid`.
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn map_range(&mut self, asid: Asid, start: Vpn, count: u64) -> PoResult<()> {
        self.xlate.map_range(asid, start, count, true)
    }

    /// Maps `count` virtual pages at `start` all onto a single shared
    /// zero frame, with overlays enabled — the layout of the
    /// sparse-data-structure technique (§5.2): "all virtual pages of the
    /// data structure map to a zero physical page and each virtual page
    /// is mapped to an overlay that contains only the non-zero cache
    /// lines". Returns the shared frame.
    ///
    /// # Errors
    ///
    /// Propagates allocator exhaustion.
    pub fn map_shared_zero_range(
        &mut self,
        asid: Asid,
        start: Vpn,
        count: u64,
    ) -> PoResult<po_types::Ppn> {
        let zero = self.xlate.alloc_frame()?;
        for i in 0..count {
            let vpn = Vpn::new(start.raw() + i);
            self.xlate.map_shared_frame(asid, vpn, zero)?;
            // Overlay-capable backends expose the pages through the OMT
            // even in CoW mode (seeded sparse structures resolve through
            // it); a backend without overlays leaves them plain CoW.
            if self.xlate.supports_overlays() {
                self.xlate.protect_for_share(asid, vpn)?;
            }
        }
        Ok(zero)
    }

    /// Functionally installs `data` as overlay line `line` of page `vpn`
    /// and pushes it straight into the Overlay Memory Store, so later
    /// timed reads resolve through the OMT (pre-built sparse structures).
    ///
    /// # Errors
    ///
    /// Propagates overlay/OMS failures.
    pub fn seed_overlay_line(
        &mut self,
        asid: Asid,
        vpn: Vpn,
        line: usize,
        data: po_types::LineData,
    ) -> PoResult<()> {
        if self.xlate.supports_overlays() {
            let opn = Opn::encode(asid, vpn);
            self.xlate.overlaying_write(opn, line, data)?;
            self.evict_line_reclaiming(opn, line)?;
        } else {
            // Page-granular fallback: privatize the shared page (classic
            // CoW copy) and write the line into the private frame — the
            // memory-bloat side of the sparse-structure comparison.
            self.prepare_write_retrying(asid, vpn.base())?;
            let pte = self.xlate.walk(asid, vpn.base())?;
            self.mem.write_line(MainMemAddr::new(pte.ppn.line_addr(line).raw()), data);
        }
        Ok(())
    }

    /// `fork`: clones the address space with copy-on-write; in overlay
    /// mode also enables overlay semantics on every shared page
    /// (overlay-on-write, §2.2).
    ///
    /// # Errors
    ///
    /// Propagates OS failures.
    pub fn fork(&mut self, parent: Asid) -> PoResult<Asid> {
        // The parent's logical page contents include its overlays; before
        // re-sharing the frames (e.g. a second checkpoint fork), every
        // overlay must be materialized into a private frame — the
        // checkpoint-commit step of §5.3.2 ("the overlays are then
        // committed"). Otherwise the new child would read the stale
        // physical page underneath the parent's divergence.
        let overlay = self.config.overlay_semantics();
        if overlay {
            let mut overlaid: Vec<Vpn> = self
                .xlate
                .pages(parent)?
                .into_iter()
                .map(|(vpn, _)| vpn)
                .filter(|&vpn| self.xlate.has_overlay(Opn::encode(parent, vpn)))
                .collect();
            // Page tables iterate hash-ordered; materialize in VPN order
            // so frame allocation (and seeded fault plans) reproduce.
            overlaid.sort_by_key(|v| v.raw());
            for vpn in overlaid {
                self.materialize_overlay(parent, vpn)?;
            }
        }
        // The backend rewrites PTE flags and reports which address
        // spaces now hold stale cached translations; the machine owns
        // the TLBs and performs the flushes (the backend never touches
        // them).
        let out = self.xlate.fork(parent, overlay)?;
        for asid in &out.flush {
            for tlb in &mut self.tlbs {
                tlb.flush_asid(*asid);
            }
        }
        Ok(out.child)
    }

    /// Commits `vpn`'s overlay into a private frame (copy-and-commit when
    /// the underlying frame is shared), leaving the page overlay-free and
    /// writable. Used before re-sharing pages at `fork` time.
    fn materialize_overlay(&mut self, asid: Asid, vpn: Vpn) -> PoResult<()> {
        let opn = Opn::encode(asid, vpn);
        // Obtain a private writable frame (copies the shared page if
        // refcount > 1); then merge the overlay on top of it.
        self.prepare_write_retrying(asid, vpn.base())?;
        // The page is privatized but the overlay not yet merged: the
        // commit/reclaim window the DST harness crashes inside.
        self.interior_crash(CrashStage::MidReclaim)?;
        let pte = self.xlate.walk(asid, vpn.base())?;
        let frame = MainMemAddr::new(pte.ppn.base().raw());
        self.xlate.commit_overlay_to(opn, frame, &mut self.mem)?;
        for l in 0..LINES_PER_PAGE {
            self.caches.invalidate_line(opn.line_addr(l));
        }
        Ok(())
    }

    /// Records the current memory consumption as the baseline for
    /// [`Machine::extra_memory_bytes`] (called at the fork in Figure 8).
    pub fn mark_memory_epoch(&mut self) {
        self.epoch = MemoryEpoch {
            frames_net: self.xlate.frames_allocated() - self.xlate.oms_frames(),
            overlay_used: self.xlate.overlay_memory_bytes(),
        };
    }

    /// Additional memory consumed since the epoch: regular frames (page
    /// granularity) plus overlay-store bytes (segment granularity) plus
    /// cache-resident dirty overlay lines (line granularity) — the
    /// Figure 8 metric.
    pub fn extra_memory_bytes(&self) -> u64 {
        let frames_net = self.xlate.frames_allocated() - self.xlate.oms_frames();
        let frame_bytes = frames_net.saturating_sub(self.epoch.frames_net) * PAGE_SIZE as u64;
        let overlay_bytes =
            self.xlate.overlay_memory_bytes().saturating_sub(self.epoch.overlay_used);
        let resident_bytes = self.xlate.resident_lines() as u64 * LINE_SIZE as u64;
        frame_bytes + overlay_bytes + resident_bytes
    }

    /// Flushes every cache-resident dirty overlay line into the Overlay
    /// Memory Store (so segment-level accounting is complete before a
    /// measurement or checkpoint).
    ///
    /// # Errors
    ///
    /// Propagates OMS growth failures.
    pub fn flush_overlays(&mut self) -> PoResult<()> {
        // overlay_pages is OPN-ordered, so the grant-query stream (and
        // with it any seeded fault plan) is reproducible.
        for opn in self.xlate.overlay_pages() {
            let mut last = Ok(());
            for attempt in 0..MAX_ALLOC_ATTEMPTS {
                match self.xlate.evict_all_of(opn, &mut self.mem) {
                    Err(e @ (PoError::OverlayStoreExhausted | PoError::OutOfMemory)) => {
                        last = Err(e);
                        if attempt + 1 == MAX_ALLOC_ATTEMPTS || !self.relieve_pressure(Some(opn))? {
                            return last;
                        }
                    }
                    r => {
                        last = r.map(|_| ());
                        break;
                    }
                }
            }
            last?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Graceful degradation under memory pressure.
    // ------------------------------------------------------------------

    /// Evicts one dirty overlay line into the OMS, walking the
    /// degradation ladder (reclaim → compact → grow, DESIGN.md §14) with
    /// bounded retries if the store is exhausted or the OS refuses to
    /// grow it. Surfaces the error only once no rung frees anything.
    fn evict_line_reclaiming(
        &mut self,
        opn: Opn,
        line: usize,
    ) -> PoResult<po_overlay::EvictOutcome> {
        let mut last = Err(PoError::OverlayStoreExhausted);
        for attempt in 0..MAX_ALLOC_ATTEMPTS {
            match self.xlate.evict_line(opn, line, &mut self.mem) {
                Err(e @ (PoError::OverlayStoreExhausted | PoError::OutOfMemory)) => {
                    last = Err(e);
                    if attempt + 1 == MAX_ALLOC_ATTEMPTS || !self.relieve_pressure(Some(opn))? {
                        return last;
                    }
                }
                r => return r,
            }
        }
        last
    }

    /// One rung-descent of the §4.4.2 pressure ladder: try reclaim
    /// (collapse a cold overlay); if that frees nothing, try a
    /// compaction pass (coalescing may reassemble the larger segment the
    /// allocation needs even when no overlay is collapsible). Returns
    /// whether anything changed — `false` means a retry is pointless and
    /// the caller should surface the allocation failure.
    fn relieve_pressure(&mut self, exempt: Option<Opn>) -> PoResult<bool> {
        if self.recover_overlay_memory(exempt)? > 0 {
            return Ok(true);
        }
        let out = self.compact_overlay_memory()?;
        Ok(out.moves > 0 || out.merges > 0)
    }

    /// Releases overlay memory under pressure by collapsing cold overlays
    /// back into physical pages (the §4.3.4 commit promotion, driven by
    /// the OS instead of the promotion threshold). Stops after the first
    /// candidate that frees bytes; returns the total freed. `exempt`
    /// protects the page whose access triggered the pressure.
    ///
    /// # Errors
    ///
    /// Propagates commit failures; candidates whose pages are unmapped or
    /// cannot be privatized are skipped, not errors.
    pub fn recover_overlay_memory(&mut self, exempt: Option<Opn>) -> PoResult<u64> {
        self.xlate.note_alloc_retry();
        let mut freed = 0u64;
        for opn in self.xlate.reclaim_candidates(exempt) {
            let (asid, vpn) = opn.decode();
            // Privatize the frame first: committing onto a still-shared
            // page would leak the divergence to the other sharers. A page
            // that is gone or cannot be copied is skipped.
            if self.xlate.privatize(asid, vpn.base(), &mut self.mem).is_err() {
                continue;
            }
            self.interior_crash(CrashStage::MidReclaim)?;
            let pte = self.xlate.walk(asid, vpn.base())?;
            let frame = MainMemAddr::new(pte.ppn.base().raw());
            freed += self.xlate.collapse_overlay(opn, frame, &mut self.mem)?;
            // The overlay address space for this page is dead: drop stale
            // cache lines and cached translations everywhere.
            for l in 0..LINES_PER_PAGE {
                self.caches.invalidate_line(opn.line_addr(l));
            }
            self.broadcast_shootdown(0, asid, vpn, ShootdownCause::OsPromotion);
            if freed > 0 {
                break;
            }
        }
        Ok(freed)
    }

    /// One all-core TLB shootdown broadcast with its coherence
    /// annotations — the single implementation behind every remap path
    /// (reclaim, compaction, commit/discard promotion, CoW, threshold
    /// promotion).
    ///
    /// `core` is the initiating core (0 for OS-driven maintenance).
    /// The [`ShootdownCause`] decides two accounting details the paths
    /// have always differed on: whether a `CohPromote` annotation
    /// precedes the broadcast, and whether the initiating core's own
    /// dropped entry counts as a coherence invalidation (OS-driven
    /// paths count it; core-initiated remaps count remote cores only).
    /// Straggler-ack latency stays with the callers that model it.
    fn broadcast_shootdown(&mut self, core: usize, asid: Asid, vpn: Vpn, cause: ShootdownCause) {
        let opn = Opn::encode(asid, vpn);
        let multi = self.tlbs.len() > 1;
        if multi {
            if cause.is_promotion() {
                self.sink.emit(|| TelemetryEvent::CohPromote { core: core as u32, opn: opn.raw() });
            }
            self.sink
                .emit(|| TelemetryEvent::CohShootdownBegin { core: core as u32, opn: opn.raw() });
        }
        for (i, tlb) in self.tlbs.iter_mut().enumerate() {
            let dropped = tlb.shootdown(asid, vpn);
            let counted =
                if cause.is_os_driven() { dropped && multi } else { dropped && i != core };
            if counted {
                self.stats.coherence_invalidations.inc();
            }
            if multi && i != core {
                self.sink.emit(|| TelemetryEvent::CohShootdownAck {
                    core: core as u32,
                    from: i as u32,
                    opn: opn.raw(),
                });
            }
        }
        if multi {
            self.sink
                .emit(|| TelemetryEvent::CohShootdownEnd { core: core as u32, opn: opn.raw() });
        }
    }

    /// Runs one live OMS compaction pass (§4.4.2): the overlay manager
    /// relocates live segments downward and repoints their OMT entries;
    /// the machine then shoots down cached translations of every moved
    /// page (mirroring the promotion paths — the OMT-cache copies were
    /// already invalidated per-move by the manager). A no-op returning
    /// an empty outcome when [`SystemConfig::oms_compaction`] is off.
    ///
    /// # Errors
    ///
    /// [`PoError::Crashed`] when an armed
    /// [`CrashStage::MidCompaction`] crash fires (DST recovery path);
    /// [`PoError::Corrupted`] on broken accounting.
    pub fn compact_overlay_memory(&mut self) -> PoResult<po_overlay::CompactionOutcome> {
        if !self.config.oms_compaction {
            return Ok(po_overlay::CompactionOutcome::default());
        }
        let (outcome, moved) = self.xlate.compact_store(&mut self.mem)?;
        for opn in moved {
            let (asid, vpn) = opn.decode();
            self.broadcast_shootdown(0, asid, vpn, ShootdownCause::OsCompaction);
        }
        self.stats.compactions.inc();
        Ok(outcome)
    }

    /// `prepare_write` with bounded retry: a refused frame allocation
    /// (e.g. an injected [`FaultSite::FrameAllocExhausted`]) triggers an
    /// overlay-memory reclaim before surfacing `OutOfMemory`.
    fn prepare_write_retrying(&mut self, asid: Asid, va: VirtAddr) -> PoResult<WriteOutcome> {
        let mut last = Err(PoError::OutOfMemory);
        for attempt in 0..MAX_ALLOC_ATTEMPTS {
            match self.xlate.privatize(asid, va, &mut self.mem) {
                Err(PoError::OutOfMemory) => {
                    last = Err(PoError::OutOfMemory);
                    if attempt + 1 == MAX_ALLOC_ATTEMPTS
                        || self.recover_overlay_memory(Some(Opn::encode(asid, va.vpn())))? == 0
                    {
                        return last;
                    }
                }
                r => return r,
            }
        }
        last
    }

    /// Structural self-check tying the layers together (DESIGN.md "Fault
    /// model & degradation"): overlay-manager invariants (byte accounting,
    /// OBitVector backing, free-list layout) plus the machine-level grant
    /// ledger — the OMS must manage exactly the bytes of the frames the
    /// OS granted it.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] naming the violated invariant.
    pub fn verify_invariants(&self) -> PoResult<()> {
        self.xlate.verify()
    }

    // ------------------------------------------------------------------
    // Deterministic simulation testing: snapshot/restore, crash points,
    // and the harness-level overlay promotions (DESIGN.md §8).
    // ------------------------------------------------------------------

    /// Serializes the complete machine state — page tables, OMT and OMT
    /// cache, OMS, resident overlay lines, TLBs, caches, DRAM timing and
    /// contents, core window, statistics, and the fault injector's RNG —
    /// into a versioned, byte-stable buffer. Two machines in the same
    /// state produce identical bytes; [`Machine::restore_snapshot`]
    /// followed by [`Machine::save_snapshot`] is the identity.
    pub fn save_snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_u64(fingerprint64(&format!("{:?}", self.config)));
        w.put_u8(self.config.backend.tag());
        self.xlate.encode_snapshot(&mut w);
        self.mem.encode_snapshot(&mut w);
        w.put_len(self.tlbs.len());
        for tlb in &self.tlbs {
            tlb.encode_snapshot(&mut w);
        }
        self.caches.encode_snapshot(&mut w);
        self.dram.encode_snapshot(&mut w);
        w.put_len(self.cores.len());
        for core in &self.cores {
            core.encode_snapshot(&mut w);
        }
        if let Some(c) = &self.contention {
            c.l3.encode_snapshot(&mut w);
            c.dram_bw.encode_snapshot(&mut w);
        }
        self.stats.encode_snapshot(&mut w);
        w.put_u64(self.epoch.frames_net);
        w.put_u64(self.epoch.overlay_used);
        self.faults.encode_snapshot(&mut w);
        w.finish()
    }

    /// Restores the machine to the exact state captured by
    /// [`Machine::save_snapshot`]. The snapshot must come from a machine
    /// built with the same configuration (checked via a fingerprint in
    /// the header). The fault injector — including its RNG position and
    /// remaining schedules — is restored and redistributed to every
    /// layer, so replayed runs make the same injection decisions.
    ///
    /// # Errors
    ///
    /// [`PoError::Corrupted`] on a bad magic, unsupported version,
    /// configuration mismatch, truncation, trailing bytes, or any
    /// structurally invalid component state.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> PoResult<()> {
        let mut r = SnapshotReader::new(bytes);
        if r.get_u32()? != SNAPSHOT_MAGIC {
            return Err(PoError::Corrupted("snapshot magic mismatch"));
        }
        if r.get_u32()? != SNAPSHOT_VERSION {
            return Err(PoError::Corrupted("snapshot version unsupported"));
        }
        if r.get_u64()? != fingerprint64(&format!("{:?}", self.config)) {
            return Err(PoError::Corrupted("snapshot built under a different configuration"));
        }
        if r.get_u8()? != self.config.backend.tag() {
            return Err(PoError::Corrupted("snapshot built under a different translation backend"));
        }
        let xlate = TranslationBackend::decode_snapshot(
            self.config.backend,
            self.config.overlay.clone(),
            &mut r,
        )?;
        let mem = DataStore::decode_snapshot(&mut r)?;
        let n_tlbs = r.get_len()?;
        if n_tlbs != self.tlbs.len() {
            return Err(PoError::Corrupted("snapshot TLB count disagrees with configuration"));
        }
        let mut tlbs = Vec::with_capacity(n_tlbs);
        for _ in 0..n_tlbs {
            tlbs.push(Tlb::decode_snapshot(self.config.tlb.clone(), &mut r)?);
        }
        let caches = CacheHierarchy::decode_snapshot(self.config.hierarchy.clone(), &mut r)?;
        let dram = DramModel::decode_snapshot(self.config.dram.clone(), &mut r)?;
        let n_cores = r.get_len()?;
        if n_cores != self.cores.len() {
            return Err(PoError::Corrupted("snapshot core count disagrees with configuration"));
        }
        let mut cores = Vec::with_capacity(n_cores);
        for _ in 0..n_cores {
            cores.push(CoreModel::decode_snapshot(self.config.window_entries, &mut r)?);
        }
        let contention = if self.config.cores > 1 {
            Some(Contention {
                l3: L3BankQueue::decode_snapshot(
                    self.config.l3_banks,
                    self.config.l3_bank_occupancy,
                    &mut r,
                )?,
                dram_bw: BandwidthBucket::decode_snapshot(
                    self.config.dram_bandwidth_cycles_per_line,
                    &mut r,
                )?,
            })
        } else {
            None
        };
        let stats = SimStats::decode_snapshot(&mut r)?;
        let epoch = MemoryEpoch { frames_net: r.get_u64()?, overlay_used: r.get_u64()? };
        let faults = FaultInjector::decode_snapshot(&mut r)?;
        r.expect_end()?;
        // All decodes succeeded: commit, then redistribute the restored
        // injector exactly as install_fault_plan does.
        self.xlate = xlate;
        self.mem = mem;
        self.tlbs = tlbs;
        self.caches = caches;
        self.dram = dram;
        self.cores = cores;
        self.contention = contention;
        self.stats = stats;
        self.epoch = epoch;
        self.xlate.set_fault_injector(faults.clone());
        self.dram.set_fault_injector(faults.clone());
        self.faults = faults;
        // Decoded components come up with inert sinks; re-arm them from
        // the machine's (never-serialized) telemetry handle.
        self.redistribute_telemetry();
        Ok(())
    }

    /// Polls the [`FaultSite::CrashPoint`] site: `true` means the fault
    /// plan scheduled a crash at this op boundary. The caller (the
    /// deterministic-simulation harness) abandons the machine and
    /// restores the last snapshot.
    pub fn poll_crash_point(&mut self) -> bool {
        self.faults.fire_crash(CrashStage::OpBoundary)
    }

    /// Polls an *interior* crash stage (§DESIGN.md §13): a fault plan
    /// armed at `stage` can lose power in the middle of a multi-step
    /// transition. Returns [`PoError::Crashed`] when the scheduled crash
    /// fires; polls at other stages are invisible to the plan.
    fn interior_crash(&self, stage: CrashStage) -> PoResult<()> {
        if self.faults.fire_crash(stage) {
            return Err(PoError::Crashed(stage));
        }
        Ok(())
    }

    /// Disarms one fault site across every layer sharing the injector —
    /// used after a crash-point fires so the replayed suffix does not
    /// crash at the same op again.
    pub fn clear_fault_trigger(&mut self, site: FaultSite) {
        self.faults.clear_trigger(site);
    }

    /// Arms the deliberately-injected canary bug (skip exactly one OMS
    /// free on the next overlay destroy) used to prove the refinement
    /// oracle catches real accounting bugs. Test-only by intent.
    pub fn set_inject_oms_leak(&mut self, armed: bool) {
        self.xlate.set_inject_oms_leak(armed);
    }

    /// Arms the deliberately-injected race canary: the next single-line
    /// OBitVector-update message delivered to a remote core loses its
    /// coherence annotation — no [`TelemetryEvent::CohObitUpdate`], no
    /// message count, no delivery stall — while the functional TLB patch
    /// still lands. Byte state, the invariant sweep, and the refinement
    /// oracle are all blind to it by construction; only the
    /// happens-before analysis over the annotation stream can see the
    /// victim's next access ride a view that never observed the write.
    /// One-shot: disarms after firing. Test-only by intent.
    pub fn set_inject_obit_race(&mut self, armed: bool) {
        self.inject_obit_race = armed;
    }

    /// Whether the race canary is still armed (i.e. has not fired yet).
    pub fn obit_race_armed(&self) -> bool {
        self.inject_obit_race
    }

    /// Commits `vpn`'s overlay into a private physical frame (§4.3.4
    /// commit promotion, driven explicitly). The page ends overlay-free
    /// and writable; reads are unchanged.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay; propagates
    /// allocation failures from the privatization step.
    pub fn commit_overlay(&mut self, asid: Asid, vpn: Vpn) -> PoResult<()> {
        if !self.xlate.has_overlay(Opn::encode(asid, vpn)) {
            return Err(PoError::NoOverlay(Opn::encode(asid, vpn)));
        }
        self.materialize_overlay(asid, vpn)?;
        // The promotion dissolved the overlay and rewrote the PTE: a
        // cached translation would keep routing reads of formerly
        // overlaid lines to the dead overlay through its stale
        // OBitVector. Promotions are rare (§4.3.4), so a shootdown —
        // symmetric with discard — is the right coherence action.
        self.broadcast_shootdown(0, asid, vpn, ShootdownCause::OsPromotion);
        Ok(())
    }

    /// Discards `vpn`'s overlay (§4.3.4 discard promotion): the page
    /// reverts to its physical contents.
    ///
    /// # Errors
    ///
    /// [`PoError::NoOverlay`] if the page has no overlay.
    pub fn discard_overlay(&mut self, asid: Asid, vpn: Vpn) -> PoResult<()> {
        let opn = Opn::encode(asid, vpn);
        self.xlate.discard_overlay(opn)?;
        for l in 0..LINES_PER_PAGE {
            self.caches.invalidate_line(opn.line_addr(l));
        }
        self.broadcast_shootdown(0, asid, vpn, ShootdownCause::OsPromotion);
        Ok(())
    }

    /// Executes one core-level trace operation through the core model.
    /// Harness-level ops (process/overlay management) belong to the
    /// deterministic-simulation harness, not the core.
    ///
    /// # Errors
    ///
    /// Propagates access faults (unmapped addresses, protection);
    /// [`PoError::Corrupted`] for harness-level ops.
    pub fn execute(&mut self, asid: Asid, op: &crate::trace::TraceOp) -> PoResult<()> {
        self.execute_at_core(0, asid, op)
    }

    /// Executes one core-level trace operation on core `core`: the op
    /// issues through that core's private window and TLB, while caches,
    /// OMT, and DRAM are shared (and, with more than one core, subject
    /// to the contention models).
    ///
    /// # Errors
    ///
    /// Same as [`Machine::execute`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn execute_at_core(
        &mut self,
        core: usize,
        asid: Asid,
        op: &crate::trace::TraceOp,
    ) -> PoResult<()> {
        use crate::trace::TraceOp;
        match op {
            TraceOp::Compute(n) => {
                self.cores[core].issue_compute(*n as u64);
                self.sink.layer(Layer::Core, *n as u64);
                self.sink.instructions(*n as u64);
            }
            TraceOp::Load(va) => {
                let t = self.cores[core].next_issue_cycle();
                let lat = self.access_at_core(t, core, asid, *va, AccessKind::Read)?;
                self.cores[core].complete(t, lat);
                self.stats.loads.inc();
                self.sink.instructions(1);
            }
            TraceOp::Store(va) => {
                let t = self.cores[core].next_issue_cycle();
                let lat = self.access_at_core(t, core, asid, *va, AccessKind::Write)?;
                self.cores[core].complete(t, lat);
                self.stats.stores.inc();
                self.sink.instructions(1);
            }
            _ => {
                return Err(PoError::Corrupted(
                    "harness-level trace op handed to the core executor",
                ))
            }
        }
        Ok(())
    }

    /// Returns a snapshot of cumulative statistics (instructions, cycles,
    /// counters, memory metric).
    pub fn snapshot(&self) -> SimStats {
        let mut s = self.stats.clone();
        // Instructions add across cores; elapsed time is the slowest
        // core's retirement frontier (cores run concurrently).
        s.instructions = self.cores.iter().map(CoreModel::instructions).sum();
        s.cycles = self.cores.iter().map(CoreModel::cycles).max().unwrap_or(0);
        s.bus_bytes = self.dram.stats().bus_bytes.get();
        s.extra_memory_bytes = self.extra_memory_bytes();
        s
    }

    // ------------------------------------------------------------------
    // The memory-access path (Figure 6).
    // ------------------------------------------------------------------

    /// Performs a demand access at cycle `now` on core 0, returning its
    /// latency.
    ///
    /// # Errors
    ///
    /// [`PoError::Unmapped`] / [`PoError::ProtectionViolation`] on
    /// translation failures.
    pub fn access_at(
        &mut self,
        now: Cycle,
        asid: Asid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> PoResult<u64> {
        self.access_at_core(now, 0, asid, va, kind)
    }

    /// Performs a demand access at cycle `now` on core `core` (private
    /// TLB; shared caches and memory). Overlaying writes broadcast their
    /// OBitVector update to every other core's TLB via the coherence
    /// network (§4.3.3) — no shootdown.
    ///
    /// # Errors
    ///
    /// Same as [`Machine::access_at`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access_at_core(
        &mut self,
        now: Cycle,
        core: usize,
        asid: Asid,
        va: VirtAddr,
        kind: AccessKind,
    ) -> PoResult<u64> {
        let vpn = va.vpn();
        let line = va.line_in_page();
        let opn = Opn::encode(asid, vpn);
        let mut lat: u64 = 0;
        self.sink.set_now(now);
        self.sink.begin_access(kind.is_write(), va.raw());

        // 1. Translate (TLB, then walk + OMT OBitVector fetch on a miss).
        let lookup = self.tlbs[core].lookup(asid, vpn);
        lat += lookup.latency;
        self.sink.layer(Layer::Tlb, lookup.latency);
        let mut entry = match lookup.entry {
            Some(e) => e,
            None => {
                // The walk cost is the backend's: the overlay backend
                // pays the full 4-level radix walk, rivals their own.
                let walk = self.xlate.walk_cycles(self.tlbs[core].miss_penalty());
                lat += walk;
                self.sink.layer(Layer::Tlb, walk);
                let pte = self.xlate.walk(asid, va)?;
                let obitvec = if pte.flags.overlay_enabled {
                    // The walk fetches the OBitVector from the OMT
                    // (Figure 6), leaving the entry in the controller's
                    // OMT cache as a side effect.
                    self.xlate.fill_obitvec(opn)
                } else {
                    OBitVector::EMPTY
                };
                let e = TlbEntry { asid, vpn, pte, obitvec };
                self.tlbs[core].fill(e);
                if pte.flags.overlay_enabled && self.tlbs.len() > 1 {
                    self.sink
                        .emit(|| TelemetryEvent::CohFill { core: core as u32, opn: opn.raw() });
                }
                e
            }
        };
        if entry.pte.flags.overlay_enabled && self.tlbs.len() > 1 {
            self.sink.emit(|| TelemetryEvent::CohAccess {
                core: core as u32,
                opn: opn.raw(),
                line: line as u8,
                write: kind.is_write(),
            });
        }

        // 2. Stores to non-writable pages: CoW or overlaying write.
        if kind.is_write() && !entry.pte.flags.writable {
            if !entry.pte.flags.cow {
                return Err(PoError::ProtectionViolation(va));
            }
            if self.config.overlay_semantics() && entry.pte.flags.overlay_enabled {
                if !entry.obitvec.contains(line) {
                    lat +=
                        self.overlaying_write_path(now + lat, core, asid, vpn, line, &mut entry)?;
                }
                // A store to a line already in the overlay is a simple
                // write (§4.3.2): no extra work.
            } else {
                let cow = self.cow_fault_path(now + lat, core, asid, va, &mut entry)?;
                // The CoW path drives DRAM/caches directly (not through
                // fetch_line), so its whole latency is the CoW overhead.
                self.sink.layer(Layer::CowFault, cow);
                lat += cow;
            }
        }

        // 3. Pick the cache address: overlay or regular page (§4.3.1).
        let use_overlay = entry.pte.flags.overlay_enabled && entry.obitvec.contains(line);
        if entry.pte.flags.overlay_enabled {
            self.sink.emit(|| TelemetryEvent::OBitCheck {
                opn: opn.raw(),
                line: line as u8,
                set: use_overlay,
            });
        }
        let cache_addr = if use_overlay {
            opn.line_addr(line)
        } else {
            PhysAddr::new(entry.pte.ppn.line_addr(line).raw())
        };

        // 4. Caches, then memory.
        lat += self.fetch_line(now + lat, cache_addr, kind)?;
        self.sink.end_access(lat);
        Ok(lat)
    }

    /// Runs one line access through the hierarchy, going to memory (and
    /// the OMT) on a full miss. Returns the latency.
    fn fetch_line(&mut self, now: Cycle, cache_addr: PhysAddr, kind: AccessKind) -> PoResult<u64> {
        let out = self.caches.access(cache_addr, kind);
        let mut lat = out.latency;
        self.sink.layer(Layer::Cache, out.latency);
        self.handle_writebacks(now + lat, &out.writebacks)?;
        // Shared-resource contention (multi-core only): accesses that
        // reach the shared L3 queue on its bank port, and full misses
        // additionally take a DRAM-bandwidth token. Single-core runs
        // have `contention == None` and are byte-identical to before.
        if let Some(c) = self.contention.as_mut() {
            let reaches_l3 =
                matches!(out.result, LookupResult::Miss | LookupResult::Hit { level: Level::L3 });
            let mut stall = 0;
            if reaches_l3 {
                stall += c.l3.admit(now + lat, cache_addr);
            }
            if matches!(out.result, LookupResult::Miss) {
                stall += c.dram_bw.admit(now + lat + stall);
            }
            if stall > 0 {
                lat += stall;
                self.stats.contention_stall_cycles.add(stall);
                self.sink.layer(Layer::Contention, stall);
            }
        }
        if matches!(out.result, LookupResult::Miss) {
            let (mm_addr, extra) = self.resolve_memory(cache_addr, kind.is_write())?;
            self.sink.layer(Layer::OmtWalk, extra);
            lat += extra;
            let done = self.dram.read(now + lat, mm_addr);
            lat = done.saturating_sub(now);
            // Everything past the cache lookup and the OMT walk is the
            // DRAM round trip (bank timing + bus occupancy).
            self.sink.layer(Layer::Dram, lat.saturating_sub(out.latency + extra));
            let wbs = self.caches.fill(cache_addr, kind.is_write());
            self.handle_writebacks(done, &wbs)?;
        }
        // Prefetches are issued off the critical path. A miss to an
        // overlay address additionally triggers overlay-aware prefetch:
        // the hardware knows the OBitVector, so it prefetches the next
        // *present* overlay lines, skipping the holes that would break a
        // plain stream prefetcher (§5.2: "the hardware ... can
        // efficiently prefetch the overlay cache lines").
        let mut prefetches = out.prefetches;
        if cache_addr.is_overlay()
            && matches!(out.result, LookupResult::Miss)
            && self.config.hierarchy.prefetcher.enabled
        {
            prefetches.extend(self.overlay_prefetch_candidates(cache_addr));
        }
        for pf in prefetches {
            if self.caches.probe(pf) {
                continue;
            }
            if let Ok((mm_addr, _)) = self.resolve_memory(pf, false) {
                self.dram.read(now + lat, mm_addr);
                let wbs = self.caches.fill_prefetch(pf);
                self.handle_writebacks(now + lat, &wbs)?;
            }
        }
        Ok(lat)
    }

    /// Next present overlay lines after `addr`, following the OBitVector
    /// across page boundaries (consecutive VPNs have consecutive OPNs
    /// under the direct mapping, so the scan is a pure address walk).
    fn overlay_prefetch_candidates(&self, addr: PhysAddr) -> Vec<PhysAddr> {
        let degree = self.config.hierarchy.prefetcher.degree;
        let distance = self.config.hierarchy.prefetcher.distance;
        let opn = addr.opn();
        let (asid, vpn) = opn.decode();
        let mut out = Vec::with_capacity(degree);
        let mut line = addr.line_in_page() + 1;
        let mut page_off = 0u64;
        let mut obv = self.xlate.obitvec(opn).unwrap_or(OBitVector::EMPTY);
        for _ in 0..distance {
            if line >= LINES_PER_PAGE {
                line = 0;
                page_off += 1;
                let next = Opn::encode(asid, Vpn::new(vpn.raw() + page_off));
                match self.xlate.obitvec(next) {
                    Ok(v) => obv = v,
                    Err(_) => break, // no further overlays to stream
                }
            }
            if obv.contains(line) {
                let o = Opn::encode(asid, Vpn::new(vpn.raw() + page_off));
                out.push(o.line_addr(line));
                if out.len() >= degree {
                    break;
                }
            }
            line += 1;
        }
        out
    }

    /// Maps a cache (physical-space) address to a main-memory address,
    /// returning any extra latency (an OMT walk on an OMT-cache miss).
    fn resolve_memory(&mut self, addr: PhysAddr, modify: bool) -> PoResult<(MainMemAddr, u64)> {
        if addr.is_overlay() {
            let opn = addr.opn();
            let line = addr.line_in_page();
            // A functional overlaying write can leave its line resident
            // in the manager with no OMS home (allocation is lazy,
            // §4.3.3). The controller's first touch materializes it via
            // the normal eviction path instead of faulting.
            if self.xlate.line_needs_materialization(opn, line) {
                self.evict_line_reclaiming(opn, line)?;
            }
            let (mm, omt_hit) = self.xlate.controller_resolve(opn, line, modify)?;
            let extra = if omt_hit {
                0
            } else {
                self.xlate.omt_walk_cycles(self.config.overlay.omt_walk_latency)
            };
            if !omt_hit {
                self.sink.emit(|| TelemetryEvent::OmtWalk { opn: opn.raw(), latency: extra });
            }
            Ok((mm, extra))
        } else {
            Ok((MainMemAddr::new(addr.raw()), 0))
        }
    }

    /// Posts dirty evictions to memory; overlay-line evictions trigger
    /// the lazy OMS allocation of §4.3.3.
    fn handle_writebacks(&mut self, now: Cycle, writebacks: &[PhysAddr]) -> PoResult<()> {
        for &wb in writebacks {
            if wb.is_overlay() {
                let opn = wb.opn();
                let line = wb.line_in_page();
                match self.evict_line_reclaiming(opn, line) {
                    Ok(_) => {
                        if let Ok((mm, _)) = self.xlate.controller_resolve(opn, line, true) {
                            self.dram.write(now, mm);
                        }
                    }
                    // A stale writeback after a promotion/discard: drop it.
                    Err(PoError::NoOverlay(_)) | Err(PoError::LineNotInOverlay { .. }) => {}
                    Err(e) => return Err(e),
                }
            } else {
                self.dram.write(now, MainMemAddr::new(wb.raw()));
            }
        }
        Ok(())
    }

    /// Classic copy-on-write fault (Figure 3a): trap, copy 64 lines with
    /// full bank parallelism, remap with a TLB shootdown — all on the
    /// store's critical path.
    fn cow_fault_path(
        &mut self,
        now: Cycle,
        core: usize,
        asid: Asid,
        va: VirtAddr,
        entry: &mut TlbEntry,
    ) -> PoResult<u64> {
        let mut lat = self.config.cow_fault_overhead;
        let old_ppn = entry.pte.ppn;
        let outcome = self.prepare_write_retrying(asid, va)?;
        self.stats.cow_faults.inc();

        if let Some(new_ppn) = outcome.new_ppn {
            // Copy the page: 64 reads issued together (high MLP), writes
            // posted through the write buffer.
            let t0 = now + lat;
            let src = MainMemAddr::new(old_ppn.base().raw());
            let dst = MainMemAddr::new(new_ppn.base().raw());
            let mut done_max = t0;
            for l in 0..LINES_PER_PAGE as u64 {
                let d = self.dram.read(t0, src.add(l * LINE_SIZE as u64));
                done_max = done_max.max(d);
                self.dram.write(d, dst.add(l * LINE_SIZE as u64));
            }
            lat += done_max - t0;
            // The copy pollutes the cache hierarchy with the whole page
            // (the paper's analysis of Type-2 benchmarks, §5.1).
            for l in 0..LINES_PER_PAGE {
                let addr = PhysAddr::new(new_ppn.line_addr(l).raw());
                let wbs = self.caches.fill(addr, true);
                self.handle_writebacks(done_max, &wbs)?;
            }
            self.stats.pages_copied.inc();
        }

        if outcome.tlb_shootdown {
            lat += self.config.tlb_shootdown_latency;
            if self.faults.fire(FaultSite::TlbShootdownTimeout) {
                // A straggler core acked the IPI late: one extra
                // round-trip of shootdown latency, correctness unchanged.
                lat += self.config.tlb_shootdown_latency;
            }
            self.broadcast_shootdown(core, asid, va.vpn(), ShootdownCause::CowRemap);
        }

        // The handler installs the new translation before returning.
        let pte = self.xlate.walk(asid, va)?;
        let new_entry = TlbEntry { asid, vpn: va.vpn(), pte, obitvec: OBitVector::EMPTY };
        self.tlbs[core].fill(new_entry);
        if pte.flags.overlay_enabled && self.tlbs.len() > 1 {
            let opn = Opn::encode(asid, va.vpn());
            self.sink.emit(|| TelemetryEvent::CohFill { core: core as u32, opn: opn.raw() });
        }
        *entry = new_entry;
        Ok(lat)
    }

    /// Overlay-on-write (Figure 3b, §4.3.3): fetch the line, retag it
    /// into the overlay address space, broadcast the overlaying-read-
    /// exclusive message, and continue — no page copy, no shootdown, no
    /// OS involvement.
    fn overlaying_write_path(
        &mut self,
        now: Cycle,
        core: usize,
        asid: Asid,
        vpn: Vpn,
        line: usize,
        entry: &mut TlbEntry,
    ) -> PoResult<u64> {
        let opn = Opn::encode(asid, vpn);
        let phys_addr = PhysAddr::new(entry.pte.ppn.line_addr(line).raw());
        let overlay_addr = opn.line_addr(line);

        // Step 1: bring the original line into the cache (read path) and
        // update its tag to the overlay page (§4.3.3 step 1).
        let mut lat = self.fetch_line(now, phys_addr, AccessKind::Read)?;
        let data = self.mem.read_line(MainMemAddr::new(phys_addr.raw()));
        let (wbs, _) = self.caches.retag(phys_addr, overlay_addr);
        self.handle_writebacks(now + lat, &wbs)?;

        // Step 2: coherence-carried OBitVector update, broadcast to
        // every core's TLB over the coherence network (no shootdown).
        lat += self.config.coherence_update_latency;
        // fetch_line above already attributed its cycles to the cache/
        // DRAM layers; only the coherence broadcast is overlay overhead.
        self.sink.layer(Layer::OverlayWrite, self.config.coherence_update_latency);
        if self.tlbs.len() > 1 {
            self.stats.coherence_read_exclusive.inc();
            self.sink.emit(|| TelemetryEvent::CohReadExclusive {
                core: core as u32,
                opn: opn.raw(),
                line: line as u8,
            });
        }
        let mut remote_updates = 0u64;
        for (i, tlb) in self.tlbs.iter_mut().enumerate() {
            if tlb.coherence_obit_update(asid, vpn, line, true) && i != core {
                if self.inject_obit_race {
                    // Race canary: this delivery's annotation is lost in
                    // flight — the TLB patch above landed, but the
                    // message never shows up in the event stream or the
                    // message/stall accounting. One-shot.
                    self.inject_obit_race = false;
                    continue;
                }
                remote_updates += 1;
                self.sink.emit(|| TelemetryEvent::CohObitUpdate {
                    src: core as u32,
                    dest: i as u32,
                    opn: opn.raw(),
                    line: line as u8,
                });
            }
        }
        if remote_updates > 0 {
            // A remote core actually held a copy: the single-line
            // OBitVector update message crosses the network and the
            // store stalls for one extra delivery round.
            self.stats.coherence_obit_msgs.add(remote_updates);
            let stall = self.config.coherence_update_latency;
            lat += stall;
            self.stats.coherence_stall_cycles.add(stall);
            self.sink.layer(Layer::Contention, stall);
        }
        self.xlate.overlaying_write(opn, line, data)?;
        entry.obitvec.set(line);
        self.stats.overlaying_writes.inc();

        // Optional promotion (§4.3.4) once the overlay covers enough of
        // the page.
        if entry.obitvec.len() >= self.config.promote_threshold {
            let promo = self.promote(now + lat, core, asid, vpn, entry)?;
            self.sink.layer(Layer::Promotion, promo);
            lat += promo;
        }
        Ok(lat)
    }

    /// Copy-and-commit promotion: materialize the merged page in a fresh
    /// frame and retire the overlay.
    fn promote(
        &mut self,
        now: Cycle,
        core: usize,
        asid: Asid,
        vpn: Vpn,
        entry: &mut TlbEntry,
    ) -> PoResult<u64> {
        let opn = Opn::encode(asid, vpn);
        let old_ppn = entry.pte.ppn;
        // The page must become private: reuse the CoW machinery to get a
        // fresh writable frame, then merge the overlay into it.
        let outcome = self.prepare_write_retrying(asid, vpn.base())?;
        // Privatized (page table updated) but the overlay still live:
        // the §4.3.4 promotion window the DST harness crashes inside.
        self.interior_crash(CrashStage::MidPromotion)?;
        let new_ppn = outcome.new_ppn.unwrap_or(old_ppn);
        let src = MainMemAddr::new(old_ppn.base().raw());
        let dst = MainMemAddr::new(new_ppn.base().raw());
        // prepare_write already copied old→new if the frame was shared,
        // so committing the overlay on top of dst yields the merged page
        // (for the sole-owner case src == dst and the copy is implicit).
        self.xlate.commit_overlay_to(opn, dst, &mut self.mem)?;
        // Invalidate stale overlay-tagged lines.
        for l in 0..LINES_PER_PAGE {
            self.caches.invalidate_line(opn.line_addr(l));
        }
        // Remap: shootdown + refreshed entry with a cleared OBitVector.
        let mut lat = self.config.tlb_shootdown_latency;
        if self.faults.fire(FaultSite::TlbShootdownTimeout) {
            // Straggler ack: pay one extra shootdown round-trip.
            lat += self.config.tlb_shootdown_latency;
        }
        self.broadcast_shootdown(core, asid, vpn, ShootdownCause::CorePromotion);
        let multi = self.tlbs.len() > 1;
        let pte = self.xlate.walk(asid, vpn.base())?;
        let new_entry = TlbEntry { asid, vpn, pte, obitvec: OBitVector::EMPTY };
        self.tlbs[core].fill(new_entry);
        if multi && pte.flags.overlay_enabled {
            self.sink.emit(|| TelemetryEvent::CohFill { core: core as u32, opn: opn.raw() });
        }
        *entry = new_entry;
        // Copy cost: the page copy ran through DRAM.
        let t0 = now;
        let mut done_max = t0;
        for l in 0..LINES_PER_PAGE as u64 {
            let d = self.dram.read(t0, src.add(l * LINE_SIZE as u64));
            done_max = done_max.max(d);
            self.dram.write(d, dst.add(l * LINE_SIZE as u64));
        }
        lat += done_max - t0;
        self.stats.promotions.inc();
        Ok(lat)
    }

    // ------------------------------------------------------------------
    // Functional (untimed) access path — used by examples and
    // correctness oracles.
    // ------------------------------------------------------------------

    /// Functionally writes one byte, honoring overlay semantics: a write
    /// to a CoW page in overlay mode lands in the overlay; otherwise the
    /// classic OS path is used.
    ///
    /// # Errors
    ///
    /// Propagates translation/protection failures.
    pub fn poke(&mut self, asid: Asid, va: VirtAddr, value: u8) -> PoResult<()> {
        let pte = self.xlate.walk(asid, va)?;
        let vpn = va.vpn();
        let opn = Opn::encode(asid, vpn);
        let line = va.line_in_page();
        let in_overlay = self.xlate.obitvec(opn).map(|v| v.contains(line)).unwrap_or(false);
        let overlay_write = pte.flags.overlay_enabled
            && (in_overlay
                || (self.config.overlay_semantics() && pte.flags.cow && !pte.flags.writable));
        if overlay_write {
            let phys = MainMemAddr::new(pte.ppn.line_addr(line).raw());
            let mut data = self.xlate.resolve_read(opn, line, phys, &self.mem)?;
            data.as_mut_bytes()[va.line_offset()] = value;
            if in_overlay {
                self.xlate.write_overlay_line(opn, line, data)?;
            } else {
                self.xlate.overlaying_write(opn, line, data)?;
                // Functional oracle path: no message is modeled, only the
                // end state — the timed path accounts the traffic.
                for tlb in &mut self.tlbs {
                    // po-analyze: allow(PA-L006)
                    tlb.coherence_obit_update(asid, vpn, line, true);
                }
            }
            Ok(())
        } else {
            self.xlate.write_byte(asid, va, value, &mut self.mem).map(|_| ())
        }
    }

    /// Functionally reads one byte with overlay semantics (§2.1).
    ///
    /// # Errors
    ///
    /// Propagates translation failures.
    pub fn peek(&self, asid: Asid, va: VirtAddr) -> PoResult<u8> {
        let pte = self.xlate.walk(asid, va)?;
        let vpn = va.vpn();
        let opn = Opn::encode(asid, vpn);
        let line = va.line_in_page();
        let phys = MainMemAddr::new(pte.ppn.line_addr(line).raw());
        if pte.flags.overlay_enabled {
            let data = self.xlate.resolve_read(opn, line, phys, &self.mem)?;
            Ok(data.as_bytes()[va.line_offset()])
        } else {
            Ok(self.mem.read_line(phys).as_bytes()[va.line_offset()])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceOp;

    fn machine(overlay_mode: bool) -> (Machine, Asid) {
        let config =
            if overlay_mode { SystemConfig::table2_overlay() } else { SystemConfig::table2() };
        let mut m = Machine::new(config).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(0x100), 16).unwrap();
        (m, pid)
    }

    fn va(page: u64, line: u64) -> VirtAddr {
        VirtAddr::new((0x100 + page) * PAGE_SIZE as u64 + line * LINE_SIZE as u64)
    }

    #[test]
    fn cold_access_costs_tlb_walk_and_dram() {
        let (mut m, pid) = machine(false);
        let lat = m.access_at(0, pid, va(0, 0), AccessKind::Read).unwrap();
        assert!(lat > 1000, "cold access must include the 1000-cycle walk, got {lat}");
        let lat2 = m.access_at(lat, pid, va(0, 0), AccessKind::Read).unwrap();
        assert!(lat2 <= 3, "hot access is an L1 + TLB hit, got {lat2}");
    }

    #[test]
    fn cow_store_copies_page_on_critical_path() {
        let (mut m, pid) = machine(false);
        m.poke(pid, va(0, 0), 7).unwrap();
        let _child = m.fork(pid).unwrap();
        m.mark_memory_epoch();
        let lat = m.access_at(0, pid, va(0, 0), AccessKind::Write).unwrap();
        assert!(
            lat > m.config().cow_fault_overhead + m.config().tlb_shootdown_latency,
            "CoW store must pay fault + copy + shootdown, got {lat}"
        );
        assert_eq!(m.snapshot().pages_copied.get(), 1);
        assert_eq!(m.extra_memory_bytes(), PAGE_SIZE as u64);
    }

    #[test]
    fn overlay_store_is_much_cheaper_than_cow() {
        let (mut m_cow, pid_c) = machine(false);
        let (mut m_ovl, pid_o) = machine(true);
        for (m, pid) in [(&mut m_cow, pid_c), (&mut m_ovl, pid_o)] {
            m.poke(pid, va(0, 0), 1).unwrap();
            let _ = m.fork(pid).unwrap();
            m.mark_memory_epoch();
        }
        let lat_cow = m_cow.access_at(0, pid_c, va(0, 0), AccessKind::Write).unwrap();
        let lat_ovl = m_ovl.access_at(0, pid_o, va(0, 0), AccessKind::Write).unwrap();
        assert!(
            lat_ovl * 2 < lat_cow,
            "overlaying write ({lat_ovl}) must be far cheaper than CoW ({lat_cow})"
        );
        assert_eq!(m_ovl.snapshot().overlaying_writes.get(), 1);
        assert_eq!(m_ovl.snapshot().pages_copied.get(), 0);
    }

    #[test]
    fn overlay_memory_is_line_granular() {
        let (mut m, pid) = machine(true);
        m.poke(pid, va(0, 0), 1).unwrap();
        let _child = m.fork(pid).unwrap();
        m.mark_memory_epoch();
        // One store → one overlay line.
        m.access_at(0, pid, va(0, 3), AccessKind::Write).unwrap();
        m.flush_overlays().unwrap();
        let extra = m.extra_memory_bytes();
        assert!(extra <= 256, "one diverged line must cost one small segment, got {extra} bytes");
    }

    #[test]
    fn overlay_reads_come_from_overlay_after_divergence() {
        let (mut m, pid) = machine(true);
        m.poke(pid, va(0, 0), 0x11).unwrap();
        let child = m.fork(pid).unwrap();
        m.poke(pid, va(0, 0), 0x22).unwrap(); // parent diverges via overlay
        assert_eq!(m.peek(pid, va(0, 0)).unwrap(), 0x22);
        assert_eq!(m.peek(child, va(0, 0)).unwrap(), 0x11, "child unaffected");
    }

    #[test]
    fn fork_isolation_matches_under_both_modes() {
        // DESIGN.md invariant 4: parent/child isolation identical in CoW
        // and OoW modes.
        for mode in [false, true] {
            let (mut m, pid) = machine(mode);
            for i in 0..32u64 {
                m.poke(pid, va(i % 4, i % 64), i as u8).unwrap();
            }
            let child = m.fork(pid).unwrap();
            for i in 0..32u64 {
                m.poke(pid, va(i % 4, i % 64), 100 + i as u8).unwrap();
            }
            for i in 0..32u64 {
                let child_sees = m.peek(child, va(i % 4, i % 64)).unwrap();
                let parent_sees = m.peek(pid, va(i % 4, i % 64)).unwrap();
                assert_eq!(parent_sees, 100 + i as u8, "mode={mode}");
                assert_ne!(child_sees, parent_sees, "mode={mode} i={i}");
            }
        }
    }

    #[test]
    fn execute_accumulates_instructions_and_cycles() {
        let (mut m, pid) = machine(false);
        m.execute(pid, &TraceOp::Compute(100)).unwrap();
        m.execute(pid, &TraceOp::Load(va(0, 0))).unwrap();
        m.execute(pid, &TraceOp::Store(va(0, 1))).unwrap();
        let s = m.snapshot();
        assert_eq!(s.instructions, 102);
        assert_eq!(s.loads.get(), 1);
        assert_eq!(s.stores.get(), 1);
        assert!(s.cycles > 1000, "TLB walk dominates the first access");
    }

    #[test]
    fn unmapped_access_errors() {
        let (mut m, pid) = machine(false);
        assert!(matches!(
            m.access_at(0, pid, VirtAddr::new(0xdead_f000), AccessKind::Read),
            Err(PoError::Unmapped(_))
        ));
    }

    #[test]
    fn machine_snapshot_round_trip_is_byte_identical() {
        let (mut m, pid) = machine(true);
        m.poke(pid, va(0, 0), 1).unwrap();
        let child = m.fork(pid).unwrap();
        for i in 0..40u64 {
            m.access_at(i * 10, pid, va(i % 4, i % 64), AccessKind::Write).unwrap();
        }
        m.flush_overlays().unwrap();
        m.mark_memory_epoch();
        let bytes = m.save_snapshot();

        // Restoring into a fresh machine of the same config reproduces
        // the bytes and the observable state.
        let mut fresh = Machine::new(SystemConfig::table2_overlay()).unwrap();
        fresh.restore_snapshot(&bytes).unwrap();
        assert_eq!(fresh.save_snapshot(), bytes);
        fresh.verify_invariants().unwrap();
        assert_eq!(fresh.peek(pid, va(0, 0)).unwrap(), m.peek(pid, va(0, 0)).unwrap());
        assert_eq!(fresh.peek(child, va(0, 0)).unwrap(), 1);

        // And the two machines stay in lockstep on further execution.
        for i in 0..10u64 {
            m.access_at(0, pid, va(i % 4, (i * 7) % 64), AccessKind::Write).unwrap();
            fresh.access_at(0, pid, va(i % 4, (i * 7) % 64), AccessKind::Write).unwrap();
        }
        assert_eq!(fresh.save_snapshot(), m.save_snapshot());
    }

    #[test]
    fn snapshot_rejects_wrong_config_and_corruption() {
        let (m, _) = machine(true);
        let bytes = m.save_snapshot();
        let mut other = Machine::new(SystemConfig::table2()).unwrap();
        assert!(matches!(other.restore_snapshot(&bytes), Err(PoError::Corrupted(_))));
        let mut same = Machine::new(SystemConfig::table2_overlay()).unwrap();
        assert!(same.restore_snapshot(&bytes[..bytes.len() - 1]).is_err());
        let mut garbled = bytes.clone();
        garbled[0] ^= 0xFF; // magic
        assert!(same.restore_snapshot(&garbled).is_err());
        same.restore_snapshot(&bytes).unwrap();
    }

    #[test]
    fn commit_and_discard_overlay_change_page_contents_correctly() {
        let (mut m, pid) = machine(true);
        m.poke(pid, va(1, 2), 0x11).unwrap();
        let _child = m.fork(pid).unwrap();
        m.poke(pid, va(1, 2), 0x22).unwrap(); // diverges via overlay
        assert!(m.overlay().has_overlay(Opn::encode(pid, va(1, 2).vpn())));
        // Commit keeps the new value but drops the overlay.
        m.commit_overlay(pid, va(1, 2).vpn()).unwrap();
        assert!(!m.overlay().has_overlay(Opn::encode(pid, va(1, 2).vpn())));
        assert_eq!(m.peek(pid, va(1, 2)).unwrap(), 0x22);

        // Discard reverts to the pre-divergence contents.
        let child2 = m.fork(pid).unwrap();
        m.poke(pid, va(1, 2), 0x33).unwrap();
        assert_eq!(m.peek(pid, va(1, 2)).unwrap(), 0x33);
        m.discard_overlay(pid, va(1, 2).vpn()).unwrap();
        assert_eq!(m.peek(pid, va(1, 2)).unwrap(), 0x22);
        assert_eq!(m.peek(child2, va(1, 2)).unwrap(), 0x22);
        assert!(matches!(m.discard_overlay(pid, Vpn::new(0x9999)), Err(PoError::NoOverlay(_))));
    }

    fn mc_machine(cores: usize, promote_threshold: usize) -> (Machine, Asid) {
        let config = SystemConfig { cores, promote_threshold, ..SystemConfig::table2_overlay() };
        let mut m = Machine::new(config).unwrap();
        let pid = m.spawn_process().unwrap();
        m.map_range(pid, Vpn::new(0x100), 16).unwrap();
        (m, pid)
    }

    #[test]
    fn cross_core_promotion_invalidates_remote_tlb_obitvec_copies() {
        let (mut m, pid) = mc_machine(2, 4);
        m.poke(pid, va(0, 0), 1).unwrap();
        let _child = m.fork(pid).unwrap();
        // Both cores read the shared page: each private TLB now holds a
        // copy of its OBitVector.
        m.access_at_core(0, 0, pid, va(0, 0), AccessKind::Read).unwrap();
        m.access_at_core(0, 1, pid, va(0, 0), AccessKind::Read).unwrap();
        // Core 0 diverges line after line: every overlaying write must
        // deliver the §4.3.3 single-line update to core 1's live copy,
        // and the write that crosses the promotion threshold must shoot
        // core 1's entry down.
        let mut now = 0;
        for line in 0..4u64 {
            now += m.access_at_core(now, 0, pid, va(0, line), AccessKind::Write).unwrap();
        }
        let s = m.snapshot();
        assert!(s.promotions.get() > 0, "threshold 4 must promote after 4 diverged lines");
        assert!(
            s.coherence_obit_msgs.get() > 0,
            "core 1 held a copy — overlaying writes must update it remotely"
        );
        assert!(
            s.coherence_invalidations.get() > 0,
            "the promotion must invalidate core 1's obitvec copy"
        );
        assert!(s.coherence_stall_cycles.get() > 0, "remote updates cost delivery cycles");
        assert!(
            s.coherence_read_exclusive.get() >= 4,
            "each overlaying write issues an overlaying-read-exclusive"
        );
    }

    #[test]
    fn single_core_machine_generates_no_coherence_traffic() {
        let (mut m, pid) = mc_machine(1, 4);
        m.poke(pid, va(0, 0), 1).unwrap();
        let _child = m.fork(pid).unwrap();
        let mut now = 0;
        for line in 0..4u64 {
            now += m.access_at(now, pid, va(0, line), AccessKind::Write).unwrap();
        }
        let s = m.snapshot();
        assert!(s.promotions.get() > 0);
        assert_eq!(s.coherence_read_exclusive.get(), 0);
        assert_eq!(s.coherence_obit_msgs.get(), 0);
        assert_eq!(s.coherence_invalidations.get(), 0);
        assert_eq!(s.contention_stall_cycles.get(), 0);
    }

    #[test]
    fn multicore_snapshot_round_trips_and_continues_in_lockstep() {
        let (mut m, pid) = mc_machine(4, 64);
        m.poke(pid, va(0, 0), 1).unwrap();
        let _child = m.fork(pid).unwrap();
        // Distinct per-core histories: frontiers, window residue, TLB
        // contents, and contention-queue state all differ across cores.
        for i in 0..60u64 {
            let core = (i % 4) as usize;
            m.execute_at_core(core, pid, &TraceOp::Store(va(i % 8, (i * 7) % 64))).unwrap();
            m.execute_at_core(core, pid, &TraceOp::Compute(1 + (core as u32))).unwrap();
        }
        let bytes = m.save_snapshot();
        let mut twin = Machine::new(m.config().clone()).unwrap();
        twin.restore_snapshot(&bytes).unwrap();
        assert_eq!(twin.save_snapshot(), bytes, "restore must be byte-identical");
        for c in 0..4 {
            assert_eq!(twin.core_cycles(c), m.core_cycles(c), "core {c} frontier");
            assert_eq!(
                twin.core_of(c).instructions(),
                m.core_of(c).instructions(),
                "core {c} instructions"
            );
        }
        // Lockstep continuation across every core.
        for i in 0..24u64 {
            let core = (i % 4) as usize;
            let op = TraceOp::Load(va((i * 3) % 8, (i * 11) % 64));
            m.execute_at_core(core, pid, &op).unwrap();
            twin.execute_at_core(core, pid, &op).unwrap();
        }
        assert_eq!(twin.save_snapshot(), m.save_snapshot(), "lockstep continuation diverged");

        // A machine configured with a different core count must refuse
        // the snapshot rather than misassign per-core state.
        let mut wrong =
            Machine::new(SystemConfig { cores: 2, ..SystemConfig::table2_overlay() }).unwrap();
        assert!(matches!(wrong.restore_snapshot(&bytes), Err(PoError::Corrupted(_))));
    }

    #[test]
    fn simple_write_after_overlaying_write_is_cheap() {
        let (mut m, pid) = machine(true);
        m.poke(pid, va(0, 0), 1).unwrap();
        let _child = m.fork(pid).unwrap();
        let first = m.access_at(0, pid, va(0, 5), AccessKind::Write).unwrap();
        let second = m.access_at(first, pid, va(0, 5), AccessKind::Write).unwrap();
        assert!(second < 10, "simple overlay write must be a cache hit, got {second}");
        assert!(first > second);
    }
}
