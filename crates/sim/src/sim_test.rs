//! Deterministic simulation testing: the differential harness, the
//! seeded op-stream generator, the crash-convergence runner, and the
//! trace shrinker (DESIGN.md §8).
//!
//! The pieces compose into two test shapes:
//!
//! * **Differential run** — [`SimHarness::apply`] executes one
//!   [`TraceOp`] against the machine *and* the [`DiffOracle`], probing
//!   the machine for routing (does this write land in an overlay?) while
//!   the oracle independently tracks every byte's expected value. Each
//!   `Peek` is compared on the spot; [`SimHarness::check_all`] sweeps at
//!   the end; [`Machine::verify_invariants`] runs after every op.
//! * **Crash convergence** — [`run_crash_convergence`] runs the same
//!   trace twice: a golden run, and a run that crashes at a scheduled
//!   [`FaultSite::CrashPoint`] query, restores the last
//!   [`Machine::save_snapshot`], replays the journaled op suffix (after
//!   a round-trip through [`crate::trace_io`]), and must end
//!   byte-identical to the golden snapshot.
//!
//! Harness-level ops resolve their `proc_sel` modulo the live process
//! count and clamp page numbers into a bounded window, so **every
//! subsequence of a valid trace is itself valid** — the property the
//! [`shrink_ops`] delta-debugging loop relies on.

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::oracle::DiffOracle;
use crate::runner::drive_ops;
use crate::spec_mirror::SpecMirror;
use crate::trace::TraceOp;
use crate::trace_io::{read_trace, write_trace};
use po_spec::{SpecOp, SpecOutcome};
use po_telemetry::TelemetrySink;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{Asid, CrashStage, FaultPlan, FaultSite, LineData, Opn, PoError, VirtAddr, Vpn};

/// Journal/span ring capacity the traced harness entry points install:
/// enough context to see what led up to a divergence, small enough to
/// dump next to a shrunk trace.
pub const FAILURE_EVENT_TAIL: usize = 256;

/// First virtual page the generator maps (mirrors the scenario setups).
pub const VPN_BASE: u64 = 0x100;
/// Harness-level VPNs are taken modulo this span (fits the 36-bit OPN
/// VPN field with slack, keeps arbitrary trace files safe to replay).
/// Public so static analysis (po-analyze) models the same clamping.
pub const MAX_VPN_SPAN: u64 = 1 << 20;
/// Upper bound on pages a single `Map` op may create. Public for the
/// same reason as [`MAX_VPN_SPAN`].
pub const MAX_MAP_PAGES: u32 = 64;

/// Machine errors the harness treats as benign outcomes of an op (the
/// op is skipped; resource exhaustion and unmapped targets are normal
/// under fault injection and random traces). Everything else is a bug.
fn benign(e: &PoError) -> bool {
    matches!(
        e,
        PoError::Unmapped(_)
            | PoError::OutOfMemory
            | PoError::OverlayStoreExhausted
            | PoError::NoOverlay(_)
    )
}

fn clamp_va(va: VirtAddr) -> VirtAddr {
    VirtAddr::new(va.raw() % (MAX_VPN_SPAN * PAGE_SIZE as u64))
}

fn clamp_vpn(vpn: u64) -> Vpn {
    Vpn::new(vpn % MAX_VPN_SPAN)
}

/// Where a functional write will land, per the machine's own state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Route {
    Unmapped,
    Base,
    Delta,
}

/// How [`SimHarness::apply_inner`] stopped short of a clean op: a
/// scheduled interior crash (normal under the crash-convergence
/// runners, a finding everywhere else), or a genuine failure.
enum Interrupt {
    Crash(CrashStage),
    Fail(String),
}

impl From<String> for Interrupt {
    fn from(e: String) -> Self {
        Interrupt::Fail(e)
    }
}

/// Classifies a hard machine error: a simulated power loss becomes
/// [`Interrupt::Crash`] (the site-specific message is dropped — the
/// stage says everything), anything else keeps its description.
fn interrupt(e: &PoError, msg: String) -> Interrupt {
    match e {
        PoError::Crashed(stage) => Interrupt::Crash(*stage),
        _ => Interrupt::Fail(msg),
    }
}

/// The differential harness: a [`Machine`] and its [`DiffOracle`] in
/// lockstep, plus the live process list that `proc_sel` selectors
/// resolve against.
pub struct SimHarness {
    /// The machine under test.
    pub machine: Machine,
    /// The reference byte model.
    pub oracle: DiffOracle,
    /// Live processes in spawn order.
    pub procs: Vec<Asid>,
    /// The executable spec stepped in lockstep; refinement is asserted
    /// against it after every clean op (DESIGN.md §13).
    pub spec: SpecMirror,
    /// Core the next timed op issues on (set by [`TraceOp::OnCore`],
    /// already resolved modulo the configured core count; 0 initially).
    pub current_core: usize,
    /// Test-only deliberate bug: a `Poke` of `0x42` writes `0x43` into
    /// the machine (the oracle keeps `0x42`) — used to prove the fuzzer
    /// detects and shrinks real divergence.
    pub inject_bug: bool,
    /// Set when the last op was cut short by a scheduled interior crash;
    /// consumed by [`SimHarness::take_crashed`].
    crashed: Option<CrashStage>,
}

impl SimHarness {
    /// Creates a harness with no processes and no fault plan.
    ///
    /// # Errors
    ///
    /// Propagates machine construction failures.
    pub fn new(config: SystemConfig) -> po_types::PoResult<Self> {
        let spec = SpecMirror::new(&config);
        Ok(Self {
            machine: Machine::new(config)?,
            oracle: DiffOracle::new(),
            procs: Vec::new(),
            spec,
            current_core: 0,
            inject_bug: false,
            crashed: None,
        })
    }

    /// [`SimHarness::new`] plus an installed [`FaultPlan`].
    ///
    /// # Errors
    ///
    /// Propagates machine construction failures.
    pub fn with_fault_plan(config: SystemConfig, plan: FaultPlan) -> po_types::PoResult<Self> {
        let mut h = Self::new(config)?;
        h.machine.install_fault_plan(plan);
        Ok(h)
    }

    /// Arms the machine with an active telemetry sink whose journal and
    /// span rings hold `capacity` entries, so a later failure report can
    /// include the event tail ([`SimHarness::telemetry_tail`]).
    pub fn enable_telemetry(&mut self, capacity: usize) {
        self.machine.install_telemetry(TelemetrySink::with_capacity(capacity, capacity));
    }

    /// Last `n` journal events as JSONL (empty when telemetry is off).
    #[must_use]
    pub fn telemetry_tail(&self, n: usize) -> String {
        self.machine.telemetry().tail_jsonl(n)
    }

    fn resolve(&self, sel: u32) -> Option<Asid> {
        if self.procs.is_empty() {
            None
        } else {
            Some(self.procs[sel as usize % self.procs.len()])
        }
    }

    /// Applies one op to the machine, the oracle, and the spec mirror,
    /// then re-syncs committed overlays, asserts refinement against the
    /// spec, and checks machine invariants.
    ///
    /// A scheduled interior crash is **not** an error here: the op stops
    /// mid-transition, [`SimHarness::take_crashed`] reports the stage,
    /// and the post-op checks are skipped (the machine is deliberately
    /// half-way through a transition — the crash-convergence runner
    /// judges it with [`SimHarness::check_interior_crash`] instead).
    ///
    /// # Errors
    ///
    /// `Err` means **divergence, a refinement violation, or an
    /// unexpected machine failure** — a genuine finding, not a benign
    /// skip.
    pub fn apply(&mut self, op: &TraceOp) -> Result<(), String> {
        match self.apply_inner(op) {
            Ok(()) => {}
            Err(Interrupt::Crash(stage)) => {
                self.crashed = Some(stage);
                return Ok(());
            }
            Err(Interrupt::Fail(e)) => return Err(e),
        }
        self.sync_committed();
        // Refinement runs before the machine's own invariant sweep so a
        // semantic bug is attributed to the spec oracle even when it
        // also corrupts an internal accounting invariant.
        self.spec.reconcile(&self.machine);
        self.spec
            .check_refinement(&self.machine, &self.procs)
            .map_err(|e| format!("spec refinement violated after {op:?}: {e}"))?;
        self.machine
            .verify_invariants()
            .map_err(|e| format!("invariant violated after {op:?}: {e:?}"))
    }

    /// The stage of the interior crash that cut the last op short, if
    /// any. Consuming: the flag resets so the next op starts clean.
    pub fn take_crashed(&mut self) -> Option<CrashStage> {
        self.crashed.take()
    }

    /// The spec op mirroring `op`'s target, for interior-crash
    /// legality. `None` when the op has no single target page (timed
    /// reads, flush, reclaim) or resolves to no process.
    fn interior_spec_op(&self, op: &TraceOp) -> Option<SpecOp> {
        match *op {
            TraceOp::Store(va) => {
                let pid = self.spec.pid_of(self.procs.first().copied()?)?;
                Some(SpecOp::Write {
                    pid,
                    vpn: va.vpn().raw(),
                    line: va.line_in_page(),
                    timed: true,
                })
            }
            TraceOp::Fork { proc_sel } => {
                let pid = self.spec.pid_of(self.resolve(proc_sel)?)?;
                Some(SpecOp::Fork { parent: pid })
            }
            TraceOp::SeedLine { proc_sel, vpn, line, .. } => {
                let pid = self.spec.pid_of(self.resolve(proc_sel)?)?;
                Some(SpecOp::SeedLine {
                    pid,
                    vpn: clamp_vpn(vpn).raw(),
                    line: line as usize % LINES_PER_PAGE,
                })
            }
            TraceOp::CommitPage { proc_sel, vpn } => {
                let pid = self.spec.pid_of(self.resolve(proc_sel)?)?;
                Some(SpecOp::Commit { pid, vpn: clamp_vpn(vpn).raw() })
            }
            TraceOp::DiscardPage { proc_sel, vpn } => {
                let pid = self.spec.pid_of(self.resolve(proc_sel)?)?;
                Some(SpecOp::Discard { pid, vpn: clamp_vpn(vpn).raw() })
            }
            _ => None,
        }
    }

    /// After an interior crash inside `op`: asserts the machine froze in
    /// a state the spec's [`po_spec::SpecState::admits_interior`]
    /// membership test accepts.
    ///
    /// # Errors
    ///
    /// The machine is in a mid-transition state the spec declares
    /// unreachable.
    pub fn check_interior_crash(&self, op: &TraceOp) -> Result<(), String> {
        let spec_op = self.interior_spec_op(op);
        self.spec.check_interior(&self.machine, &self.procs, spec_op.as_ref())
    }

    /// Oracle-side bookkeeping for commits the harness did not issue
    /// itself: promotions and pressure-driven collapses fold an overlay
    /// into its physical page from deep inside the timed path. An
    /// overlay the machine no longer has can never be discarded again,
    /// so its delta becomes permanent.
    fn sync_committed(&mut self) {
        for (asid, vpn) in self.oracle.delta_pages() {
            if !self.machine.overlay().has_overlay(Opn::encode(asid, vpn)) {
                self.oracle.merge_delta(asid, vpn);
            }
        }
    }

    /// Replicates the machine's write-routing decision from its own
    /// observable state (PTE flags + OBitVector).
    fn route_of(&self, asid: Asid, va: VirtAddr) -> Route {
        let Ok(pte) = self.machine.os().translate(asid, va) else {
            return Route::Unmapped;
        };
        let opn = Opn::encode(asid, va.vpn());
        let in_overlay = self
            .machine
            .overlay()
            .obitvec(opn)
            .map(|v| v.contains(va.line_in_page()))
            .unwrap_or(false);
        let overlay_write = pte.flags.overlay_enabled
            && (in_overlay
                || (self.machine.config().overlay_semantics()
                    && pte.flags.cow
                    && !pte.flags.writable));
        if overlay_write {
            Route::Delta
        } else {
            Route::Base
        }
    }

    fn apply_inner(&mut self, op: &TraceOp) -> Result<(), Interrupt> {
        match *op {
            TraceOp::Compute(_) | TraceOp::Load(_) | TraceOp::Store(_) => {
                let Some(asid) = self.procs.first().copied() else { return Ok(()) };
                match self.machine.execute_at_core(self.current_core, asid, op) {
                    Ok(()) => {
                        if let TraceOp::Store(va) = *op {
                            // `timed: false`: whether a store promotes
                            // depends on the issuing core's TLB copy of
                            // the OBitVector (which can lag the OMT), so
                            // the mirror never predicts promotion — the
                            // reconcile sweep mirrors whichever overlays
                            // the machine actually collapsed.
                            let out =
                                self.spec.on_write(asid, va, false).map_err(Interrupt::Fail)?;
                            // The route itself can also be unpredictable:
                            // a fork that died mid-materialize leaves
                            // privatized pages with stale TLB entries
                            // (the flush happens only when fork
                            // succeeds), so the store may overlay-route
                            // where the page table — and the spec — say
                            // base. Believe the OBitVector for the one
                            // line the op targeted, as `repair_line`
                            // does on the failure path.
                            if !matches!(out, SpecOutcome::Wrote { overlay_route: true, .. }) {
                                self.spec.repair_line(&self.machine, asid, va);
                            }
                        }
                        Ok(())
                    }
                    Err(e) if benign(&e) => {
                        if let TraceOp::Store(va) = *op {
                            // The overlay write may have landed before
                            // the failure; believe the OBitVector.
                            self.spec.repair_line(&self.machine, asid, va);
                        }
                        Ok(())
                    }
                    Err(e) => Err(interrupt(&e, format!("timed op {op:?} failed: {e:?}"))),
                }
            }
            TraceOp::Spawn => match self.machine.spawn_process() {
                Ok(asid) => {
                    self.procs.push(asid);
                    self.oracle.spawn(asid);
                    self.spec.on_spawn(asid);
                    Ok(())
                }
                Err(e) if benign(&e) => Ok(()),
                Err(e) => Err(interrupt(&e, format!("spawn failed: {e:?}"))),
            },
            TraceOp::Map { proc_sel, start, count } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                let start = start % MAX_VPN_SPAN;
                for i in 0..count.min(MAX_MAP_PAGES) as u64 {
                    let vpn = Vpn::new(start + i);
                    // Remapping would swap in a fresh zero frame under
                    // live data; the harness only ever extends.
                    if self.machine.os().translate(asid, vpn.base()).is_ok() {
                        continue;
                    }
                    match self.machine.map_range(asid, vpn, 1) {
                        Ok(()) => {
                            self.oracle.note_mapped(asid, vpn);
                            self.spec.on_map(asid, vpn).map_err(Interrupt::Fail)?;
                        }
                        Err(e) if benign(&e) => {}
                        Err(e) => {
                            return Err(interrupt(
                                &e,
                                format!("map of vpn {:#x} failed: {e:?}", vpn.raw()),
                            ))
                        }
                    }
                }
                Ok(())
            }
            TraceOp::Fork { proc_sel } => {
                let Some(parent) = self.resolve(proc_sel) else { return Ok(()) };
                match self.machine.fork(parent) {
                    Ok(child) => {
                        // fork materialized (committed) every parent
                        // overlay before sharing the frames.
                        self.oracle.merge_all_deltas(parent);
                        self.oracle.clone_process(parent, child);
                        self.procs.push(child);
                        self.spec.on_fork(parent, child).map_err(Interrupt::Fail)?;
                        Ok(())
                    }
                    // A fork that dies mid-materialize leaves some parent
                    // overlays committed; sync_committed picks those up.
                    Err(e) if benign(&e) => Ok(()),
                    Err(e) => {
                        Err(interrupt(&e, format!("fork of asid {} failed: {e:?}", parent.raw())))
                    }
                }
            }
            TraceOp::Poke { proc_sel, va, value } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                let va = clamp_va(va);
                let route = self.route_of(asid, va);
                if (route != Route::Unmapped) != self.oracle.is_mapped(asid, va.vpn()) {
                    return Err(Interrupt::Fail(format!(
                        "mapping disagreement at asid {} va {:#x}: machine {}, oracle {}",
                        asid.raw(),
                        va.raw(),
                        if route == Route::Unmapped { "unmapped" } else { "mapped" },
                        if self.oracle.is_mapped(asid, va.vpn()) { "mapped" } else { "unmapped" },
                    )));
                }
                let wire = if self.inject_bug && value == 0x42 { value ^ 1 } else { value };
                match self.machine.poke(asid, va, wire) {
                    Ok(()) => {
                        match route {
                            Route::Delta => self.oracle.write_delta(asid, va, value),
                            Route::Base => self.oracle.write_base(asid, va, value),
                            Route::Unmapped => {
                                return Err(Interrupt::Fail(format!(
                                    "poke at va {:#x} succeeded on a page the translation probe \
                                     called unmapped",
                                    va.raw()
                                )))
                            }
                        }
                        let out = self.spec.on_write(asid, va, false).map_err(Interrupt::Fail)?;
                        let spec_delta =
                            matches!(out, SpecOutcome::Wrote { overlay_route: true, .. });
                        if (route == Route::Delta) != spec_delta {
                            return Err(Interrupt::Fail(format!(
                                "spec refinement violated: write route disagreement at asid {} \
                                 va {:#x}: machine routed to the {}, spec to the {}",
                                asid.raw(),
                                va.raw(),
                                if route == Route::Delta { "overlay" } else { "base page" },
                                if spec_delta { "overlay" } else { "base page" },
                            )));
                        }
                        Ok(())
                    }
                    Err(PoError::Unmapped(_)) if route == Route::Unmapped => Ok(()),
                    // Frame exhaustion during the CoW copy: no byte lands.
                    Err(e) if benign(&e) => Ok(()),
                    Err(e) => {
                        Err(interrupt(&e, format!("poke at va {:#x} failed: {e:?}", va.raw())))
                    }
                }
            }
            TraceOp::Peek { proc_sel, va } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                self.check_byte(asid, clamp_va(va)).map_err(Interrupt::Fail)
            }
            TraceOp::SeedLine { proc_sel, vpn, line, value } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                let vpn = clamp_vpn(vpn);
                let line = line as usize % LINES_PER_PAGE;
                let opn = Opn::encode(asid, vpn);
                // Seed only lines the machine will make visible (the page
                // reads through the overlay) and that are not already
                // overlaid — mirrors the sparse-structure setup path.
                let visible = self
                    .machine
                    .os()
                    .translate(asid, vpn.base())
                    .map(|pte| pte.flags.overlay_enabled)
                    .unwrap_or(false);
                let in_overlay = |m: &Machine| {
                    m.overlay().obitvec(opn).map(|v| v.contains(line)).unwrap_or(false)
                };
                if !visible || in_overlay(&self.machine) {
                    return Ok(());
                }
                match self.machine.seed_overlay_line(asid, vpn, line, LineData::splat(value)) {
                    Ok(()) => {
                        self.oracle.write_delta_line(asid, vpn, line, value);
                        self.spec.on_seed(asid, vpn, line);
                        Ok(())
                    }
                    Err(e) if benign(&e) => {
                        // The overlay write itself may have landed before
                        // the OMS eviction failed; believe the OBitVector.
                        if in_overlay(&self.machine) {
                            self.oracle.write_delta_line(asid, vpn, line, value);
                            self.spec.on_seed(asid, vpn, line);
                        }
                        Ok(())
                    }
                    Err(e) => Err(interrupt(
                        &e,
                        format!("seed of vpn {:#x} line {line} failed: {e:?}", vpn.raw()),
                    )),
                }
            }
            TraceOp::CommitPage { proc_sel, vpn } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                let vpn = clamp_vpn(vpn);
                match self.machine.commit_overlay(asid, vpn) {
                    // NoOverlay covers both "never overlaid" (empty
                    // delta, merge is a no-op) and "already collapsed"
                    // (the delta is committed either way).
                    Ok(()) | Err(PoError::NoOverlay(_)) => {
                        self.oracle.merge_delta(asid, vpn);
                        self.spec.on_commit(asid, vpn);
                        Ok(())
                    }
                    Err(e) if benign(&e) => Ok(()),
                    Err(e) => {
                        Err(interrupt(&e, format!("commit of vpn {:#x} failed: {e:?}", vpn.raw())))
                    }
                }
            }
            TraceOp::DiscardPage { proc_sel, vpn } => {
                let Some(asid) = self.resolve(proc_sel) else { return Ok(()) };
                let vpn = clamp_vpn(vpn);
                let had = self.machine.overlay().has_overlay(Opn::encode(asid, vpn));
                match self.machine.discard_overlay(asid, vpn) {
                    Ok(()) => {
                        if had {
                            self.oracle.drop_delta(asid, vpn);
                            self.spec.on_discard(asid, vpn);
                        }
                        Ok(())
                    }
                    // No overlay left to revert (never created, or the
                    // machine collapsed it — sync merges any stale delta).
                    Err(PoError::NoOverlay(_)) => Ok(()),
                    Err(e) if benign(&e) => Ok(()),
                    Err(e) => {
                        Err(interrupt(&e, format!("discard of vpn {:#x} failed: {e:?}", vpn.raw())))
                    }
                }
            }
            // Flush spills dirty overlay lines into the OMS (no
            // functional change the spec tracks); reclaim collapses
            // overlays wholesale — the spec mirrors whatever vanished
            // through the reconcile sweep (force-commit).
            TraceOp::Flush => match self.machine.flush_overlays() {
                Ok(()) => Ok(()),
                Err(e) if benign(&e) => Ok(()),
                Err(e) => Err(interrupt(&e, format!("flush failed: {e:?}"))),
            },
            TraceOp::Reclaim => match self.machine.recover_overlay_memory(None) {
                Ok(_) => Ok(()),
                Err(e) if benign(&e) => Ok(()),
                Err(e) => Err(interrupt(&e, format!("reclaim failed: {e:?}"))),
            },
            // Compaction moves OMS segments without changing any byte
            // the oracle tracks or any page state the spec tracks — the
            // post-op refinement sweep is the whole check.
            TraceOp::Compact => match self.machine.compact_overlay_memory() {
                Ok(_) => Ok(()),
                Err(e) if benign(&e) => Ok(()),
                Err(e) => Err(interrupt(&e, format!("compaction failed: {e:?}"))),
            },
            // Pure harness routing: no machine, oracle, or spec state
            // changes — only where subsequent timed ops issue. Resolved
            // modulo the core count so any trace runs on any machine.
            TraceOp::OnCore { core_sel } => {
                self.current_core = core_sel as usize % self.machine.config().cores.max(1);
                Ok(())
            }
        }
    }

    /// Compares one byte between machine and oracle.
    ///
    /// # Errors
    ///
    /// `Err` describes the divergence.
    pub fn check_byte(&self, asid: Asid, va: VirtAddr) -> Result<(), String> {
        match (self.machine.peek(asid, va), self.oracle.read(asid, va)) {
            (Ok(got), Some(want)) if got == want => Ok(()),
            (Ok(got), Some(want)) => Err(format!(
                "divergence at asid {} va {:#x}: machine has {got:#04x}, oracle expects \
                 {want:#04x}",
                asid.raw(),
                va.raw()
            )),
            (Err(PoError::Unmapped(_)), None) => Ok(()),
            (Ok(got), None) => Err(format!(
                "machine reads {got:#04x} at asid {} va {:#x} but the oracle says unmapped",
                asid.raw(),
                va.raw()
            )),
            (Err(e), Some(want)) => Err(format!(
                "machine cannot read asid {} va {:#x} (oracle expects {want:#04x}): {e:?}",
                asid.raw(),
                va.raw()
            )),
            (Err(e), None) => Err(format!(
                "unexpected read failure on unmapped asid {} va {:#x}: {e:?}",
                asid.raw(),
                va.raw()
            )),
        }
    }

    /// Sweeps every byte the oracle holds an opinion on, plus the first
    /// byte of every line of every mapped page (to catch stray writes).
    ///
    /// # Errors
    ///
    /// The first divergence found.
    pub fn check_all(&self) -> Result<(), String> {
        for &asid in &self.procs {
            for vpn in self.oracle.mapped_pages(asid) {
                let base = vpn.raw() * PAGE_SIZE as u64;
                let mut offsets = self.oracle.known_offsets(asid, vpn);
                offsets.extend((0..LINES_PER_PAGE as u32).map(|l| l * LINE_SIZE as u32));
                offsets.sort_unstable();
                offsets.dedup();
                for off in offsets {
                    self.check_byte(asid, VirtAddr::new(base + off as u64))?;
                }
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Seeded op-stream generation.
// ----------------------------------------------------------------------

/// SplitMix64 (Steele, Lea, Flood 2014) — self-contained so generated
/// streams never depend on ambient entropy.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Generates a deterministic op stream of length `count` from `seed`,
/// biased toward a small page window (VPNs `VPN_BASE..VPN_BASE+8`) so
/// ops collide and exercise overlay creation, commit, discard, fork
/// sharing, and reclaim against each other. Pokes hit `0x42` often —
/// the trigger byte of [`SimHarness::inject_bug`].
pub fn generate_ops(seed: u64, count: usize) -> Vec<TraceOp> {
    let mut rng = SplitMix64::new(seed ^ 0x5EED_D157);
    let mut ops = Vec::with_capacity(count);
    // Every stream starts alive: one process with a small working set.
    ops.push(TraceOp::Spawn);
    ops.push(TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 8 });
    while ops.len() < count {
        let r = rng.next_u64();
        let sel = ((r >> 8) % 8) as u32;
        let vpn = VPN_BASE + (r >> 16) % 8;
        let va = VirtAddr::new(vpn * PAGE_SIZE as u64 + (r >> 24) % PAGE_SIZE as u64);
        let value = if (r >> 40).is_multiple_of(4) { 0x42 } else { (r >> 48) as u8 };
        let op = match r % 100 {
            0..=1 => TraceOp::Spawn,
            2..=6 => TraceOp::Map { proc_sel: sel, start: vpn, count: 1 + ((r >> 36) % 3) as u32 },
            7..=11 => TraceOp::Fork { proc_sel: sel },
            12..=38 => TraceOp::Poke { proc_sel: sel, va, value },
            39..=58 => TraceOp::Peek { proc_sel: sel, va },
            59..=62 => TraceOp::SeedLine {
                proc_sel: sel,
                vpn,
                line: ((r >> 36) % LINES_PER_PAGE as u64) as u8,
                value,
            },
            63..=67 => TraceOp::CommitPage { proc_sel: sel, vpn },
            68..=72 => TraceOp::DiscardPage { proc_sel: sel, vpn },
            73..=74 => TraceOp::Flush,
            75..=76 => TraceOp::Reclaim,
            77..=78 => TraceOp::Compact,
            79..=80 => TraceOp::Compute(1 + (r >> 36) as u32 % 16),
            81..=90 => TraceOp::Load(va),
            _ => TraceOp::Store(va),
        };
        ops.push(op);
    }
    ops
}

/// Generates a deterministic *soak* stream of length `count` from
/// `seed`: sustained overlay churn rather than the balanced mix of
/// [`generate_ops`]. Forks are frequent (fork-per-snapshot process
/// churn), overlay lifecycles dominate (seed → flush → commit/discard
/// cycles force the OMS through repeated segment-class reallocation),
/// and the page window is wider (16 pages per process) so free lists
/// fragment the way the paper's §4.4.2 compaction-free allocator does.
/// Explicit `Compact` ops appear at a low rate; the pressure ladder
/// supplies the rest.
pub fn generate_soak_ops(seed: u64, count: usize) -> Vec<TraceOp> {
    let mut rng = SplitMix64::new(seed ^ 0x50AC_50AC);
    let mut ops = Vec::with_capacity(count);
    ops.push(TraceOp::Spawn);
    ops.push(TraceOp::Map { proc_sel: 0, start: VPN_BASE, count: 16 });
    while ops.len() < count {
        let r = rng.next_u64();
        let sel = ((r >> 8) % 16) as u32;
        let vpn = VPN_BASE + (r >> 16) % 16;
        let va = VirtAddr::new(vpn * PAGE_SIZE as u64 + (r >> 24) % PAGE_SIZE as u64);
        let value = (r >> 48) as u8;
        let op = match r % 100 {
            0 => TraceOp::Spawn,
            1..=4 => TraceOp::Map { proc_sel: sel, start: vpn, count: 1 + ((r >> 36) % 4) as u32 },
            5..=14 => TraceOp::Fork { proc_sel: sel },
            15..=44 => TraceOp::SeedLine {
                proc_sel: sel,
                vpn,
                line: ((r >> 36) % LINES_PER_PAGE as u64) as u8,
                value,
            },
            45..=52 => TraceOp::Poke { proc_sel: sel, va, value },
            53..=62 => TraceOp::CommitPage { proc_sel: sel, vpn },
            63..=72 => TraceOp::DiscardPage { proc_sel: sel, vpn },
            73..=82 => TraceOp::Flush,
            83..=86 => TraceOp::Reclaim,
            87..=89 => TraceOp::Compact,
            90..=94 => TraceOp::Peek { proc_sel: sel, va },
            _ => TraceOp::Store(va),
        };
        ops.push(op);
    }
    ops
}

/// [`generate_ops`] with core-affinity directives woven in: every few
/// ops a [`TraceOp::OnCore`] rotates the issuing core, so on a
/// multi-core machine the stream's timed ops interleave across cores
/// (cross-core promotions, coherence OBitVector updates, shootdowns).
/// With `cores <= 1` the stream is exactly [`generate_ops`]'s — the
/// single-core fuzz corpus is unchanged. Subsequences stay valid, so
/// the shrinker works on these streams too.
pub fn generate_mc_ops(seed: u64, count: usize, cores: usize) -> Vec<TraceOp> {
    let base = generate_ops(seed, count);
    if cores <= 1 {
        return base;
    }
    let mut rng = SplitMix64::new(seed ^ 0xC04E_5EED);
    let mut ops = Vec::with_capacity(base.len() + base.len() / 4 + 1);
    for (i, op) in base.into_iter().enumerate() {
        // A rotation roughly every 4 ops gives quanta short enough that
        // timed ops from different cores genuinely contend.
        if i % 4 == 0 {
            ops.push(TraceOp::OnCore { core_sel: (rng.next_u64() % cores as u64) as u32 });
        }
        ops.push(op);
    }
    ops
}

/// Builds a harness, applies `ops`, and runs the final sweep.
///
/// # Errors
///
/// The first divergence or unexpected machine failure.
pub fn run_ops(
    config: &SystemConfig,
    plan: Option<&FaultPlan>,
    ops: &[TraceOp],
    inject_bug: bool,
) -> Result<(), String> {
    let mut h = match plan {
        Some(p) => SimHarness::with_fault_plan(config.clone(), p.clone()),
        None => SimHarness::new(config.clone()),
    }
    .map_err(|e| format!("machine construction failed: {e:?}"))?;
    h.inject_bug = inject_bug;
    drive_ops(&mut h, ops, 0, "", |_, _| {}, crash_is_finding)?;
    h.check_all()
}

/// After-callback for runners that do not model recovery: a scheduled
/// interior crash has no restore path here, so it is a hard error.
fn crash_is_finding(h: &mut SimHarness, _i: usize) -> Result<bool, String> {
    match h.take_crashed() {
        Some(stage) => Err(format!(
            "interior crash ({}) fired outside a crash-convergence runner",
            stage.name()
        )),
        None => Ok(false),
    }
}

/// [`run_ops`] with telemetry armed: on divergence the error comes back
/// with the last [`FAILURE_EVENT_TAIL`] journal events as JSONL, so the
/// fuzzer can dump what the machine was doing alongside the shrunk
/// trace. Telemetry never feeds back into simulation state, so a trace
/// fails here iff it fails under [`run_ops`].
///
/// # Errors
///
/// `(description, event_tail_jsonl)` for the first divergence or
/// unexpected machine failure.
pub fn run_ops_traced(
    config: &SystemConfig,
    plan: Option<&FaultPlan>,
    ops: &[TraceOp],
    inject_bug: bool,
) -> Result<(), (String, String)> {
    let mut h = match plan {
        Some(p) => SimHarness::with_fault_plan(config.clone(), p.clone()),
        None => SimHarness::new(config.clone()),
    }
    .map_err(|e| (format!("machine construction failed: {e:?}"), String::new()))?;
    h.enable_telemetry(FAILURE_EVENT_TAIL);
    h.inject_bug = inject_bug;
    drive_ops(&mut h, ops, 0, "", |_, _| {}, crash_is_finding)
        .map(|_| ())
        .and_then(|()| h.check_all())
        .map_err(|e| (e, h.telemetry_tail(FAILURE_EVENT_TAIL)))
}

// ----------------------------------------------------------------------
// Crash convergence.
// ----------------------------------------------------------------------

/// Runs `ops` twice under `base_plan` (which must not schedule
/// [`FaultSite::CrashPoint`] itself — the runner owns that site):
///
/// * **golden** — straight through, polling the crash point after every
///   op (so fault-query streams match the crashy run);
/// * **crashy** — same, plus a crash scheduled at the `crash_at`-th
///   crash-point query. On crash: restore the last snapshot (taken
///   every `snapshot_every` ops), clear the crash trigger, round-trip
///   the journaled op suffix through the trace format, and replay it.
///
/// Both runs then clear the crash-point trigger and must produce
/// byte-identical [`Machine::save_snapshot`] images.
///
/// Returns whether the crash actually fired.
///
/// # Errors
///
/// Divergence (machine bytes or oracle), replay corruption, or an
/// unexpected machine failure.
pub fn run_crash_convergence(
    config: &SystemConfig,
    ops: &[TraceOp],
    base_plan: &FaultPlan,
    crash_at: u64,
    snapshot_every: usize,
) -> Result<bool, String> {
    run_crash_convergence_staged(
        config,
        ops,
        base_plan,
        crash_at,
        snapshot_every,
        CrashStage::OpBoundary,
    )
}

/// [`run_crash_convergence`] with the crash armed at an arbitrary
/// [`CrashStage`]: `OpBoundary` reproduces the classic between-ops
/// crash; the interior stages (`MidPromotion`, `MidReclaim`,
/// `OmtFreeWindow`) fire *inside* a multi-step transition, leaving the
/// machine half-way through. On an interior crash the runner first asks
/// the spec whether the frozen state is a legal mid-transition state
/// ([`SimHarness::check_interior_crash`]), then restores and replays as
/// usual — recovery must converge byte-identically with the golden run
/// no matter where inside a transition the power was cut.
///
/// Returns whether the crash actually fired.
///
/// # Errors
///
/// Divergence, a spec-illegal interior state, replay corruption, or an
/// unexpected machine failure.
pub fn run_crash_convergence_staged(
    config: &SystemConfig,
    ops: &[TraceOp],
    base_plan: &FaultPlan,
    crash_at: u64,
    snapshot_every: usize,
    stage: CrashStage,
) -> Result<bool, String> {
    let every = snapshot_every.max(1);
    // Both plans carry the stage so the two runs' fault-injector
    // snapshots stay byte-identical; only the scheduled query differs.
    let golden_plan =
        base_plan.clone().at_queries(FaultSite::CrashPoint, []).with_crash_stage(stage);
    let crashy_plan =
        base_plan.clone().at_queries(FaultSite::CrashPoint, [crash_at]).with_crash_stage(stage);

    // Golden run.
    let mut golden = SimHarness::with_fault_plan(config.clone(), golden_plan)
        .map_err(|e| format!("machine construction failed: {e:?}"))?;
    drive_ops(
        &mut golden,
        ops,
        0,
        "golden ",
        |_, _| {},
        |h, _| {
            if h.take_crashed().is_some() || h.machine.poll_crash_point() {
                Err("crash point fired in the golden run".into())
            } else {
                Ok(false)
            }
        },
    )?;
    golden.machine.clear_fault_trigger(FaultSite::CrashPoint);

    // Crashy run. Telemetry rides along (it survives the restore — the
    // machine re-installs its sink) so a convergence failure can show
    // the replayed tail; it never affects the compared snapshot bytes.
    let mut h = SimHarness::with_fault_plan(config.clone(), crashy_plan)
        .map_err(|e| format!("machine construction failed: {e:?}"))?;
    h.enable_telemetry(FAILURE_EVENT_TAIL);
    // Recovery state captured at a snapshot boundary: the machine image
    // plus the harness-side mirrors that must rewind with it.
    struct Saved {
        bytes: Vec<u8>,
        oracle: DiffOracle,
        spec: SpecMirror,
        procs: Vec<Asid>,
        core: usize,
        from: usize,
    }
    let mut saved: Option<Saved> = None;
    let crashed_at = drive_ops(
        &mut h,
        ops,
        0,
        "crashy ",
        |h, i| {
            if i % every == 0 {
                saved = Some(Saved {
                    bytes: h.machine.save_snapshot(),
                    oracle: h.oracle.clone(),
                    spec: h.spec.clone(),
                    procs: h.procs.clone(),
                    core: h.current_core,
                    from: i,
                });
            }
        },
        |h, i| {
            if let Some(stage) = h.take_crashed() {
                // The machine froze mid-transition: the spec decides
                // whether this interior state is legal before recovery
                // wipes it.
                h.check_interior_crash(&ops[i]).map_err(|e| {
                    format!(
                        "spec-illegal interior state after {} crash inside op {i} ({:?}): {e}",
                        stage.name(),
                        ops[i]
                    )
                })?;
                return Ok(true);
            }
            Ok(h.machine.poll_crash_point())
        },
    )?;
    let crashed = crashed_at.is_some();
    if let Some(i) = crashed_at {
        let Saved { bytes, oracle, spec, procs, core, from } =
            saved.take().ok_or("crash fired before the first snapshot")?;
        h.machine
            .restore_snapshot(&bytes)
            .map_err(|e| format!("restore after crash at op {i} failed: {e:?}"))?;
        h.machine.clear_fault_trigger(FaultSite::CrashPoint);
        h.oracle = oracle;
        h.spec = spec;
        h.procs = procs;
        h.current_core = core;
        // The journal is the op suffix since the snapshot; round-trip
        // it through the trace format, as a real recovery would.
        let mut buf = Vec::new();
        write_trace(&mut buf, &ops[from..]).map_err(|e| format!("journal write failed: {e}"))?;
        let journal =
            read_trace(buf.as_slice()).map_err(|e| format!("journal read failed: {e}"))?;
        if journal != ops[from..] {
            return Err("journal did not round-trip through the trace format".into());
        }
        drive_ops(
            &mut h,
            &journal,
            from,
            "replay ",
            |_, _| {},
            |h, _| {
                if h.take_crashed().is_some() || h.machine.poll_crash_point() {
                    Err("crash point re-fired during replay".into())
                } else {
                    Ok(false)
                }
            },
        )?;
    }
    h.machine.clear_fault_trigger(FaultSite::CrashPoint);

    if golden.machine.save_snapshot() != h.machine.save_snapshot() {
        let tail = h.telemetry_tail(FAILURE_EVENT_TAIL);
        return Err(format!(
            "crashed-and-replayed machine diverged from the golden run (crash_at={crash_at}, \
             snapshot_every={every}); last events:\n{tail}"
        ));
    }
    golden.check_all().map_err(|e| format!("golden final sweep: {e}"))?;
    h.check_all().map_err(|e| format!("crashy final sweep: {e}"))?;
    Ok(crashed)
}

// ----------------------------------------------------------------------
// Trace shrinking.
// ----------------------------------------------------------------------

/// Shrinks a failing trace to a locally minimal one by delta debugging:
/// remove chunks of decreasing size, keeping any candidate that still
/// fails [`run_ops`]. Because subsequences of valid traces stay valid,
/// every candidate is directly replayable.
///
/// Returns the shrunk trace (the input itself if it does not fail).
pub fn shrink_ops(
    config: &SystemConfig,
    plan: Option<&FaultPlan>,
    ops: &[TraceOp],
    inject_bug: bool,
) -> Vec<TraceOp> {
    shrink_ops_filtered(config, plan, ops, inject_bug, |_| true)
}

/// [`shrink_ops`] with a candidate pre-filter: candidates for which
/// `keep` returns `false` are discarded without the (expensive)
/// differential replay. The fuzzer hands in a static-verifier check so
/// delta debugging never wastes a replay on — or emits — a trace the
/// verifier can prove degenerate.
///
/// `keep` must accept the original failing trace, or shrinking cannot
/// start and the input is returned unshrunk.
pub fn shrink_ops_filtered(
    config: &SystemConfig,
    plan: Option<&FaultPlan>,
    ops: &[TraceOp],
    inject_bug: bool,
    keep: impl Fn(&[TraceOp]) -> bool,
) -> Vec<TraceOp> {
    shrink_by(ops, |candidate| {
        keep(candidate) && run_ops(config, plan, candidate, inject_bug).is_err()
    })
}

/// The bare delta-debugging loop with a caller-supplied failure
/// predicate. [`shrink_ops_filtered`] instantiates it with "the
/// differential replay diverges"; the race-canary positive control
/// instantiates it with "the concurrency verifier still reports
/// PA-C001 on the armed replay" — a property no `run_ops` error can
/// express, since the canary is invisible to every functional oracle.
///
/// Returns the input unshrunk if `fails` rejects it.
pub fn shrink_by(ops: &[TraceOp], fails: impl Fn(&[TraceOp]) -> bool) -> Vec<TraceOp> {
    let mut cur = ops.to_vec();
    if !fails(&cur) {
        return cur;
    }
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i < cur.len() {
            let mut cand = cur.clone();
            cand.drain(i..(i + chunk).min(cand.len()));
            if fails(&cand) {
                cur = cand;
            } else {
                i += chunk;
            }
        }
        if chunk == 1 {
            break;
        }
        chunk = (chunk / 2).max(1);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_run_is_clean_in_both_modes() {
        let ops = generate_ops(7, 300);
        run_ops(&SystemConfig::table2_overlay(), None, &ops, false).unwrap();
        run_ops(&SystemConfig::table2(), None, &ops, false).unwrap();
    }

    #[test]
    fn injected_bug_is_detected_and_shrinks_small() {
        let config = SystemConfig::table2_overlay();
        // Find a seed whose stream trips the bug (0x42 pokes are common).
        let ops = generate_ops(3, 200);
        let err = run_ops(&config, None, &ops, true).unwrap_err();
        assert!(err.contains("divergence") || err.contains("oracle"), "{err}");
        let shrunk = shrink_ops(&config, None, &ops, true);
        assert!(shrunk.len() <= 10, "shrunk to {} ops: {shrunk:?}", shrunk.len());
        assert!(run_ops(&config, None, &shrunk, true).is_err());
        // The shrunk trace replays through the trace format.
        let mut buf = Vec::new();
        crate::trace_io::write_trace(&mut buf, &shrunk).unwrap();
        let back = crate::trace_io::read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, shrunk);
        assert!(run_ops(&config, None, &back, true).is_err());
    }

    #[test]
    fn crash_convergence_basic() {
        let config = SystemConfig::table2_overlay();
        let ops = generate_ops(11, 150);
        let plan = FaultPlan::new(0xC0FFEE);
        let crashed = run_crash_convergence(&config, &ops, &plan, 70, 16).unwrap();
        assert!(crashed);
        // A crash point past the end of the trace never fires.
        let crashed = run_crash_convergence(&config, &ops, &plan, 10_000, 16).unwrap();
        assert!(!crashed);
    }

    #[test]
    fn crash_convergence_under_fault_plan() {
        let config = SystemConfig::table2_overlay();
        let ops = generate_ops(13, 150);
        let plan = FaultPlan::new(0xFA117)
            .with_probability(FaultSite::OmsAllocFailed, 0.05)
            .with_probability(FaultSite::OmsGrowRefused, 0.05);
        let crashed = run_crash_convergence(&config, &ops, &plan, 40, 8).unwrap();
        assert!(crashed);
    }

    #[test]
    fn crash_convergence_at_interior_stages() {
        // A low promotion threshold makes MidPromotion reachable on a
        // short stream; the other interior stages ride the same ops.
        let config = SystemConfig { promote_threshold: 4, ..SystemConfig::table2_overlay() };
        let ops = generate_ops(17, 150);
        let plan = FaultPlan::new(0xBEEF);
        let mut fired = 0;
        for stage in CrashStage::INTERIOR {
            for crash_at in [0, 1, 2] {
                if run_crash_convergence_staged(&config, &ops, &plan, crash_at, 16, stage).unwrap()
                {
                    fired += 1;
                }
            }
        }
        assert!(fired > 0, "no interior stage fired on this stream");
    }

    #[test]
    fn generated_streams_are_deterministic() {
        assert_eq!(generate_ops(42, 100), generate_ops(42, 100));
        assert_ne!(generate_ops(42, 100), generate_ops(43, 100));
    }
}
