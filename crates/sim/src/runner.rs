//! The shared workload runner: one execution core under every bench
//! driver (DESIGN.md §12).
//!
//! Every bench binary used to carry its own copy of the same loop —
//! build a [`Machine`], spawn, map, maybe seed overlay lines, drive a
//! trace, read back stats. This module extracts that loop once:
//!
//! * [`WorkloadJob`] — a self-contained description of one run: system
//!   config, scenario or trace, optional fault plan, seed, and optional
//!   telemetry capacity. Jobs are plain data, `Send`, and carry an `id`
//!   assigned at submission time so merged telemetry exports have a
//!   worker-independent total order.
//! * [`run_job`] — executes one job on a machine it builds itself and
//!   returns a [`JobResult`]: the scenario outcome, an FNV-1a
//!   fingerprint of the machine's final byte-stable snapshot, and the
//!   job's private [`TelemetrySink`].
//! * [`drive_ops`] — the one op-application loop the deterministic
//!   simulation harness's golden / crashy / replay runs all share.
//!
//! Because a job owns everything it touches (machine, oracle, sink),
//! jobs can run on any thread in any order: the shard pool in po-bench
//! schedules them longest-first and the results are position-stable, so
//! `--shards 8` produces byte-identical exports to `--shards 1`.

use crate::config::SystemConfig;
use crate::machine::Machine;
use crate::scenario::{
    run_fork_experiment_on, run_periodic_checkpoint_experiment_on, ForkExperimentResult,
    PeriodicCheckpointResult,
};
use crate::sim_test::SimHarness;
use crate::stats::SimStats;
use crate::trace::{run_trace, TraceOp};
use po_telemetry::TelemetrySink;
use po_types::{fingerprint64_bytes, FaultPlan, LineData, PoResult, Vpn};

/// The machine (and everything a job owns) must be `Send`: the shard
/// pool moves jobs to worker threads. These asserts make "someone added
/// an `Rc` to a simulator layer" a compile error here, next to the
/// reason, instead of a trait-bound error at the pool's call site.
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send::<Machine>();
    assert_send::<SimHarness>();
    assert_send::<WorkloadJob>();
    assert_send::<JobResult>();
};

/// A plain trace-driven job: map a range, optionally through a shared
/// zero frame with pre-seeded overlay lines (the sparse-structure
/// setup), then drive the ops.
#[derive(Clone, Debug)]
pub struct TraceJob {
    /// First virtual page to map.
    pub base_vpn: Vpn,
    /// Pages to map at `base_vpn`.
    pub mapped_pages: u64,
    /// Map through one shared zero frame with overlays enabled
    /// ([`Machine::map_shared_zero_range`]) instead of private frames.
    pub shared_zero: bool,
    /// Overlay lines to seed before the trace runs, as
    /// `(page offset from base_vpn, line-in-page, byte value)`.
    pub seed_lines: Vec<(u64, usize, u8)>,
    /// The ops to drive.
    pub ops: Vec<TraceOp>,
}

/// What a [`WorkloadJob`] runs.
#[derive(Clone, Debug)]
pub enum JobKind {
    /// The §5.1 fork experiment
    /// ([`crate::scenario::run_fork_experiment`]).
    Fork {
        /// First mapped page.
        base_vpn: Vpn,
        /// Pages mapped.
        mapped_pages: u64,
        /// Pre-fork warmup segment.
        warmup: Vec<TraceOp>,
        /// Measured post-fork segment.
        post: Vec<TraceOp>,
    },
    /// The periodic-checkpoint extension
    /// ([`crate::scenario::run_periodic_checkpoint_experiment`]).
    PeriodicCheckpoint {
        /// First mapped page.
        base_vpn: Vpn,
        /// Pages mapped.
        mapped_pages: u64,
        /// Warmup segment before the first checkpoint.
        warmup: Vec<TraceOp>,
        /// The per-interval segment.
        interval: Vec<TraceOp>,
        /// Checkpoints taken.
        intervals: u64,
    },
    /// A plain trace drive (ablations, sweeps).
    Trace(TraceJob),
    /// Differential-harness ops ([`SimHarness`]): the machine runs in
    /// lockstep with the byte oracle and the outcome is the harness
    /// verdict rather than stats.
    HarnessOps {
        /// The harness-level op stream.
        ops: Vec<TraceOp>,
        /// Arm the harness's deliberate divergence bug (fuzzer
        /// self-test).
        inject_bug: bool,
    },
    /// Sustained-pressure soak ([`crate::sim_test::generate_soak_ops`]):
    /// a churn stream driven through the full differential harness
    /// (byte oracle + spec refinement + invariant sweep after every op),
    /// then judged against an end-of-run fragmentation ceiling. The
    /// outcome reports the degradation-ladder telemetry (compaction
    /// passes, relocated bytes, fragmentation) alongside the verdict.
    Soak {
        /// The churn op stream.
        ops: Vec<TraceOp>,
        /// Maximum tolerated end-of-run [`fragmentation ratio`]
        /// (0.0–1.0); exceeding it is a finding.
        ///
        /// [`fragmentation ratio`]:
        /// po_overlay::OverlayMemoryStore::fragmentation_ratio
        frag_ceiling: f64,
    },
}

/// One schedulable unit of bench work: config + scenario/trace + fault
/// plan + seed. Construct with [`WorkloadJob::fork`] and friends, then
/// chain `with_*` builders.
#[derive(Clone, Debug)]
pub struct WorkloadJob {
    /// Submission-order id; the major key of merged telemetry exports.
    pub id: u64,
    /// Human-readable label (workload name, config variant).
    pub label: String,
    /// The machine configuration.
    pub config: SystemConfig,
    /// Fault plan to install, if any.
    pub plan: Option<FaultPlan>,
    /// The seed the job's traces were generated from (bookkeeping — the
    /// ops are already materialized).
    pub seed: u64,
    /// `Some(capacity)` arms a private telemetry sink with
    /// journal/span rings of that size.
    pub telemetry_capacity: Option<usize>,
    /// What to run.
    pub kind: JobKind,
}

impl WorkloadJob {
    fn new(id: u64, label: impl Into<String>, config: SystemConfig, kind: JobKind) -> Self {
        Self {
            id,
            label: label.into(),
            config,
            plan: None,
            seed: 0,
            telemetry_capacity: None,
            kind,
        }
    }

    /// A fork-experiment job.
    pub fn fork(
        id: u64,
        label: impl Into<String>,
        config: SystemConfig,
        base_vpn: Vpn,
        mapped_pages: u64,
        warmup: Vec<TraceOp>,
        post: Vec<TraceOp>,
    ) -> Self {
        Self::new(id, label, config, JobKind::Fork { base_vpn, mapped_pages, warmup, post })
    }

    /// A periodic-checkpoint job.
    #[expect(clippy::too_many_arguments, reason = "mirrors the scenario entry point's signature")]
    pub fn periodic_checkpoint(
        id: u64,
        label: impl Into<String>,
        config: SystemConfig,
        base_vpn: Vpn,
        mapped_pages: u64,
        warmup: Vec<TraceOp>,
        interval: Vec<TraceOp>,
        intervals: u64,
    ) -> Self {
        Self::new(
            id,
            label,
            config,
            JobKind::PeriodicCheckpoint { base_vpn, mapped_pages, warmup, interval, intervals },
        )
    }

    /// A plain trace-drive job.
    pub fn trace(id: u64, label: impl Into<String>, config: SystemConfig, job: TraceJob) -> Self {
        Self::new(id, label, config, JobKind::Trace(job))
    }

    /// A sustained-pressure soak job.
    pub fn soak(
        id: u64,
        label: impl Into<String>,
        config: SystemConfig,
        ops: Vec<TraceOp>,
        frag_ceiling: f64,
    ) -> Self {
        Self::new(id, label, config, JobKind::Soak { ops, frag_ceiling })
    }

    /// A differential-harness job.
    pub fn harness_ops(
        id: u64,
        label: impl Into<String>,
        config: SystemConfig,
        ops: Vec<TraceOp>,
        inject_bug: bool,
    ) -> Self {
        Self::new(id, label, config, JobKind::HarnessOps { ops, inject_bug })
    }

    /// Installs a fault plan on the job's machine.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Records the generating seed (bookkeeping only).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Arms a private telemetry sink with the given ring capacity.
    #[must_use]
    pub fn with_telemetry(mut self, capacity: usize) -> Self {
        self.telemetry_capacity = Some(capacity);
        self
    }

    /// Scheduling weight: total ops the job will drive. The shard pool
    /// sorts longest-first so a long job never starts last and stalls
    /// the whole batch behind one straggler.
    pub fn weight(&self) -> u64 {
        match &self.kind {
            JobKind::Fork { warmup, post, .. } => (warmup.len() + post.len()) as u64,
            JobKind::PeriodicCheckpoint { warmup, interval, intervals, .. } => {
                warmup.len() as u64 + interval.len() as u64 * intervals
            }
            JobKind::Trace(t) => t.ops.len() as u64,
            JobKind::HarnessOps { ops, .. } | JobKind::Soak { ops, .. } => ops.len() as u64,
        }
    }
}

/// Stats a [`JobKind::Trace`] job reports.
#[derive(Clone, Debug)]
pub struct TraceOutcome {
    /// Whole-run machine stats.
    pub stats: SimStats,
    /// OMT-cache hit rate over the run (0 when never accessed).
    pub omt_cache_hit_rate: f64,
    /// Overlay Memory Store bytes in use when the trace ended.
    pub overlay_bytes: u64,
}

/// What a [`JobKind::Soak`] job reports: the harness verdict plus the
/// degradation-ladder counters a soak campaign trends over time.
#[derive(Clone, Debug)]
pub struct SoakOutcome {
    /// `Err` is a divergence, refinement violation, invariant failure,
    /// or a fragmentation-ceiling breach.
    pub verdict: Result<(), String>,
    /// Ops driven (the whole stream; soak findings do not stop early —
    /// they come from the final sweep).
    pub ops_applied: u64,
    /// Live processes when the stream ended (fork churn depth).
    pub procs: u64,
    /// Compaction passes the pressure ladder (or explicit `O` ops) ran.
    pub compaction_passes: u64,
    /// Bytes of live segments relocated across all passes.
    pub relocated_bytes: u64,
    /// End-of-run OMS fragmentation ratio (0.0–1.0).
    pub final_fragmentation: f64,
    /// OMS bytes still live when the stream ended.
    pub overlay_bytes: u64,
}

/// The scenario-specific result inside a [`JobResult`].
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// Fork-experiment result.
    Fork(ForkExperimentResult),
    /// Periodic-checkpoint result.
    PeriodicCheckpoint(PeriodicCheckpointResult),
    /// Trace-drive stats.
    Trace(TraceOutcome),
    /// The harness verdict: `Err` is a divergence or unexpected machine
    /// failure (a finding, not a fault).
    Harness(Result<(), String>),
    /// Soak result: verdict plus degradation-ladder counters.
    Soak(SoakOutcome),
}

impl JobOutcome {
    /// The fork result, if this outcome is one.
    pub fn as_fork(&self) -> Option<&ForkExperimentResult> {
        match self {
            JobOutcome::Fork(r) => Some(r),
            _ => None,
        }
    }

    /// The periodic-checkpoint result, if this outcome is one.
    pub fn as_periodic_checkpoint(&self) -> Option<&PeriodicCheckpointResult> {
        match self {
            JobOutcome::PeriodicCheckpoint(r) => Some(r),
            _ => None,
        }
    }

    /// The trace stats, if this outcome is a trace drive.
    pub fn as_trace(&self) -> Option<&TraceOutcome> {
        match self {
            JobOutcome::Trace(r) => Some(r),
            _ => None,
        }
    }

    /// The harness verdict, if this outcome is one.
    pub fn as_harness(&self) -> Option<&Result<(), String>> {
        match self {
            JobOutcome::Harness(r) => Some(r),
            _ => None,
        }
    }

    /// The soak result, if this outcome is one.
    pub fn as_soak(&self) -> Option<&SoakOutcome> {
        match self {
            JobOutcome::Soak(r) => Some(r),
            _ => None,
        }
    }
}

/// Everything one job produced.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job's submission-order id.
    pub id: u64,
    /// The job's label, carried through for reporting.
    pub label: String,
    /// The scenario-specific result.
    pub outcome: JobOutcome,
    /// FNV-1a fingerprint of the machine's final byte-stable snapshot
    /// ([`Machine::save_snapshot`]). Identical jobs produce identical
    /// fingerprints on any shard count — the cheap half of the
    /// determinism invariant.
    pub snapshot_fingerprint: u64,
    /// The job's private sink (`Noop` unless the job armed telemetry);
    /// feed to `po_telemetry::TelemetryMerge` keyed by [`JobResult::id`].
    pub telemetry: TelemetrySink,
}

/// Runs one job start to finish on a machine (or harness) built from
/// the job's own config, plan, and telemetry capacity.
///
/// # Errors
///
/// Propagates machine faults. Harness *findings* do not error — they
/// come back as [`JobOutcome::Harness`]`(Err(..))`.
pub fn run_job(job: WorkloadJob) -> PoResult<JobResult> {
    let sink = match job.telemetry_capacity {
        Some(capacity) => TelemetrySink::with_capacity(capacity, capacity),
        None => TelemetrySink::noop(),
    };
    let (outcome, fingerprint) = match job.kind {
        JobKind::HarnessOps { ops, inject_bug } => {
            let mut h = SimHarness::new(job.config)?;
            if let Some(plan) = job.plan {
                h.machine.install_fault_plan(plan);
            }
            h.machine.install_telemetry(sink.clone());
            h.inject_bug = inject_bug;
            let verdict = drive_ops(&mut h, &ops, 0, "", |_, _| {}, |_, _| Ok(false))
                .map(|_| ())
                .and_then(|()| h.check_all());
            let fp = fingerprint64_bytes(&h.machine.save_snapshot());
            (JobOutcome::Harness(verdict), fp)
        }
        JobKind::Soak { ops, frag_ceiling } => {
            let mut h = SimHarness::new(job.config)?;
            if let Some(plan) = job.plan {
                h.machine.install_fault_plan(plan);
            }
            h.machine.install_telemetry(sink.clone());
            let verdict = drive_ops(&mut h, &ops, 0, "", |_, _| {}, |_, _| Ok(false))
                .map(|_| ())
                .and_then(|()| h.check_all())
                .and_then(|()| {
                    let frag = h.machine.overlay().store().fragmentation_ratio();
                    if frag > frag_ceiling {
                        Err(format!(
                            "end-of-soak fragmentation {frag:.3} exceeds the ceiling \
                             {frag_ceiling:.3}"
                        ))
                    } else {
                        Ok(())
                    }
                });
            let store = h.machine.overlay().store();
            let outcome = SoakOutcome {
                verdict,
                ops_applied: ops.len() as u64,
                procs: h.procs.len() as u64,
                compaction_passes: store.stats().compaction_passes.get(),
                relocated_bytes: store.stats().relocated_bytes.get(),
                final_fragmentation: store.fragmentation_ratio(),
                overlay_bytes: store.bytes_in_use(),
            };
            let fp = fingerprint64_bytes(&h.machine.save_snapshot());
            (JobOutcome::Soak(outcome), fp)
        }
        kind => {
            let mut machine = Machine::new(job.config)?;
            if let Some(plan) = job.plan {
                machine.install_fault_plan(plan);
            }
            machine.install_telemetry(sink.clone());
            let outcome = match kind {
                JobKind::Fork { base_vpn, mapped_pages, warmup, post } => JobOutcome::Fork(
                    run_fork_experiment_on(&mut machine, base_vpn, mapped_pages, &warmup, &post)?,
                ),
                JobKind::PeriodicCheckpoint {
                    base_vpn,
                    mapped_pages,
                    warmup,
                    interval,
                    intervals,
                } => JobOutcome::PeriodicCheckpoint(run_periodic_checkpoint_experiment_on(
                    &mut machine,
                    base_vpn,
                    mapped_pages,
                    &warmup,
                    &interval,
                    intervals,
                )?),
                JobKind::Trace(t) => {
                    let pid = machine.spawn_process()?;
                    if t.shared_zero {
                        machine.map_shared_zero_range(pid, t.base_vpn, t.mapped_pages)?;
                    } else {
                        machine.map_range(pid, t.base_vpn, t.mapped_pages)?;
                    }
                    for &(page, line, value) in &t.seed_lines {
                        machine.seed_overlay_line(
                            pid,
                            Vpn::new(t.base_vpn.raw() + page),
                            line,
                            LineData::splat(value),
                        )?;
                    }
                    let stats = run_trace(&mut machine, pid, &t.ops)?;
                    JobOutcome::Trace(TraceOutcome {
                        stats,
                        omt_cache_hit_rate: machine.overlay().omt_cache().stats().hit_rate(),
                        overlay_bytes: machine.overlay().store().bytes_in_use(),
                    })
                }
                JobKind::HarnessOps { .. } | JobKind::Soak { .. } => {
                    unreachable!("handled in the outer match")
                }
            };
            (outcome, fingerprint64_bytes(&machine.save_snapshot()))
        }
    };
    Ok(JobResult {
        id: job.id,
        label: job.label,
        outcome,
        snapshot_fingerprint: fingerprint,
        telemetry: sink,
    })
}

/// The one op-application loop every harness run shares (plain runs,
/// golden/crashy crash-convergence runs, journal replay):
///
/// * `first_index` offsets the reported op index (replay resumes at the
///   snapshot point);
/// * `label` prefixes apply errors — `"{label}op {i}: {e}"` — so
///   "golden op 12: ..." and "replay op 40: ..." keep their shapes;
/// * `before(h, i)` runs ahead of each op (snapshot cadence);
/// * `after(h, i)` runs behind it; `Ok(true)` stops the loop (a crash
///   point fired) and its `Err` passes through unprefixed.
///
/// Returns the index `after` stopped at, or `None` if the loop ran out.
///
/// # Errors
///
/// A prefixed [`SimHarness::apply`] error, or `after`'s own error.
pub fn drive_ops(
    h: &mut SimHarness,
    ops: &[TraceOp],
    first_index: usize,
    label: &str,
    mut before: impl FnMut(&mut SimHarness, usize),
    mut after: impl FnMut(&mut SimHarness, usize) -> Result<bool, String>,
) -> Result<Option<usize>, String> {
    for (j, op) in ops.iter().enumerate() {
        let i = first_index + j;
        before(h, i);
        h.apply(op).map_err(|e| format!("{label}op {i}: {e}"))?;
        if after(h, i)? {
            return Ok(Some(i));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim_test::generate_ops;
    use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
    use po_types::VirtAddr;

    fn writes(base: u64, pages: u64, lines_per_page: u64, gap: u32) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        for p in 0..pages {
            for l in 0..lines_per_page {
                ops.push(TraceOp::Store(VirtAddr::new(
                    (base + p) * PAGE_SIZE as u64 + l * LINE_SIZE as u64,
                )));
                ops.push(TraceOp::Compute(gap));
            }
        }
        ops
    }

    #[test]
    fn fork_job_matches_the_direct_scenario_call() {
        let base = 0x200;
        let warmup = writes(base, 8, 1, 10);
        let post = writes(base, 8, 2, 50);
        let direct = crate::scenario::run_fork_experiment(
            SystemConfig::table2_overlay(),
            Vpn::new(base),
            16,
            &warmup,
            &post,
        )
        .unwrap();
        let job = WorkloadJob::fork(
            0,
            "oow",
            SystemConfig::table2_overlay(),
            Vpn::new(base),
            16,
            warmup,
            post,
        );
        let result = run_job(job).unwrap();
        let via_runner = result.outcome.as_fork().unwrap();
        assert_eq!(via_runner.post_cycles, direct.post_cycles);
        assert_eq!(via_runner.extra_memory_bytes, direct.extra_memory_bytes);
        assert_eq!(via_runner.overlaying_writes, direct.overlaying_writes);
        assert_ne!(result.snapshot_fingerprint, 0);
    }

    #[test]
    fn identical_jobs_fingerprint_identically_and_deterministically() {
        let mk = |id| {
            WorkloadJob::trace(
                id,
                "trace",
                SystemConfig::table2_overlay(),
                TraceJob {
                    base_vpn: Vpn::new(0x300),
                    mapped_pages: 4,
                    shared_zero: true,
                    seed_lines: vec![(0, 0, 7), (1, 3, 9)],
                    ops: writes(0x300, 4, 2, 20),
                },
            )
        };
        let a = run_job(mk(0)).unwrap();
        let b = run_job(mk(1)).unwrap();
        assert_eq!(a.snapshot_fingerprint, b.snapshot_fingerprint);
        let (ta, tb) = (a.outcome.as_trace().unwrap(), b.outcome.as_trace().unwrap());
        assert_eq!(ta.stats.cycles, tb.stats.cycles);
        assert!(ta.overlay_bytes > 0, "seeded lines live in the OMS");
    }

    #[test]
    fn harness_job_reports_findings_without_erroring() {
        let ops = generate_ops(3, 200);
        let clean = run_job(WorkloadJob::harness_ops(
            0,
            "clean",
            SystemConfig::table2_overlay(),
            ops.clone(),
            false,
        ))
        .unwrap();
        assert_eq!(clean.outcome.as_harness().unwrap(), &Ok(()));
        let buggy = run_job(
            WorkloadJob::harness_ops(1, "buggy", SystemConfig::table2_overlay(), ops, true)
                .with_telemetry(64),
        )
        .unwrap();
        assert!(buggy.outcome.as_harness().unwrap().is_err(), "injected bug must be found");
        assert!(buggy.telemetry.is_active());
    }

    #[test]
    fn job_weight_orders_longest_first() {
        let short = WorkloadJob::trace(
            0,
            "s",
            SystemConfig::table2(),
            TraceJob {
                base_vpn: Vpn::new(1),
                mapped_pages: 1,
                shared_zero: false,
                seed_lines: vec![],
                ops: writes(1, 1, 1, 1),
            },
        );
        let long = WorkloadJob::fork(
            1,
            "l",
            SystemConfig::table2(),
            Vpn::new(1),
            1,
            writes(1, 4, 4, 1),
            writes(1, 4, 4, 1),
        );
        assert!(long.weight() > short.weight());
    }
}
