//! Machine-level behavioral tests: the end-to-end effects the figures
//! rely on must be visible at the access level.

use po_sim::{run_trace, Machine, SystemConfig, TraceOp};
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{AccessKind, Asid, LineData, VirtAddr, Vpn};

fn machine(config: SystemConfig) -> (Machine, Asid) {
    let mut m = Machine::new(config).unwrap();
    let pid = m.spawn_process().unwrap();
    (m, pid)
}

fn va(vpn: u64, line: u64) -> VirtAddr {
    VirtAddr::new(vpn * PAGE_SIZE as u64 + line * LINE_SIZE as u64)
}

#[test]
fn streaming_reads_benefit_from_prefetch() {
    let stream: Vec<TraceOp> =
        (0..2048u64).map(|i| TraceOp::Load(va(0x100 + i / 64, i % 64))).collect();

    let mut on = SystemConfig::table2();
    on.hierarchy.prefetcher.enabled = true;
    let mut off = SystemConfig::table2();
    off.hierarchy.prefetcher.enabled = false;

    let mut cycles = Vec::new();
    for config in [on, off] {
        let (mut m, pid) = machine(config);
        m.map_range(pid, Vpn::new(0x100), 40).unwrap();
        let stats = run_trace(&mut m, pid, &stream).unwrap();
        cycles.push(stats.cycles);
    }
    assert!(
        cycles[0] * 2 < cycles[1],
        "prefetching must at least halve streaming time ({} vs {})",
        cycles[0],
        cycles[1]
    );
}

#[test]
fn tlb_miss_cost_shows_up_once_per_page() {
    let (mut m, pid) = machine(SystemConfig::table2());
    m.map_range(pid, Vpn::new(0x200), 2).unwrap();
    let cold = m.access_at(0, pid, va(0x200, 0), AccessKind::Read).unwrap();
    let warm_same_page = m.access_at(cold, pid, va(0x200, 1), AccessKind::Read).unwrap();
    let cold_next_page = m.access_at(cold * 2, pid, va(0x201, 0), AccessKind::Read).unwrap();
    assert!(cold >= 1000, "first touch pays the walk: {cold}");
    assert!(warm_same_page < 200, "same page reuses the TLB entry: {warm_same_page}");
    assert!(cold_next_page >= 1000, "new page pays a fresh walk: {cold_next_page}");
}

#[test]
fn overlay_read_after_flush_resolves_through_oms() {
    // Seed an overlay line, flush it to the OMS, evict it from the
    // caches by streaming, then read it: the access must succeed and
    // cost a memory round-trip (controller → OMT cache → OMS → DRAM).
    let (mut m, pid) = machine(SystemConfig::table2_overlay());
    m.map_shared_zero_range(pid, Vpn::new(0x300), 1).unwrap();
    m.seed_overlay_line(pid, Vpn::new(0x300), 7, LineData::splat(0xAD)).unwrap();
    m.map_range(pid, Vpn::new(0x400), 600).unwrap();

    // Stream enough lines to evict everything (600 pages > 2 MB L3).
    let wash: Vec<TraceOp> =
        (0..600u64 * 64).map(|i| TraceOp::Load(va(0x400 + i / 64, i % 64))).collect();
    run_trace(&mut m, pid, &wash).unwrap();

    let lat = m.access_at(10_000_000, pid, va(0x300, 7), AccessKind::Read).unwrap();
    assert!(lat > 50, "post-wash overlay read must go to memory, got {lat}");
    // The data is intact through the whole path.
    assert_eq!(
        m.peek(pid, va(0x300, 7)).unwrap(),
        0xAD,
        "overlay line data must survive cache eviction"
    );
    // Lines NOT in the overlay read as zero from the shared zero page.
    assert_eq!(m.peek(pid, va(0x300, 8)).unwrap(), 0);
}

#[test]
fn overlaying_write_latency_is_line_not_page_scale() {
    let (mut m_oow, pid_o) = machine(SystemConfig::table2_overlay());
    let (mut m_cow, pid_c) = machine(SystemConfig::table2());
    for (m, pid) in [(&mut m_oow, pid_o), (&mut m_cow, pid_c)] {
        m.map_range(pid, Vpn::new(0x100), 1).unwrap();
        m.poke(pid, va(0x100, 0), 1).unwrap();
        m.fork(pid).unwrap();
    }
    let oow = m_oow.access_at(0, pid_o, va(0x100, 0), AccessKind::Write).unwrap();
    let cow = m_cow.access_at(0, pid_c, va(0x100, 0), AccessKind::Write).unwrap();
    // CoW pays fault + copy + shootdown (>= 10k with Table 2 costs);
    // the overlaying write is two orders smaller than a page copy path.
    assert!(cow > 10_000, "CoW store cost {cow}");
    assert!(oow < cow / 4, "overlaying write ({oow}) must be a fraction of CoW ({cow})");
}

#[test]
fn second_fork_generation_works() {
    // Grandchild forks: overlays/CoW interact across generations.
    let (mut m, a) = machine(SystemConfig::table2_overlay());
    m.map_range(a, Vpn::new(0x100), 1).unwrap();
    m.poke(a, va(0x100, 0), 1).unwrap();
    let b = m.fork(a).unwrap();
    m.poke(a, va(0x100, 0), 2).unwrap(); // a diverges via overlay
    let c = m.fork(b).unwrap(); // b (still on the original data) forks again
    m.poke(b, va(0x100, 0), 3).unwrap();
    assert_eq!(m.peek(a, va(0x100, 0)).unwrap(), 2);
    assert_eq!(m.peek(b, va(0x100, 0)).unwrap(), 3);
    assert_eq!(m.peek(c, va(0x100, 0)).unwrap(), 1, "grandchild sees the original");
}

#[test]
fn promotion_converts_a_fully_diverged_overlay_to_a_page() {
    // Threshold 4: four overlaying writes to one page trigger the
    // copy-and-commit promotion (§4.3.4): the overlay disappears, the
    // page becomes private and writable, and further stores are plain.
    let mut config = SystemConfig::table2_overlay();
    config.promote_threshold = 4;
    let (mut m, pid) = machine(config);
    m.map_range(pid, Vpn::new(0x100), 1).unwrap();
    let _child = m.fork(pid).unwrap();

    let mut t = 0;
    for line in 0..4u64 {
        t += m.access_at(t, pid, va(0x100, line), AccessKind::Write).unwrap();
    }
    let s = m.snapshot();
    assert_eq!(s.promotions.get(), 1, "4th diverged line must promote");
    assert_eq!(m.overlay().overlay_count(), 0, "overlay destroyed by promotion");
    assert_eq!(m.overlay().overlay_memory_bytes(), 0, "OMS space reclaimed");
    // The page is now private: the next store is an ordinary write hit.
    let lat = m.access_at(t, pid, va(0x100, 10), AccessKind::Write).unwrap();
    assert!(lat < 1000, "post-promotion store must be plain, got {lat}");
    assert_eq!(m.snapshot().overlaying_writes.get(), 4);
}

#[test]
fn cross_core_coherence_updates_remote_tlbs_without_shootdown() {
    // Two cores; core 1 caches a shared page's translation, core 0
    // performs an overlaying write. Core 1's TLB must see the new
    // OBitVector bit (via the overlaying-read-exclusive broadcast) and
    // its next read must route to the overlay — with zero shootdowns.
    let mut config = SystemConfig::table2_overlay();
    config.cores = 2;
    let (mut m, pid) = machine(config);
    m.map_range(pid, Vpn::new(0x100), 1).unwrap();
    m.poke(pid, va(0x100, 0), 0x11).unwrap();
    let _child = m.fork(pid).unwrap();

    // Core 1 warms its TLB with the shared page.
    m.access_at_core(0, 1, pid, va(0x100, 0), AccessKind::Read).unwrap();
    assert!(m.tlb_of(1).peek(pid, Vpn::new(0x100)).is_some());

    // Core 0 diverges line 0.
    m.access_at_core(100_000, 0, pid, va(0x100, 0), AccessKind::Write).unwrap();

    // Core 1's cached entry was updated in place.
    let remote = m.tlb_of(1).peek(pid, Vpn::new(0x100)).expect("still cached");
    assert!(remote.obitvec.contains(0), "remote OBitVector must be updated");
    assert_eq!(m.tlb_of(1).stats().shootdowns.get(), 0, "no shootdown on core 1");
    assert!(m.tlb_of(1).stats().obit_updates.get() >= 1);

    // And a timed read on core 1 works (hits the overlay address).
    let lat = m.access_at_core(200_000, 1, pid, va(0x100, 0), AccessKind::Read).unwrap();
    assert!(lat < 1000, "core 1 must not re-walk: its TLB entry is still valid, got {lat}");
}

#[test]
fn cow_shootdown_reaches_every_core() {
    let mut config = SystemConfig::table2(); // classic CoW
    config.cores = 2;
    let (mut m, pid) = machine(config);
    m.map_range(pid, Vpn::new(0x100), 1).unwrap();
    let _child = m.fork(pid).unwrap();
    m.access_at_core(0, 1, pid, va(0x100, 0), AccessKind::Read).unwrap();
    m.access_at_core(100_000, 0, pid, va(0x100, 0), AccessKind::Write).unwrap();
    assert_eq!(m.tlb_of(1).stats().shootdowns.get(), 1, "CoW remap must shoot down core 1");
    assert!(m.tlb_of(1).peek(pid, Vpn::new(0x100)).is_none());
}

#[test]
fn refork_materializes_parent_overlays() {
    // Checkpoint semantics: the parent diverges via overlays, then forks
    // again. The new checkpoint child must see the parent's *current*
    // data (overlays committed at fork), while the old child keeps the
    // original snapshot.
    let (mut m, parent) = machine(SystemConfig::table2_overlay());
    m.map_range(parent, Vpn::new(0x100), 2).unwrap();
    m.poke(parent, va(0x100, 0), 1).unwrap();

    let ck1 = m.fork(parent).unwrap();
    m.poke(parent, va(0x100, 0), 2).unwrap(); // diverges via overlay
    m.poke(parent, va(0x101, 5), 9).unwrap();
    assert!(m.overlay().overlay_count() >= 1);

    let ck2 = m.fork(parent).unwrap(); // must commit the overlays first
    assert_eq!(m.overlay().overlay_count(), 0, "fork must materialize the parent's overlays");
    assert_eq!(m.peek(ck2, va(0x100, 0)).unwrap(), 2, "new checkpoint sees current data");
    assert_eq!(m.peek(ck2, va(0x101, 5)).unwrap(), 9);
    assert_eq!(m.peek(ck1, va(0x100, 0)).unwrap(), 1, "old checkpoint unchanged");

    // The parent can keep diverging afterwards.
    m.poke(parent, va(0x100, 0), 3).unwrap();
    assert_eq!(m.peek(parent, va(0x100, 0)).unwrap(), 3);
    assert_eq!(m.peek(ck2, va(0x100, 0)).unwrap(), 2);
}

#[test]
fn snapshot_accounting_is_consistent() {
    let (mut m, pid) = machine(SystemConfig::table2());
    m.map_range(pid, Vpn::new(0x100), 4).unwrap();
    let ops = vec![
        TraceOp::Compute(50),
        TraceOp::Load(va(0x100, 0)),
        TraceOp::Store(va(0x101, 0)),
        TraceOp::Load(va(0x100, 1)),
    ];
    let stats = run_trace(&mut m, pid, &ops).unwrap();
    assert_eq!(stats.instructions, 53);
    assert_eq!(stats.loads.get(), 2);
    assert_eq!(stats.stores.get(), 1);
    assert!(stats.cycles >= stats.instructions);
    assert!(stats.cpi() >= 1.0);
}
