//! Shared error types.

use crate::addr::{Opn, PhysAddr, VirtAddr};
use crate::fault::CrashStage;
use core::fmt;

/// Result alias with [`PoError`].
pub type PoResult<T> = Result<T, PoError>;

/// Errors surfaced by the page-overlay framework and its substrates.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PoError {
    /// A virtual address was accessed with no mapping present.
    Unmapped(VirtAddr),
    /// A write was issued to a read-only mapping.
    ProtectionViolation(VirtAddr),
    /// The physical frame allocator is out of memory.
    OutOfMemory,
    /// The Overlay Memory Store could not be grown (the OS refused to
    /// provide more 4 KB pages, §4.4.3).
    OverlayStoreExhausted,
    /// An overlay operation was issued against a page that has no overlay.
    NoOverlay(Opn),
    /// An overlay line was requested that the OBitVector does not mark as
    /// present.
    LineNotInOverlay {
        /// Overlay page.
        opn: Opn,
        /// Line index within the page (0..64).
        line: usize,
    },
    /// A physical address outside the overlay address space was handed to
    /// an overlay-space-only path.
    NotAnOverlayAddress(PhysAddr),
    /// The operation requires overlays to be enabled on the mapping.
    OverlaysDisabled(VirtAddr),
    /// An invariant of a hardware structure was violated (bug guard;
    /// carries a human-readable description).
    Corrupted(&'static str),
    /// The machine "lost power" at an interior crash stage of a
    /// multi-step transition. The DST harness treats this as a signal
    /// to restore the last snapshot and replay, never as a real fault.
    Crashed(CrashStage),
}

impl fmt::Display for PoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoError::Unmapped(va) => write!(f, "virtual address {va} is not mapped"),
            PoError::ProtectionViolation(va) => {
                write!(f, "write to read-only mapping at {va}")
            }
            PoError::OutOfMemory => f.write_str("physical memory exhausted"),
            PoError::OverlayStoreExhausted => {
                f.write_str("overlay memory store exhausted and OS refused to grow it")
            }
            PoError::NoOverlay(opn) => write!(f, "page {opn} has no overlay"),
            PoError::LineNotInOverlay { opn, line } => {
                write!(f, "line {line} of overlay page {opn} is not present in the overlay")
            }
            PoError::NotAnOverlayAddress(pa) => {
                write!(f, "physical address {pa} is not in the overlay address space")
            }
            PoError::OverlaysDisabled(va) => {
                write!(f, "overlays are not enabled on the mapping of {va}")
            }
            PoError::Corrupted(what) => write!(f, "internal invariant violated: {what}"),
            PoError::Crashed(stage) => {
                write!(f, "simulated power loss at crash stage {}", stage.name())
            }
        }
    }
}

impl std::error::Error for PoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            PoError::Unmapped(VirtAddr::new(0x1000)),
            PoError::OutOfMemory,
            PoError::OverlayStoreExhausted,
            PoError::Corrupted("free list cycle"),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PoError>();
    }
}
