//! Deterministic fault injection for robustness testing.
//!
//! The paper's only discussed failure mode — the Overlay Memory Store
//! running dry and the OS refusing to grow it (§4.4.3) — is one of
//! several ways a real overlay-capable memory system can degrade. This
//! module provides a seeded, reproducible way to exercise all of them:
//! a [`FaultPlan`] names the [`FaultSite`]s that may fire (each with a
//! per-query probability or an explicit schedule of query indices), and
//! a [`FaultInjector`] handle is threaded through the OS model, the
//! overlay manager, the DRAM model and the machine. The default
//! injector is inert: [`FaultInjector::none`] carries no state and its
//! [`fire`](FaultInjector::fire) fast-path is a single `Option`
//! discriminant test, so benchmarks and production-style runs pay
//! nothing.
//!
//! Determinism contract: with the same plan (same seed, same site
//! configuration) the same sequence of `fire` calls produces the same
//! sequence of decisions, independent of wall-clock or platform.
//!
//! # Example
//!
//! ```
//! use po_types::fault::{FaultInjector, FaultPlan, FaultSite};
//!
//! // Refuse ~30% of OMS grow requests, deterministically.
//! let plan = FaultPlan::new(0xC0FFEE).with_probability(FaultSite::OmsGrowRefused, 0.3);
//! let inj = FaultInjector::from_plan(plan);
//! let refusals = (0..1000).filter(|_| inj.fire(FaultSite::OmsGrowRefused)).count();
//! assert!(refusals > 200 && refusals < 400);
//! assert_eq!(inj.injected(FaultSite::OmsGrowRefused), refusals as u64);
//!
//! // The default injector never fires and costs nothing.
//! let none = FaultInjector::none();
//! assert!(!none.fire(FaultSite::OmsGrowRefused));
//! ```

use crate::snapshot::{SnapshotReader, SnapshotWriter};
use crate::{PoError, PoResult};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Places in the simulated system where a fault can be injected.
///
/// Each variant corresponds to one guarded decision point in a model
/// crate; the enum lives here in `po-types` so every layer shares the
/// same vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// The OS refuses to grant the overlay manager another OMS chunk
    /// (§4.4.3: memory pressure — the one failure mode the paper names).
    OmsGrowRefused,
    /// The OS frame allocator is exhausted: `alloc_frame` fails even
    /// though the simulated DRAM capacity is not actually consumed.
    FrameAllocExhausted,
    /// An OMT-cache entry is corrupted: the entry is dropped and the
    /// controller must re-walk the in-memory OMT (detected-and-
    /// discarded ECC model, not silent data corruption).
    OmtCacheCorruption,
    /// A DRAM read suffers a transient (correctable) error and must be
    /// retried, costing extra latency.
    DramReadError,
    /// A TLB shootdown IPI times out and must be re-sent, stalling the
    /// initiating core for an extra round-trip.
    TlbShootdownTimeout,
    /// The OMS allocator transiently fails an allocation even though
    /// free segments exist (controller metadata glitch), forcing the
    /// caller through the grow/reclaim path.
    OmsAllocFailed,
    /// The whole machine "loses power" at an operation boundary: the
    /// simulation-test harness polls this site between ops and, when it
    /// fires, abandons the in-flight run, restores the last snapshot and
    /// replays the journaled suffix (deterministic simulation testing).
    CrashPoint,
    /// The segment copy inside an OMS compaction pass fails (transient
    /// copy-engine error). The pass must abort cleanly — the destination
    /// segment is released, the OMT keeps pointing at the old segment —
    /// and the caller may retry the whole pass later.
    CompactionRelocationFailed,
}

impl FaultSite {
    /// All sites, for iteration in reports and tests.
    pub const ALL: [FaultSite; 8] = [
        FaultSite::OmsGrowRefused,
        FaultSite::FrameAllocExhausted,
        FaultSite::OmtCacheCorruption,
        FaultSite::DramReadError,
        FaultSite::TlbShootdownTimeout,
        FaultSite::OmsAllocFailed,
        FaultSite::CrashPoint,
        FaultSite::CompactionRelocationFailed,
    ];

    #[inline]
    fn index(self) -> usize {
        match self {
            FaultSite::OmsGrowRefused => 0,
            FaultSite::FrameAllocExhausted => 1,
            FaultSite::OmtCacheCorruption => 2,
            FaultSite::DramReadError => 3,
            FaultSite::TlbShootdownTimeout => 4,
            FaultSite::OmsAllocFailed => 5,
            FaultSite::CrashPoint => 6,
            FaultSite::CompactionRelocationFailed => 7,
        }
    }
}

const NUM_SITES: usize = FaultSite::ALL.len();

/// Where in an operation a [`FaultSite::CrashPoint`] query is polled.
///
/// PR-1's crash machinery only polled at op boundaries, so the states
/// mid-way through a multi-step transition — exactly the ones the
/// paper's atomicity argument (§4.4.2) is about — were never exercised.
/// A [`FaultPlan`] now carries one armed stage; polls at any *other*
/// stage are transparent (they neither count nor fire), so the
/// crash-point query stream stays aligned between a golden run and a
/// crashy run regardless of which stage is armed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrashStage {
    /// Between two trace ops — the PR-1 behaviour, and the default.
    #[default]
    OpBoundary,
    /// Inside promotion (§4.4.2): after the destination page has been
    /// privatized (CoW resolved) but before the overlay is committed
    /// into it.
    MidPromotion,
    /// Inside reclaim/commit materialization: after the destination
    /// page has been privatized but before the overlay collapses.
    MidReclaim,
    /// Between the OMT entry removal and the OMS segment free during
    /// overlay destruction — the window where the store still holds a
    /// segment no OMT entry points at.
    OmtFreeWindow,
    /// Inside an OMS compaction relocation: either after the segment
    /// bytes are copied but before the OMT entry is repointed, or after
    /// the repoint but before the old segment is freed. Both windows
    /// leave exactly one orphaned segment in the store and no abstract
    /// state change — compaction is semantically invisible.
    MidCompaction,
}

impl CrashStage {
    /// All stages, for iteration in matrices and tests.
    pub const ALL: [CrashStage; 5] = [
        CrashStage::OpBoundary,
        CrashStage::MidPromotion,
        CrashStage::MidReclaim,
        CrashStage::OmtFreeWindow,
        CrashStage::MidCompaction,
    ];

    /// The interior (non-boundary) stages.
    pub const INTERIOR: [CrashStage; 4] = [
        CrashStage::MidPromotion,
        CrashStage::MidReclaim,
        CrashStage::OmtFreeWindow,
        CrashStage::MidCompaction,
    ];

    #[inline]
    fn index(self) -> u8 {
        match self {
            CrashStage::OpBoundary => 0,
            CrashStage::MidPromotion => 1,
            CrashStage::MidReclaim => 2,
            CrashStage::OmtFreeWindow => 3,
            CrashStage::MidCompaction => 4,
        }
    }

    fn from_index(i: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.index() == i)
    }

    /// Stable display name (used in test matrices and reports).
    pub fn name(self) -> &'static str {
        match self {
            CrashStage::OpBoundary => "op-boundary",
            CrashStage::MidPromotion => "mid-promotion",
            CrashStage::MidReclaim => "mid-reclaim",
            CrashStage::OmtFreeWindow => "omt-free-window",
            CrashStage::MidCompaction => "mid-compaction",
        }
    }
}

/// How one site decides whether a given query fires.
#[derive(Clone, Debug, Default)]
enum Trigger {
    /// Never fires (default for unconfigured sites).
    #[default]
    Never,
    /// Fires independently on each query with this probability.
    Probability(f64),
    /// Fires exactly on these 0-based query indices (per-site counter).
    Schedule(BTreeSet<u64>),
}

/// A seeded description of which faults fire where.
///
/// Build one with [`FaultPlan::new`], then chain
/// [`with_probability`](FaultPlan::with_probability) /
/// [`at_queries`](FaultPlan::at_queries) calls, and hand it to
/// [`FaultInjector::from_plan`].
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    triggers: [Trigger; NUM_SITES],
    crash_stage: CrashStage,
}

impl FaultPlan {
    /// An empty plan (no site fires) with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Self { seed, triggers: Default::default(), crash_stage: CrashStage::default() }
    }

    /// Makes `site` fire independently on each query with probability
    /// `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn with_probability(mut self, site: FaultSite, p: f64) -> Self {
        self.triggers[site.index()] = Trigger::Probability(p.clamp(0.0, 1.0));
        self
    }

    /// Makes `site` fire exactly on the given 0-based query indices
    /// (each site counts its own queries).
    #[must_use]
    pub fn at_queries<I: IntoIterator<Item = u64>>(mut self, site: FaultSite, queries: I) -> Self {
        self.triggers[site.index()] = Trigger::Schedule(queries.into_iter().collect());
        self
    }

    /// Arms [`FaultSite::CrashPoint`] polls at `stage` instead of the
    /// default [`CrashStage::OpBoundary`]. Polls at other stages are
    /// transparent: they neither count nor fire.
    #[must_use]
    pub fn with_crash_stage(mut self, stage: CrashStage) -> Self {
        self.crash_stage = stage;
        self
    }

    /// The stage at which crash-point polls are live.
    pub fn crash_stage(&self) -> CrashStage {
        self.crash_stage
    }
}

/// Mutable per-injector state, shared by all clones of a handle.
#[derive(Debug)]
struct FaultState {
    rng: SplitMix64,
    triggers: [Trigger; NUM_SITES],
    queries: [u64; NUM_SITES],
    injected: [u64; NUM_SITES],
    crash_stage: CrashStage,
}

/// A cloneable handle asked "does a fault fire here?" at each guarded
/// decision point.
///
/// All clones of a handle share one state: the machine hands clones to
/// the OS model, the overlay manager and the DRAM model, and a single
/// report covers them all. [`FaultInjector::none`] (also `Default`) is
/// inert and allocation-free.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector(Option<Arc<Mutex<FaultState>>>);

impl FaultInjector {
    /// The inert injector: never fires, never allocates.
    #[inline]
    pub const fn none() -> Self {
        Self(None)
    }

    /// Builds an active injector executing `plan`.
    pub fn from_plan(plan: FaultPlan) -> Self {
        Self(Some(Arc::new(Mutex::new(FaultState {
            rng: SplitMix64::new(plan.seed),
            triggers: plan.triggers,
            queries: [0; NUM_SITES],
            injected: [0; NUM_SITES],
            crash_stage: plan.crash_stage,
        }))))
    }

    /// `true` if this handle can ever fire (i.e. was built from a plan).
    #[inline]
    pub fn is_active(&self) -> bool {
        self.0.is_some()
    }

    /// Asks whether a fault fires at `site`. Counts the query, and the
    /// injection if it fires. The no-plan fast path is a single
    /// discriminant test.
    #[inline]
    pub fn fire(&self, site: FaultSite) -> bool {
        match &self.0 {
            None => false,
            Some(state) => Self::fire_slow(state, site),
        }
    }

    fn fire_slow(state: &Mutex<FaultState>, site: FaultSite) -> bool {
        // Lock poisoning cannot occur: no code panics while holding
        // this mutex (the closure below is panic-free), so unwrap_or_else
        // recovers the guard rather than crashing the simulation.
        let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
        let i = site.index();
        let q = s.queries[i];
        s.queries[i] += 1;
        let fires = match &s.triggers[i] {
            Trigger::Never => false,
            Trigger::Probability(p) => {
                let p = *p;
                s.rng.next_f64() < p
            }
            Trigger::Schedule(set) => set.contains(&q),
        };
        if fires {
            s.injected[i] += 1;
        }
        fires
    }

    /// Polls [`FaultSite::CrashPoint`] at a named [`CrashStage`]. When
    /// `stage` matches the armed stage of the plan, this is exactly
    /// [`fire`](FaultInjector::fire) on the crash-point site; when it
    /// does not, the poll is transparent — it neither counts a query
    /// nor consumes RNG state — so the crash-point query stream is
    /// identical however many *other* stages the run passes through.
    #[inline]
    pub fn fire_crash(&self, stage: CrashStage) -> bool {
        match &self.0 {
            None => false,
            Some(state) => {
                {
                    let s = state.lock().unwrap_or_else(|e| e.into_inner());
                    if s.crash_stage != stage {
                        return false;
                    }
                }
                Self::fire_slow(state, FaultSite::CrashPoint)
            }
        }
    }

    /// The crash stage this injector is armed at.
    pub fn crash_stage(&self) -> CrashStage {
        self.0.as_ref().map_or(CrashStage::OpBoundary, |s| {
            s.lock().unwrap_or_else(|e| e.into_inner()).crash_stage
        })
    }

    /// Number of times `site` has been queried.
    pub fn queries(&self, site: FaultSite) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.lock().unwrap_or_else(|e| e.into_inner()).queries[site.index()])
    }

    /// Number of faults injected at `site`.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.lock().unwrap_or_else(|e| e.into_inner()).injected[site.index()])
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |s| s.lock().unwrap_or_else(|e| e.into_inner()).injected.iter().sum())
    }

    /// Disarms `site` on this injector (and all clones sharing its
    /// state): subsequent queries at the site still count but never
    /// fire. The crash-replay harness uses this to clear the
    /// [`FaultSite::CrashPoint`] schedule after restoring a snapshot so
    /// the replay run does not crash again at the same op.
    pub fn clear_trigger(&self, site: FaultSite) {
        if let Some(state) = &self.0 {
            let mut s = state.lock().unwrap_or_else(|e| e.into_inner());
            s.triggers[site.index()] = Trigger::Never;
        }
    }

    /// Serializes the injector (RNG position, triggers, per-site query
    /// and injection counters) so a restored machine makes the *same*
    /// future fault decisions the original would have.
    pub fn encode_snapshot(&self, w: &mut SnapshotWriter) {
        match &self.0 {
            None => w.put_bool(false),
            Some(state) => {
                w.put_bool(true);
                let s = state.lock().unwrap_or_else(|e| e.into_inner());
                w.put_u64(s.rng.state);
                w.put_u8(s.crash_stage.index());
                for t in &s.triggers {
                    match t {
                        Trigger::Never => w.put_u8(0),
                        Trigger::Probability(p) => {
                            w.put_u8(1);
                            w.put_f64(*p);
                        }
                        Trigger::Schedule(set) => {
                            w.put_u8(2);
                            w.put_len(set.len());
                            for q in set {
                                w.put_u64(*q);
                            }
                        }
                    }
                }
                for q in &s.queries {
                    w.put_u64(*q);
                }
                for n in &s.injected {
                    w.put_u64(*n);
                }
            }
        }
    }

    /// Rebuilds an injector from [`encode_snapshot`] bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::Corrupted`] on truncation or malformed tags.
    pub fn decode_snapshot(r: &mut SnapshotReader) -> PoResult<Self> {
        if !r.get_bool()? {
            return Ok(Self::none());
        }
        let rng = SplitMix64 { state: r.get_u64()? };
        let crash_stage = CrashStage::from_index(r.get_u8()?)
            .ok_or(PoError::Corrupted("snapshot crash stage unknown"))?;
        let mut triggers: [Trigger; NUM_SITES] = Default::default();
        for t in &mut triggers {
            *t = match r.get_u8()? {
                0 => Trigger::Never,
                1 => Trigger::Probability(r.get_f64()?),
                2 => {
                    let n = r.get_len()?;
                    let mut set = BTreeSet::new();
                    for _ in 0..n {
                        set.insert(r.get_u64()?);
                    }
                    Trigger::Schedule(set)
                }
                _ => return Err(PoError::Corrupted("snapshot fault trigger tag unknown")),
            };
        }
        let mut queries = [0u64; NUM_SITES];
        for q in &mut queries {
            *q = r.get_u64()?;
        }
        let mut injected = [0u64; NUM_SITES];
        for n in &mut injected {
            *n = r.get_u64()?;
        }
        Ok(Self(Some(Arc::new(Mutex::new(FaultState {
            rng,
            triggers,
            queries,
            injected,
            crash_stage,
        })))))
    }
}

/// SplitMix64 (Steele, Lea, Flood 2014) — the same engine the rand shim
/// uses, duplicated here so `po-types` stays dependency-free.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_injector_never_fires_and_counts_nothing() {
        let inj = FaultInjector::none();
        for site in FaultSite::ALL {
            for _ in 0..100 {
                assert!(!inj.fire(site));
            }
            assert_eq!(inj.queries(site), 0);
            assert_eq!(inj.injected(site), 0);
        }
        assert!(!inj.is_active());
        assert_eq!(inj.total_injected(), 0);
    }

    #[test]
    fn probability_trigger_is_deterministic_per_seed() {
        let mk = || {
            FaultInjector::from_plan(
                FaultPlan::new(42).with_probability(FaultSite::DramReadError, 0.5),
            )
        };
        let (a, b) = (mk(), mk());
        let fa: Vec<bool> = (0..256).map(|_| a.fire(FaultSite::DramReadError)).collect();
        let fb: Vec<bool> = (0..256).map(|_| b.fire(FaultSite::DramReadError)).collect();
        assert_eq!(fa, fb);
        assert!(fa.iter().any(|&x| x) && fa.iter().any(|&x| !x));
    }

    #[test]
    fn schedule_trigger_fires_exactly_on_listed_queries() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(0).at_queries(FaultSite::OmsGrowRefused, [0, 3, 4]),
        );
        let fired: Vec<bool> = (0..6).map(|_| inj.fire(FaultSite::OmsGrowRefused)).collect();
        assert_eq!(fired, [true, false, false, true, true, false]);
        assert_eq!(inj.injected(FaultSite::OmsGrowRefused), 3);
        assert_eq!(inj.queries(FaultSite::OmsGrowRefused), 6);
    }

    #[test]
    fn sites_count_independently_and_clones_share_state() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(7)
                .with_probability(FaultSite::OmsGrowRefused, 1.0)
                .with_probability(FaultSite::FrameAllocExhausted, 0.0),
        );
        let clone = inj.clone();
        assert!(clone.fire(FaultSite::OmsGrowRefused));
        assert!(!clone.fire(FaultSite::FrameAllocExhausted));
        assert_eq!(inj.injected(FaultSite::OmsGrowRefused), 1);
        assert_eq!(inj.injected(FaultSite::FrameAllocExhausted), 0);
        assert_eq!(inj.total_injected(), 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_future_decisions() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(0xFEED)
                .with_probability(FaultSite::DramReadError, 0.5)
                .at_queries(FaultSite::CrashPoint, [2, 5]),
        );
        // Advance past some queries so RNG position and counters matter.
        for _ in 0..10 {
            inj.fire(FaultSite::DramReadError);
        }
        inj.fire(FaultSite::CrashPoint);

        let mut w = SnapshotWriter::new();
        inj.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let restored = FaultInjector::decode_snapshot(&mut r).unwrap();
        r.expect_end().unwrap();

        assert_eq!(restored.queries(FaultSite::DramReadError), 10);
        assert_eq!(restored.injected(FaultSite::CrashPoint), 0);
        let a: Vec<bool> = (0..64).map(|_| inj.fire(FaultSite::DramReadError)).collect();
        let b: Vec<bool> = (0..64).map(|_| restored.fire(FaultSite::DramReadError)).collect();
        assert_eq!(a, b);
        // Schedule sites stay aligned too (query 2 fires on both).
        assert_eq!(inj.fire(FaultSite::CrashPoint), restored.fire(FaultSite::CrashPoint));
        assert!(inj.fire(FaultSite::CrashPoint));
        assert!(restored.fire(FaultSite::CrashPoint));
    }

    #[test]
    fn inert_injector_snapshot_round_trips() {
        let mut w = SnapshotWriter::new();
        FaultInjector::none().encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let restored = FaultInjector::decode_snapshot(&mut r).unwrap();
        r.expect_end().unwrap();
        assert!(!restored.is_active());
    }

    #[test]
    fn clear_trigger_disarms_site_across_clones() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(1).with_probability(FaultSite::CrashPoint, 1.0),
        );
        let clone = inj.clone();
        assert!(inj.fire(FaultSite::CrashPoint));
        clone.clear_trigger(FaultSite::CrashPoint);
        assert!(!inj.fire(FaultSite::CrashPoint));
        assert_eq!(inj.queries(FaultSite::CrashPoint), 2);
    }

    #[test]
    fn mismatched_stage_polls_are_transparent() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(9)
                .at_queries(FaultSite::CrashPoint, [1])
                .with_crash_stage(CrashStage::MidPromotion),
        );
        // Polls at every *other* stage never count nor fire.
        for stage in [CrashStage::OpBoundary, CrashStage::MidReclaim, CrashStage::OmtFreeWindow] {
            for _ in 0..10 {
                assert!(!inj.fire_crash(stage), "{}", stage.name());
            }
        }
        assert_eq!(inj.queries(FaultSite::CrashPoint), 0);
        // Matched polls follow the schedule (query 1 fires).
        assert!(!inj.fire_crash(CrashStage::MidPromotion));
        assert!(inj.fire_crash(CrashStage::MidPromotion));
        assert_eq!(inj.queries(FaultSite::CrashPoint), 2);
        assert_eq!(inj.injected(FaultSite::CrashPoint), 1);
    }

    #[test]
    fn fire_crash_at_default_stage_matches_fire() {
        let a = FaultInjector::from_plan(FaultPlan::new(3).at_queries(FaultSite::CrashPoint, [2]));
        let b = FaultInjector::from_plan(FaultPlan::new(3).at_queries(FaultSite::CrashPoint, [2]));
        for _ in 0..4 {
            assert_eq!(a.fire_crash(CrashStage::OpBoundary), b.fire(FaultSite::CrashPoint));
        }
        assert_eq!(FaultInjector::none().crash_stage(), CrashStage::OpBoundary);
        assert!(!FaultInjector::none().fire_crash(CrashStage::MidReclaim));
    }

    #[test]
    fn snapshot_round_trip_preserves_crash_stage() {
        let inj = FaultInjector::from_plan(
            FaultPlan::new(0xABCD)
                .at_queries(FaultSite::CrashPoint, [0, 4])
                .with_crash_stage(CrashStage::OmtFreeWindow),
        );
        assert!(inj.fire_crash(CrashStage::OmtFreeWindow));
        let mut w = SnapshotWriter::new();
        inj.encode_snapshot(&mut w);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        let restored = FaultInjector::decode_snapshot(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(restored.crash_stage(), CrashStage::OmtFreeWindow);
        assert_eq!(restored.queries(FaultSite::CrashPoint), 1);
        // Stage gating survives the round-trip: boundary polls stay
        // transparent, window polls track the schedule in lockstep.
        assert!(!restored.fire_crash(CrashStage::OpBoundary));
        for _ in 0..4 {
            assert_eq!(
                inj.fire_crash(CrashStage::OmtFreeWindow),
                restored.fire_crash(CrashStage::OmtFreeWindow)
            );
        }
    }

    #[test]
    fn probability_is_clamped() {
        let always = FaultInjector::from_plan(
            FaultPlan::new(1).with_probability(FaultSite::TlbShootdownTimeout, 7.5),
        );
        assert!(always.fire(FaultSite::TlbShootdownTimeout));
        let never = FaultInjector::from_plan(
            FaultPlan::new(1).with_probability(FaultSite::TlbShootdownTimeout, -3.0),
        );
        assert!(!never.fire(FaultSite::TlbShootdownTimeout));
    }
}
