//! Strongly-typed addresses and page numbers.
//!
//! Four address spaces appear in the paper's design (Figure 4):
//!
//! 1. the per-process **virtual address space** ([`VirtAddr`], [`Vpn`]),
//! 2. the widened **physical address space** ([`PhysAddr`], [`Ppn`]) whose
//!    upper half (MSB set) is the *overlay address space* ([`Opn`]),
//! 3. the **main memory address space** ([`MainMemAddr`]) that actual DRAM
//!    responds to, split between regular frames and the Overlay Memory
//!    Store.
//!
//! The virtual-to-overlay mapping is *direct* (§4.1): the overlay page
//! number for `(asid, vpn)` is the concatenation `1 ‖ asid ‖ vpn`, so no
//! table lookup is ever needed to find a page's overlay address.

use crate::geometry::{ASID_BITS, LINES_PER_PAGE, LINE_SHIFT, PAGE_SHIFT, VADDR_BITS};
use core::fmt;

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates the address from a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the byte offset of this address within its page.
            #[inline]
            pub const fn page_offset(self) -> usize {
                (self.0 & ((1 << PAGE_SHIFT) - 1)) as usize
            }

            /// Returns the byte offset of this address within its cache line.
            #[inline]
            pub const fn line_offset(self) -> usize {
                (self.0 & ((1 << LINE_SHIFT) - 1)) as usize
            }

            /// Returns the index (0..64) of the cache line containing this
            /// address within its page.
            #[inline]
            pub const fn line_in_page(self) -> usize {
                ((self.0 >> LINE_SHIFT) as usize) % LINES_PER_PAGE
            }

            /// Returns the address rounded down to its cache-line base.
            #[inline]
            pub const fn line_base(self) -> Self {
                Self(self.0 & !((1 << LINE_SHIFT) - 1))
            }

            /// Returns the address rounded down to its page base.
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !((1 << PAGE_SHIFT) - 1))
            }

            /// Returns the address advanced by `bytes`.
            #[inline]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.raw()
            }
        }
    };
}

addr_newtype!(
    /// A virtual address within one process's 48-bit address space.
    VirtAddr
);
addr_newtype!(
    /// An address in the *widened* 64-bit physical address space.
    ///
    /// If the MSB ([`crate::geometry::OVERLAY_BIT`]) is set, this address
    /// lies in the overlay address space and is not directly backed by main
    /// memory; the memory controller resolves it through the Overlay
    /// Mapping Table (§4.2).
    PhysAddr
);
addr_newtype!(
    /// An address in the main-memory (DRAM) address space — what the memory
    /// controller actually sends to DRAM. Regular physical pages map
    /// directly here; overlay lines map into the Overlay Memory Store.
    MainMemAddr
);

macro_rules! pn_newtype {
    ($(#[$meta:meta])* $name:ident, $addr:ident) => {
        $(#[$meta])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Creates the page number from a raw value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw page number.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the base address of this page.
            #[inline]
            pub const fn base(self) -> $addr {
                $addr::new(self.0 << PAGE_SHIFT)
            }

            /// Returns the address of cache line `line` (0..64) within this
            /// page.
            ///
            /// # Panics
            ///
            /// Panics if `line >= LINES_PER_PAGE`.
            #[inline]
            pub fn line_addr(self, line: usize) -> $addr {
                assert!(line < LINES_PER_PAGE, "line index {line} out of range");
                $addr::new((self.0 << PAGE_SHIFT) | ((line as u64) << LINE_SHIFT))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }
    };
}

pn_newtype!(
    /// A virtual page number (bits 12..48 of a [`VirtAddr`]).
    Vpn,
    VirtAddr
);
pn_newtype!(
    /// A regular physical page number (a main-memory frame).
    Ppn,
    PhysAddr
);

impl VirtAddr {
    /// Returns the virtual page number of this address.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn::new(self.0 >> PAGE_SHIFT)
    }
}

impl PhysAddr {
    /// Returns the physical page number of this address.
    #[inline]
    pub const fn ppn(self) -> Ppn {
        Ppn::new(self.0 >> PAGE_SHIFT)
    }

    /// Returns `true` if this address lies in the overlay address space
    /// (MSB set, §4.1).
    #[inline]
    pub const fn is_overlay(self) -> bool {
        self.0 >> crate::geometry::OVERLAY_BIT == 1
    }

    /// Interprets this address as an overlay address and returns its
    /// overlay page number.
    ///
    /// # Panics
    ///
    /// Panics if the address is not in the overlay address space; check
    /// [`PhysAddr::is_overlay`] first.
    #[inline]
    pub fn opn(self) -> Opn {
        assert!(self.is_overlay(), "address {self} is not an overlay address");
        Opn::from_raw(self.0 >> PAGE_SHIFT)
    }
}

impl MainMemAddr {
    /// Returns the main-memory frame number of this address.
    #[inline]
    pub const fn frame(self) -> u64 {
        self.0 >> PAGE_SHIFT
    }
}

/// An address-space identifier: the process ID used in the direct
/// virtual-to-overlay mapping (§4.1). 15 bits, so up to 2^15 processes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(u16);

impl Asid {
    /// The maximum representable ASID (15 bits).
    pub const MAX: u16 = (1 << ASID_BITS) - 1;

    /// Creates an ASID.
    ///
    /// # Panics
    ///
    /// Panics if `raw` exceeds [`Asid::MAX`] (the paper's widened physical
    /// address space supports 2^15 processes).
    #[inline]
    pub fn new(raw: u16) -> Self {
        assert!(raw <= Self::MAX, "ASID {raw} exceeds 15-bit limit");
        Self(raw)
    }

    /// Returns the raw identifier.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Asid({})", self.0)
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An overlay page number: a page in the overlay address space.
///
/// Encodes the paper's direct mapping (§4.1, Figure 5):
///
/// ```text
///   bit 51      bits 36..51     bits 0..36
///   [ 1 ]       [   ASID    ]   [   VPN   ]
/// ```
///
/// (page-number view of `1 ‖ ASID ‖ vaddr`; the page offset re-enters when
/// the OPN is turned back into a [`PhysAddr`]).
///
/// Because no two virtual pages may map to the same overlay, the OPN
/// uniquely identifies the `(asid, vpn)` pair — the property the paper's
/// TLB-coherence scheme relies on (§4.3.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Opn(u64);

impl Opn {
    const VPN_BITS: u32 = VADDR_BITS - PAGE_SHIFT; // 36

    /// Encodes the overlay page number for virtual page `vpn` of process
    /// `asid` using the direct mapping of §4.1.
    #[inline]
    pub fn encode(asid: Asid, vpn: Vpn) -> Self {
        debug_assert!(vpn.raw() < (1 << Self::VPN_BITS), "VPN exceeds 36 bits");
        let pn = (1u64 << (Self::VPN_BITS + ASID_BITS))
            | ((asid.raw() as u64) << Self::VPN_BITS)
            | vpn.raw();
        Self(pn)
    }

    /// Reconstructs an OPN from its raw page-number representation (the top
    /// bits of an overlay [`PhysAddr`]).
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw page-number representation.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Decodes the `(asid, vpn)` pair this overlay page belongs to. Because
    /// the mapping is 1-1 (no overlay sharing), this inversion is exact.
    #[inline]
    pub fn decode(self) -> (Asid, Vpn) {
        let vpn = Vpn::new(self.0 & ((1 << Self::VPN_BITS) - 1));
        let asid = Asid::new(((self.0 >> Self::VPN_BITS) as u16) & Asid::MAX);
        (asid, vpn)
    }

    /// Returns the base [`PhysAddr`] of this overlay page (MSB set).
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << PAGE_SHIFT)
    }

    /// Returns the overlay [`PhysAddr`] of cache line `line` within this
    /// overlay page.
    ///
    /// # Panics
    ///
    /// Panics if `line >= LINES_PER_PAGE`.
    #[inline]
    pub fn line_addr(self, line: usize) -> PhysAddr {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        PhysAddr::new((self.0 << PAGE_SHIFT) | ((line as u64) << LINE_SHIFT))
    }
}

impl fmt::Debug for Opn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (asid, vpn) = self.decode();
        write!(f, "Opn(asid={}, vpn={:#x})", asid, vpn.raw())
    }
}

impl fmt::Display for Opn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{LINE_SIZE, PAGE_SIZE};

    #[test]
    fn virt_addr_decomposition() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.vpn().raw(), 0x1234_5678 >> 12);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.line_in_page(), 0x678 / LINE_SIZE);
        assert_eq!(va.line_offset(), 0x678 % LINE_SIZE);
        assert_eq!(va.page_base().raw(), 0x1234_5000);
        assert_eq!(va.line_base().raw(), 0x1234_5640);
    }

    #[test]
    fn vpn_line_addr_roundtrip() {
        let vpn = Vpn::new(42);
        for line in 0..crate::geometry::LINES_PER_PAGE {
            let addr = vpn.line_addr(line);
            assert_eq!(addr.vpn(), vpn);
            assert_eq!(addr.line_in_page(), line);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vpn_line_addr_rejects_out_of_range() {
        Vpn::new(1).line_addr(64);
    }

    #[test]
    fn opn_encode_decode_roundtrip() {
        for asid in [0u16, 1, 77, Asid::MAX] {
            for vpn in [0u64, 5, (1 << 36) - 1] {
                let opn = Opn::encode(Asid::new(asid), Vpn::new(vpn));
                assert_eq!(opn.decode(), (Asid::new(asid), Vpn::new(vpn)));
                assert!(opn.base().is_overlay(), "overlay bit must be MSB-visible");
            }
        }
    }

    #[test]
    fn opn_base_sets_overlay_bit() {
        let opn = Opn::encode(Asid::new(3), Vpn::new(0x1000));
        let pa = opn.base();
        assert!(pa.is_overlay());
        assert_eq!(pa.opn(), opn);
    }

    #[test]
    fn regular_phys_addr_is_not_overlay() {
        let pa = PhysAddr::new(0x7fff_ffff_ffff);
        assert!(!pa.is_overlay());
    }

    #[test]
    fn distinct_pages_get_distinct_overlays() {
        // §4.1 constraint: no two virtual pages share an overlay page.
        let a = Opn::encode(Asid::new(1), Vpn::new(10));
        let b = Opn::encode(Asid::new(1), Vpn::new(11));
        let c = Opn::encode(Asid::new(2), Vpn::new(10));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn opn_line_addr_is_within_page() {
        let opn = Opn::encode(Asid::new(9), Vpn::new(123));
        let addr = opn.line_addr(63);
        assert!(addr.is_overlay());
        assert_eq!(addr.opn(), opn);
        assert_eq!(addr.line_in_page(), 63);
        assert_eq!(addr.raw() - opn.base().raw(), (PAGE_SIZE - LINE_SIZE) as u64);
    }

    #[test]
    #[should_panic(expected = "15-bit limit")]
    fn asid_rejects_overflow() {
        Asid::new(Asid::MAX + 1);
    }
}
