//! Cache-line payloads.
//!
//! The functional half of the reproduction moves real bytes around so that
//! every overlay state transition can be checked against a flat-memory
//! oracle. [`LineData`] is the unit of that data movement: one 64-byte
//! cache line.

use crate::geometry::LINE_SIZE;
use core::fmt;

/// The data contents of one 64-byte cache line.
///
/// # Example
///
/// ```
/// use po_types::LineData;
///
/// let mut line = LineData::zeroed();
/// line.as_mut_bytes()[0] = 0xAB;
/// assert!(!line.is_zero());
/// assert_eq!(line.as_bytes()[0], 0xAB);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LineData([u8; LINE_SIZE]);

impl LineData {
    /// Creates an all-zero cache line.
    #[inline]
    pub const fn zeroed() -> Self {
        Self([0; LINE_SIZE])
    }

    /// Creates a line from raw bytes.
    #[inline]
    pub const fn from_bytes(bytes: [u8; LINE_SIZE]) -> Self {
        Self(bytes)
    }

    /// Creates a line whose bytes are all `fill` — handy for tests.
    #[inline]
    pub const fn splat(fill: u8) -> Self {
        Self([fill; LINE_SIZE])
    }

    /// Returns a view of the line's bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; LINE_SIZE] {
        &self.0
    }

    /// Returns a mutable view of the line's bytes.
    #[inline]
    pub fn as_mut_bytes(&mut self) -> &mut [u8; LINE_SIZE] {
        &mut self.0
    }

    /// Returns `true` if every byte is zero (the test used by the
    /// sparse-data-structure technique, §5.2, to decide whether a line
    /// belongs in an overlay).
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }

    /// Interprets the line as 8 little-endian `f64` values (the layout the
    /// paper's SpMV evaluation assumes: 8 double-precision values per 64 B
    /// line).
    pub fn as_f64x8(&self) -> [f64; 8] {
        let mut out = [0.0; 8];
        for (i, v) in out.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&self.0[i * 8..(i + 1) * 8]);
            *v = f64::from_le_bytes(b);
        }
        out
    }

    /// Builds a line from 8 little-endian `f64` values.
    pub fn from_f64x8(vals: [f64; 8]) -> Self {
        let mut bytes = [0u8; LINE_SIZE];
        for (i, v) in vals.iter().enumerate() {
            bytes[i * 8..(i + 1) * 8].copy_from_slice(&v.to_le_bytes());
        }
        Self(bytes)
    }
}

impl Default for LineData {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print only a prefix: full 64-byte dumps drown test output.
        write!(
            f,
            "LineData[{:02x} {:02x} {:02x} {:02x} ..{}]",
            self.0[0],
            self.0[1],
            self.0[2],
            self.0[3],
            if self.is_zero() { " all-zero" } else { "" }
        )
    }
}

impl AsRef<[u8]> for LineData {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl AsMut<[u8]> for LineData {
    fn as_mut(&mut self) -> &mut [u8] {
        &mut self.0
    }
}

impl From<[u8; LINE_SIZE]> for LineData {
    fn from(bytes: [u8; LINE_SIZE]) -> Self {
        Self(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_zero() {
        assert!(LineData::zeroed().is_zero());
        assert!(!LineData::splat(1).is_zero());
    }

    #[test]
    fn f64_roundtrip() {
        let vals = [1.0, -2.5, 0.0, 3.25, f64::MAX, f64::MIN, 1e-300, 42.0];
        let line = LineData::from_f64x8(vals);
        assert_eq!(line.as_f64x8(), vals);
    }

    #[test]
    fn byte_mutation_visible() {
        let mut line = LineData::zeroed();
        line.as_mut_bytes()[63] = 7;
        assert_eq!(line.as_bytes()[63], 7);
        assert!(!line.is_zero());
    }
}
