//! Machine geometry constants used throughout the paper's evaluation.
//!
//! The paper (Table 2 and §4) assumes 4 KB pages and a uniform 64 B cache
//! line, i.e. 64 cache lines per page, which is why the per-page overlay
//! bit vector ([`crate::OBitVector`]) is exactly 64 bits wide.

/// Size of a virtual/physical page in bytes (4 KB).
pub const PAGE_SIZE: usize = 4096;

/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// Size of a cache line in bytes (64 B, uniform across the hierarchy).
pub const LINE_SIZE: usize = 64;

/// log2 of [`LINE_SIZE`].
pub const LINE_SHIFT: u32 = 6;

/// Number of cache lines in one page (`PAGE_SIZE / LINE_SIZE` = 64).
pub const LINES_PER_PAGE: usize = PAGE_SIZE / LINE_SIZE;

/// Number of virtual-address bits per process (the paper assumes a 48-bit
/// virtual address space, §4.1).
pub const VADDR_BITS: u32 = 48;

/// Number of physical-address bits in the *widened* physical address space
/// that accommodates the overlay address space (§4.1: 64-bit physical
/// address space).
pub const PADDR_BITS: u32 = 64;

/// Number of address-space-identifier (process) bits. With a 64-bit
/// physical address space, a 48-bit virtual space and one overlay bit, the
/// paper supports `2^15` processes (§4.1).
pub const ASID_BITS: u32 = PADDR_BITS - VADDR_BITS - 1; // 15

/// Bit position of the overlay bit in a widened physical address: the MSB.
pub const OVERLAY_BIT: u32 = PADDR_BITS - 1; // 63

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        assert_eq!(PAGE_SIZE, 1 << PAGE_SHIFT);
        assert_eq!(LINE_SIZE, 1 << LINE_SHIFT);
        assert_eq!(LINES_PER_PAGE, 64);
        assert_eq!(ASID_BITS, 15);
        assert_eq!(OVERLAY_BIT, 63);
    }
}
