//! The per-page overlay bit vector (`OBitVector`, §3.1 of the paper).
//!
//! Each virtual page is associated with a 64-bit vector that records which
//! of its 64 cache lines currently live in the page's overlay. The vector
//! is cached in the TLB so the processor can decide — on the critical path
//! of an L1 access — whether to tag the access with the physical page
//! number or the overlay page number (§4.3.1).

use crate::geometry::LINES_PER_PAGE;
use core::fmt;

/// A 64-bit vector with one bit per cache line of a 4 KB page.
///
/// Bit `i` set means cache line `i` of the page is present in the overlay
/// and must be accessed from there (access semantics of §2.1).
///
/// # Example
///
/// ```
/// use po_types::OBitVector;
///
/// let mut v = OBitVector::EMPTY;
/// v.set(3);
/// v.set(17);
/// assert!(v.contains(3));
/// assert!(!v.contains(4));
/// assert_eq!(v.iter().collect::<Vec<_>>(), vec![3, 17]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct OBitVector(u64);

impl OBitVector {
    /// The empty vector: no lines are in the overlay.
    pub const EMPTY: Self = Self(0);

    /// The full vector: every line of the page is in the overlay.
    pub const FULL: Self = Self(u64::MAX);

    /// Creates a vector from its raw 64-bit representation.
    #[inline]
    pub const fn from_raw(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw 64-bit representation (what the TLB entry stores).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns `true` if line `line` is present in the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    #[inline]
    pub fn contains(self, line: usize) -> bool {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        (self.0 >> line) & 1 == 1
    }

    /// Marks line `line` as present in the overlay.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    #[inline]
    pub fn set(&mut self, line: usize) {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        self.0 |= 1 << line;
    }

    /// Clears line `line` (the line reverts to the physical page).
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    #[inline]
    pub fn clear(&mut self, line: usize) {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        self.0 &= !(1 << line);
    }

    /// Returns the number of lines present in the overlay.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Returns `true` if no lines are in the overlay.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if every line of the page is in the overlay.
    #[inline]
    pub const fn is_full(self) -> bool {
        self.0 == u64::MAX
    }

    /// Iterates over the indices of lines present in the overlay, in
    /// ascending order.
    #[inline]
    pub fn iter(self) -> Iter {
        Iter(self.0)
    }

    /// Returns the union of two vectors.
    #[inline]
    pub const fn union(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// Returns the intersection of two vectors.
    #[inline]
    pub const fn intersection(self, other: Self) -> Self {
        Self(self.0 & other.0)
    }

    /// Returns the lines present in `self` but not in `other`.
    #[inline]
    pub const fn difference(self, other: Self) -> Self {
        Self(self.0 & !other.0)
    }

    /// Returns the number of overlay lines with index strictly below
    /// `line` — the rank used when overlay lines are stored densely in
    /// virtual-page order.
    ///
    /// # Panics
    ///
    /// Panics if `line >= 64`.
    #[inline]
    pub fn rank(self, line: usize) -> usize {
        assert!(line < LINES_PER_PAGE, "line index {line} out of range");
        (self.0 & ((1u64 << line) - 1)).count_ones() as usize
    }
}

impl fmt::Debug for OBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "OBitVector({:#018x}, {} lines)", self.0, self.len())
    }
}

impl fmt::Display for OBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::Binary for OBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for OBitVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl FromIterator<usize> for OBitVector {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut v = Self::EMPTY;
        for line in iter {
            v.set(line);
        }
        v
    }
}

impl IntoIterator for OBitVector {
    type Item = usize;
    type IntoIter = Iter;

    fn into_iter(self) -> Iter {
        self.iter()
    }
}

/// Iterator over set line indices of an [`OBitVector`], ascending.
#[derive(Clone, Debug)]
pub struct Iter(u64);

impl Iterator for Iter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let idx = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(idx)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Iter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_contains() {
        let mut v = OBitVector::EMPTY;
        assert!(v.is_empty());
        v.set(0);
        v.set(63);
        assert!(v.contains(0));
        assert!(v.contains(63));
        assert!(!v.contains(32));
        assert_eq!(v.len(), 2);
        v.clear(0);
        assert!(!v.contains(0));
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn full_and_empty() {
        assert!(OBitVector::FULL.is_full());
        assert_eq!(OBitVector::FULL.len(), 64);
        assert!(OBitVector::EMPTY.is_empty());
        assert_eq!(OBitVector::EMPTY.len(), 0);
    }

    #[test]
    fn iter_ascending() {
        let v: OBitVector = [5usize, 1, 60, 33].into_iter().collect();
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![1, 5, 33, 60]);
        assert_eq!(v.iter().len(), 4);
    }

    #[test]
    fn rank_counts_lower_lines() {
        let v: OBitVector = [0usize, 2, 4, 63].into_iter().collect();
        assert_eq!(v.rank(0), 0);
        assert_eq!(v.rank(1), 1);
        assert_eq!(v.rank(3), 2);
        assert_eq!(v.rank(5), 3);
        assert_eq!(v.rank(63), 3);
    }

    #[test]
    fn set_algebra() {
        let a: OBitVector = [1usize, 2, 3].into_iter().collect();
        let b: OBitVector = [3usize, 4].into_iter().collect();
        assert_eq!(a.union(b).iter().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(a.intersection(b).iter().collect::<Vec<_>>(), vec![3]);
        assert_eq!(a.difference(b).iter().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn contains_rejects_out_of_range() {
        OBitVector::EMPTY.contains(64);
    }
}
