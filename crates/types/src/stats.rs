//! Lightweight statistics counters used by every hardware model.

use core::fmt;

/// A saturating event counter.
///
/// # Example
///
/// ```
/// use po_types::Counter;
///
/// let mut hits = Counter::new();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[inline]
    pub const fn new() -> Self {
        Self(0)
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Returns the current count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets the counter to zero.
    #[inline]
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.0)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Computes a ratio, returning 0.0 when the denominator is zero; used all
/// over the stats reporting (hit rates, CPI, normalized figures).
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter::new();
        c.add(u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
    }
}
