//! # po-types — foundational types for the page-overlays reproduction
//!
//! This crate defines the vocabulary shared by every subsystem in the
//! reproduction of *"Page Overlays: An Enhanced Virtual Memory Framework to
//! Enable Fine-grained Memory Management"* (Seshadri et al., ISCA 2015):
//!
//! * strongly-typed addresses and page numbers ([`VirtAddr`], [`PhysAddr`],
//!   [`MainMemAddr`], [`Vpn`], [`Ppn`], [`Opn`], [`Asid`]),
//! * the machine geometry used throughout the paper (4 KB pages, 64 B cache
//!   lines, 64 lines per page — see [`geometry`]),
//! * the per-page **overlay bit vector** ([`OBitVector`], §3.1 of the paper),
//! * cache-line payloads ([`LineData`]),
//! * access kinds and shared error types.
//!
//! The paper's virtual-to-overlay mapping (§4.1) — the concatenation
//! `overlay_bit ‖ ASID ‖ vaddr` — is implemented on [`PhysAddr`] /
//! [`Opn`] in [`addr`].
//!
//! # Example
//!
//! ```
//! use po_types::{VirtAddr, Asid, Opn, OBitVector, geometry::LINES_PER_PAGE};
//!
//! let va = VirtAddr::new(0x7f00_1234_5678);
//! let vpn = va.vpn();
//! let opn = Opn::encode(Asid::new(7), vpn);
//! assert_eq!(opn.decode(), (Asid::new(7), vpn));
//!
//! let mut obv = OBitVector::EMPTY;
//! obv.set(va.line_in_page());
//! assert!(obv.contains(va.line_in_page()));
//! assert_eq!(obv.len(), 1);
//! assert!(obv.len() <= LINES_PER_PAGE);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod access;
pub mod addr;
pub mod error;
pub mod fault;
pub mod geometry;
pub mod line;
pub mod obitvec;
pub mod snapshot;
pub mod stats;

pub use access::{AccessKind, MemoryAccess};
pub use addr::{Asid, MainMemAddr, Opn, PhysAddr, Ppn, VirtAddr, Vpn};
pub use error::{PoError, PoResult};
pub use fault::{CrashStage, FaultInjector, FaultPlan, FaultSite};
pub use line::LineData;
pub use obitvec::OBitVector;
pub use snapshot::{fingerprint64, fingerprint64_bytes, SnapshotReader, SnapshotWriter};
pub use stats::Counter;

/// A simulation timestamp measured in CPU cycles.
///
/// All timing in the reproduction is expressed in cycles of the simulated
/// 2.67 GHz core (Table 2 of the paper).
pub type Cycle = u64;
