//! Memory-access descriptors shared by the TLB, cache and DRAM models.

use crate::addr::VirtAddr;
use core::fmt;

/// Whether a memory access reads or writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// A demand load.
    Read,
    /// A demand store.
    Write,
}

impl AccessKind {
    /// Returns `true` for [`AccessKind::Write`].
    #[inline]
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

/// A single demand access issued by the simulated core.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MemoryAccess {
    /// The virtual address accessed.
    pub vaddr: VirtAddr,
    /// Read or write.
    pub kind: AccessKind,
}

impl MemoryAccess {
    /// Creates a read access.
    #[inline]
    pub const fn read(vaddr: VirtAddr) -> Self {
        Self { vaddr, kind: AccessKind::Read }
    }

    /// Creates a write access.
    #[inline]
    pub const fn write(vaddr: VirtAddr) -> Self {
        Self { vaddr, kind: AccessKind::Write }
    }
}

impl fmt::Display for MemoryAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind, self.vaddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemoryAccess::read(VirtAddr::new(0x40));
        assert_eq!(r.kind, AccessKind::Read);
        assert!(!r.kind.is_write());
        let w = MemoryAccess::write(VirtAddr::new(0x80));
        assert!(w.kind.is_write());
    }
}
