//! Versioned, byte-stable snapshot codec primitives.
//!
//! The deterministic simulation-testing layer (crash points, restore +
//! replay, differential fuzzing) needs a serialization of the full
//! machine state that is *byte-stable*: encoding the same logical state
//! twice must produce the same bytes, on any platform, so snapshots can
//! be compared with `==` to prove convergence. This module provides the
//! low-level codec both halves share:
//!
//! * [`SnapshotWriter`] — append-only little-endian encoder. Floating
//!   point goes through [`f64::to_bits`]; collections are the caller's
//!   responsibility to emit in a canonical (sorted) order.
//! * [`SnapshotReader`] — bounds-checked cursor whose getters return
//!   [`PoError::Corrupted`] on truncation or malformed tags instead of
//!   panicking, so a damaged snapshot degrades into an error, never UB
//!   or a crash.
//! * [`fingerprint64`] — FNV-1a over a string, used to stamp a config
//!   fingerprint into snapshot headers so a snapshot is never restored
//!   into a machine with different geometry.
//!
//! # Example
//!
//! ```
//! use po_types::snapshot::{SnapshotReader, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new();
//! w.put_u64(0xDEAD_BEEF);
//! w.put_bool(true);
//! w.put_len(3);
//! w.put_bytes(&[7, 8, 9]);
//! let bytes = w.finish();
//!
//! let mut r = SnapshotReader::new(&bytes);
//! assert_eq!(r.get_u64()?, 0xDEAD_BEEF);
//! assert!(r.get_bool()?);
//! let n = r.get_len()?;
//! assert_eq!(r.get_bytes(n)?, &[7, 8, 9]);
//! r.expect_end()?;
//! # Ok::<(), po_types::PoError>(())
//! ```

use crate::{PoError, PoResult};

/// Append-only little-endian snapshot encoder.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16` little-endian.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` little-endian.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64` little-endian.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0 or 1).
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends an `f64` via its IEEE-754 bit pattern (byte-stable,
    /// including for NaN payloads the encoder itself produced).
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a collection length as `u64`.
    #[inline]
    pub fn put_len(&mut self, n: usize) {
        self.put_u64(n as u64);
    }

    /// Appends raw bytes verbatim (caller encodes the length separately
    /// if it is not implied by the format).
    #[inline]
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked snapshot decoder. Every getter fails with
/// [`PoError::Corrupted`] rather than panicking.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

const TRUNCATED: PoError = PoError::Corrupted("snapshot truncated");

impl<'a> SnapshotReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    #[inline]
    fn take(&mut self, n: usize) -> PoResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(TRUNCATED)?;
        if end > self.buf.len() {
            return Err(TRUNCATED);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> PoResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> PoResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> PoResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> PoResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> PoResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Reads a bool, rejecting any byte other than 0 or 1.
    pub fn get_bool(&mut self) -> PoResult<bool> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PoError::Corrupted("snapshot bool is not 0 or 1")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> PoResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a collection length, rejecting values that could not
    /// possibly fit in the remaining buffer (cheap sanity bound: each
    /// element takes at least one byte).
    pub fn get_len(&mut self) -> PoResult<usize> {
        let n = self.get_u64()?;
        if n > self.remaining() as u64 {
            return Err(PoError::Corrupted("snapshot length exceeds remaining bytes"));
        }
        Ok(n as usize)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> PoResult<&'a [u8]> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches encoder and
    /// decoder drift in round-trip tests.
    pub fn expect_end(&self) -> PoResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PoError::Corrupted("snapshot has trailing bytes"))
        }
    }
}

/// FNV-1a hash of a string, used to fingerprint configurations in
/// snapshot headers (stable across runs and platforms, unlike
/// `std::hash`).
pub fn fingerprint64(s: &str) -> u64 {
    fingerprint64_bytes(s.as_bytes())
}

/// FNV-1a hash of a byte slice — the same function [`fingerprint64`]
/// applies to strings. The workload runner uses it to fingerprint whole
/// machine snapshots so sharded and serial runs can assert they ended
/// in identical states without shipping the snapshot bytes around.
pub fn fingerprint64_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_primitive() {
        let mut w = SnapshotWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_i64(-42);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(std::f64::consts::PI);
        w.put_len(2);
        w.put_bytes(&[1, 2, 3]);
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u16().unwrap(), 0xBEEF);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_f64().unwrap(), std::f64::consts::PI);
        assert_eq!(r.get_len().unwrap(), 2);
        assert_eq!(r.get_bytes(3).unwrap(), &[1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = SnapshotWriter::new();
        w.put_u32(7);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.get_u64().is_err());
        // The failed read must not advance the cursor past the end.
        let mut r = SnapshotReader::new(&bytes[..2]);
        assert!(r.get_u32().is_err());
        assert!(r.get_u16().is_ok());
    }

    #[test]
    fn bad_bool_rejected() {
        let mut r = SnapshotReader::new(&[2]);
        assert_eq!(r.get_bool(), Err(PoError::Corrupted("snapshot bool is not 0 or 1")));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.get_len().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(r.expect_end().is_err());
        r.get_u8().unwrap();
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        assert_eq!(fingerprint64("abc"), fingerprint64("abc"));
        assert_ne!(fingerprint64("abc"), fingerprint64("abd"));
        // Known FNV-1a vector: empty string hashes to the offset basis.
        assert_eq!(fingerprint64(""), 0xCBF2_9CE4_8422_2325);
    }
}
