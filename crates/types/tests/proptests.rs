//! Property tests for the foundational types: address arithmetic, the
//! direct virtual-to-overlay mapping, and OBitVector set algebra
//! (checked against `BTreeSet` oracles).

use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::{Asid, LineData, OBitVector, Opn, VirtAddr, Vpn};
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #[test]
    fn virt_addr_decomposition_is_consistent(raw in 0u64..(1 << 48)) {
        let va = VirtAddr::new(raw);
        // Reassemble the address from its parts.
        let rebuilt = va.vpn().base().raw() + va.page_offset() as u64;
        prop_assert_eq!(rebuilt, raw);
        let line_rebuilt = va.line_base().raw() + va.line_offset() as u64;
        prop_assert_eq!(line_rebuilt, raw);
        prop_assert!(va.page_offset() < PAGE_SIZE);
        prop_assert!(va.line_offset() < LINE_SIZE);
        prop_assert!(va.line_in_page() < LINES_PER_PAGE);
        prop_assert_eq!(
            va.line_in_page(),
            va.page_offset() / LINE_SIZE,
            "line index must be the page offset in lines"
        );
    }

    #[test]
    fn opn_mapping_is_injective_and_invertible(
        asid1 in 0u16..=Asid::MAX,
        asid2 in 0u16..=Asid::MAX,
        vpn1 in 0u64..(1 << 36),
        vpn2 in 0u64..(1 << 36),
    ) {
        let o1 = Opn::encode(Asid::new(asid1), Vpn::new(vpn1));
        let o2 = Opn::encode(Asid::new(asid2), Vpn::new(vpn2));
        prop_assert_eq!(o1.decode(), (Asid::new(asid1), Vpn::new(vpn1)));
        // §4.1: the constraint that no two virtual pages share an overlay
        // page is structural: the mapping is injective.
        prop_assert_eq!(o1 == o2, (asid1, vpn1) == (asid2, vpn2));
        // Every overlay address has the MSB set.
        prop_assert!(o1.base().is_overlay());
        prop_assert_eq!(o1.base().opn(), o1);
    }

    #[test]
    fn obitvec_matches_btreeset_oracle(
        adds in prop::collection::vec(0usize..64, 0..80),
        removes in prop::collection::vec(0usize..64, 0..40),
    ) {
        let mut v = OBitVector::EMPTY;
        let mut oracle = BTreeSet::new();
        for &a in &adds {
            v.set(a);
            oracle.insert(a);
        }
        for &r in &removes {
            v.clear(r);
            oracle.remove(&r);
        }
        prop_assert_eq!(v.len(), oracle.len());
        prop_assert_eq!(v.iter().collect::<Vec<_>>(), oracle.iter().copied().collect::<Vec<_>>());
        for line in 0..64 {
            prop_assert_eq!(v.contains(line), oracle.contains(&line));
            // rank = number of set lines strictly below.
            prop_assert_eq!(v.rank(line), oracle.range(..line).count());
        }
    }

    #[test]
    fn obitvec_algebra_matches_sets(
        a in prop::collection::btree_set(0usize..64, 0..40),
        b in prop::collection::btree_set(0usize..64, 0..40),
    ) {
        let va: OBitVector = a.iter().copied().collect();
        let vb: OBitVector = b.iter().copied().collect();
        let union: Vec<usize> = a.union(&b).copied().collect();
        let inter: Vec<usize> = a.intersection(&b).copied().collect();
        let diff: Vec<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(va.union(vb).iter().collect::<Vec<_>>(), union);
        prop_assert_eq!(va.intersection(vb).iter().collect::<Vec<_>>(), inter);
        prop_assert_eq!(va.difference(vb).iter().collect::<Vec<_>>(), diff);
    }

    #[test]
    fn line_data_f64_roundtrip(vals in prop::array::uniform8(prop::num::f64::ANY)) {
        let line = LineData::from_f64x8(vals);
        let back = line.as_f64x8();
        for (x, y) in vals.iter().zip(back.iter()) {
            // Bit-exact roundtrip (NaN payloads included).
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn line_data_is_zero_iff_all_bytes_zero(bytes in prop::array::uniform32(any::<u8>())) {
        let mut full = [0u8; 64];
        full[..32].copy_from_slice(&bytes);
        let line = LineData::from_bytes(full);
        prop_assert_eq!(line.is_zero(), full.iter().all(|&b| b == 0));
    }
}
