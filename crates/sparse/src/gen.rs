//! Synthetic sparse-matrix generators.
//!
//! The paper evaluates on 87 matrices from the UF Sparse Matrix
//! Collection (each with ≥1.5 M non-zeros). That dataset is not
//! available offline, so this module generates a suite of 87 synthetic
//! matrices with the same *property that drives the results*: the
//! non-zero-locality metric **L** (average non-zeros per non-zero 64 B
//! line) spanning ~1…8, produced by realistic structure families
//! (diagonal/banded, clustered runs, random blocks, power-law rows).
//! Figure 10's x-axis sorts by L; the crossover near L ≈ 4.5 and the
//! Figure 11 line-size trade-off re-emerge from this suite. See
//! DESIGN.md §3.

use crate::matrix::TripletMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Description of one generated matrix.
#[derive(Clone, Debug)]
pub struct MatrixSpec {
    /// Human-readable name (family + parameters).
    pub name: String,
    /// The matrix.
    pub matrix: TripletMatrix,
}

/// Non-zeros placed in runs of `run_len` consecutive columns, aligned to
/// line boundaries with probability `align_prob` — the direct L knob:
/// aligned runs of length `k ≤ 8` give L ≈ k.
pub fn clustered(
    rows: usize,
    cols: usize,
    nnz_target: usize,
    run_len: usize,
    align: bool,
    seed: u64,
) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(rows, cols);
    let run_len = run_len.clamp(1, cols);
    while t.nnz() + run_len <= nnz_target {
        let r = rng.gen_range(0..rows);
        let start_max = cols - run_len;
        let mut c0 = rng.gen_range(0..=start_max);
        if align {
            // Align runs to cache-line boundaries so a run of k ≤ 8
            // occupies exactly one line (L ≈ k).
            c0 -= c0 % 8;
        }
        for k in 0..run_len {
            t.push(r, c0 + k, rng.gen_range(0.1..10.0));
        }
    }
    t
}

/// A banded matrix: non-zeros within `bandwidth` of the diagonal.
pub fn banded(n: usize, bandwidth: usize, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(n, n);
    for r in 0..n {
        let lo = r.saturating_sub(bandwidth);
        let hi = (r + bandwidth + 1).min(n);
        for c in lo..hi {
            t.push(r, c, rng.gen_range(0.1..10.0));
        }
    }
    t
}

/// Dense `block x block` tiles scattered uniformly until `nnz_target`.
pub fn block_random(
    rows: usize,
    cols: usize,
    block: usize,
    nnz_target: usize,
    seed: u64,
) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(rows, cols);
    let block = block.clamp(1, rows.min(cols));
    while t.nnz() + block * block <= nnz_target {
        let r0 = rng.gen_range(0..=(rows - block));
        let c0 = rng.gen_range(0..=(cols - block));
        for dr in 0..block {
            for dc in 0..block {
                t.push(r0 + dr, c0 + dc, rng.gen_range(0.1..10.0));
            }
        }
    }
    t
}

/// Uniformly random scatter — the worst case for locality (L → 1 when
/// sparse).
pub fn uniform_random(rows: usize, cols: usize, nnz_target: usize, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(rows, cols);
    while t.nnz() < nnz_target {
        let r = rng.gen_range(0..rows);
        let c = rng.gen_range(0..cols);
        t.push(r, c, rng.gen_range(0.1..10.0));
    }
    t
}

/// Power-law row lengths (a few very dense rows, many near-empty ones) —
/// the web-graph / social-network shape common in the UF collection.
pub fn powerlaw(rows: usize, cols: usize, nnz_target: usize, seed: u64) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(rows, cols);
    let mut r = 0usize;
    while t.nnz() < nnz_target {
        // Row length ~ 1/(rank+1), capped.
        let rank = rng.gen_range(1..rows + 1);
        let len = (cols / rank).clamp(1, cols / 2);
        let c0 = rng.gen_range(0..cols - len + 1);
        for k in 0..len {
            if t.nnz() >= nnz_target {
                break;
            }
            t.push(r % rows, c0 + k, rng.gen_range(0.1..10.0));
        }
        r += 1;
    }
    t
}

/// A random matrix with an exact fraction of zero cache lines — used by
/// the §5.2 sensitivity study ("randomly-generated sparse matrices with
/// varying levels of sparsity").
pub fn with_zero_line_fraction(
    rows: usize,
    cols: usize,
    zero_line_fraction: f64,
    seed: u64,
) -> TripletMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = TripletMatrix::new(rows, cols);
    let per_line = 8;
    let total_lines = rows * cols / per_line;
    for line in 0..total_lines {
        if rng.gen_range(0.0..1.0) >= zero_line_fraction {
            // Fill the whole line (keeps L high so the comparison is
            // purely about the zero-line fraction).
            let flat0 = line * per_line;
            for k in 0..per_line {
                let flat = flat0 + k;
                t.push(flat / cols, flat % cols, rng.gen_range(0.1..10.0));
            }
        }
    }
    t
}

/// Generates the 87-matrix stand-in suite for the UF collection,
/// spanning L from ~1 to 8. `scale` multiplies the target non-zero
/// counts (1.0 ≈ tens of thousands of non-zeros per matrix — scaled
/// down from the paper's ≥1.5 M so the full sweep runs quickly; the
/// normalized figures are scale-invariant, see DESIGN.md §5).
pub fn uf_like_suite(scale: f64, seed: u64) -> Vec<MatrixSpec> {
    let mut out = Vec::new();
    let nnz = |base: usize| ((base as f64 * scale) as usize).max(64);
    let mut idx = 0u64;

    // 29 clustered matrices sweeping run length 1..=8 (aligned), several
    // densities each — direct L sweep.
    for run in 1..=8usize {
        for variant in 0..4usize {
            if out.len() >= 29 {
                break;
            }
            idx += 1;
            let cols = 512;
            // Pick rows so non-zero lines pack pages densely (~40-60
            // lines per 64-line page), as in FEM-style UF matrices:
            // page density and per-line locality are then independent.
            let target = nnz(20_000);
            let lines = (target / run).max(1);
            let rows = (lines / (48 + 4 * variant)).clamp(8, 4096);
            out.push(MatrixSpec {
                name: format!("clustered_r{run}_v{variant}"),
                matrix: clustered(rows, cols, target, run, true, seed + idx),
            });
        }
    }
    // 15 banded matrices, bandwidth sweep (high L for wide bands).
    for (i, bw) in
        [0usize, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 96, 128].into_iter().enumerate()
    {
        idx += 1;
        // Round to a multiple of 8 so rows stay line-aligned (the timed
        // SpMV paths require line-aligned columns).
        let n = (nnz(20_000) / (2 * bw + 1)).clamp(64, 4096) / 8 * 8;
        out.push(MatrixSpec {
            name: format!("banded_bw{bw}_{i}"),
            matrix: banded(n, bw, seed + idx),
        });
    }
    // 15 block matrices, block-size sweep.
    for (i, b) in [1usize, 2, 2, 3, 3, 4, 4, 5, 6, 6, 8, 8, 10, 12, 16].into_iter().enumerate() {
        idx += 1;
        out.push(MatrixSpec {
            name: format!("block_b{b}_{i}"),
            matrix: block_random(512, 512, b, nnz(20_000), seed + idx),
        });
    }
    // 14 uniform-random matrices, density sweep (low L, scattered over
    // a large dense extent — the page-granularity worst case).
    for i in 0..14usize {
        idx += 1;
        let rows = 1024 + i * 256;
        out.push(MatrixSpec {
            name: format!("uniform_{i}"),
            matrix: uniform_random(rows, 512, nnz(8_000 + i * 1500), seed + idx),
        });
    }
    // 14 power-law matrices (web-graph shape: huge extent, skewed rows).
    for i in 0..14usize {
        idx += 1;
        out.push(MatrixSpec {
            name: format!("powerlaw_{i}"),
            matrix: powerlaw(1024 + i * 128, 512, nnz(15_000 + i * 1000), seed + idx),
        });
    }

    out.truncate(87);
    debug_assert_eq!(out.len(), 87);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::nonzero_locality;

    #[test]
    fn suite_has_87_matrices_spanning_l() {
        let suite = uf_like_suite(0.05, 42);
        assert_eq!(suite.len(), 87);
        let ls: Vec<f64> = suite.iter().map(|s| nonzero_locality(&s.matrix, 64)).collect();
        let min = ls.iter().cloned().fold(f64::MAX, f64::min);
        let max = ls.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 1.7, "suite must include poor-locality matrices, min={min}");
        assert!(max > 6.0, "suite must include high-locality matrices, max={max}");
        // Both sides of the paper's L = 4.5 crossover are populated.
        assert!(ls.iter().filter(|&&l| l > 4.5).count() >= 15);
        assert!(ls.iter().filter(|&&l| l < 4.5).count() >= 15);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = uniform_random(64, 64, 500, 7);
        let b = uniform_random(64, 64, 500, 7);
        assert_eq!(a.nnz(), b.nnz());
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn aligned_runs_control_locality() {
        let tight = clustered(128, 512, 5_000, 8, true, 1);
        let loose = clustered(128, 512, 5_000, 1, true, 2);
        assert!(nonzero_locality(&tight, 64) > 6.0);
        assert!(nonzero_locality(&loose, 64) < 2.0);
    }

    #[test]
    fn banded_width_zero_is_diagonal() {
        let t = banded(100, 0, 3);
        assert_eq!(t.nnz(), 100);
        for (r, c, _) in t.iter() {
            assert_eq!(r, c);
        }
    }

    #[test]
    fn zero_line_fraction_is_respected() {
        let t = with_zero_line_fraction(64, 64, 0.75, 9);
        let total_lines = 64 * 64 / 8;
        let nonzero_lines = t.nnz() / 8;
        let frac = 1.0 - nonzero_lines as f64 / total_lines as f64;
        assert!((frac - 0.75).abs() < 0.1, "frac = {frac}");
    }

    #[test]
    fn block_matrices_have_blocky_locality() {
        let t = block_random(256, 256, 8, 10_000, 11);
        assert!(nonzero_locality(&t, 64) > 2.0);
    }
}
