//! Dense, COO and CSR matrices with SpMV kernels.
//!
//! CSR follows the layout the paper compares against (Intel MKL's
//! three-array variant, the paper's reference \[26\]): `values` (8 B each), `col_idx`
//! (4 B each), `row_ptr` (4 B each, rows+1 entries).

use std::collections::BTreeMap;

/// A dense row-major `f64` matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c]
    }

    /// Element update.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Dense SpMV: `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, &v) in row.iter().enumerate() {
                acc += v * x[c];
            }
            *out = acc;
        }
        y
    }
}

/// A coordinate-format builder: `(row, col, value)` triplets.
#[derive(Clone, Debug, Default)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: BTreeMap<(usize, usize), f64>,
}

impl TripletMatrix {
    /// Creates an empty `rows x cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, entries: BTreeMap::new() }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Adds (or overwrites) an entry; zero values are dropped.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn push(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        if v == 0.0 {
            self.entries.remove(&(r, c));
        } else {
            self.entries.insert((r, c), v);
        }
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterates entries in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().map(|(&(r, c), &v)| (r, c, v))
    }

    /// Converts to dense.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut d = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            d.set(r, c, v);
        }
        d
    }
}

/// Compressed Sparse Row (the paper's software baseline, \[26\]).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from triplets.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let mut row_ptr = Vec::with_capacity(t.rows() + 1);
        let mut col_idx = Vec::with_capacity(t.nnz());
        let mut values = Vec::with_capacity(t.nnz());
        row_ptr.push(0u32);
        let mut current_row = 0usize;
        for (r, c, v) in t.iter() {
            while current_row < r {
                row_ptr.push(col_idx.len() as u32);
                current_row += 1;
            }
            col_idx.push(c as u32);
            values.push(v);
        }
        while current_row < t.rows() {
            row_ptr.push(col_idx.len() as u32);
            current_row += 1;
        }
        Self { rows: t.rows(), cols: t.cols(), row_ptr, col_idx, values }
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Non-zero count.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row-pointer array.
    pub fn row_ptr(&self) -> &[u32] {
        &self.row_ptr
    }

    /// Column-index array.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Values array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// CSR SpMV: `y = A * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
            let mut acc = 0.0;
            for i in lo..hi {
                acc += self.values[i] * x[self.col_idx[i] as usize];
            }
            *out = acc;
        }
        y
    }

    /// Inserts a non-zero, rebuilding the arrays — the costly dynamic
    /// update the paper contrasts with overlay insertion ("CSR incurs a
    /// high cost to insert non-zero values", §5.2). Returns the number
    /// of array elements moved.
    pub fn insert(&mut self, r: usize, c: usize, v: f64) -> usize {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
        let pos = match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(i) => {
                self.values[lo + i] = v;
                return 0; // in-place overwrite
            }
            Err(i) => lo + i,
        };
        self.col_idx.insert(pos, c as u32);
        self.values.insert(pos, v);
        for p in self.row_ptr[r + 1..].iter_mut() {
            *p += 1;
        }
        // Everything after `pos` shifted, in two arrays.
        2 * (self.values.len() - pos) + (self.row_ptr.len() - r - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TripletMatrix {
        let mut t = TripletMatrix::new(3, 4);
        t.push(0, 0, 1.0);
        t.push(0, 3, 2.0);
        t.push(1, 1, 3.0);
        t.push(2, 0, 4.0);
        t.push(2, 2, 5.0);
        t
    }

    #[test]
    fn triplet_to_dense() {
        let d = sample().to_dense();
        assert_eq!(d.get(0, 0), 1.0);
        assert_eq!(d.get(0, 3), 2.0);
        assert_eq!(d.get(1, 2), 0.0);
        assert_eq!(d.nnz(), 5);
    }

    #[test]
    fn zero_push_removes() {
        let mut t = sample();
        t.push(0, 0, 0.0);
        assert_eq!(t.nnz(), 4);
    }

    #[test]
    fn csr_structure() {
        let csr = CsrMatrix::from_triplets(&sample());
        assert_eq!(csr.row_ptr(), &[0, 2, 3, 5]);
        assert_eq!(csr.col_idx(), &[0, 3, 1, 0, 2]);
        assert_eq!(csr.values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn csr_handles_empty_rows() {
        let mut t = TripletMatrix::new(4, 4);
        t.push(3, 3, 1.0);
        let csr = CsrMatrix::from_triplets(&t);
        assert_eq!(csr.row_ptr(), &[0, 0, 0, 0, 1]);
        let y = csr.spmv(&[1.0, 1.0, 1.0, 2.0]);
        assert_eq!(y, vec![0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn spmv_agreement_dense_vs_csr() {
        let t = sample();
        let x = vec![1.0, -1.0, 0.5, 2.0];
        assert_eq!(t.to_dense().spmv(&x), CsrMatrix::from_triplets(&t).spmv(&x));
    }

    #[test]
    fn csr_insert_maintains_order_and_results() {
        let mut csr = CsrMatrix::from_triplets(&sample());
        let moved = csr.insert(1, 3, 7.0);
        assert!(moved > 0);
        assert_eq!(csr.nnz(), 6);
        let x = vec![1.0; 4];
        let mut t2 = sample();
        t2.push(1, 3, 7.0);
        assert_eq!(csr.spmv(&x), CsrMatrix::from_triplets(&t2).spmv(&x));
    }

    #[test]
    fn csr_insert_overwrite_is_free() {
        let mut csr = CsrMatrix::from_triplets(&sample());
        assert_eq!(csr.insert(0, 0, 9.0), 0);
        assert_eq!(csr.values()[0], 9.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_rejects_bad_dims() {
        sample().to_dense().spmv(&[1.0]);
    }
}
