//! The overlay-backed sparse representation (§5.2).
//!
//! The matrix is laid out as a dense row-major array of `f64` in
//! virtual memory, but every virtual page maps to a shared zero
//! physical page; only **non-zero cache lines** (8 `f64` each) exist,
//! in overlays. SpMV walks only the overlay lines; dynamic insertion is
//! "as simple as moving a cache line to the overlay".
//!
//! [`OverlayMatrix`] is the software model of that layout — page-indexed
//! OBitVectors plus the stored lines — mirroring exactly what
//! [`crate::timed`] materializes into the simulated machine.

use crate::matrix::TripletMatrix;
use po_types::geometry::{LINES_PER_PAGE, LINE_SIZE, PAGE_SIZE};
use po_types::OBitVector;
use std::collections::BTreeMap;

/// Values per 64 B cache line (8 double-precision floats, as in §5.2).
pub const VALUES_PER_LINE: usize = LINE_SIZE / 8;

/// The overlay-backed matrix.
///
/// See the [crate docs](crate) for an example.
#[derive(Clone, Debug)]
pub struct OverlayMatrix {
    rows: usize,
    cols: usize,
    /// Per-page overlay bit vectors (pages absent here are entirely
    /// zero).
    obitvecs: BTreeMap<usize, OBitVector>,
    /// Stored non-zero lines, keyed by global line index.
    lines: BTreeMap<usize, [f64; VALUES_PER_LINE]>,
}

impl OverlayMatrix {
    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, obitvecs: BTreeMap::new(), lines: BTreeMap::new() }
    }

    /// Builds from triplets, storing each non-zero cache line in an
    /// overlay.
    pub fn from_triplets(t: &TripletMatrix) -> Self {
        let mut m = Self::zeros(t.rows(), t.cols());
        for (r, c, v) in t.iter() {
            m.set(r, c, v);
        }
        m
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Global line index of element `(r, c)`.
    fn line_of(&self, r: usize, c: usize) -> (usize, usize) {
        let flat = r * self.cols + c;
        (flat / VALUES_PER_LINE, flat % VALUES_PER_LINE)
    }

    /// Reads an element (zero if its line is not in any overlay).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        let (line, off) = self.line_of(r, c);
        self.lines.get(&line).map(|l| l[off]).unwrap_or(0.0)
    }

    /// Writes an element. Inserting a non-zero into a zero line is the
    /// paper's cheap dynamic update: one overlay line appears; no other
    /// line moves.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        let (line, off) = self.line_of(r, c);
        let entry = self.lines.entry(line).or_insert([0.0; VALUES_PER_LINE]);
        entry[off] = v;
        if entry.iter().all(|&x| x == 0.0) {
            // The line became all-zero: drop it from the overlay.
            self.lines.remove(&line);
            let page = line / LINES_PER_PAGE;
            if let Some(obv) = self.obitvecs.get_mut(&page) {
                obv.clear(line % LINES_PER_PAGE);
                if obv.is_empty() {
                    self.obitvecs.remove(&page);
                }
            }
        } else {
            let page = line / LINES_PER_PAGE;
            self.obitvecs.entry(page).or_insert(OBitVector::EMPTY).set(line % LINES_PER_PAGE);
        }
    }

    /// Number of non-zero cache lines stored in overlays.
    pub fn nonzero_lines(&self) -> usize {
        self.lines.len()
    }

    /// Number of pages that have an overlay.
    pub fn overlay_pages(&self) -> usize {
        self.obitvecs.len()
    }

    /// Total pages the dense layout spans.
    pub fn total_pages(&self) -> usize {
        (self.rows * self.cols * 8).div_ceil(PAGE_SIZE)
    }

    /// Iterates stored lines as `(global_line_index, values)`.
    pub fn iter_lines(&self) -> impl Iterator<Item = (usize, &[f64; VALUES_PER_LINE])> {
        self.lines.iter().map(|(&i, v)| (i, v))
    }

    /// The OBitVector of page `page` (empty if the page has no overlay).
    pub fn obitvec(&self, page: usize) -> OBitVector {
        self.obitvecs.get(&page).copied().unwrap_or(OBitVector::EMPTY)
    }

    /// SpMV over overlay lines only: `y = A * x`. Zero lines contribute
    /// nothing and are never touched — the work reduction of §5.2.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for (&line, vals) in &self.lines {
            let base = line * VALUES_PER_LINE;
            for (k, &v) in vals.iter().enumerate() {
                if v != 0.0 {
                    let flat = base + k;
                    let r = flat / self.cols;
                    let c = flat % self.cols;
                    y[r] += v * x[c];
                }
            }
        }
        y
    }

    /// The non-zero locality metric **L**: average non-zero values per
    /// non-zero cache line (1 ≤ L ≤ 8). Returns 0.0 for an empty matrix.
    pub fn locality(&self) -> f64 {
        if self.lines.is_empty() {
            return 0.0;
        }
        let nnz: usize = self.lines.values().map(|l| l.iter().filter(|&&v| v != 0.0).count()).sum();
        nnz as f64 / self.lines.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::CsrMatrix;

    fn sample() -> TripletMatrix {
        let mut t = TripletMatrix::new(8, 64); // one row = 8 lines
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(3, 40, -1.0);
        t.push(7, 63, 4.0);
        t
    }

    #[test]
    fn get_set_roundtrip() {
        let m = OverlayMatrix::from_triplets(&sample());
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(3, 40), -1.0);
    }

    #[test]
    fn only_nonzero_lines_are_stored() {
        let m = OverlayMatrix::from_triplets(&sample());
        // (0,0)+(0,1) share a line; (3,40) and (7,63) have their own.
        assert_eq!(m.nonzero_lines(), 3);
    }

    #[test]
    fn spmv_matches_csr_and_dense() {
        let t = sample();
        let x: Vec<f64> = (0..64).map(|i| (i % 7) as f64 - 3.0).collect();
        let expect = CsrMatrix::from_triplets(&t).spmv(&x);
        assert_eq!(OverlayMatrix::from_triplets(&t).spmv(&x), expect);
        assert_eq!(t.to_dense().spmv(&x), expect);
    }

    #[test]
    fn dynamic_insert_is_line_local() {
        let mut m = OverlayMatrix::from_triplets(&sample());
        let before = m.nonzero_lines();
        m.set(5, 5, 9.0); // new line
        assert_eq!(m.nonzero_lines(), before + 1);
        m.set(5, 6, 8.0); // same line: no growth
        assert_eq!(m.nonzero_lines(), before + 1);
        assert_eq!(m.get(5, 5), 9.0);
    }

    #[test]
    fn clearing_a_line_removes_it() {
        let mut m = OverlayMatrix::zeros(4, 8);
        m.set(0, 0, 1.0);
        assert_eq!(m.nonzero_lines(), 1);
        m.set(0, 0, 0.0);
        assert_eq!(m.nonzero_lines(), 0);
        assert_eq!(m.overlay_pages(), 0);
    }

    #[test]
    fn locality_metric() {
        // 8 values in one line → L = 8.
        let mut t = TripletMatrix::new(1, 8);
        for c in 0..8 {
            t.push(0, c, 1.0);
        }
        assert_eq!(OverlayMatrix::from_triplets(&t).locality(), 8.0);
        // One value per line → L = 1.
        let mut t2 = TripletMatrix::new(4, 8);
        for r in 0..4 {
            t2.push(r, 0, 1.0);
        }
        assert_eq!(OverlayMatrix::from_triplets(&t2).locality(), 1.0);
        assert_eq!(OverlayMatrix::zeros(2, 2).locality(), 0.0);
    }

    #[test]
    fn obitvec_matches_stored_lines() {
        let m = OverlayMatrix::from_triplets(&sample());
        for (line, _) in m.iter_lines() {
            let page = line / LINES_PER_PAGE;
            assert!(m.obitvec(page).contains(line % LINES_PER_PAGE));
        }
    }

    #[test]
    fn total_pages_covers_dense_extent() {
        let m = OverlayMatrix::zeros(8, 64); // 8*64*8 = 4096 B = 1 page
        assert_eq!(m.total_pages(), 1);
        let m2 = OverlayMatrix::zeros(8, 65);
        assert_eq!(m2.total_pages(), 2);
    }
}
