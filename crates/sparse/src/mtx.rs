//! Matrix Market (`.mtx`) I/O.
//!
//! The paper evaluates on UF Sparse Matrix Collection matrices, which
//! are distributed in the Matrix Market exchange format. This module
//! reads and writes the `coordinate` format (general, symmetric, and
//! pattern variants), so the Figure 10/11 harnesses can run on the real
//! collection when it is available instead of the synthetic suite.
//!
//! Supported headers:
//!
//! ```text
//! %%MatrixMarket matrix coordinate real general
//! %%MatrixMarket matrix coordinate real symmetric
//! %%MatrixMarket matrix coordinate integer general|symmetric
//! %%MatrixMarket matrix coordinate pattern general|symmetric
//! ```

use crate::matrix::TripletMatrix;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors from Matrix Market parsing.
#[derive(Debug)]
pub enum MtxError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file; carries a line number (1-based,
    /// 0 = header missing entirely) and description.
    Parse {
        /// Line the problem was found on.
        line: usize,
        /// What went wrong.
        what: String,
    },
}

impl fmt::Display for MtxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MtxError::Io(e) => write!(f, "i/o error reading matrix market data: {e}"),
            MtxError::Parse { line, what } => {
                write!(f, "matrix market parse error at line {line}: {what}")
            }
        }
    }
}

impl std::error::Error for MtxError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MtxError::Io(e) => Some(e),
            MtxError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for MtxError {
    fn from(e: std::io::Error) -> Self {
        MtxError::Io(e)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a coordinate-format Matrix Market matrix.
///
/// # Errors
///
/// Returns [`MtxError`] on I/O failures, malformed headers, dimension
/// mismatches, or out-of-range indices.
///
/// # Example
///
/// ```
/// use po_sparse::mtx::read_mtx;
///
/// let text = "%%MatrixMarket matrix coordinate real general\n\
///             % a comment\n\
///             3 4 2\n\
///             1 1 5.0\n\
///             3 4 -1.5\n";
/// let m = read_mtx(text.as_bytes())?;
/// assert_eq!((m.rows(), m.cols(), m.nnz()), (3, 4, 2));
/// # Ok::<(), po_sparse::mtx::MtxError>(())
/// ```
pub fn read_mtx<R: BufRead>(reader: R) -> Result<TripletMatrix, MtxError> {
    let mut lines = reader.lines().enumerate();

    // Header.
    let (_, header) =
        lines.next().ok_or(MtxError::Parse { line: 0, what: "empty input".into() })?;
    let header = header?;
    let mut toks = header.split_whitespace();
    let banner = toks.next().unwrap_or("");
    if !banner.eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(MtxError::Parse { line: 1, what: "missing %%MatrixMarket banner".into() });
    }
    let object = toks.next().unwrap_or("").to_ascii_lowercase();
    let format = toks.next().unwrap_or("").to_ascii_lowercase();
    let field = toks.next().unwrap_or("").to_ascii_lowercase();
    let symmetry = toks.next().unwrap_or("general").to_ascii_lowercase();
    if object != "matrix" || format != "coordinate" {
        return Err(MtxError::Parse {
            line: 1,
            what: format!("unsupported object/format: {object} {format} (only matrix coordinate)"),
        });
    }
    let field = match field.as_str() {
        "real" | "double" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(MtxError::Parse { line: 1, what: format!("unsupported field {other}") })
        }
    };
    let symmetry = match symmetry.as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(MtxError::Parse { line: 1, what: format!("unsupported symmetry {other}") })
        }
    };

    // Size line (skipping comments/blanks).
    let mut size: Option<(usize, usize, usize, usize)> = None;
    let mut matrix: Option<TripletMatrix> = None;
    let mut seen = 0usize;
    for (idx, line) in lines {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        match (&mut size, &mut matrix) {
            (None, _) => {
                if fields.len() != 3 {
                    return Err(MtxError::Parse {
                        line: lineno,
                        what: "size line must be `rows cols nnz`".into(),
                    });
                }
                let parse = |s: &str| {
                    s.parse::<usize>().map_err(|_| MtxError::Parse {
                        line: lineno,
                        what: format!("bad integer {s}"),
                    })
                };
                let (r, c, n) = (parse(fields[0])?, parse(fields[1])?, parse(fields[2])?);
                size = Some((r, c, n, lineno));
                matrix = Some(TripletMatrix::new(r, c));
            }
            (Some((rows, cols, nnz, _)), Some(m)) => {
                let want = match field {
                    Field::Pattern => 2,
                    _ => 3,
                };
                if fields.len() != want {
                    return Err(MtxError::Parse {
                        line: lineno,
                        what: format!("expected {want} fields, found {}", fields.len()),
                    });
                }
                let parse_idx = |s: &str| {
                    s.parse::<usize>().ok().filter(|&v| v >= 1).ok_or(MtxError::Parse {
                        line: lineno,
                        what: format!("bad 1-based index {s}"),
                    })
                };
                let r = parse_idx(fields[0])? - 1;
                let c = parse_idx(fields[1])? - 1;
                if r >= *rows || c >= *cols {
                    return Err(MtxError::Parse {
                        line: lineno,
                        what: format!("entry ({},{}) outside {rows}x{cols}", r + 1, c + 1),
                    });
                }
                let v = match field {
                    Field::Pattern => 1.0,
                    _ => fields[2].parse::<f64>().map_err(|_| MtxError::Parse {
                        line: lineno,
                        what: format!("bad value {}", fields[2]),
                    })?,
                };
                m.push(r, c, v);
                if symmetry == Symmetry::Symmetric && r != c {
                    m.push(c, r, v);
                }
                seen += 1;
                if seen > *nnz {
                    return Err(MtxError::Parse {
                        line: lineno,
                        what: format!("more than the declared {nnz} entries"),
                    });
                }
            }
            (Some(_), None) => {
                return Err(MtxError::Parse {
                    line: lineno,
                    what: "internal: size line seen without a matrix".into(),
                })
            }
        }
    }
    let (_, _, nnz, size_line) =
        size.ok_or(MtxError::Parse { line: 0, what: "missing size line".into() })?;
    if seen != nnz {
        return Err(MtxError::Parse {
            line: size_line,
            what: format!("declared {nnz} entries but found {seen}"),
        });
    }
    matrix.ok_or(MtxError::Parse { line: 0, what: "missing size line".into() })
}

/// Writes a matrix in `coordinate real general` format.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_mtx<W: Write>(mut writer: W, m: &TripletMatrix) -> Result<(), MtxError> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "% written by page-overlays/po-sparse")?;
    writeln!(writer, "{} {} {}", m.rows(), m.cols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(writer, "{} {} {v}", r + 1, c + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = TripletMatrix::new(5, 7);
        m.push(0, 0, 1.5);
        m.push(4, 6, -2.0);
        m.push(2, 3, 1e-3);
        let mut buf = Vec::new();
        write_mtx(&mut buf, &m).unwrap();
        let back = read_mtx(buf.as_slice()).unwrap();
        assert_eq!(back.rows(), 5);
        assert_eq!(back.cols(), 7);
        assert_eq!(back.iter().collect::<Vec<_>>(), m.iter().collect::<Vec<_>>());
    }

    #[test]
    fn symmetric_mirrors_off_diagonal() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n1 1 4.0\n3 1 7.0\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3); // (0,0), (2,0), (0,2)
        let d = m.to_dense();
        assert_eq!(d.get(2, 0), 7.0);
        assert_eq!(d.get(0, 2), 7.0);
        assert_eq!(d.get(0, 0), 4.0);
    }

    #[test]
    fn pattern_entries_become_ones() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n2 1\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.to_dense().get(0, 1), 1.0);
        assert_eq!(m.to_dense().get(1, 0), 1.0);
    }

    #[test]
    fn integer_field_parses() {
        let text = "%%MatrixMarket matrix coordinate integer general\n2 2 1\n2 2 -9\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.to_dense().get(1, 1), -9.0);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text =
            "%%MatrixMarket matrix coordinate real general\n% c1\n\n% c2\n2 2 1\n\n1 1 3.0\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad_banner = "MatrixMarket matrix coordinate real general\n1 1 0\n";
        assert!(matches!(read_mtx(bad_banner.as_bytes()), Err(MtxError::Parse { line: 1, .. })));

        let out_of_range = "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n";
        assert!(matches!(read_mtx(out_of_range.as_bytes()), Err(MtxError::Parse { line: 3, .. })));

        let wrong_count = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        let err = read_mtx(wrong_count.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("declared 2 entries but found 1"), "{err}");
    }

    #[test]
    fn unsupported_variants_are_rejected_clearly() {
        let array = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        assert!(read_mtx(array.as_bytes()).is_err());
        let complex = "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n";
        assert!(read_mtx(complex.as_bytes()).is_err());
    }

    #[test]
    fn zero_values_are_dropped_like_triplet_push() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 0.0\n2 2 5.0\n";
        let m = read_mtx(text.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 1);
    }
}
