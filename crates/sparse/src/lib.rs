//! # po-sparse — sparse data structures over page overlays (§5.2)
//!
//! The paper's second quantitative application: represent a sparse
//! matrix by mapping all of its virtual pages to a single zero physical
//! page and storing only the **non-zero cache lines** in overlays. The
//! hardware then computes only on non-zero lines, prefetches them
//! efficiently, and supports cheap dynamic insertion — the comparison
//! points against CSR (Figures 10 & 11).
//!
//! This crate provides:
//!
//! * the matrix substrate: [`DenseMatrix`], [`TripletMatrix`] (COO
//!   builder) and [`CsrMatrix`] with SpMV kernels ([`matrix`]),
//! * the overlay-backed representation [`OverlayMatrix`] with SpMV and
//!   O(1)-ish dynamic updates ([`overlay_repr`]),
//! * the paper's metrics: the **L** non-zero-locality measure, CSR /
//!   ideal / per-line-size footprints ([`metrics`]),
//! * synthetic real-world-like matrix generators standing in for the UF
//!   Sparse Matrix Collection ([`gen`]; see DESIGN.md §3 for the
//!   substitution rationale),
//! * the timing bridge: SpMV address traces for dense, CSR and overlay
//!   representations, executed on the `po-sim` machine ([`timed`]).
//!
//! # Example
//!
//! ```
//! use po_sparse::{TripletMatrix, CsrMatrix, OverlayMatrix};
//!
//! let mut t = TripletMatrix::new(4, 16);
//! t.push(0, 0, 1.0);
//! t.push(2, 9, -3.5);
//! let csr = CsrMatrix::from_triplets(&t);
//! let ovl = OverlayMatrix::from_triplets(&t);
//! let x: Vec<f64> = (0..16).map(|i| i as f64).collect();
//! assert_eq!(csr.spmv(&x), ovl.spmv(&x));
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod gen;
pub mod matrix;
pub mod metrics;
pub mod mtx;
pub mod overlay_repr;
pub mod timed;

pub use gen::{uf_like_suite, MatrixSpec};
pub use matrix::{CsrMatrix, DenseMatrix, TripletMatrix};
pub use metrics::{
    csr_bytes, csr_bytes_from_parts, ideal_bytes, nonzero_locality, overhead_vs_ideal,
    overlay_bytes_for_line_size,
};
pub use mtx::{read_mtx, write_mtx, MtxError};
pub use overlay_repr::OverlayMatrix;
pub use timed::{SpmvTiming, TimedSpmv};
