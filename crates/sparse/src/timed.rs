//! Timed SpMV on the simulated machine (Figure 10).
//!
//! One SpMV iteration is expressed as a memory trace — the loads of the
//! matrix representation, the `x` gathers, the `y` updates, and the
//! multiply-accumulate compute — and executed on the Table 2 machine.
//! Three representations are timed:
//!
//! * **dense** — every line of the row-major array is read,
//! * **CSR** — per non-zero: a 4 B column index, an 8 B value and the
//!   `x[col]` gather (plus row pointers),
//! * **overlay** — only non-zero lines are read, through the overlay
//!   address space (zero physical page + overlays, seeded into the
//!   simulated Overlay Memory Store).
//!
//! The relative shapes of Figure 10 come out of the memory system: CSR
//! touches `~12 B x nnz` but with an extra dependent gather per element;
//! overlays touch `64 B x nonzero_lines` with streaming locality and no
//! index metadata — so overlays win when lines are mostly full (high L)
//! and lose when lines are mostly zeros (low L).

use crate::matrix::CsrMatrix;
use crate::overlay_repr::{OverlayMatrix, VALUES_PER_LINE};
use po_overlay::SegmentClass;
use po_sim::{run_trace, Machine, SystemConfig, TraceOp};
use po_telemetry::TelemetrySink;
use po_types::geometry::{LINE_SIZE, PAGE_SIZE};
use po_types::{LineData, PoResult, VirtAddr, Vpn};

/// Result of one timed SpMV iteration.
#[derive(Clone, Debug)]
pub struct SpmvTiming {
    /// Cycles for the iteration.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Representation footprint in bytes (segment-granular for
    /// overlays).
    pub memory_bytes: u64,
}

impl SpmvTiming {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        po_types::stats::ratio(self.cycles, self.instructions)
    }
}

/// Virtual layout of the SpMV working set (page numbers).
const A_VPN: u64 = 0x1_0000;
const VALUES_VPN: u64 = 0x2_0000;
const COLIDX_VPN: u64 = 0x3_0000;
const ROWPTR_VPN: u64 = 0x4_0000;
const X_VPN: u64 = 0x5_0000;
const Y_VPN: u64 = 0x6_0000;

/// Multiply + add per value processed.
const MAC_OPS_PER_VALUE: u32 = 2;

fn va(vpn_base: u64, byte_off: u64) -> VirtAddr {
    VirtAddr::new(vpn_base * PAGE_SIZE as u64 + byte_off)
}

fn pages_for(bytes: usize) -> u64 {
    (bytes.div_ceil(PAGE_SIZE)) as u64
}

/// Times SpMV for the three representations on the Table 2 machine.
#[derive(Clone, Debug)]
pub struct TimedSpmv {
    config: SystemConfig,
    sink: TelemetrySink,
}

impl TimedSpmv {
    /// Uses the given system configuration (overlay runs force
    /// `overlay_mode` on).
    pub fn new(config: SystemConfig) -> Self {
        Self { config, sink: TelemetrySink::noop() }
    }

    /// The Table 2 machine.
    pub fn table2() -> Self {
        Self::new(SystemConfig::table2_overlay())
    }

    /// Installs `sink` on every machine the timer constructs, so a run
    /// can be decomposed into a per-layer CPI stack and event journal.
    #[must_use]
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.sink = sink;
        self
    }

    /// Times a dense SpMV over a `rows x cols` matrix.
    ///
    /// # Errors
    ///
    /// Propagates machine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `cols` is a multiple of 8 (one line = 8 values).
    pub fn time_dense(&self, rows: usize, cols: usize) -> PoResult<SpmvTiming> {
        assert_eq!(cols % VALUES_PER_LINE, 0, "cols must be line-aligned");
        let mut m = Machine::new(self.config.clone())?;
        m.install_telemetry(self.sink.clone());
        let pid = m.spawn_process()?;
        m.map_range(pid, Vpn::new(A_VPN), pages_for(rows * cols * 8))?;
        m.map_range(pid, Vpn::new(X_VPN), pages_for(cols * 8))?;
        m.map_range(pid, Vpn::new(Y_VPN), pages_for(rows * 8))?;

        let lines_per_row = cols / VALUES_PER_LINE;
        let mut trace = Vec::new();
        for r in 0..rows {
            for lr in 0..lines_per_row {
                let line = r * lines_per_row + lr;
                trace.push(TraceOp::Load(va(A_VPN, (line * LINE_SIZE) as u64)));
                trace.push(TraceOp::Load(va(X_VPN, (lr * LINE_SIZE) as u64)));
                trace.push(TraceOp::Compute(MAC_OPS_PER_VALUE * VALUES_PER_LINE as u32));
            }
            trace.push(TraceOp::Store(va(Y_VPN, (r * 8) as u64)));
        }
        let stats = run_trace(&mut m, pid, &trace)?;
        Ok(SpmvTiming {
            cycles: stats.cycles,
            instructions: stats.instructions,
            memory_bytes: (rows * cols * 8) as u64,
        })
    }

    /// Times a CSR SpMV.
    ///
    /// # Errors
    ///
    /// Propagates machine faults.
    pub fn time_csr(&self, csr: &CsrMatrix) -> PoResult<SpmvTiming> {
        let mut m = Machine::new(self.config.clone())?;
        m.install_telemetry(self.sink.clone());
        let pid = m.spawn_process()?;
        m.map_range(pid, Vpn::new(VALUES_VPN), pages_for(csr.nnz() * 8).max(1))?;
        m.map_range(pid, Vpn::new(COLIDX_VPN), pages_for(csr.nnz() * 4).max(1))?;
        m.map_range(pid, Vpn::new(ROWPTR_VPN), pages_for((csr.rows() + 1) * 4).max(1))?;
        m.map_range(pid, Vpn::new(X_VPN), pages_for(csr.cols() * 8))?;
        m.map_range(pid, Vpn::new(Y_VPN), pages_for(csr.rows() * 8))?;

        let mut trace = Vec::new();
        for r in 0..csr.rows() {
            trace.push(TraceOp::Load(va(ROWPTR_VPN, (r * 4) as u64)));
            let (lo, hi) = (csr.row_ptr()[r] as usize, csr.row_ptr()[r + 1] as usize);
            for i in lo..hi {
                let col = csr.col_idx()[i] as usize;
                trace.push(TraceOp::Load(va(COLIDX_VPN, (i * 4) as u64)));
                trace.push(TraceOp::Load(va(VALUES_VPN, (i * 8) as u64)));
                trace.push(TraceOp::Load(va(X_VPN, (col * 8) as u64)));
                trace.push(TraceOp::Compute(MAC_OPS_PER_VALUE));
            }
            trace.push(TraceOp::Store(va(Y_VPN, (r * 8) as u64)));
        }
        let stats = run_trace(&mut m, pid, &trace)?;
        Ok(SpmvTiming {
            cycles: stats.cycles,
            instructions: stats.instructions,
            memory_bytes: crate::metrics::csr_bytes_from_parts(csr.nnz(), csr.rows()),
        })
    }

    /// Times an overlay SpMV: non-zero lines are seeded into the
    /// simulated Overlay Memory Store and read through the overlay
    /// address path.
    ///
    /// # Errors
    ///
    /// Propagates machine faults.
    ///
    /// # Panics
    ///
    /// Panics unless `cols` is a multiple of 8.
    pub fn time_overlay(&self, ovl: &OverlayMatrix) -> PoResult<SpmvTiming> {
        assert_eq!(ovl.cols() % VALUES_PER_LINE, 0, "cols must be line-aligned");
        let mut config = self.config.clone();
        config.overlay_mode = true;
        let mut m = Machine::new(config)?;
        m.install_telemetry(self.sink.clone());
        let pid = m.spawn_process()?;
        let a_pages = pages_for(ovl.rows() * ovl.cols() * 8).max(1);
        m.map_shared_zero_range(pid, Vpn::new(A_VPN), a_pages)?;
        m.map_range(pid, Vpn::new(X_VPN), pages_for(ovl.cols() * 8))?;
        m.map_range(pid, Vpn::new(Y_VPN), pages_for(ovl.rows() * 8))?;

        // Materialize the overlays in the OMS.
        let lines_per_page = PAGE_SIZE / LINE_SIZE;
        for (line, vals) in ovl.iter_lines() {
            let vpn = Vpn::new(A_VPN + (line / lines_per_page) as u64);
            let mut arr = [0.0f64; VALUES_PER_LINE];
            arr.copy_from_slice(vals);
            m.seed_overlay_line(pid, vpn, line % lines_per_page, LineData::from_f64x8(arr))?;
        }

        let lines_per_row = ovl.cols() / VALUES_PER_LINE;
        let mut trace = Vec::new();
        let mut last_row = usize::MAX;
        for (line, _) in ovl.iter_lines() {
            let row = line / lines_per_row;
            let line_in_row = line % lines_per_row;
            trace.push(TraceOp::Load(va(A_VPN, (line * LINE_SIZE) as u64)));
            trace.push(TraceOp::Load(va(X_VPN, (line_in_row * LINE_SIZE) as u64)));
            trace.push(TraceOp::Compute(MAC_OPS_PER_VALUE * VALUES_PER_LINE as u32));
            if row != last_row {
                trace.push(TraceOp::Store(va(Y_VPN, (row * 8) as u64)));
                last_row = row;
            }
        }
        let stats = run_trace(&mut m, pid, &trace)?;
        Ok(SpmvTiming {
            cycles: stats.cycles,
            instructions: stats.instructions,
            memory_bytes: overlay_segment_bytes(ovl),
        })
    }
}

/// Segment-granular footprint of an overlay matrix: each page's overlay
/// occupies the smallest segment class that fits its line count
/// (§4.4.2).
pub fn overlay_segment_bytes(ovl: &OverlayMatrix) -> u64 {
    let lines_per_page = PAGE_SIZE / LINE_SIZE;
    let mut total = 0u64;
    for page in 0..ovl.total_pages() {
        let count = ovl.obitvec(page).len();
        if count > 0 {
            total += SegmentClass::for_lines(count.min(lines_per_page)).bytes() as u64;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::matrix::TripletMatrix;

    fn timed() -> TimedSpmv {
        TimedSpmv::table2()
    }

    #[test]
    fn overlay_beats_dense_on_sparse_input() {
        // 25% of lines non-zero: overlay reads 4x less.
        let t = gen::with_zero_line_fraction(64, 512, 0.75, 1);
        let ovl = OverlayMatrix::from_triplets(&t);
        let o = timed().time_overlay(&ovl).unwrap();
        let d = timed().time_dense(64, 512).unwrap();
        assert!(
            o.cycles < d.cycles,
            "overlay ({}) must beat dense ({}) at 75% zero lines",
            o.cycles,
            d.cycles
        );
    }

    #[test]
    fn overlay_beats_csr_at_high_locality() {
        let t = gen::clustered(40, 512, 20_000, 8, true, 3);
        let csr = CsrMatrix::from_triplets(&t);
        let ovl = OverlayMatrix::from_triplets(&t);
        assert!(ovl.locality() > 6.0, "L = {}", ovl.locality());
        let c = timed().time_csr(&csr).unwrap();
        let o = timed().time_overlay(&ovl).unwrap();
        assert!(
            o.cycles < c.cycles,
            "overlay ({}) must beat CSR ({}) at L = {:.1}",
            o.cycles,
            c.cycles,
            ovl.locality()
        );
        assert!(o.memory_bytes < c.memory_bytes);
    }

    #[test]
    fn csr_beats_overlay_at_low_locality() {
        let t = gen::uniform_random(256, 512, 4_000, 5);
        let csr = CsrMatrix::from_triplets(&t);
        let ovl = OverlayMatrix::from_triplets(&t);
        assert!(ovl.locality() < 1.5, "L = {}", ovl.locality());
        let c = timed().time_csr(&csr).unwrap();
        let o = timed().time_overlay(&ovl).unwrap();
        assert!(
            c.cycles < o.cycles,
            "CSR ({}) must beat overlay ({}) at L = {:.1}",
            c.cycles,
            o.cycles,
            ovl.locality()
        );
        assert!(c.memory_bytes < o.memory_bytes);
    }

    #[test]
    fn segment_accounting_matches_classes() {
        let mut t = TripletMatrix::new(8, 64); // exactly one page
        t.push(0, 0, 1.0); // 1 line → 256 B segment
        let ovl = OverlayMatrix::from_triplets(&t);
        assert_eq!(overlay_segment_bytes(&ovl), 256);
        for c in 0..32 {
            t.push(1, c, 1.0); // +4 lines → 8 total... keep it simple
        }
        let ovl = OverlayMatrix::from_triplets(&t);
        // 1 + 4 = 5 lines → 512 B segment.
        assert_eq!(ovl.nonzero_lines(), 5);
        assert_eq!(overlay_segment_bytes(&ovl), 512);
    }
}
