//! Footprint and locality metrics (Figures 10 & 11).

use crate::matrix::TripletMatrix;
use std::collections::BTreeSet;

/// The paper's **L** metric for a triplet matrix under a given storage
/// line size: average non-zero values per non-zero line (values are
/// 8-byte doubles, so a 64 B line holds 8 and `1 ≤ L ≤ 8` at the
/// default line size).
pub fn nonzero_locality(t: &TripletMatrix, line_bytes: usize) -> f64 {
    let per_line = line_bytes / 8;
    let mut lines: BTreeSet<usize> = BTreeSet::new();
    let mut nnz = 0usize;
    for (r, c, _) in t.iter() {
        let flat = r * t.cols() + c;
        lines.insert(flat / per_line);
        nnz += 1;
    }
    if lines.is_empty() {
        0.0
    } else {
        nnz as f64 / lines.len() as f64
    }
}

/// Bytes of the ideal representation: non-zero values only (Figure 11's
/// normalization baseline).
pub fn ideal_bytes(t: &TripletMatrix) -> u64 {
    t.nnz() as u64 * 8
}

/// Bytes of the CSR representation: 8 B values + 4 B column indices +
/// 4 B row pointers ("roughly 1.5 times the number of non-zero values",
/// §5.2).
pub fn csr_bytes(t: &TripletMatrix) -> u64 {
    csr_bytes_from_parts(t.nnz(), t.rows())
}

/// [`csr_bytes`] from a non-zero count and row count directly.
pub fn csr_bytes_from_parts(nnz: usize, rows: usize) -> u64 {
    (nnz * 8 + nnz * 4 + (rows + 1) * 4) as u64
}

/// Bytes stored when keeping every non-zero chunk of `line_bytes` bytes
/// (the Figure 11 sweep: 16 B … 4 KB granularity). At 4096 this is the
/// "non-zero pages" scheme implementable on today's hardware.
pub fn overlay_bytes_for_line_size(t: &TripletMatrix, line_bytes: usize) -> u64 {
    let per_line = line_bytes / 8;
    let mut lines: BTreeSet<usize> = BTreeSet::new();
    for (r, c, _) in t.iter() {
        let flat = r * t.cols() + c;
        lines.insert(flat / per_line);
    }
    lines.len() as u64 * line_bytes as u64
}

/// Memory overhead of a line size relative to ideal (Figure 11 y-axis).
pub fn overhead_vs_ideal(t: &TripletMatrix, line_bytes: usize) -> f64 {
    po_types::stats::ratio(overlay_bytes_for_line_size(t, line_bytes), ideal_bytes(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagonal(n: usize) -> TripletMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 1.0);
        }
        t
    }

    fn dense_rows(rows: usize, cols: usize) -> TripletMatrix {
        let mut t = TripletMatrix::new(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                t.push(r, c, 1.0);
            }
        }
        t
    }

    #[test]
    fn diagonal_has_poor_locality() {
        // A large diagonal: one non-zero per 64 B line (when n >= 8).
        let t = diagonal(64);
        let l = nonzero_locality(&t, 64);
        assert!(l < 1.5, "L = {l}");
    }

    #[test]
    fn dense_rows_have_max_locality() {
        let t = dense_rows(4, 64);
        assert_eq!(nonzero_locality(&t, 64), 8.0);
    }

    #[test]
    fn csr_is_roughly_1_5x_ideal_when_rows_amortize() {
        // 12 B per non-zero (8 B value + 4 B col index) = 1.5x ideal once
        // row pointers amortize (§5.2).
        let t = dense_rows(8, 1024);
        let ratio = csr_bytes(&t) as f64 / ideal_bytes(&t) as f64;
        assert!((1.45..1.55).contains(&ratio), "ratio = {ratio}");
        // A diagonal (one non-zero per row) pays a full row pointer per
        // value: 2x.
        let d = diagonal(1000);
        let ratio_d = csr_bytes(&d) as f64 / ideal_bytes(&d) as f64;
        assert!((1.9..2.1).contains(&ratio_d), "ratio = {ratio_d}");
    }

    #[test]
    fn overhead_grows_with_line_size_for_scattered_data() {
        let t = diagonal(512);
        let mut prev = 0.0;
        for line in [16usize, 64, 256, 1024, 4096] {
            let oh = overhead_vs_ideal(&t, line);
            assert!(oh >= prev, "overhead must be monotone in line size");
            prev = oh;
        }
        // Page granularity is catastrophically wasteful for a diagonal.
        assert!(overhead_vs_ideal(&t, 4096) > 50.0);
        assert!(overhead_vs_ideal(&t, 16) <= 2.0);
    }

    #[test]
    fn overhead_is_minimal_for_dense_lines() {
        let t = dense_rows(8, 64); // exactly one full page of values
        assert_eq!(overhead_vs_ideal(&t, 64), 1.0);
        assert_eq!(overhead_vs_ideal(&t, 4096), 1.0);
    }

    #[test]
    fn locality_depends_on_line_size() {
        let t = diagonal(512);
        assert!(nonzero_locality(&t, 16) <= nonzero_locality(&t, 4096));
    }
}
