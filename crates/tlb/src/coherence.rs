//! TLB coherence via the cache-coherence network (§4.3.3).
//!
//! An overlaying write must make every TLB caching the page agree that
//! the written line now lives in the overlay. The naïve approach is a
//! TLB shootdown; the paper instead rides the cache-coherence network
//! with a new **overlaying read exclusive** message, exploiting three
//! facts: (i) only one line's mapping changes, (ii) the overlay page
//! number uniquely identifies the virtual page (overlays are unshared),
//! and (iii) overlay addresses are ordinary physical addresses, hence
//! already part of the coherence network.

use crate::tlb::Tlb;
use po_types::{Opn, PhysAddr, PoError, PoResult};

/// The coherence message broadcast on an overlaying write.
///
/// Carries the overlay line address; receivers decode `(ASID, VPN)`
/// directly from the overlay page number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlayingReadExclusive {
    /// Overlay-space address of the affected line.
    pub line_addr: PhysAddr,
}

impl OverlayingReadExclusive {
    /// Builds the message for line `line` of overlay page `opn`.
    pub fn new(opn: Opn, line: usize) -> Self {
        Self { line_addr: opn.line_addr(line) }
    }

    /// Decodes the overlay page and line index.
    ///
    /// # Errors
    ///
    /// Returns [`PoError::NotAnOverlayAddress`] if the address lies
    /// outside the overlay address space.
    pub fn decode(&self) -> PoResult<(Opn, usize)> {
        if !self.line_addr.is_overlay() {
            return Err(PoError::NotAnOverlayAddress(self.line_addr));
        }
        Ok((self.line_addr.opn(), self.line_addr.line_in_page()))
    }
}

/// Delivers an overlaying-write notification to every TLB in the system
/// (all cores snoop the coherence network). Returns how many TLBs
/// actually cached the page and were updated.
///
/// # Errors
///
/// Propagates decode failures for non-overlay addresses.
pub fn broadcast_overlaying_write(
    tlbs: &mut [Tlb],
    msg: OverlayingReadExclusive,
) -> PoResult<usize> {
    let (opn, line) = msg.decode()?;
    let (asid, vpn) = opn.decode();
    let mut updated = 0;
    for tlb in tlbs {
        if tlb.coherence_obit_update(asid, vpn, line, true) {
            updated += 1;
        }
    }
    Ok(updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::{TlbConfig, TlbEntry};
    use po_types::{Asid, OBitVector, Ppn, Vpn};
    use po_vm::{Pte, PteFlags};

    fn entry(asid: u16, vpn: u64) -> TlbEntry {
        TlbEntry {
            asid: Asid::new(asid),
            vpn: Vpn::new(vpn),
            pte: Pte {
                ppn: Ppn::new(1),
                flags: PteFlags {
                    present: true,
                    writable: false,
                    cow: true,
                    overlay_enabled: true,
                },
            },
            obitvec: OBitVector::EMPTY,
        }
    }

    #[test]
    fn message_roundtrip() {
        let opn = Opn::encode(Asid::new(5), Vpn::new(0x77));
        let msg = OverlayingReadExclusive::new(opn, 13);
        assert_eq!(msg.decode().unwrap(), (opn, 13));
    }

    #[test]
    fn non_overlay_address_is_rejected() {
        let msg = OverlayingReadExclusive { line_addr: PhysAddr::new(0x1000) };
        assert!(matches!(msg.decode(), Err(PoError::NotAnOverlayAddress(_))));
    }

    #[test]
    fn broadcast_updates_every_caching_tlb_without_shootdowns() {
        // Invariant 7 of DESIGN.md: after an overlaying write, every TLB
        // holding the page agrees on the OBitVector, with zero shootdowns.
        let mut tlbs = vec![
            Tlb::new(TlbConfig::table2()),
            Tlb::new(TlbConfig::table2()),
            Tlb::new(TlbConfig::table2()),
        ];
        tlbs[0].fill(entry(3, 0x10));
        tlbs[2].fill(entry(3, 0x10));
        // TLB 1 does not cache the page.
        let opn = Opn::encode(Asid::new(3), Vpn::new(0x10));
        let updated =
            broadcast_overlaying_write(&mut tlbs, OverlayingReadExclusive::new(opn, 42)).unwrap();
        assert_eq!(updated, 2);
        for i in [0usize, 2] {
            let e = tlbs[i].peek(Asid::new(3), Vpn::new(0x10)).unwrap();
            assert!(e.obitvec.contains(42));
            assert_eq!(tlbs[i].stats().shootdowns.get(), 0);
        }
        assert!(tlbs[1].peek(Asid::new(3), Vpn::new(0x10)).is_none());
    }

    #[test]
    fn broadcast_to_empty_system_is_zero() {
        let mut tlbs: Vec<Tlb> = vec![Tlb::new(TlbConfig::table2())];
        let opn = Opn::encode(Asid::new(1), Vpn::new(1));
        let n =
            broadcast_overlaying_write(&mut tlbs, OverlayingReadExclusive::new(opn, 0)).unwrap();
        assert_eq!(n, 0);
    }
}
